//! Section-III theory, machine-checked on live numbers:
//!
//! * Lemma 1 — the KL-constrained primal and SL's Log-E-Exp dual coincide;
//! * Lemma 2 — the mean + Var/2τ expansion tightens as τ grows;
//! * Corollary III.1 — τ* = sqrt(V/2η) round-trips;
//! * the worst-case weights `P*(j) ∝ exp(f_j/τ)` sharpen as τ drops.
//!
//! ```text
//! cargo run --release -p bsl-core --example dro_analysis
//! ```

use bsl_dro::{
    dual_value, duality_gap, implied_radius, optimal_tau, primal_value, taylor_remainder,
    worst_case_weights,
};

fn main() {
    // A plausible batch of cosine scores for sampled negatives.
    let scores: Vec<f32> =
        vec![0.31, -0.22, 0.68, 0.11, -0.57, 0.44, 0.02, 0.25, -0.12, 0.52, 0.37, -0.41];

    println!("== Lemma 1: strong duality of the negative part ==");
    for eta in [0.05f64, 0.2, 0.8] {
        println!(
            "  η={eta:<4}  primal={:+.6}  dual={:+.6}  gap={:.2e}",
            primal_value(&scores, eta),
            dual_value(&scores, eta),
            duality_gap(&scores, eta)
        );
    }

    println!("\n== Lemma 2: Taylor remainder decays faster than 1/τ ==");
    for tau in [0.5f64, 1.0, 2.0, 4.0] {
        println!(
            "  τ={tau:<4} |τ·lme(f/τ) − (mean + V/2τ)| = {:.3e}",
            taylor_remainder(&scores, tau)
        );
    }

    println!("\n== Corollary III.1: τ* = sqrt(V/2η) ==");
    let var = 0.12f64;
    for eta in [0.1f64, 0.5, 2.0] {
        let tau = optimal_tau(var, eta);
        println!(
            "  V={var}, η={eta:<4} → τ*={tau:.4} (η implied back: {:.4})",
            var / (2.0 * tau * tau)
        );
    }

    println!("\n== Worst-case weights sharpen as τ drops (Fig 4b) ==");
    for tau in [0.5f64, 0.13, 0.09] {
        let w = worst_case_weights(&scores, tau);
        let max = w.iter().cloned().fold(0.0f64, f64::max);
        println!("  τ={tau:<5} max weight={max:.3}  implied η={:.4}", implied_radius(&scores, tau));
    }
}
