//! The Hogwild accuracy/throughput trade-off, measured.
//!
//! Trains the same MF+BSL model on a Yelp-shaped synthetic dataset three
//! ways — serial exact, multi-threaded exact (merge-then-step), and
//! multi-threaded Hogwild (lock-free in-place SGD) — and prints wall
//! clock, epochs/second, and NDCG@20 for each, so the cost of dropping
//! gradient synchronization is a number, not folklore.
//!
//! ```bash
//! cargo run --release --example hogwild_tradeoff [threads]
//! ```
//!
//! Notes on reading the table: the exact rows are deterministic per
//! `(seed, threads)`; the hogwild row is racy by design and moves a
//! little run to run. Hogwild applies plain SGD (no Adam state can be
//! shared lock-free), so its learning rate is retuned — comparing raw
//! LRs across rows would be apples to oranges. On a single-core machine
//! every multi-threaded row pays coordination overhead and the
//! throughput column will favor serial.

use bsl_core::prelude::*;
use std::sync::Arc;
use std::time::Instant;

struct Row {
    mode: &'static str,
    secs: f64,
    epochs: usize,
    ndcg: f64,
}

fn run(mode: &'static str, cfg: TrainConfig, ds: &Arc<Dataset>) -> Row {
    let trainer = Trainer::new(cfg);
    // Warm the engine (spawns worker threads on the first fit) so the
    // measured run is the steady state.
    let _ = trainer.fit(&Arc::new(generate(&SynthConfig::tiny(3))));
    let start = Instant::now();
    let out = trainer.fit(ds);
    Row { mode, secs: start.elapsed().as_secs_f64(), epochs: cfg.epochs, ndcg: out.best.ndcg(20) }
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));
    let ds = Arc::new(generate(&SynthConfig::yelp_like(1)));
    println!(
        "dataset: {} ({} users, {} items), threads: {threads}\n",
        ds.name, ds.n_users, ds.n_items
    );

    let base = TrainConfig {
        loss: LossConfig::Bsl { tau1: 0.3, tau2: 0.15 },
        dim: 32,
        epochs: 8,
        eval_every: 8,
        negatives: 64,
        batch_size: 512,
        patience: 0,
        ..TrainConfig::smoke()
    };
    let rows = [
        run("serial-exact", TrainConfig { threads: 1, ..base }, &ds),
        run("sharded-exact", TrainConfig { threads, ..base }, &ds),
        // Plain SGD needs a larger raw LR than Adam under batch-mean loss
        // scaling (see tests/pool.rs).
        run("hogwild", TrainConfig { threads, sync: SyncMode::Hogwild, lr: 4.0, ..base }, &ds),
    ];

    println!("| mode | wall s | epochs/s | NDCG@20 |");
    println!("|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:.2} | {:.2} | {:.4} |",
            r.mode,
            r.secs,
            r.epochs as f64 / r.secs,
            r.ndcg
        );
    }
    let exact = rows[1].ndcg;
    let hog = rows[2].ndcg;
    println!(
        "\nhogwild vs sharded-exact: {:+.2}% NDCG, {:.2}x throughput",
        100.0 * (hog - exact) / exact,
        rows[1].secs / rows[2].secs
    );
}
