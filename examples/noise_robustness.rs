//! The paper's headline robustness story (Table IV): contaminate the
//! training positives with random false interactions and watch SL degrade
//! while BSL holds up.
//!
//! ```text
//! cargo run --release -p bsl-core --example noise_robustness
//! ```

use bsl_core::prelude::*;
use bsl_data::noise::inject_false_positives;
use std::sync::Arc;

fn main() {
    let clean = Arc::new(generate(&SynthConfig::gowalla_like(9)));
    println!("dataset: {} — {}\n", clean.name, clean.stats());
    let base = TrainConfig { dim: 32, epochs: 25, negatives: 64, ..TrainConfig::paper_default() };

    println!("{:<8} {:>10} {:>10} {:>10}", "noise", "SL NDCG", "BSL NDCG", "BSL gain");
    for ratio in [0.0f64, 0.2, 0.4] {
        let ds = if ratio == 0.0 {
            clean.clone()
        } else {
            Arc::new(inject_false_positives(&clean, ratio, 31).dataset)
        };
        // τ calibrated to the synthetic substrate (DESIGN.md §9.5: the
        // optimum sits higher than the paper's ~0.1); BSL uses τ1/τ2 ≈ 3.
        let sl = Trainer::new(TrainConfig { loss: LossConfig::Sl { tau: 0.35 }, ..base }).fit(&ds);
        let bsl =
            Trainer::new(TrainConfig { loss: LossConfig::Bsl { tau1: 1.0, tau2: 0.35 }, ..base })
                .fit(&ds);
        let (s, b) = (sl.best.ndcg(20), bsl.best.ndcg(20));
        println!(
            "{:<8} {:>10.4} {:>10.4} {:>+9.2}%",
            format!("{}%", (ratio * 100.0) as u32),
            s,
            b,
            100.0 * (b - s) / s.max(1e-12)
        );
    }
    println!("\nExpected shape (paper Table IV): BSL's advantage grows with the noise ratio.");
}
