//! Quickstart: generate a synthetic implicit-feedback dataset, train
//! matrix factorization with the paper's Bilateral Softmax Loss, and
//! report ranking quality.
//!
//! ```text
//! cargo run --release -p bsl-core --example quickstart
//! ```

use bsl_core::prelude::*;
use std::sync::Arc;

fn main() {
    // A Yelp2018-shaped synthetic dataset (see DESIGN.md §2 for why the
    // real logs are substituted).
    let ds = Arc::new(generate(&SynthConfig::yelp_like(42)));
    println!("dataset: {} — {}", ds.name, ds.stats());

    // Train MF + BSL with the paper's protocol (cosine training scores,
    // uniform negative sampling, Adam).
    let cfg = TrainConfig {
        backbone: BackboneConfig::Mf,
        loss: LossConfig::Bsl { tau1: 0.3, tau2: 0.15 },
        dim: 32,
        epochs: 25,
        negatives: 64,
        ..TrainConfig::paper_default()
    };
    println!("training {} …", cfg.label());
    let out = Trainer::new(cfg).fit(&ds);

    println!("\nbest epoch {}:", out.best_epoch);
    print!("{}", out.best);
    println!("\nloss trajectory (every 5 epochs):");
    for s in out.history.iter().step_by(5) {
        println!("  epoch {:>3}  loss {:.4}", s.epoch, s.loss);
    }
}
