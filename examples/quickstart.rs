//! Quickstart: generate a synthetic implicit-feedback dataset, train
//! matrix factorization with the paper's Bilateral Softmax Loss, report
//! ranking quality, then freeze the model into a `ModelArtifact` and
//! serve recommendations from it.
//!
//! ```text
//! cargo run --release -p bsl-core --example quickstart
//! ```

use bsl_core::prelude::*;
use bsl_serve::Recommender;
use std::sync::Arc;

fn main() {
    // A Yelp2018-shaped synthetic dataset (see DESIGN.md §2 for why the
    // real logs are substituted).
    let ds = Arc::new(generate(&SynthConfig::yelp_like(42)));
    println!("dataset: {} — {}", ds.name, ds.stats());

    // Train MF + BSL with the paper's protocol (cosine training scores,
    // uniform negative sampling, Adam).
    let cfg = TrainConfig {
        backbone: BackboneConfig::Mf,
        loss: LossConfig::Bsl { tau1: 0.3, tau2: 0.15 },
        dim: 32,
        epochs: 25,
        negatives: 64,
        ..TrainConfig::paper_default()
    };
    println!("training {} …", cfg.label());
    let out = Trainer::new(cfg).fit(&ds);

    println!("\nbest epoch {}:", out.best_epoch);
    print!("{}", out.best);
    println!("\nloss trajectory (every 5 epochs):");
    for s in out.history.iter().step_by(5) {
        println!("  epoch {:>3}  loss {:.4}", s.epoch, s.loss);
    }

    // Freeze the best epoch into a servable artifact and answer a query.
    // (`out.artifact.save(path)` / `ModelArtifact::load(path)` round-trips
    // the same tables through disk — see `repro --save` / `--serve`.)
    let art = &out.artifact;
    println!(
        "\nserving artifact: backbone {} ({:?}), {} users × {} items, dim {}",
        art.backbone(),
        art.similarity(),
        art.n_users(),
        art.n_items(),
        art.dim()
    );
    let mut rec = Recommender::with_seen(art.clone(), &ds);
    let user = ds.evaluable_users()[0];
    println!("top-5 for user {user}:");
    for r in rec.recommend(user, 5) {
        println!("  item {:>6}  score {:+.4}", r.item, r.score);
    }
}
