//! Figure-1 in miniature: the same MF backbone trained with BPR, BCE,
//! MSE, SL and BSL on one dataset — SL/BSL should win clearly.
//!
//! ```text
//! cargo run --release -p bsl-core --example loss_comparison
//! ```

use bsl_core::prelude::*;
use std::sync::Arc;

fn main() {
    let ds = Arc::new(generate(&SynthConfig::yelp_like(7)));
    println!("dataset: {} — {}\n", ds.name, ds.stats());
    let base = TrainConfig { dim: 32, epochs: 25, negatives: 64, ..TrainConfig::paper_default() };

    println!("{:<8} {:>10} {:>10}", "loss", "Recall@20", "NDCG@20");
    for (label, loss) in [
        ("BPR", LossConfig::Bpr),
        ("BCE", LossConfig::Bce { neg_weight: 1.0 }),
        ("MSE", LossConfig::Mse { neg_weight: 1.0 }),
        ("SL", LossConfig::Sl { tau: 0.15 }),
        ("BSL", LossConfig::Bsl { tau1: 0.3, tau2: 0.15 }),
    ] {
        let out = Trainer::new(TrainConfig { loss, ..base }).fit(&ds);
        println!("{:<8} {:>10.4} {:>10.4}", label, out.best.recall(20), out.best.ndcg(20));
    }
    println!("\nExpected shape (paper Fig 1): SL ≫ BPR/BCE/MSE, BSL ≥ SL.");
}
