#!/usr/bin/env bash
# The workspace static-analysis gate, runnable locally and in CI:
#
#   scripts/audit.sh                  # bsl-audit lints + clippy
#   AUDIT_STRESS=1 scripts/audit.sh   # + seeded hot-swap interleave harness
#
# Everything shares one exit code so CI needs exactly one gate step.
# bsl-audit enforces the conventions README.md documents under
# "Correctness tooling": SAFETY-justified unsafe (+ checked-in inventory),
# ORDERING-justified atomics, allocation-free hot paths, and
# dispatch-module-only #[target_feature] kernels. A failing run prints
# file:line diagnostics; waive with
# `// bsl-audit: allow(<lint>) -- <reason>` registered in
# audit/waivers.toml.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== bsl-audit check =="
cargo run -q -p bsl-audit -- check || fail=1

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings || fail=1

if [[ "${AUDIT_STRESS:-0}" == "1" ]]; then
    echo "== hot-swap interleave stress (--cfg audit_stress) =="
    # The cfg compiles seeded schedule-perturbation hooks into SwapSlot's
    # load/swap windows; a failure replays with the printed seed.
    RUSTFLAGS="${RUSTFLAGS:-} --cfg audit_stress" \
        BSL_STRESS_SEED="${BSL_STRESS_SEED:-42}" \
        cargo test -q -p bsl-serve --test interleave || fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    echo "audit: FAILED (see diagnostics above)" >&2
fi
exit "$fail"
