#!/usr/bin/env bash
# Drives the serving load generator (crates/bench/src/bin/load_gen.rs).
#
#   scripts/load_gen.sh            # both passes below
#   scripts/load_gen.sh inproc     # micro-batched vs unbatched engine comparison
#   scripts/load_gen.sh tcp        # TCP server smoke: 1k mixed requests, p99 gate,
#                                  # shutdown frame, clean join
#
# Environment knobs:
#   MIN_SPEEDUP    fail the inproc pass if batched/unbatched QPS falls below
#                  this (CI sets 1.5 as headroom under the >=2x acceptance
#                  target; unset = report only)
#   P99_BUDGET_US  fail the tcp pass if p99 exceeds this (default 200000)
#
# The `serve_*` lines on stdout are grep-stable; scripts/bench_baseline.sh
# copies them into BENCHMARKS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
case "$mode" in all | inproc | tcp) ;; *)
    echo "usage: scripts/load_gen.sh [all|inproc|tcp]" >&2
    exit 2
    ;;
esac

cargo build --release -p bsl-bench --bin load_gen
bin=target/release/load_gen

if [[ "$mode" == "inproc" || "$mode" == "all" ]]; then
    # The acceptance comparison: the same closed-loop request stream
    # through an unbatched engine (max_batch=1) and the micro-batching
    # scheduler. Default workload: 32k-item catalogue at d=64 (~8 MiB item
    # table, past L2), concurrency 16.
    "$bin" --mode inproc ${MIN_SPEEDUP:+--min-speedup "$MIN_SPEEDUP"}
fi

if [[ "$mode" == "tcp" || "$mode" == "all" ]]; then
    # The wire-protocol smoke: start a TCP front end in process, fire 1k
    # mixed requests (recommend / score_items / stats) from 8 concurrent
    # connections, gate on p99, then shut down via a shutdown frame and
    # join every thread. A smaller catalogue keeps this fast — it checks
    # plumbing and tail latency, not scoring throughput.
    "$bin" --mode tcp --with-server --requests 1000 --concurrency 8 \
        --items 4096 --dim 32 --p99-budget-us "${P99_BUDGET_US:-200000}" --shutdown
fi
