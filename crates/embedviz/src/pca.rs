//! Principal component analysis via power iteration with deflation —
//! used to initialize t-SNE and as a cheap linear projection.

use bsl_linalg::Matrix;

/// Projects `data` (`n × d`) onto its top `k` principal components,
/// returning an `n × k` matrix. Components are computed by power iteration
/// on the `d × d` covariance with Hotelling deflation (fine for the small
/// `d` used by embedding tables).
///
/// # Panics
/// Panics if `k == 0` or `k > d` or `data` has fewer than 2 rows.
pub fn pca_project(data: &Matrix, k: usize) -> Matrix {
    let (n, d) = data.shape();
    assert!(k > 0 && k <= d, "component count {k} out of range for dim {d}");
    assert!(n >= 2, "need at least two points");

    // Center.
    let mut mean = vec![0.0f64; d];
    for r in 0..n {
        for (m, &x) in mean.iter_mut().zip(data.row(r)) {
            *m += x as f64;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut centered = Matrix::zeros(n, d);
    for r in 0..n {
        for (c, &m) in mean.iter().enumerate() {
            centered.set(r, c, (data.get(r, c) as f64 - m) as f32);
        }
    }
    // Covariance (unnormalized — scaling does not change components).
    let mut cov = centered.matmul_tn(&centered);

    // Power iteration with deflation.
    let mut components = Matrix::zeros(k, d);
    for comp in 0..k {
        // Deterministic start vector that is unlikely to be orthogonal to
        // the leading eigenvector.
        let mut v: Vec<f64> = (0..d).map(|j| 1.0 + ((j + comp * 7) % 5) as f64 * 0.1).collect();
        let mut lambda = 0.0f64;
        for _ in 0..200 {
            // w = cov · v
            let mut w = vec![0.0f64; d];
            for (i, wi) in w.iter_mut().enumerate() {
                let row = cov.row(i);
                *wi = row.iter().zip(v.iter()).map(|(&c, &x)| c as f64 * x).sum();
            }
            let norm: f64 = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-30 {
                break;
            }
            for (vi, wi) in v.iter_mut().zip(w.iter()) {
                *vi = wi / norm;
            }
            lambda = norm;
        }
        for (c, &vi) in v.iter().enumerate() {
            components.set(comp, c, vi as f32);
        }
        // Deflate: cov ← cov − λ·v·vᵀ.
        for i in 0..d {
            for j in 0..d {
                let cur = cov.get(i, j);
                cov.set(i, j, cur - (lambda * v[i] * v[j]) as f32);
            }
        }
    }

    // Project.
    let mut out = Matrix::zeros(n, k);
    for r in 0..n {
        for comp in 0..k {
            out.set(r, comp, bsl_linalg::kernels::dot(centered.row(r), components.row(comp)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data stretched along one axis: PC1 must capture that axis.
    #[test]
    fn recovers_dominant_direction() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Matrix::zeros(200, 3);
        for r in 0..200 {
            let t: f32 = rng.gen_range(-5.0..5.0);
            data.set(r, 0, t + rng.gen_range(-0.1..0.1));
            data.set(r, 1, rng.gen_range(-0.1..0.1));
            data.set(r, 2, rng.gen_range(-0.1..0.1));
        }
        let proj = pca_project(&data, 1);
        // Variance of the projection ≈ variance of axis 0.
        let var_axis: f64 = {
            let m: f64 = (0..200).map(|r| data.get(r, 0) as f64).sum::<f64>() / 200.0;
            (0..200).map(|r| (data.get(r, 0) as f64 - m).powi(2)).sum::<f64>() / 200.0
        };
        let var_proj: f64 = {
            let m: f64 = (0..200).map(|r| proj.get(r, 0) as f64).sum::<f64>() / 200.0;
            (0..200).map(|r| (proj.get(r, 0) as f64 - m).powi(2)).sum::<f64>() / 200.0
        };
        assert!(var_proj >= var_axis * 0.98, "projection lost variance: {var_proj} vs {var_axis}");
    }

    #[test]
    fn projection_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Matrix::gaussian(50, 4, 1.0, &mut rng);
        let proj = pca_project(&data, 2);
        for c in 0..2 {
            let m: f64 = (0..50).map(|r| proj.get(r, c) as f64).sum::<f64>() / 50.0;
            assert!(m.abs() < 1e-3, "component {c} mean {m}");
        }
    }

    #[test]
    fn successive_components_capture_decreasing_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Matrix::zeros(300, 4);
        for r in 0..300 {
            data.set(r, 0, rng.gen_range(-4.0..4.0));
            data.set(r, 1, rng.gen_range(-2.0..2.0));
            data.set(r, 2, rng.gen_range(-0.5..0.5));
            data.set(r, 3, rng.gen_range(-0.1..0.1));
        }
        let proj = pca_project(&data, 3);
        let var = |c: usize| -> f64 {
            let m: f64 = (0..300).map(|r| proj.get(r, c) as f64).sum::<f64>() / 300.0;
            (0..300).map(|r| (proj.get(r, c) as f64 - m).powi(2)).sum::<f64>() / 300.0
        };
        assert!(var(0) > var(1));
        assert!(var(1) > var(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_too_many_components() {
        let data = Matrix::zeros(5, 2);
        let _ = pca_project(&data, 3);
    }
}
