//! Exact (O(n²)) t-SNE (van der Maaten & Hinton, 2008) for the Fig-10/11
//! embedding maps. Suitable for the ≤1k-item synthetic catalogues.

use crate::pca::pca_project;
use bsl_linalg::kernels::sq_dist;
use bsl_linalg::Matrix;

/// t-SNE hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbourhood size).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iters: usize,
    /// Learning rate.
    pub lr: f64,
    /// Early-exaggeration factor applied for the first quarter of iters.
    pub exaggeration: f64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self { perplexity: 30.0, iters: 300, lr: 100.0, exaggeration: 4.0 }
    }
}

/// Per-point binary search for the Gaussian bandwidth matching the target
/// perplexity; returns the row of conditional probabilities `p_{j|i}`.
fn conditional_probs(sq_dists: &[f64], i: usize, perplexity: f64, out: &mut [f64]) {
    let target_entropy = perplexity.ln();
    let mut beta = 1.0f64; // 1/(2σ²)
    let (mut beta_lo, mut beta_hi) = (0.0f64, f64::INFINITY);
    for _ in 0..60 {
        let mut sum = 0.0f64;
        let mut weighted = 0.0f64;
        for (j, (&d2, o)) in sq_dists.iter().zip(out.iter_mut()).enumerate() {
            if j == i {
                *o = 0.0;
                continue;
            }
            let p = (-beta * d2).exp();
            *o = p;
            sum += p;
            weighted += p * d2;
        }
        if sum <= 1e-300 {
            beta /= 2.0;
            beta_hi = beta * 2.0;
            continue;
        }
        // Shannon entropy of the normalized distribution.
        let entropy = beta * weighted / sum + sum.ln();
        let diff = entropy - target_entropy;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            beta_lo = beta;
            beta = if beta_hi.is_finite() { (beta + beta_hi) / 2.0 } else { beta * 2.0 };
        } else {
            beta_hi = beta;
            beta = (beta + beta_lo) / 2.0;
        }
    }
    let sum: f64 = out.iter().sum();
    if sum > 0.0 {
        for o in out.iter_mut() {
            *o /= sum;
        }
    }
}

/// Runs exact t-SNE on `data` (`n × d`), returning an `n × 2` map.
/// Deterministic: initialized from the top-2 PCA projection (scaled to
/// 1e-4 std as in the reference implementation).
///
/// # Panics
/// Panics if `n < 5` or the perplexity is not positive / too large for `n`.
pub fn tsne(data: &Matrix, cfg: &TsneConfig) -> Matrix {
    let n = data.rows();
    assert!(n >= 5, "t-SNE needs at least 5 points");
    assert!(cfg.perplexity > 0.0, "perplexity must be positive");
    assert!((cfg.perplexity as usize) < n, "perplexity {} too large for n {n}", cfg.perplexity);

    // Pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = sq_dist(data.row(i), data.row(j)) as f64;
            d2[i * n + j] = v;
            d2[j * n + i] = v;
        }
    }
    // Symmetrized joint probabilities.
    let mut p = vec![0.0f64; n * n];
    {
        let mut row = vec![0.0f64; n];
        for i in 0..n {
            conditional_probs(&d2[i * n..(i + 1) * n], i, cfg.perplexity, &mut row);
            for (j, &pj) in row.iter().enumerate() {
                p[i * n + j] += pj / (2.0 * n as f64);
                p[j * n + i] += pj / (2.0 * n as f64);
            }
        }
    }
    for x in &mut p {
        *x = x.max(1e-12);
    }

    // Init from PCA, scaled down.
    let mut y = pca_project(data, 2.min(data.cols()));
    if y.cols() == 1 {
        // Degenerate 1-D input: pad a zero column.
        let mut padded = Matrix::zeros(n, 2);
        for r in 0..n {
            padded.set(r, 0, y.get(r, 0));
        }
        y = padded;
    }
    let scale: f64 = {
        let norm = y.frob_norm().max(1e-12);
        1e-4 * (n as f64).sqrt() / norm
    };
    y.scale(scale as f32);

    let mut velocity = Matrix::zeros(n, 2);
    let mut grad = Matrix::zeros(n, 2);
    let mut q = vec![0.0f64; n * n];

    for iter in 0..cfg.iters {
        let exag = if iter < cfg.iters / 4 { cfg.exaggeration } else { 1.0 };
        // Student-t affinities.
        let mut q_sum = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dy0 = (y.get(i, 0) - y.get(j, 0)) as f64;
                let dy1 = (y.get(i, 1) - y.get(j, 1)) as f64;
                let w = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
                q[i * n + j] = w;
                q[j * n + i] = w;
                q_sum += 2.0 * w;
            }
        }
        let q_sum = q_sum.max(1e-12);
        // Gradient: 4 Σ_j (p_ij·exag − q_ij)·w_ij·(y_i − y_j).
        grad.fill(0.0);
        for i in 0..n {
            let mut g0 = 0.0f64;
            let mut g1 = 0.0f64;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let coef = 4.0 * (exag * p[i * n + j] - w / q_sum) * w;
                g0 += coef * (y.get(i, 0) - y.get(j, 0)) as f64;
                g1 += coef * (y.get(i, 1) - y.get(j, 1)) as f64;
            }
            grad.set(i, 0, g0 as f32);
            grad.set(i, 1, g1 as f32);
        }
        // Momentum descent.
        let momentum = if iter < 20 { 0.5 } else { 0.8 };
        for r in 0..n {
            for c in 0..2 {
                let v = momentum * velocity.get(r, c) - (cfg.lr as f32) * grad.get(r, c);
                velocity.set(r, c, v);
                y.set(r, c, y.get(r, c) + v);
            }
        }
        // Re-center.
        for c in 0..2 {
            let mean: f32 = (0..n).map(|r| y.get(r, c)).sum::<f32>() / n as f32;
            for r in 0..n {
                y.set(r, c, y.get(r, c) - mean);
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::silhouette;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs_hi_dim(n_per: usize, sep: f32, seed: u64) -> (Matrix, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = n_per * 3;
        let mut data = Matrix::zeros(n, 8);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 3;
            labels.push(c as u16);
            for j in 0..8 {
                let centre = if j == c { sep } else { 0.0 };
                data.set(i, j, centre + rng.gen_range(-0.3..0.3));
            }
        }
        (data, labels)
    }

    #[test]
    fn preserves_cluster_separation() {
        let (data, labels) = blobs_hi_dim(30, 4.0, 1);
        let cfg = TsneConfig { perplexity: 10.0, iters: 250, ..TsneConfig::default() };
        let map = tsne(&data, &cfg);
        assert_eq!(map.shape(), (90, 2));
        let s = silhouette(&map, &labels);
        assert!(s > 0.5, "separated blobs collapsed in the map: silhouette {s}");
    }

    #[test]
    fn map_is_finite_and_centered() {
        let (data, _) = blobs_hi_dim(20, 2.0, 2);
        let map = tsne(&data, &TsneConfig { perplexity: 8.0, iters: 100, ..Default::default() });
        assert!(map.as_slice().iter().all(|v| v.is_finite()));
        for c in 0..2 {
            let mean: f64 =
                (0..map.rows()).map(|r| map.get(r, c) as f64).sum::<f64>() / map.rows() as f64;
            assert!(mean.abs() < 1e-3);
        }
    }

    #[test]
    fn deterministic() {
        let (data, _) = blobs_hi_dim(10, 3.0, 3);
        let cfg = TsneConfig { perplexity: 5.0, iters: 50, ..Default::default() };
        let a = tsne(&data, &cfg);
        let b = tsne(&data, &cfg);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn conditional_probs_match_perplexity() {
        // Uniform square of points: entropy should hit the target.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50;
        let data = Matrix::gaussian(n, 2, 1.0, &mut rng);
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                d2[i * n + j] = sq_dist(data.row(i), data.row(j)) as f64;
            }
        }
        let mut row = vec![0.0f64; n];
        conditional_probs(&d2[0..n], 0, 15.0, &mut row);
        let entropy: f64 = -row.iter().filter(|&&p| p > 0.0).map(|&p| p * p.ln()).sum::<f64>();
        let perp = entropy.exp();
        assert!((perp - 15.0).abs() < 1.0, "achieved perplexity {perp}");
    }

    #[test]
    #[should_panic(expected = "perplexity")]
    fn rejects_oversized_perplexity() {
        let data = Matrix::zeros(10, 2);
        let _ = tsne(&data, &TsneConfig { perplexity: 20.0, ..Default::default() });
    }
}
