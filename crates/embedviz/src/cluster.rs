//! Quantitative cluster-separation metrics.

use bsl_linalg::kernels::sq_dist;
use bsl_linalg::Matrix;

/// Mean silhouette coefficient of `data` (`n × d`) under `labels`.
///
/// For each point: `s = (b − a) / max(a, b)` with `a` the mean distance to
/// its own cluster and `b` the smallest mean distance to another cluster.
/// Points in singleton clusters contribute 0 (scikit-learn convention).
/// Returns a value in `[-1, 1]`; higher = better separated.
///
/// # Panics
/// Panics if lengths disagree or fewer than 2 clusters are present.
pub fn silhouette(data: &Matrix, labels: &[u16]) -> f64 {
    let n = data.rows();
    assert_eq!(labels.len(), n, "one label per row");
    let k = labels.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l as usize] += 1;
    }
    assert!(counts.iter().filter(|&&c| c > 0).count() >= 2, "need at least two clusters");

    let mut total = 0.0f64;
    let mut dist_sums = vec![0.0f64; k];
    for i in 0..n {
        let li = labels[i] as usize;
        if counts[li] <= 1 {
            continue; // silhouette of a singleton is defined as 0
        }
        dist_sums.iter_mut().for_each(|x| *x = 0.0);
        let ri = data.row(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            dist_sums[labels[j] as usize] += (sq_dist(ri, data.row(j)) as f64).sqrt();
        }
        let a = dist_sums[li] / (counts[li] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != li && counts[c] > 0)
            .map(|c| dist_sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

/// Davies–Bouldin index: mean over clusters of the worst
/// `(scatter_i + scatter_j) / centroid_distance(i, j)` ratio.
/// Lower = better separated (0 is perfect).
///
/// # Panics
/// Panics if lengths disagree or fewer than 2 non-empty clusters exist.
pub fn davies_bouldin(data: &Matrix, labels: &[u16]) -> f64 {
    let n = data.rows();
    let d = data.cols();
    assert_eq!(labels.len(), n, "one label per row");
    let k = labels.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
    let mut counts = vec![0usize; k];
    let mut centroids = Matrix::zeros(k, d);
    for (i, &l) in labels.iter().enumerate() {
        counts[l as usize] += 1;
        let c = centroids.row_mut(l as usize);
        for (cc, &x) in c.iter_mut().zip(data.row(i)) {
            *cc += x;
        }
    }
    let live: Vec<usize> = (0..k).filter(|&c| counts[c] > 0).collect();
    assert!(live.len() >= 2, "need at least two clusters");
    for &c in &live {
        let inv = 1.0 / counts[c] as f32;
        for x in centroids.row_mut(c) {
            *x *= inv;
        }
    }
    // Mean intra-cluster distance to centroid.
    let mut scatter = vec![0.0f64; k];
    for (i, &l) in labels.iter().enumerate() {
        scatter[l as usize] += (sq_dist(data.row(i), centroids.row(l as usize)) as f64).sqrt();
    }
    for &c in &live {
        scatter[c] /= counts[c] as f64;
    }
    let mut total = 0.0f64;
    for &i in &live {
        let mut worst = 0.0f64;
        for &j in &live {
            if i == j {
                continue;
            }
            let dist = (sq_dist(centroids.row(i), centroids.row(j)) as f64).sqrt();
            if dist > 1e-12 {
                worst = worst.max((scatter[i] + scatter[j]) / dist);
            } else {
                worst = f64::INFINITY;
            }
        }
        total += worst;
    }
    total / live.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(sep: f32, seed: u64) -> (Matrix, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Matrix::zeros(90, 2);
        let mut labels = Vec::with_capacity(90);
        for i in 0..90 {
            let c = i % 3;
            let (cx, cy) = [(0.0, 0.0), (sep, 0.0), (0.0, sep)][c];
            data.set(i, 0, cx + rng.gen_range(-0.5..0.5));
            data.set(i, 1, cy + rng.gen_range(-0.5..0.5));
            labels.push(c as u16);
        }
        (data, labels)
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let (data, labels) = blobs(10.0, 1);
        assert!(silhouette(&data, &labels) > 0.8);
        assert!(davies_bouldin(&data, &labels) < 0.3);
    }

    #[test]
    fn overlapping_blobs_score_low() {
        let (data, labels) = blobs(0.2, 2);
        assert!(silhouette(&data, &labels) < 0.2);
        assert!(davies_bouldin(&data, &labels) > 1.0);
    }

    #[test]
    fn separation_orderings_agree() {
        let (tight, l1) = blobs(8.0, 3);
        let (loose, l2) = blobs(1.0, 3);
        assert!(silhouette(&tight, &l1) > silhouette(&loose, &l2));
        assert!(davies_bouldin(&tight, &l1) < davies_bouldin(&loose, &l2));
    }

    #[test]
    fn random_labels_near_zero_silhouette() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = Matrix::gaussian(80, 3, 1.0, &mut rng);
        let labels: Vec<u16> = (0..80).map(|_| rng.gen_range(0..4u16)).collect();
        let s = silhouette(&data, &labels);
        assert!(s.abs() < 0.15, "random labelling should be ≈0, got {s}");
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn silhouette_rejects_single_cluster() {
        let data = Matrix::zeros(4, 2);
        let _ = silhouette(&data, &[0, 0, 0, 0]);
    }
}
