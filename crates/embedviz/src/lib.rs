//! Embedding-quality analysis for the Fig-10/11 studies.
//!
//! The paper argues visually (t-SNE plots) that BSL keeps item embeddings
//! group-separated under positive noise while SL degrades toward a uniform
//! blob. This crate reproduces that analysis twice over:
//!
//! * [`mod@tsne`] — an exact (O(n²)) t-SNE so the 2-D maps can be regenerated
//!   and exported as CSV;
//! * [`cluster`] — *quantitative* separation scores (mean silhouette,
//!   Davies–Bouldin) over the generator's ground-truth item clusters, which
//!   turn "the blobs look tighter" into a number a test can assert on.

// Enforced by bsl-audit (audit/policy.toml): this crate is not on the
// unsafe allowlist.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod pca;
pub mod tsne;

pub use cluster::{davies_bouldin, silhouette};
pub use pca::pca_project;
pub use tsne::{tsne, TsneConfig};
