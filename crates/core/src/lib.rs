//! # BSL — Bilateral Softmax Loss for Recommendation (reproduction)
//!
//! This crate is the public face of a from-scratch Rust reproduction of
//! *"BSL: Understanding and Improving Softmax Loss for Recommendation"*
//! (Wu et al., ICDE 2024). It wires together the workspace's substrates —
//! synthetic implicit-feedback datasets (`bsl-data`), negative samplers
//! (`bsl-sampling`), ranking losses with exact analytic gradients
//! (`bsl-losses`, including the paper's [`Bsl`]), recommendation backbones
//! (`bsl-models`), DRO analysis (`bsl-dro`) and top-K evaluation
//! (`bsl-eval`) — behind one [`Trainer`].
//!
//! Quick start:
//!
//! ```
//! use bsl_core::prelude::*;
//!
//! let ds = std::sync::Arc::new(bsl_data::synth::generate(
//!     &bsl_data::synth::SynthConfig::tiny(42),
//! ));
//! let cfg = TrainConfig {
//!     backbone: BackboneConfig::Mf,
//!     loss: LossConfig::Bsl { tau1: 0.15, tau2: 0.1 },
//!     epochs: 5,
//!     ..TrainConfig::smoke()
//! };
//! let outcome = Trainer::new(cfg).fit(&ds);
//! println!("NDCG@20 = {:.4}", outcome.best.ndcg(20));
//! ```
//!
//! [`Bsl`]: bsl_losses::Bsl

// On the bsl-audit unsafe allowlist (audit/policy.toml): unsafe fns must
// still spell out every unsafe operation in an explicit `unsafe {}` block.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]

pub mod config;
pub mod engine;
pub mod trainer;

pub use config::{SamplingConfig, SyncMode, TrainConfig};
pub use trainer::{EpochStats, TrainOutcome, Trainer};

/// One-stop imports for examples and experiment harnesses.
pub mod prelude {
    pub use crate::config::{SamplingConfig, SyncMode, TrainConfig};
    pub use crate::trainer::{EpochStats, TrainOutcome, Trainer};
    pub use bsl_data::synth::{generate, SynthConfig};
    pub use bsl_data::Dataset;
    pub use bsl_eval::{evaluate, evaluate_artifact, EvalReport};
    pub use bsl_losses::LossConfig;
    pub use bsl_models::{Backbone, BackboneConfig, EvalScore, ModelArtifact};
}
