//! Persistent-pool execution engine for the multi-threaded trainer.
//!
//! PR 2's sharded trainer spawned 2–3 rounds of scoped threads per batch
//! (one per pass), so every step paid thread-creation latency. This module
//! replaces that with a [`WorkerPool`] of **long-lived workers** created
//! once per [`Trainer`](crate::Trainer) and fed per-batch work items over
//! `std::sync::mpsc` channels: a step pass is one [`WorkerPool::run`] call
//! that enqueues one job per shard and blocks until all of them finish.
//! The jobs may borrow the caller's stack (batch, scratch, gradient
//! shards) exactly like `std::thread::scope` closures could — the pool
//! guarantees the borrow discipline by never returning from `run` while a
//! job is still in flight.
//!
//! [`Engine`] bundles the compute pool with a persistent
//! [`SamplerPool`], so neither the per-batch
//! step passes nor the per-epoch negative sampling spawn any threads after
//! trainer start-up.
//!
//! [`HogwildView`] is the engine's support for the approximate
//! [`SyncMode::Hogwild`](crate::config::SyncMode) trainer: a racy,
//! lock-free view of an embedding matrix whose rows workers read and
//! write through relaxed per-element atomics (so concurrent updates may
//! lose increments — the Hogwild bargain — but never tear or invoke
//! undefined behaviour).

use bsl_linalg::Matrix;
use bsl_sampling::SamplerPool;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A unit of work submitted to [`WorkerPool::run`]. Jobs may borrow the
/// caller's stack (`'scope`); the pool blocks until every job of the call
/// has finished, so the borrows never outlive their referents.
pub type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// The lifetime-erased job representation that travels through the
/// worker channels, paired with the completion channel of its `run` call.
struct Task {
    job: Box<dyn FnOnce() + Send + 'static>,
    done: Sender<std::thread::Result<()>>,
}

/// A pool of long-lived worker threads executing borrowed jobs.
///
/// Workers are spawned once and parked on their channel between batches;
/// [`WorkerPool::run`] hands worker `k` the `k`-th job of the call, so a
/// caller that always submits jobs in shard order gets a stable
/// job-to-thread assignment (useful for cache locality of per-shard
/// scratch). Dropping the pool shuts the workers down and joins them.
pub struct WorkerPool {
    txs: Vec<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `n_workers` parked worker threads.
    ///
    /// # Panics
    /// Panics if `n_workers == 0`.
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        let mut txs = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for k in 0..n_workers {
            let (tx, rx): (Sender<Task>, Receiver<Task>) = channel();
            txs.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("bsl-engine-{k}"))
                .spawn(move || worker_loop(&rx))
                .expect("spawning engine worker");
            handles.push(handle);
        }
        Self { txs, handles }
    }

    /// Number of workers in the pool.
    pub fn n_workers(&self) -> usize {
        self.txs.len()
    }

    /// Executes `jobs` (job `k` on worker `k`), blocking until every job
    /// has returned. If any job panicked, the first payload is re-raised
    /// on the caller *after* all jobs finished, so borrowed data is never
    /// observable by a still-running job past this call.
    ///
    /// # Panics
    /// Panics if more jobs than workers are submitted, or (propagated) if
    /// a job panicked. A worker *thread* dying with jobs in flight aborts
    /// the process instead of panicking — see the safety notes below.
    #[allow(unsafe_code)] // lifetime erasure for scoped jobs; see SAFETY
    pub fn run<'scope>(&self, jobs: Vec<Job<'scope>>) {
        assert!(jobs.len() <= self.txs.len(), "more jobs than pool workers");
        let (done_tx, done_rx) = channel();
        let n = jobs.len();
        for (tx, job) in self.txs.iter().zip(jobs) {
            // SAFETY: the loop below receives exactly one completion per
            // submitted job before `run` returns, so no job outlives
            // `'scope`. The failure paths uphold this too: a job panic is
            // caught worker-side and still produces a completion, and a
            // *worker-thread* death (send/recv failing below) aborts the
            // process rather than unwinding — unwinding the caller's
            // frame here could free buffers that jobs already dispatched
            // to *other, still-healthy* workers are borrowing.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
            if tx.send(Task { job, done: done_tx.clone() }).is_err() {
                eprintln!("bsl-core engine: worker died with scoped jobs in flight; aborting");
                std::process::abort();
            }
        }
        drop(done_tx);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..n {
            match done_rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(payload)) => panic = Some(payload),
                Err(_) => {
                    eprintln!("bsl-core engine: worker died with scoped jobs in flight; aborting");
                    std::process::abort();
                }
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels wakes the workers out of `recv`; then reap.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One worker: execute jobs until the pool drops the sending side.
/// Panics are caught and forwarded so a failing job cannot wedge the
/// blocked `run` caller (which re-raises them).
fn worker_loop(rx: &Receiver<Task>) {
    while let Ok(Task { job, done }) = rx.recv() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(job));
        let _ = done.send(result);
    }
}

/// The trainer's persistent execution engine: a compute [`WorkerPool`]
/// for the per-batch step passes plus a [`SamplerPool`] whose long-lived
/// shard workers produce each epoch's batches. Created once per
/// [`Trainer`](crate::Trainer) (lazily, on the first multi-threaded fit)
/// and reused across batches, epochs, and repeated fits.
pub struct Engine {
    pool: WorkerPool,
    samplers: SamplerPool,
}

impl Engine {
    /// An engine with `n_threads` compute workers and `n_threads`
    /// sampling shard workers.
    ///
    /// # Panics
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Self {
        Self { pool: WorkerPool::new(n_threads), samplers: SamplerPool::new(n_threads) }
    }

    /// The compute pool the step passes run on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The persistent sampling pool batches come from.
    pub fn samplers(&self) -> &SamplerPool {
        &self.samplers
    }
}

/// A lock-free shared view of an embedding matrix for Hogwild updates.
///
/// Every element is accessed as a relaxed [`AtomicU32`] holding the f32's
/// bits, so concurrent row updates from multiple workers are race-*ful*
/// (read-modify-write sequences can lose each other's increments — the
/// approximation Hogwild accepts by design) but individual elements never
/// tear and the program stays well-defined. The exclusive `&mut Matrix`
/// taken at construction guarantees no plain `f32` access can alias the
/// view while it lives.
pub struct HogwildView<'a> {
    cells: &'a [AtomicU32],
    cols: usize,
}

impl<'a> HogwildView<'a> {
    /// Wraps `m` in an atomic view for the view's lifetime.
    #[allow(unsafe_code)] // f32 → AtomicU32 reinterpretation; see SAFETY
    pub fn new(m: &'a mut Matrix) -> Self {
        let cols = m.cols();
        let data = m.as_mut_slice();
        // SAFETY: `AtomicU32` has the same size and alignment as `f32`
        // (4/4), every bit pattern is valid for both, and the `&mut`
        // borrow makes this the only live reference to the buffer for
        // `'a`, so reinterpreting the element type is sound.
        let cells = unsafe {
            std::slice::from_raw_parts(data.as_mut_ptr().cast::<AtomicU32>(), data.len())
        };
        Self { cells, cols }
    }

    /// Row width of the underlying matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Copies row `r` into `out` with relaxed loads.
    ///
    /// # Panics
    /// Panics if `out.len() != self.cols()` or `r` is out of bounds.
    // ORDERING: Relaxed by design — hogwild readers tolerate torn row
    // views (each u32 cell is individually atomic, no cross-cell order is
    // claimed); the stale/mixed values this admits are exactly the
    // asynchrony the Hogwild! convergence argument prices in.
    pub fn load_row(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "row buffer width mismatch");
        let row = &self.cells[r * self.cols..(r + 1) * self.cols];
        for (o, cell) in out.iter_mut().zip(row) {
            *o = f32::from_bits(cell.load(Ordering::Relaxed));
        }
    }

    /// Stores `vals` into row `r` with relaxed stores.
    ///
    /// # Panics
    /// Panics if `vals.len() != self.cols()` or `r` is out of bounds.
    // ORDERING: Relaxed by design — see `load_row`; publication of the
    // final values happens at the pool join (a synchronizing edge), not
    // through these stores.
    pub fn store_row(&self, r: usize, vals: &[f32]) {
        assert_eq!(vals.len(), self.cols, "row buffer width mismatch");
        let row = &self.cells[r * self.cols..(r + 1) * self.cols];
        for (cell, &v) in row.iter().zip(vals) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_borrowed_jobs_to_completion() {
        let pool = WorkerPool::new(4);
        let mut out = vec![0usize; 4];
        let chunks: Vec<&mut usize> = out.iter_mut().collect();
        let mut jobs: Vec<Job> = Vec::new();
        for (k, slot) in chunks.into_iter().enumerate() {
            jobs.push(Box::new(move || *slot = k + 1));
        }
        pool.run(jobs);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pool_is_reusable_across_many_rounds() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..100 {
            let jobs: Vec<Job> = (0..3)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }) as Job
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn fewer_jobs_than_workers_is_fine() {
        let pool = WorkerPool::new(4);
        let mut x = 0u32;
        pool.run(vec![Box::new(|| x += 7)]);
        assert_eq!(x, 7);
        pool.run(Vec::new()); // zero jobs is a no-op
    }

    #[test]
    fn job_panic_propagates_after_all_jobs_finish() {
        let pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| panic!("job failed")),
                Box::new(|| {
                    done.fetch_add(1, Ordering::Relaxed);
                }),
            ]);
        }));
        assert!(result.is_err(), "the job panic must reach the caller");
        assert_eq!(done.load(Ordering::Relaxed), 1, "the healthy job still ran");
        // The pool survives a panicked job.
        pool.run(vec![Box::new(|| {
            done.fetch_add(1, Ordering::Relaxed);
        })]);
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn hogwild_view_round_trips_rows() {
        let mut m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        {
            let view = HogwildView::new(&mut m);
            let mut buf = vec![0.0f32; 4];
            view.load_row(1, &mut buf);
            assert_eq!(buf, vec![4.0, 5.0, 6.0, 7.0]);
            for v in buf.iter_mut() {
                *v *= 2.0;
            }
            view.store_row(1, &buf);
        }
        assert_eq!(m.row(1), &[8.0, 10.0, 12.0, 14.0]);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0, 3.0], "other rows untouched");
    }

    #[test]
    fn hogwild_view_is_shareable_across_pool_jobs() {
        let pool = WorkerPool::new(4);
        let mut m = Matrix::zeros(4, 8);
        let view = HogwildView::new(&mut m);
        let mut jobs: Vec<Job> = Vec::new();
        for k in 0..4usize {
            let view = &view;
            jobs.push(Box::new(move || {
                let mut buf = vec![0.0f32; 8];
                view.load_row(k, &mut buf);
                for v in buf.iter_mut() {
                    *v += (k + 1) as f32;
                }
                view.store_row(k, &buf);
            }));
        }
        pool.run(jobs);
        for r in 0..4 {
            assert!(m.row(r).iter().all(|&v| v == (r + 1) as f32));
        }
    }
}
