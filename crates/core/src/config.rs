//! Experiment configuration types.

use bsl_losses::LossConfig;
use bsl_models::BackboneConfig;
use serde::{Deserialize, Serialize};

/// Negative-sampling strategy (paper §II-A / §III-B).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SamplingConfig {
    /// Uniform over the user's non-interacted items.
    Uniform,
    /// `p(i) ∝ pop_i^alpha` with rejection of training positives.
    Popularity {
        /// Popularity exponent α.
        alpha: f64,
    },
    /// The paper's `r_noise` knob: positives deliberately leak into the
    /// negative pool with relative sampling probability `r_noise`.
    Noisy {
        /// Ratio of positive-sampling to negative-sampling probability.
        r_noise: f64,
    },
    /// In-batch sharing: row `b`'s negatives are the other rows' positives
    /// (paper Table V, the NGCF/LightGCN protocol).
    InBatch,
}

/// Gradient-synchronization mode of the multi-threaded trainer step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// Each worker accumulates into a private batch-footprint gradient
    /// shard; shards merge in a fixed order before one optimizer step.
    /// Deterministic per `(seed, threads)` and bit-identical to the
    /// serial trainer at `threads = 1`.
    Exact,
    /// Hogwild-style (Niu et al., 2011): workers apply plain-SGD updates
    /// directly to the shared embedding rows with lock-free relaxed
    /// atomics — no merge, no optimizer state. Races may drop individual
    /// row increments, so runs are **not** reproducible; metrics land
    /// within run-to-run noise of the exact path (asserted in
    /// `tests/pool.rs`). Only backbones whose final embeddings are their
    /// parameters (plain MF, cosine scoring) support it; anything else
    /// falls back to [`SyncMode::Exact`] with a warning. Ignored at
    /// `threads = 1`.
    Hogwild,
}

/// Full training configuration; serializable so experiment harnesses can
/// log the exact setup alongside results.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Backbone model.
    pub backbone: BackboneConfig,
    /// Ranking loss.
    pub loss: LossConfig,
    /// Negative sampling strategy.
    pub sampling: SamplingConfig,
    /// Base embedding dimensionality (paper default: 64).
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Negatives per positive row (ignored by [`SamplingConfig::InBatch`]).
    pub negatives: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization coefficient.
    pub l2: f32,
    /// Evaluate every this many epochs (also drives early stopping).
    pub eval_every: usize,
    /// Stop after this many evaluations without NDCG improvement
    /// (`0` disables early stopping).
    pub patience: usize,
    /// RNG seed for init, shuffling and sampling.
    pub seed: u64,
    /// Worker threads for batch sampling and the trainer step
    /// (`0` = auto: one per available core).
    ///
    /// * `threads == 1` runs the fully serial path, bit-identical to the
    ///   historical single-threaded trainer.
    /// * `threads > 1` runs the persistent execution engine
    ///   ([`crate::engine`]): negative sampling is sharded across that
    ///   many long-lived [`bsl_sampling::SamplerPool`] workers and each
    ///   step's score/gradient passes are fed as per-batch jobs to the
    ///   same number of pooled compute workers (spawned once per
    ///   `Trainer`), merging per-shard batch-footprint gradient buffers
    ///   in a fixed order before the optimizer step — unless
    ///   [`TrainConfig::sync`] selects Hogwild in-place updates.
    ///
    /// **Determinism semantics:** results are deterministic per
    /// `(seed, threads)` — re-running the same config replays the run
    /// exactly — but they are *not* bit-identical across different
    /// thread counts, because sampling shards draw from split RNG
    /// streams and f32 gradient reduction follows the shard layout.
    /// Treat a change of `threads` like a change of `seed`: metrics stay
    /// within run-to-run noise, individual bits do not.
    pub threads: usize,
    /// How multi-threaded workers synchronize gradients (see
    /// [`SyncMode`]); irrelevant when the effective thread count is 1.
    pub sync: SyncMode,
}

impl TrainConfig {
    /// The paper's default protocol: MF + SL, uniform sampling, dim 64.
    pub fn paper_default() -> Self {
        Self {
            backbone: BackboneConfig::Mf,
            loss: LossConfig::Sl { tau: 0.1 },
            sampling: SamplingConfig::Uniform,
            dim: 64,
            epochs: 60,
            batch_size: 1024,
            negatives: 200,
            lr: 1e-2,
            l2: 1e-6,
            eval_every: 5,
            patience: 4,
            seed: 0,
            threads: 1,
            sync: SyncMode::Exact,
        }
    }

    /// A fast configuration for unit/integration tests and doc examples.
    pub fn smoke() -> Self {
        Self {
            backbone: BackboneConfig::Mf,
            loss: LossConfig::Sl { tau: 0.15 },
            sampling: SamplingConfig::Uniform,
            dim: 16,
            epochs: 8,
            batch_size: 256,
            negatives: 16,
            lr: 2e-2,
            l2: 1e-6,
            eval_every: 2,
            patience: 0,
            seed: 0,
            threads: 1,
            sync: SyncMode::Exact,
        }
    }

    /// The effective worker count: `threads`, or one per available core
    /// when `threads == 0`.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Human-readable label `"<backbone>+<loss>"` for result tables.
    pub fn label(&self) -> String {
        let loss = match self.loss {
            LossConfig::Bpr => "BPR".to_string(),
            LossConfig::Bce { .. } => "BCE".to_string(),
            LossConfig::Mse { .. } => "MSE".to_string(),
            LossConfig::Sl { .. } => "SL".to_string(),
            LossConfig::Bsl { .. } => "BSL".to_string(),
            LossConfig::Ccl { .. } => "CCL".to_string(),
            LossConfig::Hinge { .. } => "Hinge".to_string(),
            LossConfig::TaylorSl { with_variance, .. } => {
                if with_variance {
                    "TaylorSL+V".to_string()
                } else {
                    "TaylorSL-V".to_string()
                }
            }
        };
        format!("{}+{}", self.backbone.label(), loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_compose() {
        let cfg =
            TrainConfig { loss: LossConfig::Bsl { tau1: 0.2, tau2: 0.1 }, ..TrainConfig::smoke() };
        assert_eq!(cfg.label(), "MF+BSL");
        let cfg = TrainConfig {
            backbone: BackboneConfig::LightGcn { layers: 3 },
            loss: LossConfig::Bpr,
            ..TrainConfig::smoke()
        };
        assert_eq!(cfg.label(), "LGN+BPR");
    }

    #[test]
    fn defaults_are_sane() {
        let p = TrainConfig::paper_default();
        assert_eq!(p.dim, 64);
        assert!(p.epochs > 0 && p.batch_size > 0 && p.negatives > 0);
        let s = TrainConfig::smoke();
        assert!(s.epochs < p.epochs);
        // Both defaults pin the bit-exact serial path.
        assert_eq!(p.threads, 1);
        assert_eq!(s.threads, 1);
    }

    #[test]
    fn resolved_threads_expands_auto() {
        let explicit = TrainConfig { threads: 3, ..TrainConfig::smoke() };
        assert_eq!(explicit.resolved_threads(), 3);
        let auto = TrainConfig { threads: 0, ..TrainConfig::smoke() };
        assert!(auto.resolved_threads() >= 1);
    }
}
