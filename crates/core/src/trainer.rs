//! The training loop: backbone × loss × sampler × optimizer × evaluation.

use crate::config::{SamplingConfig, SyncMode, TrainConfig};
use crate::engine::{Engine, HogwildView, Job, WorkerPool};
use bsl_data::Dataset;
use bsl_eval::{evaluate_artifact, EvalReport};
use bsl_linalg::kernels::{axpy, cosine_backward_into, dot, normalize_into, sq_dist};
use bsl_linalg::simd::{cosine_backward_block, normalize_gather_into, scores_block};
use bsl_linalg::Matrix;
use bsl_losses::{build as build_loss, RankingLoss, ScoreBatch};
use bsl_models::{
    build as build_backbone, Backbone, EvalScore, GradBuffer, Hyper, ModelArtifact, ShardGrad,
    TrainScore,
};
use bsl_opt::sgd_step_row;
use bsl_sampling::{
    BatchIter, NegativeSampler, NoisySampler, PopularitySampler, TrainBatch, UniformSampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// The cutoffs every training run evaluates (Fig 7's @5/@10/@15 plus the
/// paper's headline @20).
pub const EVAL_KS: [usize; 4] = [5, 10, 15, 20];

/// Loss statistics of one epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean main-loss value over batches.
    pub loss: f64,
    /// Mean auxiliary (self-supervised) loss over batches.
    pub aux_loss: f64,
}

/// Result of a training run.
pub struct TrainOutcome {
    /// Final user embeddings at the best evaluation (raw, un-prepared —
    /// experiment harnesses inspect these; retrieval goes through
    /// [`artifact`](TrainOutcome::artifact)).
    pub user_emb: Matrix,
    /// Final item embeddings at the best evaluation.
    pub item_emb: Matrix,
    /// The backbone's test-time score function.
    pub eval_score: EvalScore,
    /// The frozen, servable export of the best epoch's embeddings:
    /// normalization / distance augmentation already applied, so repeated
    /// evaluations and serving never repay preparation. Save it with
    /// [`ModelArtifact::save`], serve it with `bsl_serve::Recommender`.
    pub artifact: ModelArtifact,
    /// The best evaluation report (by NDCG@20).
    pub best: EvalReport,
    /// Epoch (0-based) of the best evaluation.
    pub best_epoch: usize,
    /// Per-epoch loss statistics.
    pub history: Vec<EpochStats>,
    /// `(epoch, NDCG@20)` at each evaluation point.
    pub eval_history: Vec<(usize, f64)>,
}

impl TrainOutcome {
    /// Re-evaluates the stored best model on `ds` at the cutoffs `ks` —
    /// used by experiments that need metrics on a different split or at
    /// different cutoffs than the training loop recorded. Ranks through
    /// the pre-prepared [`artifact`](TrainOutcome::artifact), so repeated
    /// calls pay no per-call normalization.
    pub fn evaluate_on(&self, ds: &Dataset, ks: &[usize]) -> EvalReport {
        evaluate_artifact(ds, &self.artifact, ks)
    }
}

/// Trains a backbone with a ranking loss on a dataset.
pub struct Trainer {
    cfg: TrainConfig,
    /// Persistent execution engine (compute worker pool + sampling shard
    /// workers), created lazily on the first multi-threaded fit and then
    /// reused for every batch, epoch, and subsequent fit of this trainer
    /// — no per-batch or per-epoch thread spawning.
    engine: OnceLock<Engine>,
}

/// Contiguous row ranges splitting `n` rows across at most `k` workers
/// (fewer when `n < k`; never empty ranges).
fn row_chunks(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let k = k.min(n).max(1);
    let chunk = n.div_ceil(k);
    (0..n).step_by(chunk.max(1)).map(|s| s..(s + chunk).min(n)).collect()
}

/// One Hogwild read-modify-write: load `row` into `buf`, apply a plain-SGD
/// update with coupled L2 on the local copy, store it back. Concurrent
/// callers updating the same row may overwrite each other's increments —
/// the approximation Hogwild accepts for lock-freedom.
fn hogwild_apply(view: &HogwildView, row: u32, grad: &[f32], buf: &mut [f32], hp: Hyper) {
    view.load_row(row as usize, buf);
    sgd_step_row(buf, grad, hp.lr, hp.l2);
    view.store_row(row as usize, buf);
}

/// Reusable step scratch: unit vectors, norms, scores and the in-batch
/// similarity matrix, all as flat row-major buffers. Sizing is
/// grow-only (every consumer slices the exact `[..b*…]` extent it needs),
/// so after the first full-sized batch no step re-zeroes or reallocates —
/// trailing partial batches and later epochs reuse the same storage.
///
/// `neg_hat`/`neg_norms` cache every negative's unit vector for the whole
/// batch (`B·m·d` floats) so the gradient pass reuses them instead of
/// re-normalizing — the blocked kernels then see contiguous item blocks.
/// They are only sized on the cosine scoring path; distance-scored
/// backbones (CML) never touch them.
#[derive(Default)]
struct StepScratch {
    /// Unit user vectors, `B × d` flat.
    user_hat: Vec<f32>,
    user_norm: Vec<f32>,
    /// Unit positive-item vectors, `B × d` flat.
    pos_hat: Vec<f32>,
    pos_norm: Vec<f32>,
    pos_scores: Vec<f32>,
    neg_scores: Vec<f32>,
    /// Unit negative-item vectors, `B × m × d` flat (sampled path only).
    neg_hat: Vec<f32>,
    neg_norms: Vec<f32>,
    /// `B × B` cosine similarities (in-batch path only).
    sims: Vec<f32>,
}

/// Grows `v` to at least `n` elements (never shrinks).
fn grow(v: &mut Vec<f32>, n: usize) {
    if v.len() < n {
        v.resize(n, 0.0);
    }
}

impl StepScratch {
    fn ensure_sampled(&mut self, b: usize, m: usize, d: usize, cache_negs: bool) {
        grow(&mut self.user_hat, b * d);
        grow(&mut self.user_norm, b);
        grow(&mut self.pos_hat, b * d);
        grow(&mut self.pos_norm, b);
        grow(&mut self.pos_scores, b);
        grow(&mut self.neg_scores, b * m);
        if cache_negs {
            grow(&mut self.neg_hat, b * m * d);
            grow(&mut self.neg_norms, b * m);
        }
    }

    fn ensure_in_batch(&mut self, b: usize, d: usize) {
        grow(&mut self.user_hat, b * d);
        grow(&mut self.user_norm, b);
        grow(&mut self.pos_hat, b * d);
        grow(&mut self.pos_norm, b);
        grow(&mut self.pos_scores, b);
        grow(&mut self.neg_scores, b * (b - 1));
        grow(&mut self.sims, b * b);
    }
}

/// Pass 1 of the pooled *sampled* step, shared verbatim by the exact
/// ([`Trainer::step_sampled_par`]) and Hogwild paths: sizes the scratch,
/// then scores row-sharded into disjoint scratch slices — each shard
/// normalizes its negative blocks once (cached for pass 2) and scores
/// them with blocked matvecs. The distance-scored path carves empty
/// `nh`/`nn` slices; it never reads them. One pool job per chunk replaces
/// the old scoped-thread spawn round.
#[allow(clippy::too_many_arguments)] // the pass mirrors the step state
fn pass1_sampled_scores(
    pool: &WorkerPool,
    chunks: &[std::ops::Range<usize>],
    batch: &TrainBatch,
    users: &Matrix,
    items: &Matrix,
    score_kind: TrainScore,
    scratch: &mut StepScratch,
    b: usize,
    m: usize,
    d: usize,
) {
    let cache_negs = score_kind == TrainScore::Cosine;
    scratch.ensure_sampled(b, m, d, cache_negs);
    let mut jobs: Vec<Job> = Vec::with_capacity(chunks.len());
    let mut uh_rest = &mut scratch.user_hat[..b * d];
    let mut un_rest = &mut scratch.user_norm[..b];
    let mut ph_rest = &mut scratch.pos_hat[..b * d];
    let mut pn_rest = &mut scratch.pos_norm[..b];
    let mut ps_rest = &mut scratch.pos_scores[..b];
    let mut ns_rest = &mut scratch.neg_scores[..b * m];
    let mut nh_rest: &mut [f32] =
        if cache_negs { &mut scratch.neg_hat[..b * m * d] } else { &mut [] };
    let mut nn_rest: &mut [f32] =
        if cache_negs { &mut scratch.neg_norms[..b * m] } else { &mut [] };
    for range in chunks {
        let rows = range.len();
        let (uh, r) = std::mem::take(&mut uh_rest).split_at_mut(rows * d);
        uh_rest = r;
        let (un, r) = std::mem::take(&mut un_rest).split_at_mut(rows);
        un_rest = r;
        let (ph, r) = std::mem::take(&mut ph_rest).split_at_mut(rows * d);
        ph_rest = r;
        let (pn, r) = std::mem::take(&mut pn_rest).split_at_mut(rows);
        pn_rest = r;
        let (ps, r) = std::mem::take(&mut ps_rest).split_at_mut(rows);
        ps_rest = r;
        let (ns, r) = std::mem::take(&mut ns_rest).split_at_mut(rows * m);
        ns_rest = r;
        let (nh, r) =
            std::mem::take(&mut nh_rest).split_at_mut(if cache_negs { rows * m * d } else { 0 });
        nh_rest = r;
        let (nn, r) =
            std::mem::take(&mut nn_rest).split_at_mut(if cache_negs { rows * m } else { 0 });
        nn_rest = r;
        let range = range.clone();
        jobs.push(Box::new(move || {
            for (li, row) in range.enumerate() {
                let u = batch.users[row] as usize;
                let i = batch.pos[row] as usize;
                match score_kind {
                    TrainScore::Cosine => {
                        un[li] = normalize_into(users.row(u), &mut uh[li * d..(li + 1) * d]);
                        pn[li] = normalize_into(items.row(i), &mut ph[li * d..(li + 1) * d]);
                        ps[li] = dot(&uh[li * d..(li + 1) * d], &ph[li * d..(li + 1) * d]);
                        normalize_gather_into(
                            items,
                            batch.negs_of(row),
                            &mut nh[li * m * d..(li + 1) * m * d],
                            &mut nn[li * m..(li + 1) * m],
                        );
                        scores_block(
                            &uh[li * d..(li + 1) * d],
                            &nh[li * m * d..(li + 1) * m * d],
                            &mut ns[li * m..(li + 1) * m],
                        );
                    }
                    TrainScore::NegSqDist => {
                        ps[li] = -sq_dist(users.row(u), items.row(i));
                        for (jj, &j) in batch.negs_of(row).iter().enumerate() {
                            ns[li * m + jj] = -sq_dist(users.row(u), items.row(j as usize));
                        }
                    }
                }
            }
        }));
    }
    pool.run(jobs);
}

/// Pass 1 of the pooled *in-batch* step, shared verbatim by the exact
/// ([`Trainer::step_in_batch_par`]) and Hogwild paths: sizes the scratch,
/// gather-normalizes each row's user and positive item (row-sharded
/// blocked gathers; `pos_hat`/`pos_norm` hold the item side), then fills
/// the full `B × B` similarity matrix `S[a][c] = cos(user_a, item_c)` by
/// row chunks — every worker reads all of the item block, one blocked
/// matvec per user row.
#[allow(clippy::too_many_arguments)] // the pass mirrors the step state
fn pass1_in_batch_scores(
    pool: &WorkerPool,
    chunks: &[std::ops::Range<usize>],
    batch: &TrainBatch,
    users: &Matrix,
    items: &Matrix,
    scratch: &mut StepScratch,
    b: usize,
    d: usize,
) {
    scratch.ensure_in_batch(b, d);
    {
        let mut jobs: Vec<Job> = Vec::with_capacity(chunks.len());
        let mut uh_rest = &mut scratch.user_hat[..b * d];
        let mut ih_rest = &mut scratch.pos_hat[..b * d];
        let mut un_rest = &mut scratch.user_norm[..b];
        let mut in_rest = &mut scratch.pos_norm[..b];
        for range in chunks {
            let rows = range.len();
            let (uh, r) = std::mem::take(&mut uh_rest).split_at_mut(rows * d);
            uh_rest = r;
            let (ih, r) = std::mem::take(&mut ih_rest).split_at_mut(rows * d);
            ih_rest = r;
            let (un, r) = std::mem::take(&mut un_rest).split_at_mut(rows);
            un_rest = r;
            let (inorm, r) = std::mem::take(&mut in_rest).split_at_mut(rows);
            in_rest = r;
            let range = range.clone();
            jobs.push(Box::new(move || {
                normalize_gather_into(users, &batch.users[range.clone()], uh, un);
                normalize_gather_into(items, &batch.pos[range], ih, inorm);
            }));
        }
        pool.run(jobs);
    }
    {
        let mut jobs: Vec<Job> = Vec::with_capacity(chunks.len());
        let user_hat = &scratch.user_hat;
        let item_hat = &scratch.pos_hat[..b * d];
        let mut s_rest = &mut scratch.sims[..b * b];
        for range in chunks {
            let (srows, r) = std::mem::take(&mut s_rest).split_at_mut(range.len() * b);
            s_rest = r;
            let range = range.clone();
            jobs.push(Box::new(move || {
                for (li, a) in range.enumerate() {
                    scores_block(
                        &user_hat[a * d..(a + 1) * d],
                        item_hat,
                        &mut srows[li * b..(li + 1) * b],
                    );
                }
            }));
        }
        pool.run(jobs);
    }
}

impl Trainer {
    /// Creates a trainer for `cfg`. Worker threads (for
    /// `cfg.threads != 1`) are spawned lazily on the first fit and reused
    /// by every later fit of this trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Self { cfg, engine: OnceLock::new() }
    }

    /// The configuration this trainer runs.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Builds the configured backbone and trains it on `ds`.
    pub fn fit(&self, ds: &Arc<Dataset>) -> TrainOutcome {
        let mut backbone = build_backbone(self.cfg.backbone, ds, self.cfg.dim, self.cfg.seed);
        self.fit_backbone(ds, backbone.as_mut())
    }

    /// Trains a caller-provided backbone (for custom models or warm
    /// starts).
    pub fn fit_backbone(&self, ds: &Arc<Dataset>, backbone: &mut dyn Backbone) -> TrainOutcome {
        let cfg = &self.cfg;
        assert!(cfg.epochs > 0, "epochs must be positive");
        assert!(cfg.eval_every > 0, "eval_every must be positive");
        let loss = build_loss(cfg.loss);
        let sampler: Arc<dyn NegativeSampler> = match cfg.sampling {
            SamplingConfig::Uniform | SamplingConfig::InBatch => {
                Arc::new(UniformSampler::new(ds.clone()))
            }
            SamplingConfig::Popularity { alpha } => {
                Arc::new(PopularitySampler::new(ds.clone(), alpha))
            }
            SamplingConfig::Noisy { r_noise } => Arc::new(NoisySampler::new(ds.clone(), r_noise)),
        };
        let in_batch = cfg.sampling == SamplingConfig::InBatch;
        // In-batch rows carry B−1 negatives each; the sampler's draws are
        // discarded, so sample the minimum.
        let m = if in_batch { 1 } else { cfg.negatives };

        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xB5F0_0B5F);
        // `threads == 1` must stay bit-identical to the historical serial
        // trainer, so the persistent engine only exists when threads > 1.
        let n_threads = cfg.resolved_threads();
        let engine: Option<&Engine> = if n_threads > 1 {
            Some(self.engine.get_or_init(|| Engine::new(n_threads)))
        } else {
            None
        };
        // Hogwild needs raw in-place-updatable parameters and cosine
        // scoring; anything else falls back to the exact sharded path.
        let hogwild = match cfg.sync {
            SyncMode::Exact => false,
            SyncMode::Hogwild => {
                if n_threads <= 1 {
                    false
                } else if backbone.train_score() != TrainScore::Cosine
                    || backbone.params_mut().is_none()
                {
                    eprintln!(
                        "sync: Hogwild unsupported for backbone {} — \
                         falling back to exact sharded updates",
                        backbone.name()
                    );
                    false
                } else {
                    true
                }
            }
        };
        // Per-worker gradient shards are sized to the batch footprint
        // (grow-only sparse row maps), never to the catalogue.
        let mut shard_grads: Vec<ShardGrad> = if n_threads > 1 && !hogwild {
            (0..n_threads).map(|_| ShardGrad::new(backbone.out_dim())).collect()
        } else {
            Vec::new()
        };
        // The merged accumulator the optimizer consumes — dense, but only
        // the exact paths need it; Hogwild updates in place and gets an
        // empty stand-in so nothing catalogue-sized is allocated.
        let mut grads = if hogwild {
            GradBuffer::new(0, 0, backbone.out_dim())
        } else {
            GradBuffer::new(ds.n_users, ds.n_items, backbone.out_dim())
        };
        let hyper = Hyper { lr: cfg.lr, l2: cfg.l2 };
        let mut scratch = StepScratch::default();

        let mut history = Vec::new();
        let mut eval_history = Vec::new();
        let mut best_ndcg = f64::NEG_INFINITY;
        let mut best: Option<(EvalReport, Matrix, Matrix, usize, ModelArtifact)> = None;
        let mut stale = 0usize;

        'training: for epoch in 0..cfg.epochs {
            let mut loss_sum = 0.0f64;
            let mut aux_sum = 0.0f64;
            let mut n_batches = 0usize;
            let epoch_seed = cfg.seed.wrapping_add(1 + epoch as u64);
            // Persistent sampling shards (threads > 1) overlap negative
            // drawing with the gradient work below without spawning any
            // thread; threads == 1 is the serial BatchIter.
            let batches: Box<dyn Iterator<Item = TrainBatch> + '_> = match engine {
                Some(e) => {
                    Box::new(e.samplers().start_epoch(ds, &sampler, cfg.batch_size, m, epoch_seed))
                }
                None => {
                    Box::new(BatchIter::new(ds, sampler.as_ref(), cfg.batch_size, m, epoch_seed))
                }
            };
            for batch in batches {
                if in_batch && batch.len() < 2 {
                    continue; // a single row has no in-batch negatives
                }
                backbone.forward(&mut rng);
                let (l, aux) = match (in_batch, engine) {
                    (true, Some(e)) if hogwild => self.step_in_batch_hogwild(
                        backbone,
                        loss.as_ref(),
                        &batch,
                        &mut scratch,
                        hyper,
                        e.pool(),
                    ),
                    (false, Some(e)) if hogwild => self.step_sampled_hogwild(
                        backbone,
                        loss.as_ref(),
                        &batch,
                        &mut scratch,
                        hyper,
                        e.pool(),
                    ),
                    (true, None) => self.step_in_batch(
                        backbone,
                        loss.as_ref(),
                        &batch,
                        &mut grads,
                        &mut scratch,
                        hyper,
                        &mut rng,
                    ),
                    (true, Some(e)) => self.step_in_batch_par(
                        backbone,
                        loss.as_ref(),
                        &batch,
                        &mut grads,
                        &mut shard_grads,
                        &mut scratch,
                        hyper,
                        &mut rng,
                        e.pool(),
                    ),
                    (false, None) => self.step_sampled(
                        backbone,
                        loss.as_ref(),
                        &batch,
                        &mut grads,
                        &mut scratch,
                        hyper,
                        &mut rng,
                    ),
                    (false, Some(e)) => self.step_sampled_par(
                        backbone,
                        loss.as_ref(),
                        &batch,
                        &mut grads,
                        &mut shard_grads,
                        &mut scratch,
                        hyper,
                        &mut rng,
                        e.pool(),
                    ),
                };
                loss_sum += l;
                aux_sum += aux;
                n_batches += 1;
            }
            let denom = n_batches.max(1) as f64;
            history.push(EpochStats { epoch, loss: loss_sum / denom, aux_loss: aux_sum / denom });

            if (epoch + 1) % cfg.eval_every == 0 || epoch + 1 == cfg.epochs {
                backbone.forward(&mut rng);
                // Freeze the epoch's embeddings and rank through the
                // artifact — the same prepared tables serving would use.
                let artifact = backbone.export();
                let report = evaluate_artifact(ds, &artifact, &EVAL_KS);
                let ndcg = report.ndcg(20);
                eval_history.push((epoch, ndcg));
                if ndcg > best_ndcg {
                    best_ndcg = ndcg;
                    best = Some((
                        report,
                        backbone.user_factors().clone(),
                        backbone.item_factors().clone(),
                        epoch,
                        artifact,
                    ));
                    stale = 0;
                } else {
                    stale += 1;
                    if cfg.patience > 0 && stale >= cfg.patience {
                        break 'training;
                    }
                }
            }
        }

        let (best, user_emb, item_emb, best_epoch, artifact) =
            best.expect("at least one evaluation ran (final epoch always evaluates)");
        TrainOutcome {
            user_emb,
            item_emb,
            eval_score: backbone.eval_score(),
            artifact,
            best,
            best_epoch,
            history,
            eval_history,
        }
    }

    /// One optimizer step with explicitly-sampled negatives.
    ///
    /// Pass 1 normalizes each row's negatives into a contiguous `m × d`
    /// block (cached in `scratch` for pass 2, so every negative is
    /// normalized exactly once) and scores it with one blocked matvec;
    /// pass 2 chains the user-side gradient through one
    /// [`cosine_backward_block`] per row.
    #[allow(clippy::too_many_arguments)] // the step signature mirrors the trainer state
    fn step_sampled(
        &self,
        backbone: &mut dyn Backbone,
        loss: &dyn RankingLoss,
        batch: &TrainBatch,
        grads: &mut GradBuffer,
        scratch: &mut StepScratch,
        hyper: Hyper,
        rng: &mut StdRng,
    ) -> (f64, f64) {
        let b = batch.len();
        let m = batch.m;
        let d = backbone.out_dim();
        let score_kind = backbone.train_score();
        let users = backbone.user_factors();
        let items = backbone.item_factors();
        scratch.ensure_sampled(b, m, d, score_kind == TrainScore::Cosine);

        // Pass 1 — scores.
        for row in 0..b {
            let u = batch.users[row] as usize;
            let i = batch.pos[row] as usize;
            match score_kind {
                TrainScore::Cosine => {
                    scratch.user_norm[row] =
                        normalize_into(users.row(u), &mut scratch.user_hat[row * d..(row + 1) * d]);
                    scratch.pos_norm[row] =
                        normalize_into(items.row(i), &mut scratch.pos_hat[row * d..(row + 1) * d]);
                    scratch.pos_scores[row] = dot(
                        &scratch.user_hat[row * d..(row + 1) * d],
                        &scratch.pos_hat[row * d..(row + 1) * d],
                    );
                    normalize_gather_into(
                        items,
                        batch.negs_of(row),
                        &mut scratch.neg_hat[row * m * d..(row + 1) * m * d],
                        &mut scratch.neg_norms[row * m..(row + 1) * m],
                    );
                    scores_block(
                        &scratch.user_hat[row * d..(row + 1) * d],
                        &scratch.neg_hat[row * m * d..(row + 1) * m * d],
                        &mut scratch.neg_scores[row * m..(row + 1) * m],
                    );
                }
                TrainScore::NegSqDist => {
                    scratch.pos_scores[row] = -sq_dist(users.row(u), items.row(i));
                    for (jj, &j) in batch.negs_of(row).iter().enumerate() {
                        scratch.neg_scores[row * m + jj] =
                            -sq_dist(users.row(u), items.row(j as usize));
                    }
                }
            }
        }

        let out = loss.compute(&ScoreBatch::new(
            &scratch.pos_scores[..b],
            &scratch.neg_scores[..b * m],
            m,
        ));

        // Pass 2 — chain score gradients into embedding gradients.
        for row in 0..b {
            let u = batch.users[row];
            let i = batch.pos[row];
            match score_kind {
                TrainScore::Cosine => {
                    let uhat = &scratch.user_hat[row * d..(row + 1) * d];
                    let ihat = &scratch.pos_hat[row * d..(row + 1) * d];
                    let g = out.grad_pos[row];
                    let s = scratch.pos_scores[row];
                    cosine_backward_into(
                        g,
                        s,
                        uhat,
                        ihat,
                        scratch.user_norm[row],
                        grads.user_row_mut(u),
                    );
                    cosine_backward_into(
                        g,
                        s,
                        ihat,
                        uhat,
                        scratch.pos_norm[row],
                        grads.item_row_mut(i),
                    );
                    let gs = &out.grad_neg[row * m..(row + 1) * m];
                    let ss = &scratch.neg_scores[row * m..(row + 1) * m];
                    let nh = &scratch.neg_hat[row * m * d..(row + 1) * m * d];
                    let nn = &scratch.neg_norms[row * m..(row + 1) * m];
                    cosine_backward_block(
                        gs,
                        ss,
                        uhat,
                        scratch.user_norm[row],
                        nh,
                        grads.user_row_mut(u),
                    );
                    for (jj, &j) in batch.negs_of(row).iter().enumerate() {
                        let g = gs[jj];
                        if g == 0.0 {
                            continue;
                        }
                        cosine_backward_into(
                            g,
                            ss[jj],
                            &nh[jj * d..(jj + 1) * d],
                            uhat,
                            nn[jj],
                            grads.item_row_mut(j),
                        );
                    }
                }
                TrainScore::NegSqDist => {
                    // s = −||u−i||² ⇒ ∂s/∂u = 2(i−u), ∂s/∂i = 2(u−i).
                    let urow = users.row(u as usize);
                    let apply = |g: f32, item: u32, grads: &mut GradBuffer| {
                        if g == 0.0 {
                            return;
                        }
                        let irow = items.row(item as usize);
                        {
                            let gu = grads.user_row_mut(u);
                            axpy(2.0 * g, irow, gu);
                            axpy(-2.0 * g, urow, gu);
                        }
                        {
                            let gi = grads.item_row_mut(item);
                            axpy(2.0 * g, urow, gi);
                            axpy(-2.0 * g, irow, gi);
                        }
                    };
                    apply(out.grad_pos[row], i, grads);
                    for (jj, &j) in batch.negs_of(row).iter().enumerate() {
                        apply(out.grad_neg[row * m + jj], j, grads);
                    }
                }
            }
        }

        let aux = backbone.step(grads, &batch.users, &batch.pos, hyper, rng);
        grads.clear();
        (out.loss, aux)
    }

    /// The sharded counterpart of [`Trainer::step_sampled`]: pass-1
    /// scoring and pass-2 gradient accumulation run as per-batch work
    /// items on the persistent [`WorkerPool`] over contiguous row chunks,
    /// one private batch-footprint [`ShardGrad`] per shard, merged in
    /// shard order before the optimizer step. The math is identical to
    /// the serial step; only the f32 reduction order of gradient rows
    /// shared between shards differs, so results are deterministic for a
    /// fixed `(seed, threads)` pair.
    #[allow(clippy::too_many_arguments)] // mirrors step_sampled + the shard buffers
    fn step_sampled_par(
        &self,
        backbone: &mut dyn Backbone,
        loss: &dyn RankingLoss,
        batch: &TrainBatch,
        grads: &mut GradBuffer,
        shard_grads: &mut [ShardGrad],
        scratch: &mut StepScratch,
        hyper: Hyper,
        rng: &mut StdRng,
        pool: &WorkerPool,
    ) -> (f64, f64) {
        let b = batch.len();
        let m = batch.m;
        let d = backbone.out_dim();
        let score_kind = backbone.train_score();
        let users = backbone.user_factors();
        let items = backbone.item_factors();
        let chunks = row_chunks(b, shard_grads.len());
        pass1_sampled_scores(pool, &chunks, batch, users, items, score_kind, scratch, b, m, d);

        let out = loss.compute(&ScoreBatch::new(
            &scratch.pos_scores[..b],
            &scratch.neg_scores[..b * m],
            m,
        ));

        // Pass 2 — chain score gradients into per-shard embedding
        // gradients (private batch-footprint buffers, no write
        // contention); negative unit vectors come from the pass-1 cache.
        {
            let mut jobs: Vec<Job> = Vec::with_capacity(chunks.len());
            let out = &out;
            let user_hat = &scratch.user_hat;
            let user_norm = &scratch.user_norm;
            let pos_hat = &scratch.pos_hat;
            let pos_norm = &scratch.pos_norm;
            let pos_scores = &scratch.pos_scores;
            let neg_scores = &scratch.neg_scores;
            let neg_hat = &scratch.neg_hat;
            let neg_norms = &scratch.neg_norms;
            for (range, gbuf) in chunks.iter().zip(shard_grads.iter_mut()) {
                let range = range.clone();
                jobs.push(Box::new(move || {
                    for row in range {
                        let u = batch.users[row];
                        let i = batch.pos[row];
                        match score_kind {
                            TrainScore::Cosine => {
                                let uhat = &user_hat[row * d..(row + 1) * d];
                                let ihat = &pos_hat[row * d..(row + 1) * d];
                                let g = out.grad_pos[row];
                                let s = pos_scores[row];
                                cosine_backward_into(
                                    g,
                                    s,
                                    uhat,
                                    ihat,
                                    user_norm[row],
                                    gbuf.user_row_mut(u),
                                );
                                cosine_backward_into(
                                    g,
                                    s,
                                    ihat,
                                    uhat,
                                    pos_norm[row],
                                    gbuf.item_row_mut(i),
                                );
                                let gs = &out.grad_neg[row * m..(row + 1) * m];
                                let ss = &neg_scores[row * m..(row + 1) * m];
                                let nh = &neg_hat[row * m * d..(row + 1) * m * d];
                                let nn = &neg_norms[row * m..(row + 1) * m];
                                cosine_backward_block(
                                    gs,
                                    ss,
                                    uhat,
                                    user_norm[row],
                                    nh,
                                    gbuf.user_row_mut(u),
                                );
                                for (jj, &j) in batch.negs_of(row).iter().enumerate() {
                                    let g = gs[jj];
                                    if g == 0.0 {
                                        continue;
                                    }
                                    cosine_backward_into(
                                        g,
                                        ss[jj],
                                        &nh[jj * d..(jj + 1) * d],
                                        uhat,
                                        nn[jj],
                                        gbuf.item_row_mut(j),
                                    );
                                }
                            }
                            TrainScore::NegSqDist => {
                                let urow = users.row(u as usize);
                                let apply = |g: f32, item: u32, gbuf: &mut ShardGrad| {
                                    if g == 0.0 {
                                        return;
                                    }
                                    let irow = items.row(item as usize);
                                    {
                                        let gu = gbuf.user_row_mut(u);
                                        axpy(2.0 * g, irow, gu);
                                        axpy(-2.0 * g, urow, gu);
                                    }
                                    {
                                        let gi = gbuf.item_row_mut(item);
                                        axpy(2.0 * g, urow, gi);
                                        axpy(-2.0 * g, irow, gi);
                                    }
                                };
                                apply(out.grad_pos[row], i, gbuf);
                                for (jj, &j) in batch.negs_of(row).iter().enumerate() {
                                    apply(out.grad_neg[row * m + jj], j, gbuf);
                                }
                            }
                        }
                    }
                }));
            }
            pool.run(jobs);
        }

        // Fixed shard merge order keeps runs deterministic per thread
        // count.
        for sg in shard_grads.iter_mut() {
            sg.merge_into(grads);
            sg.clear();
        }
        let aux = backbone.step(grads, &batch.users, &batch.pos, hyper, rng);
        grads.clear();
        (out.loss, aux)
    }

    /// One optimizer step with in-batch shared negatives: row `b`'s
    /// negatives are the other rows' positive items (paper Table V).
    ///
    /// Normalization is one blocked gather per side, every similarity row
    /// is one blocked matvec, and the user-side backward runs
    /// [`cosine_backward_block`] on the two contiguous item-block halves
    /// on either side of the diagonal.
    #[allow(clippy::too_many_arguments)] // the step signature mirrors the trainer state
    fn step_in_batch(
        &self,
        backbone: &mut dyn Backbone,
        loss: &dyn RankingLoss,
        batch: &TrainBatch,
        grads: &mut GradBuffer,
        scratch: &mut StepScratch,
        hyper: Hyper,
        rng: &mut StdRng,
    ) -> (f64, f64) {
        let b = batch.len();
        let m = b - 1;
        let d = backbone.out_dim();
        debug_assert_eq!(backbone.train_score(), TrainScore::Cosine, "in-batch assumes cosine");
        let users = backbone.user_factors();
        let items = backbone.item_factors();
        scratch.ensure_in_batch(b, d);

        // Normalize each row's user and positive item once (blocked
        // gather; `pos_hat`/`pos_norm` hold the item side).
        normalize_gather_into(
            users,
            &batch.users,
            &mut scratch.user_hat[..b * d],
            &mut scratch.user_norm[..b],
        );
        normalize_gather_into(
            items,
            &batch.pos,
            &mut scratch.pos_hat[..b * d],
            &mut scratch.pos_norm[..b],
        );
        // Full similarity matrix: S[a][c] = cos(user_a, item_c).
        for a in 0..b {
            scores_block(
                &scratch.user_hat[a * d..(a + 1) * d],
                &scratch.pos_hat[..b * d],
                &mut scratch.sims[a * b..(a + 1) * b],
            );
        }
        for a in 0..b {
            scratch.pos_scores[a] = scratch.sims[a * b + a];
            let mut jj = 0;
            for c in 0..b {
                if c != a {
                    scratch.neg_scores[a * m + jj] = scratch.sims[a * b + c];
                    jj += 1;
                }
            }
        }
        let out = loss.compute(&ScoreBatch::new(
            &scratch.pos_scores[..b],
            &scratch.neg_scores[..b * m],
            m,
        ));

        // Chain gradients back; the column item of slot (a, jj) is row c.
        for a in 0..b {
            let ua = &scratch.user_hat[a * d..(a + 1) * d];
            let ia = &scratch.pos_hat[a * d..(a + 1) * d];
            let g = out.grad_pos[a];
            let s = scratch.pos_scores[a];
            cosine_backward_into(
                g,
                s,
                ua,
                ia,
                scratch.user_norm[a],
                grads.user_row_mut(batch.users[a]),
            );
            cosine_backward_into(
                g,
                s,
                ia,
                ua,
                scratch.pos_norm[a],
                grads.item_row_mut(batch.pos[a]),
            );
            // Slots 0..a map to item rows 0..a and slots a.. to rows
            // a+1..b — two contiguous halves around the diagonal.
            let gs = &out.grad_neg[a * m..(a + 1) * m];
            let ss = &scratch.neg_scores[a * m..(a + 1) * m];
            cosine_backward_block(
                &gs[..a],
                &ss[..a],
                ua,
                scratch.user_norm[a],
                &scratch.pos_hat[..a * d],
                grads.user_row_mut(batch.users[a]),
            );
            cosine_backward_block(
                &gs[a..],
                &ss[a..],
                ua,
                scratch.user_norm[a],
                &scratch.pos_hat[(a + 1) * d..b * d],
                grads.user_row_mut(batch.users[a]),
            );
            let mut jj = 0;
            for c in 0..b {
                if c == a {
                    continue;
                }
                let g = gs[jj];
                let s = ss[jj];
                jj += 1;
                if g == 0.0 {
                    continue;
                }
                cosine_backward_into(
                    g,
                    s,
                    &scratch.pos_hat[c * d..(c + 1) * d],
                    ua,
                    scratch.pos_norm[c],
                    grads.item_row_mut(batch.pos[c]),
                );
            }
        }

        let aux = backbone.step(grads, &batch.users, &batch.pos, hyper, rng);
        grads.clear();
        (out.loss, aux)
    }

    /// The sharded counterpart of [`Trainer::step_in_batch`]: the `B × B`
    /// similarity matrix is computed by row chunks on the persistent
    /// [`WorkerPool`], and the gradient pass accumulates into per-shard
    /// batch-footprint buffers merged in shard order. A row's negatives
    /// touch *other* rows' positive items, so shards write overlapping
    /// item rows — private buffers plus the ordered merge keep that exact
    /// and deterministic per thread count.
    #[allow(clippy::too_many_arguments)] // mirrors step_in_batch + the shard buffers
    fn step_in_batch_par(
        &self,
        backbone: &mut dyn Backbone,
        loss: &dyn RankingLoss,
        batch: &TrainBatch,
        grads: &mut GradBuffer,
        shard_grads: &mut [ShardGrad],
        scratch: &mut StepScratch,
        hyper: Hyper,
        rng: &mut StdRng,
        pool: &WorkerPool,
    ) -> (f64, f64) {
        let b = batch.len();
        let m = b - 1;
        let d = backbone.out_dim();
        debug_assert_eq!(backbone.train_score(), TrainScore::Cosine, "in-batch assumes cosine");
        let users = backbone.user_factors();
        let items = backbone.item_factors();
        let chunks = row_chunks(b, shard_grads.len());
        pass1_in_batch_scores(pool, &chunks, batch, users, items, scratch, b, d);

        for a in 0..b {
            scratch.pos_scores[a] = scratch.sims[a * b + a];
            let mut jj = 0;
            for c in 0..b {
                if c != a {
                    scratch.neg_scores[a * m + jj] = scratch.sims[a * b + c];
                    jj += 1;
                }
            }
        }
        let out = loss.compute(&ScoreBatch::new(
            &scratch.pos_scores[..b],
            &scratch.neg_scores[..b * m],
            m,
        ));

        // Gradient pass, row-sharded into private buffers; the column item
        // of slot (a, jj) is row c, which may belong to another shard —
        // hence per-shard accumulation instead of in-place writes.
        {
            let mut jobs: Vec<Job> = Vec::with_capacity(chunks.len());
            let out = &out;
            let user_hat = &scratch.user_hat;
            let item_hat = &scratch.pos_hat;
            let user_norm = &scratch.user_norm;
            let item_norm = &scratch.pos_norm;
            let pos_scores = &scratch.pos_scores;
            let neg_scores = &scratch.neg_scores;
            for (range, gbuf) in chunks.iter().zip(shard_grads.iter_mut()) {
                let range = range.clone();
                jobs.push(Box::new(move || {
                    for a in range {
                        let ua = &user_hat[a * d..(a + 1) * d];
                        let ia = &item_hat[a * d..(a + 1) * d];
                        let g = out.grad_pos[a];
                        let s = pos_scores[a];
                        cosine_backward_into(
                            g,
                            s,
                            ua,
                            ia,
                            user_norm[a],
                            gbuf.user_row_mut(batch.users[a]),
                        );
                        cosine_backward_into(
                            g,
                            s,
                            ia,
                            ua,
                            item_norm[a],
                            gbuf.item_row_mut(batch.pos[a]),
                        );
                        // Two contiguous item-block halves around the
                        // diagonal (slots 0..a ↔ rows 0..a, a.. ↔ a+1..b).
                        let gs = &out.grad_neg[a * m..(a + 1) * m];
                        let ss = &neg_scores[a * m..(a + 1) * m];
                        cosine_backward_block(
                            &gs[..a],
                            &ss[..a],
                            ua,
                            user_norm[a],
                            &item_hat[..a * d],
                            gbuf.user_row_mut(batch.users[a]),
                        );
                        cosine_backward_block(
                            &gs[a..],
                            &ss[a..],
                            ua,
                            user_norm[a],
                            &item_hat[(a + 1) * d..b * d],
                            gbuf.user_row_mut(batch.users[a]),
                        );
                        let mut jj = 0;
                        for c in 0..b {
                            if c == a {
                                continue;
                            }
                            let g = gs[jj];
                            let s = ss[jj];
                            jj += 1;
                            if g == 0.0 {
                                continue;
                            }
                            cosine_backward_into(
                                g,
                                s,
                                &item_hat[c * d..(c + 1) * d],
                                ua,
                                item_norm[c],
                                gbuf.item_row_mut(batch.pos[c]),
                            );
                        }
                    }
                }));
            }
            pool.run(jobs);
        }

        for sg in shard_grads.iter_mut() {
            sg.merge_into(grads);
            sg.clear();
        }
        let aux = backbone.step(grads, &batch.users, &batch.pos, hyper, rng);
        grads.clear();
        (out.loss, aux)
    }

    /// Hogwild version of the sampled step: pass 1 scores exactly like
    /// [`Trainer::step_sampled_par`], then pass 2 workers chain gradients
    /// from the cached unit vectors and apply plain-SGD updates **in
    /// place** through a lock-free [`HogwildView`] — no gradient shards,
    /// no merge, no Adam state. Racy and therefore non-reproducible;
    /// `fit_backbone` only routes here for cosine-scored backbones whose
    /// final embeddings are their parameters.
    fn step_sampled_hogwild(
        &self,
        backbone: &mut dyn Backbone,
        loss: &dyn RankingLoss,
        batch: &TrainBatch,
        scratch: &mut StepScratch,
        hyper: Hyper,
        pool: &WorkerPool,
    ) -> (f64, f64) {
        let b = batch.len();
        let m = batch.m;
        let d = backbone.out_dim();
        debug_assert_eq!(backbone.train_score(), TrainScore::Cosine, "hogwild assumes cosine");
        let chunks = row_chunks(b, pool.n_workers());

        // Pass 1 — the exact path's sharded scoring, verbatim, over
        // read-only embeddings (the batch barrier below means pass-2
        // writes never race these reads).
        {
            let users = backbone.user_factors();
            let items = backbone.item_factors();
            pass1_sampled_scores(
                pool,
                &chunks,
                batch,
                users,
                items,
                TrainScore::Cosine,
                scratch,
                b,
                m,
                d,
            );
        }

        let out = loss.compute(&ScoreBatch::new(
            &scratch.pos_scores[..b],
            &scratch.neg_scores[..b * m],
            m,
        ));

        // Pass 2 — in-place lock-free SGD from the pass-1 unit-vector
        // cache (embedding reads during the backward all come from
        // scratch, so mid-pass updates never corrupt the chain rule; they
        // only race other rows' updates, which is the Hogwild deal).
        let (user_emb, item_emb) =
            backbone.params_mut().expect("fit_backbone verified hogwild support");
        let uview = HogwildView::new(user_emb);
        let iview = HogwildView::new(item_emb);
        {
            let mut jobs: Vec<Job> = Vec::with_capacity(chunks.len());
            let out = &out;
            let uview = &uview;
            let iview = &iview;
            let user_hat = &scratch.user_hat;
            let user_norm = &scratch.user_norm;
            let pos_hat = &scratch.pos_hat;
            let pos_norm = &scratch.pos_norm;
            let pos_scores = &scratch.pos_scores;
            let neg_scores = &scratch.neg_scores;
            let neg_hat = &scratch.neg_hat;
            let neg_norms = &scratch.neg_norms;
            for range in &chunks {
                let range = range.clone();
                jobs.push(Box::new(move || {
                    let mut gbuf = vec![0.0f32; d];
                    let mut prow = vec![0.0f32; d];
                    for row in range {
                        let u = batch.users[row];
                        let i = batch.pos[row];
                        let uhat = &user_hat[row * d..(row + 1) * d];
                        let ihat = &pos_hat[row * d..(row + 1) * d];
                        let g = out.grad_pos[row];
                        let s = pos_scores[row];
                        let gs = &out.grad_neg[row * m..(row + 1) * m];
                        let ss = &neg_scores[row * m..(row + 1) * m];
                        let nh = &neg_hat[row * m * d..(row + 1) * m * d];
                        let nn = &neg_norms[row * m..(row + 1) * m];
                        // User side: positive + whole negative block into
                        // one local gradient row, then one apply.
                        gbuf.fill(0.0);
                        cosine_backward_into(g, s, uhat, ihat, user_norm[row], &mut gbuf);
                        cosine_backward_block(gs, ss, uhat, user_norm[row], nh, &mut gbuf);
                        hogwild_apply(uview, u, &gbuf, &mut prow, hyper);
                        // Positive item.
                        gbuf.fill(0.0);
                        cosine_backward_into(g, s, ihat, uhat, pos_norm[row], &mut gbuf);
                        hogwild_apply(iview, i, &gbuf, &mut prow, hyper);
                        // Negative items.
                        for (jj, &j) in batch.negs_of(row).iter().enumerate() {
                            let gn = gs[jj];
                            if gn == 0.0 {
                                continue;
                            }
                            gbuf.fill(0.0);
                            cosine_backward_into(
                                gn,
                                ss[jj],
                                &nh[jj * d..(jj + 1) * d],
                                uhat,
                                nn[jj],
                                &mut gbuf,
                            );
                            hogwild_apply(iview, j, &gbuf, &mut prow, hyper);
                        }
                    }
                }));
            }
            pool.run(jobs);
        }
        (out.loss, 0.0)
    }

    /// Hogwild version of the in-batch step: pass 1 builds the `B × B`
    /// similarity matrix exactly like [`Trainer::step_in_batch_par`], then
    /// workers apply in-place SGD updates through a [`HogwildView`]. Item
    /// rows receive one racy update per batch row that uses them as a
    /// negative (instead of one merged update), which is the Hogwild
    /// approximation at its most contended.
    fn step_in_batch_hogwild(
        &self,
        backbone: &mut dyn Backbone,
        loss: &dyn RankingLoss,
        batch: &TrainBatch,
        scratch: &mut StepScratch,
        hyper: Hyper,
        pool: &WorkerPool,
    ) -> (f64, f64) {
        let b = batch.len();
        let m = b - 1;
        let d = backbone.out_dim();
        debug_assert_eq!(backbone.train_score(), TrainScore::Cosine, "in-batch assumes cosine");
        let chunks = row_chunks(b, pool.n_workers());

        // Pass 1 — the exact path's blocked gather-normalize + similarity
        // rows, verbatim.
        {
            let users = backbone.user_factors();
            let items = backbone.item_factors();
            pass1_in_batch_scores(pool, &chunks, batch, users, items, scratch, b, d);
        }

        for a in 0..b {
            scratch.pos_scores[a] = scratch.sims[a * b + a];
            let mut jj = 0;
            for c in 0..b {
                if c != a {
                    scratch.neg_scores[a * m + jj] = scratch.sims[a * b + c];
                    jj += 1;
                }
            }
        }
        let out = loss.compute(&ScoreBatch::new(
            &scratch.pos_scores[..b],
            &scratch.neg_scores[..b * m],
            m,
        ));

        // Pass 2 — in-place lock-free SGD from the cached unit vectors.
        let (user_emb, item_emb) =
            backbone.params_mut().expect("fit_backbone verified hogwild support");
        let uview = HogwildView::new(user_emb);
        let iview = HogwildView::new(item_emb);
        {
            let mut jobs: Vec<Job> = Vec::with_capacity(chunks.len());
            let out = &out;
            let uview = &uview;
            let iview = &iview;
            let user_hat = &scratch.user_hat;
            let item_hat = &scratch.pos_hat;
            let user_norm = &scratch.user_norm;
            let item_norm = &scratch.pos_norm;
            let pos_scores = &scratch.pos_scores;
            let neg_scores = &scratch.neg_scores;
            for range in &chunks {
                let range = range.clone();
                jobs.push(Box::new(move || {
                    let mut gbuf = vec![0.0f32; d];
                    let mut prow = vec![0.0f32; d];
                    for a in range {
                        let ua = &user_hat[a * d..(a + 1) * d];
                        let ia = &item_hat[a * d..(a + 1) * d];
                        let g = out.grad_pos[a];
                        let s = pos_scores[a];
                        let gs = &out.grad_neg[a * m..(a + 1) * m];
                        let ss = &neg_scores[a * m..(a + 1) * m];
                        // User side: positive + the two contiguous item
                        // halves around the diagonal, one apply.
                        gbuf.fill(0.0);
                        cosine_backward_into(g, s, ua, ia, user_norm[a], &mut gbuf);
                        cosine_backward_block(
                            &gs[..a],
                            &ss[..a],
                            ua,
                            user_norm[a],
                            &item_hat[..a * d],
                            &mut gbuf,
                        );
                        cosine_backward_block(
                            &gs[a..],
                            &ss[a..],
                            ua,
                            user_norm[a],
                            &item_hat[(a + 1) * d..b * d],
                            &mut gbuf,
                        );
                        hogwild_apply(uview, batch.users[a], &gbuf, &mut prow, hyper);
                        // Own positive item.
                        gbuf.fill(0.0);
                        cosine_backward_into(g, s, ia, ua, item_norm[a], &mut gbuf);
                        hogwild_apply(iview, batch.pos[a], &gbuf, &mut prow, hyper);
                        // Other rows' positives used as negatives here.
                        let mut jj = 0;
                        for c in 0..b {
                            if c == a {
                                continue;
                            }
                            let gn = gs[jj];
                            let sn = ss[jj];
                            jj += 1;
                            if gn == 0.0 {
                                continue;
                            }
                            gbuf.fill(0.0);
                            cosine_backward_into(
                                gn,
                                sn,
                                &item_hat[c * d..(c + 1) * d],
                                ua,
                                item_norm[c],
                                &mut gbuf,
                            );
                            hogwild_apply(iview, batch.pos[c], &gbuf, &mut prow, hyper);
                        }
                    }
                }));
            }
            pool.run(jobs);
        }
        (out.loss, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};
    use bsl_losses::LossConfig;
    use bsl_models::BackboneConfig;

    fn tiny() -> Arc<Dataset> {
        Arc::new(generate(&SynthConfig::tiny(1)))
    }

    fn random_baseline(ds: &Arc<Dataset>) -> f64 {
        // NDCG of untrained Xavier embeddings.
        let mut rng = StdRng::seed_from_u64(999);
        let u = Matrix::xavier_uniform(ds.n_users, 16, &mut rng);
        let i = Matrix::xavier_uniform(ds.n_items, 16, &mut rng);
        bsl_eval::evaluate(ds, &u, &i, EvalScore::Cosine, &[20]).ndcg(20)
    }

    #[test]
    fn mf_sl_learns_signal() {
        let ds = tiny();
        let cfg = TrainConfig { epochs: 12, ..TrainConfig::smoke() };
        let out = Trainer::new(cfg).fit(&ds);
        let chance = random_baseline(&ds);
        assert!(
            out.best.ndcg(20) > chance * 2.0,
            "trained NDCG {:.4} vs random {:.4}",
            out.best.ndcg(20),
            chance
        );
        assert_eq!(out.history.len() as i64, 12);
    }

    #[test]
    fn mf_bsl_learns_signal() {
        let ds = tiny();
        // τ1 well above τ2: at this tiny scale the margins z_b spread over
        // several units, so a too-small τ1 concentrates the row weights and
        // slows early epochs (the same effect Fig 13 shows for tiny τ1/τ2).
        let cfg = TrainConfig {
            loss: LossConfig::Bsl { tau1: 0.5, tau2: 0.15 },
            epochs: 12,
            ..TrainConfig::smoke()
        };
        let out = Trainer::new(cfg).fit(&ds);
        assert!(out.best.ndcg(20) > random_baseline(&ds) * 2.0);
    }

    #[test]
    fn lightgcn_bpr_learns_signal() {
        let ds = tiny();
        let cfg = TrainConfig {
            backbone: BackboneConfig::LightGcn { layers: 2 },
            loss: LossConfig::Bpr,
            epochs: 10,
            negatives: 4,
            lr: 0.05,
            ..TrainConfig::smoke()
        };
        let out = Trainer::new(cfg).fit(&ds);
        assert!(out.best.ndcg(20) > random_baseline(&ds) * 1.5);
    }

    #[test]
    fn in_batch_sampling_learns_signal() {
        let ds = tiny();
        let cfg = TrainConfig {
            sampling: SamplingConfig::InBatch,
            batch_size: 64,
            epochs: 10,
            ..TrainConfig::smoke()
        };
        let out = Trainer::new(cfg).fit(&ds);
        assert!(out.best.ndcg(20) > random_baseline(&ds) * 1.5);
    }

    #[test]
    fn cml_path_trains_and_evaluates() {
        let ds = tiny();
        let cfg = TrainConfig {
            backbone: BackboneConfig::Cml,
            loss: LossConfig::Hinge { margin: 0.5 },
            epochs: 10,
            lr: 0.05,
            ..TrainConfig::smoke()
        };
        let out = Trainer::new(cfg).fit(&ds);
        assert_eq!(out.eval_score, bsl_models::EvalScore::NegSqDist);
        assert!(out.best.ndcg(20).is_finite());
        assert!(out.best.ndcg(20) > 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let ds = tiny();
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::smoke() };
        let a = Trainer::new(cfg).fit(&ds);
        let b = Trainer::new(cfg).fit(&ds);
        assert_eq!(a.best.ndcg(20), b.best.ndcg(20));
        assert_eq!(a.user_emb.as_slice(), b.user_emb.as_slice());
    }

    #[test]
    fn threads_one_replays_bit_for_bit() {
        // `threads: 1` is the historical serial path; two runs (and the
        // default config, which pins threads = 1) must agree bit-for-bit.
        let ds = tiny();
        let cfg = TrainConfig { epochs: 3, threads: 1, ..TrainConfig::smoke() };
        let a = Trainer::new(cfg).fit(&ds);
        let b = Trainer::new(cfg).fit(&ds);
        let default_cfg = Trainer::new(TrainConfig { epochs: 3, ..TrainConfig::smoke() }).fit(&ds);
        assert_eq!(a.user_emb.as_slice(), b.user_emb.as_slice());
        assert_eq!(a.item_emb.as_slice(), b.item_emb.as_slice());
        assert_eq!(a.user_emb.as_slice(), default_cfg.user_emb.as_slice());
        assert_eq!(a.best.ndcg(20), default_cfg.best.ndcg(20));
    }

    #[test]
    fn parallel_trainer_is_deterministic_per_thread_count() {
        let ds = tiny();
        let cfg = TrainConfig { epochs: 3, threads: 3, ..TrainConfig::smoke() };
        let a = Trainer::new(cfg).fit(&ds);
        let b = Trainer::new(cfg).fit(&ds);
        assert_eq!(a.user_emb.as_slice(), b.user_emb.as_slice());
        assert_eq!(a.best.ndcg(20), b.best.ndcg(20));
    }

    #[test]
    fn sharded_step_matches_serial_math_on_identical_batches() {
        // With a single batch per epoch, every batch index maps to shard 0,
        // whose RNG stream continues the shuffle stream — i.e. the sampled
        // negatives are *identical* to the serial iterator's. Any remaining
        // difference is purely the sharded step's f32 reduction order.
        let ds = tiny();
        let one_batch = TrainConfig {
            epochs: 3,
            batch_size: 100_000, // the whole epoch in one batch
            ..TrainConfig::smoke()
        };
        let serial = Trainer::new(TrainConfig { threads: 1, ..one_batch }).fit(&ds);
        let sharded = Trainer::new(TrainConfig { threads: 4, ..one_batch }).fit(&ds);
        for (epoch_s, epoch_p) in serial.history.iter().zip(sharded.history.iter()) {
            assert!(
                (epoch_s.loss - epoch_p.loss).abs() < 1e-4 * (1.0 + epoch_s.loss.abs()),
                "epoch {} loss {} vs {}",
                epoch_s.epoch,
                epoch_s.loss,
                epoch_p.loss
            );
        }
        let max_diff = serial
            .user_emb
            .as_slice()
            .iter()
            .zip(sharded.user_emb.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-3, "embeddings drifted {max_diff} beyond f32 reduction noise");
    }

    #[test]
    fn parallel_ndcg_within_tolerance_of_serial() {
        // Different shard counts run different negative-sampling streams,
        // so metrics move like a seed change — bounded, not bit-equal.
        let ds = tiny();
        let cfg = TrainConfig { epochs: 12, ..TrainConfig::smoke() };
        let serial = Trainer::new(TrainConfig { threads: 1, ..cfg }).fit(&ds);
        let parallel = Trainer::new(TrainConfig { threads: 4, ..cfg }).fit(&ds);
        let chance = random_baseline(&ds);
        assert!(parallel.best.ndcg(20) > chance * 2.0, "parallel run failed to learn");
        let gap = (serial.best.ndcg(20) - parallel.best.ndcg(20)).abs();
        assert!(
            gap < 0.15,
            "serial {:.4} vs parallel {:.4} NDCG@20 gap {gap:.4}",
            serial.best.ndcg(20),
            parallel.best.ndcg(20)
        );
    }

    #[test]
    fn parallel_in_batch_sampling_learns_signal() {
        let ds = tiny();
        let cfg = TrainConfig {
            sampling: SamplingConfig::InBatch,
            batch_size: 64,
            epochs: 10,
            threads: 3,
            ..TrainConfig::smoke()
        };
        let out = Trainer::new(cfg).fit(&ds);
        assert!(out.best.ndcg(20) > random_baseline(&ds) * 1.5);
    }

    #[test]
    fn parallel_cml_path_trains() {
        // Exercises the NegSqDist branch of the sharded step.
        let ds = tiny();
        let cfg = TrainConfig {
            backbone: BackboneConfig::Cml,
            loss: LossConfig::Hinge { margin: 0.5 },
            epochs: 6,
            lr: 0.05,
            threads: 2,
            ..TrainConfig::smoke()
        };
        let out = Trainer::new(cfg).fit(&ds);
        assert!(out.best.ndcg(20).is_finite());
        assert!(out.best.ndcg(20) > 0.0);
    }

    #[test]
    fn auto_threads_runs() {
        let ds = tiny();
        let cfg = TrainConfig { epochs: 2, threads: 0, ..TrainConfig::smoke() };
        let out = Trainer::new(cfg).fit(&ds);
        assert!(out.best.ndcg(20).is_finite());
    }

    #[test]
    fn early_stopping_can_truncate() {
        let ds = tiny();
        let cfg = TrainConfig {
            epochs: 40,
            eval_every: 1,
            patience: 2,
            lr: 0.1, // aggressive LR so NDCG plateaus/oscillates early
            ..TrainConfig::smoke()
        };
        let out = Trainer::new(cfg).fit(&ds);
        assert!(out.history.len() <= 40);
        assert!(!out.eval_history.is_empty());
    }

    #[test]
    fn evaluate_on_matches_best_report() {
        let ds = tiny();
        let cfg = TrainConfig { epochs: 4, ..TrainConfig::smoke() };
        let out = Trainer::new(cfg).fit(&ds);
        let re = out.evaluate_on(&ds, &[20]);
        assert!((re.ndcg(20) - out.best.ndcg(20)).abs() < 1e-12);
    }

    #[test]
    fn noisy_sampling_config_runs() {
        let ds = tiny();
        let cfg = TrainConfig {
            sampling: SamplingConfig::Noisy { r_noise: 2.0 },
            epochs: 3,
            ..TrainConfig::smoke()
        };
        let out = Trainer::new(cfg).fit(&ds);
        assert!(out.best.ndcg(20).is_finite());
    }

    #[test]
    fn popularity_sampling_config_runs() {
        let ds = tiny();
        let cfg = TrainConfig {
            sampling: SamplingConfig::Popularity { alpha: 1.0 },
            epochs: 3,
            ..TrainConfig::smoke()
        };
        let out = Trainer::new(cfg).fit(&ds);
        assert!(out.best.ndcg(20).is_finite());
    }
}
