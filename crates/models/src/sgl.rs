//! SGL (Wu et al., SIGIR'21): LightGCN plus a self-supervised InfoNCE
//! auxiliary between two *edge-dropout* views of the graph.
//!
//! Each forward pass resamples two subgraphs (edges kept with probability
//! `1 − dropout`, re-normalized) and propagates the shared base embeddings
//! through both. The step adds `ssl_reg ·` InfoNCE gradients (computed on a
//! bounded subset of the batch's nodes) backpropagated through each view's
//! own propagation — which is linear, so its exact backward is the same
//! operator.

use crate::backbone::{Backbone, EvalScore, Hyper};
use crate::grad::GradBuffer;
use crate::lightgcn::LightGcn;
use crate::propagation::{dedup_cap, info_nce_grad, Propagator};
use bsl_data::Dataset;
use bsl_linalg::Matrix;
use bsl_opt::Adam;
use bsl_sparse::NormAdj;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Maximum nodes per side used by the InfoNCE auxiliary per step.
pub(crate) const AUX_NODE_CAP: usize = 128;

/// One propagated contrastive view.
pub(crate) struct View {
    pub prop: Propagator,
    pub fin_u: Matrix,
    pub fin_i: Matrix,
}

/// SGL backbone.
pub struct Sgl {
    user_base: Matrix,
    item_base: Matrix,
    prop: Propagator,
    fin_u: Matrix,
    fin_i: Matrix,
    views: Option<(View, View)>,
    dropout: f32,
    ssl_reg: f32,
    ssl_tau: f32,
    adam_u: Adam,
    adam_i: Adam,
}

impl Sgl {
    /// Builds SGL on `ds`'s training graph.
    ///
    /// # Panics
    /// Panics unless `0 <= dropout < 1`, `ssl_reg >= 0` and `ssl_tau > 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ds: &Arc<Dataset>,
        dim: usize,
        layers: usize,
        dropout: f32,
        ssl_reg: f32,
        ssl_tau: f32,
        seed: u64,
    ) -> Self {
        assert!((0.0..1.0).contains(&dropout), "dropout must be in [0,1), got {dropout}");
        assert!(ssl_reg >= 0.0, "ssl_reg must be non-negative");
        assert!(ssl_tau > 0.0, "ssl_tau must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = NormAdj::from_interactions(ds.n_users, ds.n_items, &ds.train_pairs());
        Self {
            user_base: Matrix::xavier_uniform(ds.n_users, dim, &mut rng),
            item_base: Matrix::xavier_uniform(ds.n_items, dim, &mut rng),
            prop: Propagator::new(adj, layers),
            fin_u: Matrix::zeros(ds.n_users, dim),
            fin_i: Matrix::zeros(ds.n_items, dim),
            views: None,
            dropout,
            ssl_reg,
            ssl_tau,
            adam_u: Adam::new(ds.n_users, dim),
            adam_i: Adam::new(ds.n_items, dim),
        }
    }

    fn make_view(&self, rng: &mut StdRng) -> View {
        let dropped = self.prop.adj().edge_dropout(self.dropout, rng);
        let prop = Propagator::new(dropped, self.prop.layers());
        let (fin_u, fin_i) = prop.forward(&self.user_base, &self.item_base);
        View { prop, fin_u, fin_i }
    }
}

/// Shared auxiliary step for the two-view contrastive models: computes the
/// InfoNCE loss/gradients on capped batch nodes, backpropagates each view's
/// gradients through its own propagator, and accumulates into `(gu, gi)`.
#[allow(clippy::too_many_arguments)] // internal helper mirroring the math's natural arity
pub(crate) fn two_view_aux_step(
    v1: &View,
    v2: &View,
    batch_users: &[u32],
    batch_items: &[u32],
    ssl_reg: f32,
    ssl_tau: f32,
    gu: &mut Matrix,
    gi: &mut Matrix,
) -> f64 {
    if ssl_reg == 0.0 {
        return 0.0;
    }
    let (nu, d) = v1.fin_u.shape();
    let ni = v1.fin_i.rows();
    let mut g1u = Matrix::zeros(nu, d);
    let mut g2u = Matrix::zeros(nu, d);
    let mut g1i = Matrix::zeros(ni, d);
    let mut g2i = Matrix::zeros(ni, d);
    let mut aux = 0.0f64;
    let users = dedup_cap(batch_users, AUX_NODE_CAP);
    if !users.is_empty() {
        aux += info_nce_grad(&v1.fin_u, &v2.fin_u, &users, ssl_tau, ssl_reg, &mut g1u, &mut g2u);
    }
    let items = dedup_cap(batch_items, AUX_NODE_CAP);
    if !items.is_empty() {
        aux += info_nce_grad(&v1.fin_i, &v2.fin_i, &items, ssl_tau, ssl_reg, &mut g1i, &mut g2i);
    }
    let (bu, bi) = v1.prop.backward(&g1u, &g1i);
    gu.add_assign(&bu);
    gi.add_assign(&bi);
    let (bu, bi) = v2.prop.backward(&g2u, &g2i);
    gu.add_assign(&bu);
    gi.add_assign(&bi);
    aux
}

impl Backbone for Sgl {
    fn name(&self) -> &'static str {
        "SGL"
    }

    fn n_users(&self) -> usize {
        self.user_base.rows()
    }

    fn n_items(&self) -> usize {
        self.item_base.rows()
    }

    fn out_dim(&self) -> usize {
        self.user_base.cols()
    }

    fn forward(&mut self, rng: &mut StdRng) {
        let (u, i) = self.prop.forward(&self.user_base, &self.item_base);
        self.fin_u = u;
        self.fin_i = i;
        self.views = Some((self.make_view(rng), self.make_view(rng)));
    }

    fn user_factors(&self) -> &Matrix {
        &self.fin_u
    }

    fn item_factors(&self) -> &Matrix {
        &self.fin_i
    }

    fn step(
        &mut self,
        grads: &GradBuffer,
        batch_users: &[u32],
        batch_items: &[u32],
        hp: Hyper,
        _rng: &mut StdRng,
    ) -> f64 {
        let (mut gu, mut gi) = self.prop.backward(grads.users(), grads.items());
        let aux = match &self.views {
            Some((v1, v2)) => two_view_aux_step(
                v1,
                v2,
                batch_users,
                batch_items,
                self.ssl_reg,
                self.ssl_tau,
                &mut gu,
                &mut gi,
            ),
            None => 0.0,
        };
        LightGcn::apply_base_update(
            &mut self.user_base,
            &mut self.item_base,
            &mut self.adam_u,
            &mut self.adam_i,
            gu,
            gi,
            grads,
            hp,
        );
        aux
    }

    fn eval_score(&self) -> EvalScore {
        EvalScore::Dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};

    fn setup() -> (Arc<Dataset>, Sgl, StdRng) {
        let ds = Arc::new(generate(&SynthConfig::tiny(1)));
        let m = Sgl::new(&ds, 6, 2, 0.2, 0.5, 0.2, 3);
        (ds, m, StdRng::seed_from_u64(0))
    }

    #[test]
    fn forward_creates_fresh_views() {
        let (_, mut m, mut rng) = setup();
        m.forward(&mut rng);
        let v1_edges = m.views.as_ref().map(|(a, _)| a.prop.adj().user_item.nnz());
        m.forward(&mut rng);
        let v1_edges_again = m.views.as_ref().map(|(a, _)| a.prop.adj().user_item.nnz());
        // Edge dropout resamples; with 20% dropout two draws almost surely
        // keep different edge counts or at least different graphs.
        let full = m.prop.adj().user_item.nnz();
        assert!(v1_edges.expect("views exist") < full);
        let _ = v1_edges_again;
    }

    #[test]
    fn aux_loss_reported_and_finite() {
        let (ds, mut m, mut rng) = setup();
        m.forward(&mut rng);
        let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 6);
        grads.user_row_mut(0)[0] = 1.0;
        grads.item_row_mut(0)[0] = -1.0;
        let aux = m.step(&grads, &[0, 1, 2], &[0, 1], Hyper { lr: 0.01, l2: 1e-4 }, &mut rng);
        assert!(aux.is_finite());
        assert!(aux > 0.0, "InfoNCE between distinct dropout views should be positive");
        assert!(m.user_base.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ssl_training_aligns_views() {
        // Repeated aux-only steps should reduce the contrastive loss.
        let (ds, mut m, mut rng) = setup();
        let empty = GradBuffer::new(ds.n_users, ds.n_items, 6);
        let users: Vec<u32> = (0..20).collect();
        let items: Vec<u32> = (0..20).collect();
        m.forward(&mut rng);
        let first = m.step(&empty, &users, &items, Hyper { lr: 0.05, l2: 0.0 }, &mut rng);
        for _ in 0..30 {
            m.forward(&mut rng);
            m.step(&empty, &users, &items, Hyper { lr: 0.05, l2: 0.0 }, &mut rng);
        }
        m.forward(&mut rng);
        let last = m.step(&empty, &users, &items, Hyper { lr: 0.05, l2: 0.0 }, &mut rng);
        assert!(last < first, "aux loss did not improve: {first} -> {last}");
    }

    #[test]
    fn zero_ssl_reg_matches_lightgcn_gradients() {
        let ds = Arc::new(generate(&SynthConfig::tiny(2)));
        let mut sgl = Sgl::new(&ds, 4, 2, 0.2, 0.0, 0.2, 7);
        let mut lgn = crate::lightgcn::LightGcn::new(&ds, 4, 2, 7);
        let mut rng = StdRng::seed_from_u64(1);
        sgl.forward(&mut rng);
        lgn.forward(&mut rng);
        // Same seed → same init; same grads → same update when ssl_reg = 0.
        let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 4);
        grads.user_row_mut(3).iter_mut().for_each(|g| *g = 0.3);
        let hp = Hyper { lr: 0.01, l2: 0.0 };
        let aux = sgl.step(&grads, &[3], &[], hp, &mut rng);
        lgn.step(&grads, &[3], &[], hp, &mut rng);
        assert_eq!(aux, 0.0);
        for (a, b) in sgl.user_base.as_slice().iter().zip(lgn.user_factors().as_slice()) {
            // Compare base tables: forward caches differ, so look at raw
            // parameters via factors after a fresh forward.
            let _ = (a, b);
        }
        sgl.forward(&mut rng);
        lgn.forward(&mut rng);
        for (a, b) in sgl.user_factors().as_slice().iter().zip(lgn.user_factors().as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
