//! Shared graph-propagation machinery for the GCN family.
//!
//! LightGCN's layer-mean propagation is a *symmetric* linear operator on
//! the stacked embedding vector, so its exact backward pass is the operator
//! itself — [`Propagator::backward`] simply reuses the forward map, and the
//! `adjointness` test below verifies `<F(x), y> = <x, F(y)>` numerically.

use bsl_linalg::simd::scores_block;
use bsl_linalg::stats::softmax_into;
use bsl_linalg::Matrix;
use bsl_sparse::NormAdj;

/// K-layer LightGCN propagation with layer-mean readout.
#[derive(Clone, Debug)]
pub struct Propagator {
    adj: NormAdj,
    layers: usize,
}

impl Propagator {
    /// Wraps a normalized adjacency with a layer count.
    ///
    /// # Panics
    /// Panics if `layers == 0` (use the embeddings directly then).
    pub fn new(adj: NormAdj, layers: usize) -> Self {
        assert!(layers > 0, "propagation needs at least one layer");
        Self { adj, layers }
    }

    /// Number of propagation layers `K`.
    #[inline]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The underlying normalized adjacency.
    #[inline]
    pub fn adj(&self) -> &NormAdj {
        &self.adj
    }

    /// One propagation hop `Â·[u; i]`.
    pub fn hop(&self, u: &Matrix, i: &Matrix) -> (Matrix, Matrix) {
        self.adj.propagate(u, i)
    }

    /// Full forward: `final = (1/(K+1)) Σ_{k=0..K} Â^k [u0; i0]`.
    pub fn forward(&self, u0: &Matrix, i0: &Matrix) -> (Matrix, Matrix) {
        let coef = 1.0 / (self.layers + 1) as f32;
        let mut cur_u = u0.clone();
        let mut cur_i = i0.clone();
        let mut out_u = u0.clone();
        let mut out_i = i0.clone();
        for _ in 0..self.layers {
            let (nu, ni) = self.adj.propagate(&cur_u, &cur_i);
            cur_u = nu;
            cur_i = ni;
            out_u.add_assign(&cur_u);
            out_i.add_assign(&cur_i);
        }
        out_u.scale(coef);
        out_i.scale(coef);
        (out_u, out_i)
    }

    /// Exact backward of [`Self::forward`]: the operator is symmetric, so
    /// `∂L/∂[u0; i0] = forward(∂L/∂final)`.
    pub fn backward(&self, grad_u: &Matrix, grad_i: &Matrix) -> (Matrix, Matrix) {
        self.forward(grad_u, grad_i)
    }
}

/// In-batch InfoNCE between two embedding views, restricted to `nodes`
/// (row indices into both views).
///
/// ```text
/// L = −(1/B) Σ_a [ s_aa/τ − log Σ_b exp(s_ab/τ) ],   s_ab = cos(z1_a, z2_b)
/// ```
///
/// Gradients w.r.t. the *raw* (unnormalized) view rows are **accumulated**
/// into `g1`/`g2` scaled by `weight`. Returns the loss value (times
/// `weight`).
///
/// Cost is `O(B²·d)` — callers subsample `nodes` (SGL caps the auxiliary
/// batch) to keep this tractable.
///
/// # Panics
/// Panics if `tau <= 0`, `nodes` is empty, or shapes disagree.
pub fn info_nce_grad(
    z1: &Matrix,
    z2: &Matrix,
    nodes: &[u32],
    tau: f32,
    weight: f32,
    g1: &mut Matrix,
    g2: &mut Matrix,
) -> f64 {
    assert!(tau > 0.0, "temperature must be positive, got {tau}");
    assert!(!nodes.is_empty(), "empty node set");
    assert_eq!(z1.shape(), z2.shape(), "view shape mismatch");
    assert_eq!(z1.shape(), g1.shape(), "gradient shape mismatch");
    assert_eq!(z2.shape(), g2.shape(), "gradient shape mismatch");
    let b = nodes.len();
    let d = z1.cols();

    // Gather normalized rows and their norms (blocked gather kernels).
    let mut h1 = Matrix::zeros(b, d);
    let mut h2 = Matrix::zeros(b, d);
    let mut n1 = vec![0.0f32; b];
    let mut n2 = vec![0.0f32; b];
    bsl_linalg::simd::normalize_gather_into(z1, nodes, h1.as_mut_slice(), &mut n1);
    bsl_linalg::simd::normalize_gather_into(z2, nodes, h2.as_mut_slice(), &mut n2);

    // Similarity matrix (one blocked matvec per row) and row softmax.
    let mut sims = Matrix::zeros(b, b);
    for a in 0..b {
        scores_block(h1.row(a), h2.as_slice(), sims.row_mut(a));
    }
    let mut loss = 0.0f64;
    let inv_b = 1.0 / b as f64;
    let mut probs = vec![0.0f32; b];
    for a in 0..b {
        let row = sims.row(a).to_vec();
        let lse = softmax_into(&row, tau, &mut probs);
        loss += inv_b * (lse - (row[a] / tau) as f64);
        // dL/ds_ab = (1/(Bτ))(p_ab − δ_ab), times the external weight.
        let coef = (weight as f64 * inv_b / tau as f64) as f32;
        for bb in 0..b {
            let g_ab = coef * (probs[bb] - if a == bb { 1.0 } else { 0.0 });
            if g_ab == 0.0 {
                continue;
            }
            let s_ab = row[bb];
            // Chain through both cosine normalizations.
            let (h1a, h2b) = (h1.row(a).to_vec(), h2.row(bb).to_vec());
            bsl_linalg::kernels::cosine_backward_into(
                g_ab,
                s_ab,
                &h1a,
                &h2b,
                n1[a],
                g1.row_mut(nodes[a] as usize),
            );
            bsl_linalg::kernels::cosine_backward_into(
                g_ab,
                s_ab,
                &h2b,
                &h1a,
                n2[bb],
                g2.row_mut(nodes[bb] as usize),
            );
        }
    }
    loss * weight as f64
}

/// Deduplicates `nodes` (keeping first occurrences) and truncates to `cap`
/// — contrastive auxiliaries run on a bounded node subset because InfoNCE
/// is `O(B²·d)`.
pub fn dedup_cap(nodes: &[u32], cap: usize) -> Vec<u32> {
    let mut seen = std::collections::HashSet::with_capacity(nodes.len());
    let mut out = Vec::with_capacity(cap.min(nodes.len()));
    for &n in nodes {
        if seen.insert(n) {
            out.push(n);
            if out.len() == cap {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dedup_cap_keeps_order_and_caps() {
        assert_eq!(dedup_cap(&[3, 1, 3, 2, 1, 4], 3), vec![3, 1, 2]);
        assert_eq!(dedup_cap(&[5, 5], 10), vec![5]);
        assert!(dedup_cap(&[], 4).is_empty());
    }

    fn toy_adj() -> NormAdj {
        NormAdj::from_interactions(3, 2, &[(0, 0), (0, 1), (1, 0), (2, 1)])
    }

    #[test]
    fn forward_layer_mean_hand_check_one_layer() {
        let adj = toy_adj();
        let prop = Propagator::new(adj.clone(), 1);
        let u0 = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let i0 = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        let (fu, fi) = prop.forward(&u0, &i0);
        let (pu, pi) = adj.propagate(&u0, &i0);
        for r in 0..3 {
            for c in 0..2 {
                let want = 0.5 * (u0.get(r, c) + pu.get(r, c));
                assert!((fu.get(r, c) - want).abs() < 1e-6);
            }
        }
        for r in 0..2 {
            for c in 0..2 {
                let want = 0.5 * (i0.get(r, c) + pi.get(r, c));
                assert!((fi.get(r, c) - want).abs() < 1e-6);
            }
        }
    }

    /// The backward pass is exact iff the forward map is self-adjoint:
    /// `<F(x), y> = <x, F(y)>` for random `x`, `y`.
    #[test]
    fn adjointness() {
        let prop = Propagator::new(toy_adj(), 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let xu = Matrix::gaussian(3, 4, 1.0, &mut rng);
            let xi = Matrix::gaussian(2, 4, 1.0, &mut rng);
            let yu = Matrix::gaussian(3, 4, 1.0, &mut rng);
            let yi = Matrix::gaussian(2, 4, 1.0, &mut rng);
            let (fxu, fxi) = prop.forward(&xu, &xi);
            let (fyu, fyi) = prop.backward(&yu, &yi);
            let lhs: f64 = fxu
                .as_slice()
                .iter()
                .zip(yu.as_slice())
                .chain(fxi.as_slice().iter().zip(yi.as_slice()))
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            let rhs: f64 = xu
                .as_slice()
                .iter()
                .zip(fyu.as_slice())
                .chain(xi.as_slice().iter().zip(fyi.as_slice()))
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn identical_views_minimize_info_nce() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = Matrix::gaussian(6, 4, 1.0, &mut rng);
        let nodes: Vec<u32> = (0..6).collect();
        let mut g1 = Matrix::zeros(6, 4);
        let mut g2 = Matrix::zeros(6, 4);
        let aligned = info_nce_grad(&z, &z, &nodes, 0.2, 1.0, &mut g1, &mut g2);
        let other = Matrix::gaussian(6, 4, 1.0, &mut rng);
        g1.fill(0.0);
        g2.fill(0.0);
        let misaligned = info_nce_grad(&z, &other, &nodes, 0.2, 1.0, &mut g1, &mut g2);
        assert!(aligned < misaligned, "{aligned} vs {misaligned}");
    }

    /// Central finite-difference check of the InfoNCE gradients through the
    /// cosine normalization.
    #[test]
    fn info_nce_gradcheck() {
        let mut rng = StdRng::seed_from_u64(9);
        let z1 = Matrix::gaussian(4, 3, 1.0, &mut rng);
        let z2 = Matrix::gaussian(4, 3, 1.0, &mut rng);
        let nodes: Vec<u32> = vec![0, 2, 3];
        let tau = 0.3;
        let mut g1 = Matrix::zeros(4, 3);
        let mut g2 = Matrix::zeros(4, 3);
        let _ = info_nce_grad(&z1, &z2, &nodes, tau, 1.0, &mut g1, &mut g2);

        let h = 1e-3f32;
        let loss_of = |z1: &Matrix, z2: &Matrix| {
            let mut d1 = Matrix::zeros(4, 3);
            let mut d2 = Matrix::zeros(4, 3);
            info_nce_grad(z1, z2, &nodes, tau, 1.0, &mut d1, &mut d2)
        };
        for &node in &nodes {
            for c in 0..3 {
                let mut zp = z1.clone();
                let mut zm = z1.clone();
                zp.set(node as usize, c, zp.get(node as usize, c) + h);
                zm.set(node as usize, c, zm.get(node as usize, c) - h);
                let num = (loss_of(&zp, &z2) - loss_of(&zm, &z2)) / (2.0 * h as f64);
                let ana = g1.get(node as usize, c) as f64;
                assert!(
                    (ana - num).abs() < 2e-3 * (1.0 + num.abs()),
                    "z1[{node},{c}]: analytic {ana} vs numeric {num}"
                );
                let mut zp = z2.clone();
                let mut zm = z2.clone();
                zp.set(node as usize, c, zp.get(node as usize, c) + h);
                zm.set(node as usize, c, zm.get(node as usize, c) - h);
                let num = (loss_of(&z1, &zp) - loss_of(&z1, &zm)) / (2.0 * h as f64);
                let ana = g2.get(node as usize, c) as f64;
                assert!(
                    (ana - num).abs() < 2e-3 * (1.0 + num.abs()),
                    "z2[{node},{c}]: analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn untouched_rows_get_no_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let z1 = Matrix::gaussian(5, 3, 1.0, &mut rng);
        let z2 = Matrix::gaussian(5, 3, 1.0, &mut rng);
        let mut g1 = Matrix::zeros(5, 3);
        let mut g2 = Matrix::zeros(5, 3);
        let _ = info_nce_grad(&z1, &z2, &[1, 3], 0.2, 1.0, &mut g1, &mut g2);
        for r in [0usize, 2, 4] {
            assert!(g1.row(r).iter().all(|&x| x == 0.0));
            assert!(g2.row(r).iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn weight_scales_loss_and_grads() {
        let mut rng = StdRng::seed_from_u64(3);
        let z1 = Matrix::gaussian(4, 3, 1.0, &mut rng);
        let z2 = Matrix::gaussian(4, 3, 1.0, &mut rng);
        let nodes = vec![0, 1, 2, 3];
        let mut a1 = Matrix::zeros(4, 3);
        let mut a2 = Matrix::zeros(4, 3);
        let l1 = info_nce_grad(&z1, &z2, &nodes, 0.2, 1.0, &mut a1, &mut a2);
        let mut b1 = Matrix::zeros(4, 3);
        let mut b2 = Matrix::zeros(4, 3);
        let l2 = info_nce_grad(&z1, &z2, &nodes, 0.2, 2.0, &mut b1, &mut b2);
        assert!((l2 - 2.0 * l1).abs() < 1e-9);
        for (x, y) in a1.as_slice().iter().zip(b1.as_slice()) {
            assert!((2.0 * x - y).abs() < 1e-6);
        }
    }
}
