//! IVF-flat coarse quantizer over a prepared item table.
//!
//! An [`IvfIndex`] partitions the catalogue into `nlist` inverted lists by
//! k-means on the artifact's *prepared* rows (unit-norm for cosine
//! backbones, distance-augmented for CML — so Euclidean clustering is the
//! right geometry for the dot products retrieval actually runs). A query
//! probes the `nprobe` lists whose centroids score highest and rescores
//! only their members with the exact blocked kernel — O(nlist +
//! n·nprobe/nlist) work instead of O(n) per request.
//!
//! Invariants (enforced by [`IvfIndex::from_parts`], the codec's entry
//! point, and property-tested below):
//!
//! * `list_offsets` is monotone, starts at 0, ends at `n_items`;
//! * the concatenated lists are a **partition** of `0..n_items` — every
//!   item in exactly one list, each list sorted ascending (so probing all
//!   lists enumerates every candidate exactly once);
//! * `centroids` is `nlist × dim` with finite entries.
//!
//! Construction is deterministic: k-means++ seeding and Lloyd iterations
//! run on a fixed-seed RNG, so the same table always builds the same
//! index (and the codec round-trips it bit for bit).

use bsl_linalg::simd::{dot, scores_block};
use bsl_linalg::topk::select_scored_into;
use bsl_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lloyd iterations after seeding (k-means converges fast on embedding
/// tables; recall is insensitive to a few extra refinements).
const KMEANS_ITERS: usize = 10;

/// An IVF-flat index: `nlist` k-means centroids plus inverted lists in
/// CSR form.
#[derive(Clone, Debug, PartialEq)]
pub struct IvfIndex {
    centroids: Matrix,
    /// CSR offsets: list `l` is `list_items[list_offsets[l] ..
    /// list_offsets[l + 1]]`.
    list_offsets: Vec<usize>,
    /// Concatenated inverted lists (a permutation of `0..n_items`; each
    /// list sorted ascending).
    list_items: Vec<u32>,
}

/// Reusable probe scratch: centroid scores, the identity id table the
/// selector walks, and the selected `(list, score)` pairs. One per
/// `Recommender`/thread — probing allocates nothing once warm.
#[derive(Default)]
pub struct ProbeScratch {
    centroid_scores: Vec<f32>,
    list_ids: Vec<u32>,
    lists: Vec<(u32, f32)>,
}

impl IvfIndex {
    /// The default list count for an `n_items` catalogue: `√n`, the
    /// classic IVF balance point (probe cost ≈ list-scan cost).
    pub fn default_nlist(n_items: usize) -> usize {
        ((n_items as f64).sqrt().round() as usize).clamp(1, n_items.max(1))
    }

    /// The default probe width: a quarter of the lists — empirically past
    /// 0.95 recall@10 on trained artifacts (see `tests/retrieval.rs`)
    /// while skipping ~¾ of the catalogue.
    pub fn default_nprobe(&self) -> usize {
        (self.nlist() / 4).max(1)
    }

    /// Builds an index over `items` (one prepared row per catalogue item)
    /// with `nlist` lists, deterministically.
    ///
    /// # Panics
    /// Panics if `items` is empty or `nlist` is 0 or exceeds the row count.
    pub fn build(items: &Matrix, nlist: usize) -> Self {
        let (n, d) = items.shape();
        assert!(n > 0, "cannot index an empty catalogue");
        assert!(nlist >= 1 && nlist <= n, "nlist must be in 1..=n_items (got {nlist} for {n})");
        let mut rng = StdRng::seed_from_u64(0x1f0f_5eed);
        let mut centroids = kmeans_pp_init(items, nlist, &mut rng);
        let mut assign = vec![0u32; n];
        let mut scores = vec![0.0f32; nlist];
        let mut half_norms = vec![0.0f32; nlist];
        for _ in 0..KMEANS_ITERS {
            // Assignment: nearest centroid in Euclidean distance, via the
            // blocked dot kernel (argmin ‖x−c‖² = argmax <x,c> − ‖c‖²/2).
            for (l, h) in half_norms.iter_mut().enumerate() {
                let c = centroids.row(l);
                *h = 0.5 * dot(c, c);
            }
            let mut moved = false;
            for (i, a) in assign.iter_mut().enumerate() {
                scores_block(items.row(i), centroids.as_slice(), &mut scores);
                let mut best = 0usize;
                let mut best_s = f32::NEG_INFINITY;
                for (l, &s) in scores.iter().enumerate() {
                    let s = s - half_norms[l];
                    if s > best_s {
                        best_s = s;
                        best = l;
                    }
                }
                if *a != best as u32 {
                    *a = best as u32;
                    moved = true;
                }
            }
            fix_empty_lists(items, &centroids, &mut assign, nlist);
            if !moved {
                break;
            }
            // Update: each centroid becomes its members' mean.
            let mut counts = vec![0usize; nlist];
            let mut sums = Matrix::zeros(nlist, d);
            for (i, &a) in assign.iter().enumerate() {
                counts[a as usize] += 1;
                let row = sums.row_mut(a as usize);
                for (s, &x) in row.iter_mut().zip(items.row(i).iter()) {
                    *s += x;
                }
            }
            for (l, &count) in counts.iter().enumerate() {
                if count > 0 {
                    let inv = 1.0 / count as f32;
                    let (src, dst) = (sums.row(l), centroids.row_mut(l));
                    for (o, &s) in dst.iter_mut().zip(src.iter()) {
                        *o = s * inv;
                    }
                }
            }
        }
        // Inverted lists in CSR form; ascending ids inside each list
        // (items are visited in id order).
        let mut counts = vec![0usize; nlist];
        for &a in &assign {
            counts[a as usize] += 1;
        }
        let mut list_offsets = vec![0usize; nlist + 1];
        for l in 0..nlist {
            list_offsets[l + 1] = list_offsets[l] + counts[l];
        }
        let mut cursor = list_offsets.clone();
        let mut list_items = vec![0u32; n];
        for (i, &a) in assign.iter().enumerate() {
            list_items[cursor[a as usize]] = i as u32;
            cursor[a as usize] += 1;
        }
        Self { centroids, list_offsets, list_items }
    }

    /// Rebuilds an index from stored parts, validating every structural
    /// invariant (the codec calls this before trusting decoded bytes).
    pub fn from_parts(
        centroids: Matrix,
        list_offsets: Vec<usize>,
        list_items: Vec<u32>,
    ) -> Result<Self, &'static str> {
        let nlist = centroids.rows();
        if nlist == 0 {
            return Err("index has zero lists");
        }
        if centroids.as_slice().iter().any(|x| !x.is_finite()) {
            return Err("non-finite centroid");
        }
        if list_offsets.len() != nlist + 1 {
            return Err("offset table length != nlist + 1");
        }
        if list_offsets[0] != 0 || *list_offsets.last().expect("non-empty") != list_items.len() {
            return Err("offset table does not span the item list");
        }
        if list_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offset table is not monotone");
        }
        let n = list_items.len();
        let mut seen = vec![false; n];
        for w in list_offsets.windows(2) {
            let list = &list_items[w[0]..w[1]];
            if list.windows(2).any(|p| p[0] >= p[1]) {
                return Err("inverted list not strictly ascending");
            }
            for &i in list {
                let i = i as usize;
                if i >= n {
                    return Err("inverted list item out of range");
                }
                if seen[i] {
                    return Err("item appears in two lists");
                }
                seen[i] = true;
            }
        }
        // seen is all-true here: n ids were inserted without duplicates.
        Ok(Self { centroids, list_offsets, list_items })
    }

    /// Number of inverted lists.
    #[inline]
    pub fn nlist(&self) -> usize {
        self.centroids.rows()
    }

    /// Number of indexed items.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.list_items.len()
    }

    /// Width of the indexed rows.
    #[inline]
    pub fn dim(&self) -> usize {
        self.centroids.cols()
    }

    /// The centroid table (`nlist × dim`).
    #[inline]
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// The CSR offsets of the inverted lists.
    #[inline]
    pub fn list_offsets(&self) -> &[usize] {
        &self.list_offsets
    }

    /// The concatenated inverted lists.
    #[inline]
    pub fn list_items(&self) -> &[u32] {
        &self.list_items
    }

    /// The members of list `l` (ascending item ids).
    #[inline]
    pub fn list(&self, l: usize) -> &[u32] {
        &self.list_items[self.list_offsets[l]..self.list_offsets[l + 1]]
    }

    /// Appends the candidate items of the `nprobe` best-scoring lists for
    /// query `q` into `candidates` (cleared first; probed-list order, ties
    /// between equal centroid scores toward the smaller list id).
    ///
    /// # Panics
    /// Panics if `q.len() != dim`.
    pub fn probe_into(
        &self,
        q: &[f32],
        nprobe: usize,
        scratch: &mut ProbeScratch,
        candidates: &mut Vec<u32>,
    ) {
        assert_eq!(q.len(), self.dim(), "query width != index dim");
        candidates.clear();
        let nprobe = nprobe.clamp(1, self.nlist());
        scratch.centroid_scores.resize(self.nlist(), 0.0);
        scores_block(q, self.centroids.as_slice(), &mut scratch.centroid_scores);
        if scratch.list_ids.len() != self.nlist() {
            scratch.list_ids = (0..self.nlist() as u32).collect();
        }
        select_scored_into(
            &scratch.centroid_scores,
            &scratch.list_ids,
            nprobe,
            |_| false,
            &mut scratch.lists,
        );
        for &(l, _) in &scratch.lists {
            candidates.extend_from_slice(self.list(l as usize));
        }
    }
}

/// k-means++ seeding: first centroid uniform, the rest D²-weighted.
fn kmeans_pp_init(items: &Matrix, nlist: usize, rng: &mut StdRng) -> Matrix {
    use bsl_linalg::simd::sq_dist;
    let (n, d) = items.shape();
    let mut centroids = Matrix::zeros(nlist, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(items.row(first));
    // d2[i] = distance to the nearest chosen centroid so far.
    let mut d2: Vec<f32> = (0..n).map(|i| sq_dist(items.row(i), centroids.row(0))).collect();
    for c in 1..nlist {
        let total: f64 = d2.iter().map(|&x| x as f64).sum();
        let pick = if total > 0.0 {
            let mut t = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &x) in d2.iter().enumerate() {
                t -= x as f64;
                if t <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        } else {
            // Degenerate table (all rows identical): spread uniformly.
            rng.gen_range(0..n)
        };
        centroids.row_mut(c).copy_from_slice(items.row(pick));
        for (i, x) in d2.iter_mut().enumerate() {
            *x = x.min(sq_dist(items.row(i), centroids.row(c)));
        }
    }
    centroids
}

/// Reassigns the farthest-from-home items into any empty lists so every
/// centroid keeps at least one member (deterministic: scans in id order).
fn fix_empty_lists(items: &Matrix, centroids: &Matrix, assign: &mut [u32], nlist: usize) {
    use bsl_linalg::simd::sq_dist;
    let mut counts = vec![0usize; nlist];
    for &a in assign.iter() {
        counts[a as usize] += 1;
    }
    for l in 0..nlist {
        if counts[l] > 0 {
            continue;
        }
        // Steal the item farthest from its current centroid, from a list
        // that can spare one.
        let mut worst: Option<(usize, f32)> = None;
        for (i, &a) in assign.iter().enumerate() {
            if counts[a as usize] <= 1 {
                continue;
            }
            let dist = sq_dist(items.row(i), centroids.row(a as usize));
            if worst.map_or(true, |(_, w)| dist > w) {
                worst = Some((i, dist));
            }
        }
        if let Some((i, _)) = worst {
            counts[assign[i] as usize] -= 1;
            assign[i] = l as u32;
            counts[l] = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::gaussian(n, d, 1.0, &mut rng)
    }

    #[test]
    fn lists_partition_the_catalogue() {
        let items = table(200, 9, 3);
        let idx = IvfIndex::build(&items, 14);
        assert_eq!(idx.nlist(), 14);
        assert_eq!(idx.n_items(), 200);
        let mut seen = [false; 200];
        for l in 0..idx.nlist() {
            let list = idx.list(l);
            assert!(list.windows(2).all(|w| w[0] < w[1]), "list {l} not ascending");
            for &i in list {
                assert!(!seen[i as usize], "item {i} in two lists");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some item in no list");
    }

    #[test]
    fn build_is_deterministic() {
        let items = table(120, 7, 9);
        assert_eq!(IvfIndex::build(&items, 10), IvfIndex::build(&items, 10));
    }

    #[test]
    fn no_list_is_empty() {
        // Heavily clustered data tempts k-means into empty lists.
        let items = Matrix::from_fn(64, 4, |r, c| if r < 60 { 0.0 } else { (r + c) as f32 });
        let idx = IvfIndex::build(&items, 8);
        for l in 0..idx.nlist() {
            assert!(!idx.list(l).is_empty(), "list {l} empty");
        }
    }

    #[test]
    fn probing_all_lists_yields_every_item() {
        let items = table(90, 6, 1);
        let idx = IvfIndex::build(&items, 9);
        let mut scratch = ProbeScratch::default();
        let mut cand = Vec::new();
        idx.probe_into(items.row(0), idx.nlist(), &mut scratch, &mut cand);
        assert_eq!(cand.len(), 90);
        let mut sorted = cand.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..90u32).collect::<Vec<_>>());
    }

    #[test]
    fn probe_prefers_the_query_home_list() {
        // Two obvious clusters; a query deep inside one must probe that
        // cluster's list first.
        let items = Matrix::from_fn(40, 2, |r, _| if r < 20 { 5.0 } else { -5.0 });
        let idx = IvfIndex::build(&items, 2);
        let mut scratch = ProbeScratch::default();
        let mut cand = Vec::new();
        idx.probe_into(&[5.0, 5.0], 1, &mut scratch, &mut cand);
        assert!(cand.contains(&0), "home cluster must be probed");
        assert!(!cand.contains(&39), "far cluster must not be probed at nprobe=1");
    }

    #[test]
    fn from_parts_validates_structure() {
        let items = table(30, 4, 5);
        let idx = IvfIndex::build(&items, 5);
        // A faithful rebuild passes.
        assert!(IvfIndex::from_parts(
            idx.centroids().clone(),
            idx.list_offsets().to_vec(),
            idx.list_items().to_vec(),
        )
        .is_ok());
        // Truncated item list.
        let short = idx.list_items()[..idx.n_items() - 1].to_vec();
        assert!(IvfIndex::from_parts(idx.centroids().clone(), idx.list_offsets().to_vec(), short)
            .is_err());
        // Duplicated item.
        let mut dup = idx.list_items().to_vec();
        dup[0] = dup[1];
        assert!(IvfIndex::from_parts(idx.centroids().clone(), idx.list_offsets().to_vec(), dup)
            .is_err());
        // Non-monotone offsets.
        let mut bad = idx.list_offsets().to_vec();
        bad[1] = bad[2] + 1;
        assert!(
            IvfIndex::from_parts(idx.centroids().clone(), bad, idx.list_items().to_vec()).is_err()
        );
        // Non-finite centroid.
        let mut c = idx.centroids().clone();
        c.set(0, 0, f32::NAN);
        assert!(IvfIndex::from_parts(c, idx.list_offsets().to_vec(), idx.list_items().to_vec())
            .is_err());
    }

    #[test]
    fn default_parameters_are_sane() {
        assert_eq!(IvfIndex::default_nlist(0), 1);
        assert_eq!(IvfIndex::default_nlist(1), 1);
        assert_eq!(IvfIndex::default_nlist(800), 28);
        let items = table(100, 4, 2);
        let idx = IvfIndex::build(&items, IvfIndex::default_nlist(100));
        assert_eq!(idx.nlist(), 10);
        assert_eq!(idx.default_nprobe(), 2);
    }
}
