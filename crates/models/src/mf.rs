//! Matrix factorization — the simplest backbone (Koren et al.), and the
//! body of CML when configured with unit-ball projection and distance
//! scores.

use crate::backbone::{Backbone, EvalScore, Hyper, TrainScore};
use crate::grad::GradBuffer;
use bsl_data::Dataset;
use bsl_linalg::kernels::norm;
use bsl_linalg::Matrix;
use bsl_opt::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Matrix factorization: final embeddings *are* the parameters, so the
/// backward pass is the identity and updates touch only the batch's rows
/// (lazy Adam).
pub struct Mf {
    user_emb: Matrix,
    item_emb: Matrix,
    adam_u: Adam,
    adam_i: Adam,
    /// CML mode: squared-distance scores + unit-ball projection.
    cml: bool,
}

impl Mf {
    /// Xavier-initialized MF with embedding size `dim`.
    pub fn new(ds: &Arc<Dataset>, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            user_emb: Matrix::xavier_uniform(ds.n_users, dim, &mut rng),
            item_emb: Matrix::xavier_uniform(ds.n_items, dim, &mut rng),
            adam_u: Adam::new(ds.n_users, dim),
            adam_i: Adam::new(ds.n_items, dim),
            cml: false,
        }
    }

    /// CML (Hsieh et al., WWW'17): the same factorization body, but scores
    /// are negated squared Euclidean distances and embeddings are projected
    /// back into the unit ball after every step.
    pub fn new_cml(ds: &Arc<Dataset>, dim: usize, seed: u64) -> Self {
        let mut mf = Self::new(ds, dim, seed);
        mf.cml = true;
        mf
    }

    fn project_unit_ball(m: &mut Matrix, rows: &[u32]) {
        for &r in rows {
            let row = m.row_mut(r as usize);
            let n = norm(row);
            if n > 1.0 {
                let inv = 1.0 / n;
                for x in row.iter_mut() {
                    *x *= inv;
                }
            }
        }
    }
}

impl Backbone for Mf {
    fn name(&self) -> &'static str {
        if self.cml {
            "CML"
        } else {
            "MF"
        }
    }

    fn n_users(&self) -> usize {
        self.user_emb.rows()
    }

    fn n_items(&self) -> usize {
        self.item_emb.rows()
    }

    fn out_dim(&self) -> usize {
        self.user_emb.cols()
    }

    fn forward(&mut self, _rng: &mut StdRng) {
        // Final embeddings are the parameters; nothing to recompute.
    }

    fn user_factors(&self) -> &Matrix {
        &self.user_emb
    }

    fn item_factors(&self) -> &Matrix {
        &self.item_emb
    }

    fn step(
        &mut self,
        grads: &GradBuffer,
        _batch_users: &[u32],
        _batch_items: &[u32],
        hp: Hyper,
        _rng: &mut StdRng,
    ) -> f64 {
        self.adam_u.begin_step();
        let mut row_buf = vec![0.0f32; self.out_dim()];
        for &u in grads.touched_users() {
            let ui = u as usize;
            row_buf.copy_from_slice(grads.users().row(ui));
            // Coupled L2 on the touched row.
            bsl_linalg::kernels::axpy(hp.l2, self.user_emb.row(ui), &mut row_buf);
            self.adam_u.update_row(self.user_emb.row_mut(ui), ui, &row_buf, hp.lr);
        }
        self.adam_i.begin_step();
        for &i in grads.touched_items() {
            let ii = i as usize;
            row_buf.copy_from_slice(grads.items().row(ii));
            bsl_linalg::kernels::axpy(hp.l2, self.item_emb.row(ii), &mut row_buf);
            self.adam_i.update_row(self.item_emb.row_mut(ii), ii, &row_buf, hp.lr);
        }
        if self.cml {
            Self::project_unit_ball(&mut self.user_emb, grads.touched_users());
            Self::project_unit_ball(&mut self.item_emb, grads.touched_items());
        }
        0.0
    }

    fn train_score(&self) -> TrainScore {
        if self.cml {
            TrainScore::NegSqDist
        } else {
            TrainScore::Cosine
        }
    }

    fn params_mut(&mut self) -> Option<(&mut Matrix, &mut Matrix)> {
        if self.cml {
            // CML projects updated rows back into the unit ball after each
            // step; raw in-place updates would skip that invariant.
            None
        } else {
            Some((&mut self.user_emb, &mut self.item_emb))
        }
    }

    fn eval_score(&self) -> EvalScore {
        if self.cml {
            EvalScore::NegSqDist
        } else {
            EvalScore::Cosine
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};

    fn setup() -> (Arc<Dataset>, Mf, StdRng) {
        let ds = Arc::new(generate(&SynthConfig::tiny(1)));
        let mf = Mf::new(&ds, 8, 3);
        (ds, mf, StdRng::seed_from_u64(0))
    }

    #[test]
    fn step_moves_only_touched_rows() {
        let (ds, mut mf, mut rng) = setup();
        let before_u = mf.user_emb.clone();
        let before_i = mf.item_emb.clone();
        let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 8);
        grads.user_row_mut(2).iter_mut().for_each(|g| *g = 0.5);
        grads.item_row_mut(7).iter_mut().for_each(|g| *g = -0.5);
        mf.forward(&mut rng);
        mf.step(&grads, &[2], &[7], Hyper { lr: 0.01, l2: 0.0 }, &mut rng);
        assert_ne!(mf.user_emb.row(2), before_u.row(2));
        assert_ne!(mf.item_emb.row(7), before_i.row(7));
        assert_eq!(mf.user_emb.row(0), before_u.row(0));
        assert_eq!(mf.item_emb.row(0), before_i.row(0));
    }

    #[test]
    fn l2_shrinks_parameters_without_gradient_signal() {
        let (ds, mut mf, mut rng) = setup();
        // Touch a row with zero task gradient but non-zero L2.
        let norm_before = norm(mf.user_emb.row(1));
        let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 8);
        let _ = grads.user_row_mut(1); // mark touched, leave zero
        for _ in 0..50 {
            mf.step(&grads, &[1], &[], Hyper { lr: 0.01, l2: 1.0 }, &mut rng);
        }
        assert!(norm(mf.user_emb.row(1)) < norm_before);
    }

    #[test]
    fn cml_projects_into_unit_ball() {
        let ds = Arc::new(generate(&SynthConfig::tiny(2)));
        let mut cml = Mf::new_cml(&ds, 8, 3);
        let mut rng = StdRng::seed_from_u64(1);
        // Blow a row up past the ball, then take a step touching it.
        for x in cml.user_emb.row_mut(0) {
            *x = 10.0;
        }
        let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 8);
        let _ = grads.user_row_mut(0);
        cml.step(&grads, &[0], &[], Hyper { lr: 1e-6, l2: 0.0 }, &mut rng);
        assert!(norm(cml.user_emb.row(0)) <= 1.0 + 1e-5);
        assert_eq!(cml.name(), "CML");
        assert_eq!(cml.eval_score(), EvalScore::NegSqDist);
        assert_eq!(cml.train_score(), TrainScore::NegSqDist);
    }

    #[test]
    fn identity_backward_descends_a_linear_objective() {
        // L = <c, user_emb[0]>; grad on final = c; repeated steps must
        // decrease L — MF's backward pass is the identity, so this checks
        // the full step plumbing.
        let (ds, mut mf, mut rng) = setup();
        let c: Vec<f32> = (0..8).map(|k| if k % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let l = |m: &Mf| bsl_linalg::kernels::dot(m.user_emb.row(0), &c) as f64;
        let before = l(&mf);
        for _ in 0..20 {
            let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 8);
            grads.user_row_mut(0).copy_from_slice(&c);
            mf.step(&grads, &[0], &[], Hyper { lr: 0.05, l2: 0.0 }, &mut rng);
        }
        assert!(l(&mf) < before, "{} vs {before}", l(&mf));
    }
}
