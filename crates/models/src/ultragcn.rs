//! UltraGCN-lite (Mao et al., CIKM'21): skips explicit message passing and
//! instead bakes the graph into *per-edge constraint weights* on a BCE
//! objective:
//!
//! ```text
//! β_{u,i} = (1/d_u)·sqrt((d_u+1)/(d_i+1))
//! L = −Σ (1 + λ·β_{u,i})·log σ(u·i)  −  Σ_j log σ(−u·j)
//! ```
//!
//! This is the main (`L_C + L_O`) branch of UltraGCN; the item–item
//! co-occurrence constraint is omitted (documented in DESIGN.md — it is a
//! second additive term of the same shape, not a different mechanism).

use bsl_data::Dataset;
use bsl_linalg::kernels::{axpy, dot};
use bsl_linalg::stats::sigmoid;
use bsl_linalg::Matrix;
use bsl_opt::Adam;
use bsl_sampling::{BatchIter, UniformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// UltraGCN-lite hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UltraGcnConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Constraint-loss weight λ.
    pub lambda: f32,
    /// Negatives per positive.
    pub negatives: usize,
    /// Negative-loss weight.
    pub neg_weight: f32,
    /// Learning rate.
    pub lr: f32,
    /// L2 coefficient.
    pub l2: f32,
    /// Batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UltraGcnConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            lambda: 1.0,
            negatives: 64,
            neg_weight: 1.0,
            lr: 1e-3,
            l2: 1e-5,
            batch_size: 512,
            epochs: 60,
            seed: 0,
        }
    }
}

/// The UltraGCN constraint weights `β_{u,i}` for every training edge order
/// (`d_u`, `d_i` are train-split degrees; isolated nodes get degree 1).
pub fn constraint_weight(d_u: usize, d_i: usize) -> f32 {
    let du = d_u.max(1) as f32;
    let di = d_i.max(1) as f32;
    (1.0 / du) * ((du + 1.0) / (di + 1.0)).sqrt()
}

/// Trains UltraGCN-lite and returns `(user_emb, item_emb)` (dot-product
/// scoring).
///
/// # Panics
/// Panics on degenerate hyperparameters (zero dim/epochs/batch/negatives).
pub fn train_ultragcn(ds: &Arc<Dataset>, cfg: &UltraGcnConfig) -> (Matrix, Matrix) {
    assert!(cfg.dim > 0 && cfg.epochs > 0 && cfg.batch_size > 0 && cfg.negatives > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut user_emb = Matrix::xavier_uniform(ds.n_users, cfg.dim, &mut rng);
    let mut item_emb = Matrix::xavier_uniform(ds.n_items, cfg.dim, &mut rng);
    let mut adam_u = Adam::new(ds.n_users, cfg.dim);
    let mut adam_i = Adam::new(ds.n_items, cfg.dim);
    let du = ds.train.row_degrees();
    let di = ds.train.col_degrees();
    let sampler = UniformSampler::new(ds.clone());

    let mut gu_rows: Vec<(u32, Vec<f32>)> = Vec::new();
    let mut gi_rows: Vec<(u32, Vec<f32>)> = Vec::new();
    for epoch in 0..cfg.epochs {
        let seed = cfg.seed ^ (epoch as u64).wrapping_mul(0x9E3779B97F4A7C15);
        for batch in BatchIter::new(ds, &sampler, cfg.batch_size, cfg.negatives, seed) {
            gu_rows.clear();
            gi_rows.clear();
            let inv_b = 1.0 / batch.len() as f32;
            for b in 0..batch.len() {
                let u = batch.users[b] as usize;
                let i = batch.pos[b] as usize;
                let urow = user_emb.row(u).to_vec();
                let mut gu = vec![0.0f32; cfg.dim];
                // Positive term with constraint weight.
                let beta = constraint_weight(du[u], di[i]);
                let w = (1.0 + cfg.lambda * beta) * inv_b;
                let s = dot(&urow, item_emb.row(i));
                let coef = -w * (1.0 - sigmoid(s)); // d(−w·logσ(s))/ds = −w(1−σ)
                axpy(coef, item_emb.row(i), &mut gu);
                let mut gi = vec![0.0f32; cfg.dim];
                axpy(coef, &urow, &mut gi);
                gi_rows.push((i as u32, gi));
                // Negatives.
                let wn = cfg.neg_weight * inv_b / cfg.negatives as f32;
                for &j in batch.negs_of(b) {
                    let jrow = item_emb.row(j as usize);
                    let s = dot(&urow, jrow);
                    let coef = wn * sigmoid(s); // d(−w·logσ(−s))/ds = w·σ(s)
                    axpy(coef, jrow, &mut gu);
                    let mut gj = vec![0.0f32; cfg.dim];
                    axpy(coef, &urow, &mut gj);
                    gi_rows.push((j, gj));
                }
                gu_rows.push((u as u32, gu));
            }
            // Apply: coalesce rows, add L2, lazy Adam.
            adam_u.begin_step();
            coalesce(&mut gu_rows);
            for (u, g) in &mut gu_rows {
                let r = *u as usize;
                axpy(cfg.l2, user_emb.row(r), g);
                adam_u.update_row(user_emb.row_mut(r), r, g, cfg.lr);
            }
            adam_i.begin_step();
            coalesce(&mut gi_rows);
            for (i, g) in &mut gi_rows {
                let r = *i as usize;
                axpy(cfg.l2, item_emb.row(r), g);
                adam_i.update_row(item_emb.row_mut(r), r, g, cfg.lr);
            }
        }
    }
    (user_emb, item_emb)
}

/// Sums gradient rows with equal index (stable order of first occurrence).
fn coalesce(rows: &mut Vec<(u32, Vec<f32>)>) {
    rows.sort_by_key(|(idx, _)| *idx);
    let mut out: Vec<(u32, Vec<f32>)> = Vec::with_capacity(rows.len());
    for (idx, g) in rows.drain(..) {
        match out.last_mut() {
            Some((last, acc)) if *last == idx => {
                for (a, b) in acc.iter_mut().zip(g.iter()) {
                    *a += b;
                }
            }
            _ => out.push((idx, g)),
        }
    }
    *rows = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};

    #[test]
    fn constraint_weights_favour_unpopular_items() {
        // Same user degree: rarer item ⇒ larger β (its edge is more
        // informative), matching UltraGCN's Eq. 10.
        assert!(constraint_weight(10, 2) > constraint_weight(10, 50));
        // Degenerate degrees stay finite.
        assert!(constraint_weight(0, 0).is_finite());
    }

    #[test]
    fn coalesce_sums_duplicates() {
        let mut rows = vec![(3u32, vec![1.0, 0.0]), (1, vec![0.5, 0.5]), (3, vec![1.0, 2.0])];
        coalesce(&mut rows);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (1, vec![0.5, 0.5]));
        assert_eq!(rows[1], (3, vec![2.0, 2.0]));
    }

    #[test]
    fn training_separates_positives_from_negatives() {
        let ds = Arc::new(generate(&SynthConfig::tiny(5)));
        let cfg = UltraGcnConfig {
            dim: 16,
            epochs: 25,
            batch_size: 128,
            negatives: 8,
            lr: 5e-3,
            ..UltraGcnConfig::default()
        };
        let (u, i) = train_ultragcn(&ds, &cfg);
        let mut pos = 0.0f64;
        let mut neg = 0.0f64;
        let mut n_pos = 0usize;
        let mut n_neg = 0usize;
        for uu in 0..ds.n_users {
            for ii in 0..ds.n_items {
                let s = dot(u.row(uu), i.row(ii)) as f64;
                if ds.train.contains(uu, ii as u32) {
                    pos += s;
                    n_pos += 1;
                } else {
                    neg += s;
                    n_neg += 1;
                }
            }
        }
        pos /= n_pos as f64;
        neg /= n_neg as f64;
        assert!(pos > neg + 0.3, "positives {pos} vs negatives {neg}");
    }

    #[test]
    fn deterministic_in_seed() {
        let ds = Arc::new(generate(&SynthConfig::tiny(6)));
        let cfg = UltraGcnConfig {
            dim: 4,
            epochs: 2,
            batch_size: 64,
            negatives: 4,
            ..Default::default()
        };
        let (a, _) = train_ultragcn(&ds, &cfg);
        let (b, _) = train_ultragcn(&ds, &cfg);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
