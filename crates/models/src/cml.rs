//! CML evaluation helpers.
//!
//! CML ([`crate::Mf::new_cml`]) ranks by negated squared Euclidean
//! distance. Distance ranking reduces to inner-product ranking after an
//! embedding augmentation, so the standard dot-product evaluator can be
//! reused unchanged:
//!
//! ```text
//! −||u − i||² ranks like 2·u·i − ||i||²  =  <[2u, −1], [i, ||i||²]>
//! ```

use bsl_linalg::kernels::dot;
use bsl_linalg::Matrix;

/// Transforms `(users, items)` so that dot-product ranking of the outputs
/// equals squared-distance ranking of the inputs (per user).
pub fn euclidean_rank_embeddings(users: &Matrix, items: &Matrix) -> (Matrix, Matrix) {
    assert_eq!(users.cols(), items.cols(), "dimension mismatch");
    let d = users.cols();
    let mut u_out = Matrix::zeros(users.rows(), d + 1);
    for r in 0..users.rows() {
        let dst = u_out.row_mut(r);
        for (j, &x) in users.row(r).iter().enumerate() {
            dst[j] = 2.0 * x;
        }
        dst[d] = -1.0;
    }
    let mut i_out = Matrix::zeros(items.rows(), d + 1);
    for r in 0..items.rows() {
        let row = items.row(r);
        let sq = dot(row, row);
        let dst = i_out.row_mut(r);
        dst[..d].copy_from_slice(row);
        dst[d] = sq;
    }
    (u_out, i_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_linalg::kernels::sq_dist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn augmented_dot_ranks_like_negative_distance() {
        let mut rng = StdRng::seed_from_u64(5);
        let users = Matrix::gaussian(4, 6, 1.0, &mut rng);
        let items = Matrix::gaussian(9, 6, 1.0, &mut rng);
        let (au, ai) = euclidean_rank_embeddings(&users, &items);
        for u in 0..4 {
            // Rank items both ways; the orders must agree.
            let by_dist: Vec<usize> = {
                let mut idx: Vec<usize> = (0..9).collect();
                idx.sort_by(|&a, &b| {
                    sq_dist(users.row(u), items.row(a))
                        .total_cmp(&sq_dist(users.row(u), items.row(b)))
                });
                idx
            };
            let by_dot: Vec<usize> = {
                let mut idx: Vec<usize> = (0..9).collect();
                idx.sort_by(|&a, &b| {
                    dot(au.row(u), ai.row(b)).total_cmp(&dot(au.row(u), ai.row(a)))
                });
                idx
            };
            assert_eq!(by_dist, by_dot, "user {u} ranking mismatch");
        }
    }

    #[test]
    fn augmented_shapes() {
        let users = Matrix::zeros(3, 4);
        let items = Matrix::zeros(5, 4);
        let (au, ai) = euclidean_rank_embeddings(&users, &items);
        assert_eq!(au.shape(), (3, 5));
        assert_eq!(ai.shape(), (5, 5));
    }
}
