//! LR-GCCF (Chen et al., AAAI'20): GCN-based CF with the non-linearities
//! removed and residual connections added, which the paper lists among the
//! Table-II baselines. Propagation:
//!
//! ```text
//! e^k = Â·e^{k-1} + e^{k-1},    final = (1/(K+1)) Σ_k e^k
//! ```
//!
//! The operator `(Â+I)` is symmetric, so — exactly as for LightGCN — the
//! backward pass is the forward map applied to the output gradient.

use crate::backbone::{Backbone, EvalScore, Hyper};
use crate::grad::GradBuffer;
use crate::lightgcn::LightGcn;
use bsl_data::Dataset;
use bsl_linalg::Matrix;
use bsl_opt::Adam;
use bsl_sparse::NormAdj;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Linear residual graph CF.
pub struct LrGccf {
    user_base: Matrix,
    item_base: Matrix,
    adj: NormAdj,
    layers: usize,
    fin_u: Matrix,
    fin_i: Matrix,
    adam_u: Adam,
    adam_i: Adam,
}

impl LrGccf {
    /// Builds LR-GCCF on `ds`'s training graph.
    ///
    /// # Panics
    /// Panics if `layers == 0`.
    pub fn new(ds: &Arc<Dataset>, dim: usize, layers: usize, seed: u64) -> Self {
        assert!(layers > 0, "need at least one layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = NormAdj::from_interactions(ds.n_users, ds.n_items, &ds.train_pairs());
        Self {
            user_base: Matrix::xavier_uniform(ds.n_users, dim, &mut rng),
            item_base: Matrix::xavier_uniform(ds.n_items, dim, &mut rng),
            adj,
            layers,
            fin_u: Matrix::zeros(ds.n_users, dim),
            fin_i: Matrix::zeros(ds.n_items, dim),
            adam_u: Adam::new(ds.n_users, dim),
            adam_i: Adam::new(ds.n_items, dim),
        }
    }

    /// `final = (1/(K+1)) Σ_k (Â+I)^k x` — symmetric, hence also the
    /// backward map.
    fn residual_mean(&self, u0: &Matrix, i0: &Matrix) -> (Matrix, Matrix) {
        let coef = 1.0 / (self.layers + 1) as f32;
        let mut cur_u = u0.clone();
        let mut cur_i = i0.clone();
        let mut out_u = u0.clone();
        let mut out_i = i0.clone();
        for _ in 0..self.layers {
            let (pu, pi) = self.adj.propagate(&cur_u, &cur_i);
            cur_u.add_assign(&pu); // residual: e ← Âe + e
            cur_i.add_assign(&pi);
            out_u.add_assign(&cur_u);
            out_i.add_assign(&cur_i);
        }
        out_u.scale(coef);
        out_i.scale(coef);
        (out_u, out_i)
    }

    /// Exact base-embedding gradients (test hook).
    pub fn backward_base(&self, grads: &GradBuffer) -> (Matrix, Matrix) {
        self.residual_mean(grads.users(), grads.items())
    }
}

impl Backbone for LrGccf {
    fn name(&self) -> &'static str {
        "LR-GCCF"
    }

    fn n_users(&self) -> usize {
        self.user_base.rows()
    }

    fn n_items(&self) -> usize {
        self.item_base.rows()
    }

    fn out_dim(&self) -> usize {
        self.user_base.cols()
    }

    fn forward(&mut self, _rng: &mut StdRng) {
        let (u, i) = self.residual_mean(&self.user_base, &self.item_base);
        self.fin_u = u;
        self.fin_i = i;
    }

    fn user_factors(&self) -> &Matrix {
        &self.fin_u
    }

    fn item_factors(&self) -> &Matrix {
        &self.fin_i
    }

    fn step(
        &mut self,
        grads: &GradBuffer,
        _batch_users: &[u32],
        _batch_items: &[u32],
        hp: Hyper,
        _rng: &mut StdRng,
    ) -> f64 {
        let (gu, gi) = self.backward_base(grads);
        LightGcn::apply_base_update(
            &mut self.user_base,
            &mut self.item_base,
            &mut self.adam_u,
            &mut self.adam_i,
            gu,
            gi,
            grads,
            hp,
        );
        0.0
    }

    fn eval_score(&self) -> EvalScore {
        EvalScore::Dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};

    #[test]
    fn residual_amplifies_relative_to_lightgcn_mean() {
        // With residual connections, e^k ≥ contributions of plain Â^k; on
        // an all-ones embedding over a connected graph the residual mean
        // has strictly larger norm than the base.
        let ds = Arc::new(generate(&SynthConfig::tiny(3)));
        let mut m = LrGccf::new(&ds, 4, 2, 1);
        for x in m.user_base.as_mut_slice().iter_mut() {
            *x = 1.0;
        }
        for x in m.item_base.as_mut_slice().iter_mut() {
            *x = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(0);
        m.forward(&mut rng);
        assert!(m.user_factors().frob_norm() > m.user_base.frob_norm());
    }

    /// Self-adjointness of the residual-mean operator: the backward pass
    /// is exact iff `<F(x), y> = <x, F(y)>`.
    #[test]
    fn residual_mean_is_self_adjoint() {
        let ds = Arc::new(generate(&SynthConfig::tiny(5)));
        let m = LrGccf::new(&ds, 5, 3, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let xu = Matrix::gaussian(ds.n_users, 5, 1.0, &mut rng);
        let xi = Matrix::gaussian(ds.n_items, 5, 1.0, &mut rng);
        let yu = Matrix::gaussian(ds.n_users, 5, 1.0, &mut rng);
        let yi = Matrix::gaussian(ds.n_items, 5, 1.0, &mut rng);
        let (fxu, fxi) = m.residual_mean(&xu, &xi);
        let (fyu, fyi) = m.residual_mean(&yu, &yi);
        let inner = |a: &Matrix, b: &Matrix| -> f64 {
            a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x as f64 * y as f64).sum()
        };
        let lhs = inner(&fxu, &yu) + inner(&fxi, &yi);
        let rhs = inner(&xu, &fyu) + inner(&xi, &fyi);
        assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn step_descends_linear_objective() {
        let ds = Arc::new(generate(&SynthConfig::tiny(7)));
        let mut m = LrGccf::new(&ds, 4, 2, 9);
        let mut rng = StdRng::seed_from_u64(1);
        let c = [1.0f32, -1.0, 0.5, -0.5];
        let l = |m: &mut LrGccf, rng: &mut StdRng| -> f64 {
            m.forward(rng);
            bsl_linalg::kernels::dot(m.item_factors().row(2), &c) as f64
        };
        let before = l(&mut m, &mut rng);
        for _ in 0..15 {
            m.forward(&mut rng);
            let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 4);
            grads.item_row_mut(2).copy_from_slice(&c);
            m.step(&grads, &[], &[2], Hyper { lr: 0.05, l2: 0.0 }, &mut rng);
        }
        assert!(l(&mut m, &mut rng) < before);
    }
}
