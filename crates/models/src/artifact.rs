//! The frozen train→serve boundary: [`ModelArtifact`].
//!
//! Training produces parameters; retrieval needs *prepared score tables*.
//! An artifact freezes a backbone's final embeddings into the form the
//! serving dot product wants — rows pre-normalized for cosine backbones,
//! the CML distance augmentation pre-baked — so that evaluation and
//! serving never repay per-query preparation and **always score with one
//! blocked kernel** ([`scores_block`], or its fused int8 twin
//! [`scores_block_i8`] for quantized tables). `bsl-eval` ranks through the
//! same tables, which is what makes "metrics offline" and "scores online"
//! bit-identical.
//!
//! Artifacts round-trip through a compact self-describing binary format
//! (manual little-endian codec, no external dependencies). Format **v1**
//! is the original f32-only layout and is still written for plain f32
//! artifacts without an index — old files stay byte-for-byte valid:
//!
//! ```text
//! offset  size  field                         (format v1)
//!      0     4  magic  b"BSLA"
//!      4     4  format version (u32 = 1)
//!      8     8  FNV-1a 64 checksum of every byte from offset 16 on
//!     16     1  similarity code (0 = dot, 1 = cosine, 2 = -||u-i||²)
//!     17     1  backbone label length L
//!     18     2  reserved (zero)
//!     20     8  n_users (u64)
//!     28     8  n_items (u64)
//!     36     8  dim (u64) — the *prepared* width (CML stores d+1)
//!     44     L  backbone label (UTF-8)
//!   44+L     …  user table  (n_users·dim little-endian f32)
//!      …     …  item table  (n_items·dim little-endian f32)
//! ```
//!
//! Format **v2** carries int8-quantized tables and/or an IVF index. The
//! first 18 bytes match v1; byte 18 becomes a flags field (bit 0 = int8
//! tables, bit 1 = IVF index present, all other bits must be zero) and
//! the fixed header grows to 52 bytes:
//!
//! ```text
//! offset  size  field                         (format v2)
//!      0    18  as v1 (version = 2)
//!     18     1  flags (bit0 int8, bit1 index)
//!     19     1  reserved (zero)
//!     20    24  n_users / n_items / dim (u64 each, as v1)
//!     44     8  nlist (u64; 0 iff the index flag is clear)
//!     52     L  backbone label (UTF-8)
//!   52+L     …  tables:
//!                f32:  user table, item table      (f32 rows, as v1)
//!                int8: user table (f32 rows, as v1), then
//!                      item scales (n_items f32), item rows (n_items·dim i8)
//!      …     …  index (only with bit1):
//!                list_offsets ((nlist+1) u64), list_items (n_items u32),
//!                centroids (nlist·dim f32)
//! ```
//!
//! `f32 → to_le_bytes → from_le_bytes` is lossless, so a loaded artifact
//! reproduces the saved one bit for bit; the checksum covers the header
//! fields and every payload section. The decoder validates in a fixed
//! order — magic, version, fixed header fields, checked-arithmetic total
//! size against the actual byte count, checksum, then semantic invariants
//! (similarity code, finite non-negative scales, inverted-list partition
//! via [`IvfIndex::from_parts`]) — so no allocation is ever sized by an
//! unverified header field.
//!
//! [`scores_block_i8`]: bsl_linalg::simd::scores_block_i8

use crate::backbone::EvalScore;
use crate::cml::euclidean_rank_embeddings;
use crate::ivf::IvfIndex;
use crate::quant::QuantizedTable;
use bsl_linalg::kernels::dot;
use bsl_linalg::simd::{normalize_rows_into, scores_block};
use bsl_linalg::Matrix;
use std::io::Write;
use std::path::Path;

/// Artifact format magic bytes.
const MAGIC: [u8; 4] = *b"BSLA";
/// Current artifact format version (v1 is still read *and written* for
/// plain f32 artifacts without an index).
pub const FORMAT_VERSION: u32 = 2;
/// Fixed v1 header length (everything before the variable-length label).
const HEADER_LEN_V1: usize = 44;
/// Fixed v2 header length.
const HEADER_LEN_V2: usize = 52;
/// Offset of the first checksummed byte (just past the checksum field).
const CHECKSUM_START: usize = 16;
/// v2 flags bit: tables are int8-quantized.
const FLAG_INT8: u8 = 1 << 0;
/// v2 flags bit: an IVF index section follows the tables.
const FLAG_INDEX: u8 = 1 << 1;

/// Errors from decoding or file I/O on an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the `BSLA` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The byte stream is shorter than its header promises.
    Truncated {
        /// Bytes the header declares.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The stored checksum does not match the content.
    ChecksumMismatch,
    /// A header field or payload section is internally inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::BadMagic => write!(f, "not a BSL artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact format version {v} (this build reads ≤ {FORMAT_VERSION})"
                )
            }
            ArtifactError::Truncated { expected, got } => {
                write!(f, "truncated artifact: header promises {expected} bytes, file has {got}")
            }
            ArtifactError::ChecksumMismatch => {
                write!(f, "artifact checksum mismatch (corrupted file)")
            }
            ArtifactError::Malformed(what) => write!(f, "malformed artifact: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes`, continuing from `state` (seed with
/// [`fnv1a64_init`]).
fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x100_0000_01b3);
    }
    state
}

/// FNV-1a 64 offset basis.
fn fnv1a64_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

fn similarity_code(s: EvalScore) -> u8 {
    match s {
        EvalScore::Dot => 0,
        EvalScore::Cosine => 1,
        EvalScore::NegSqDist => 2,
    }
}

fn similarity_from_code(c: u8) -> Option<EvalScore> {
    match c {
        0 => Some(EvalScore::Dot),
        1 => Some(EvalScore::Cosine),
        2 => Some(EvalScore::NegSqDist),
        _ => None,
    }
}

/// The numeric precision an artifact's score tables are stored at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// Full-precision f32 rows (format v1, or v2 with the int8 flag clear).
    F32,
    /// Asymmetric quantization (format v2): the catalogue-dominant item
    /// table is per-row-scaled int8 and queries stay f32 user rows, scored
    /// through the fused dequant-dot kernels — ~4× smaller item table,
    /// NDCG-neutral to ≤ 1e-3.
    Int8,
}

/// The prepared score tables at either precision. Int8 is *asymmetric*:
/// only the item table is quantized — the fused kernels take an f32 query
/// against int8 rows, so keeping queries full-precision costs nothing at
/// serve time and halves the quantization noise per score.
#[derive(Clone, Debug)]
enum Tables {
    F32 { users: Matrix, items: Matrix },
    Int8 { users: Matrix, items: QuantizedTable },
}

/// A frozen, self-describing snapshot of a trained model, ready to serve.
///
/// The stored tables are *prepared*: cosine backbones are row-normalized
/// and CML's distance ranking is converted to an equivalent inner product
/// by the `(2u, -1) · (i, ||i||²)` augmentation, so every retrieval —
/// `bsl-eval`'s full ranking, `bsl-serve`'s `recommend`, the IVF probe —
/// is a plain blocked dot product over these rows. The original
/// similarity convention is kept as metadata in [`similarity`].
///
/// Two orthogonal extras ride on the same artifact:
///
/// * [`quantize`](Self::quantize) rewrites both tables as per-row int8
///   ([`QuantizedTable`]), scored through the fused dequant-dot kernels;
/// * [`build_ivf`](Self::build_ivf) attaches an [`IvfIndex`] over the
///   prepared item table for sub-linear shortlist retrieval in
///   `bsl-serve`.
///
/// Both survive the save/load round trip (format v2).
///
/// [`similarity`]: ModelArtifact::similarity
#[derive(Clone, Debug)]
pub struct ModelArtifact {
    backbone: String,
    similarity: EvalScore,
    tables: Tables,
    index: Option<IvfIndex>,
}

impl ModelArtifact {
    /// Freezes raw final embeddings under `score` into a servable
    /// artifact, applying the score-specific preparation (normalization /
    /// distance augmentation) exactly once.
    ///
    /// The artifact *owns* its tables (that is what makes it saveable and
    /// independent of the model's lifetime), so freezing copies them —
    /// for [`EvalScore::Dot`] a plain clone. At catalogue scale that copy
    /// is small next to one full ranking pass; callers that only ever
    /// score raw tables in place can keep using the matrices directly.
    ///
    /// # Panics
    /// Panics if the embedding widths disagree.
    pub fn from_embeddings(
        backbone: impl Into<String>,
        user_emb: &Matrix,
        item_emb: &Matrix,
        score: EvalScore,
    ) -> Self {
        assert_eq!(user_emb.cols(), item_emb.cols(), "embedding width mismatch");
        let (users, items) = match score {
            EvalScore::Dot => (user_emb.clone(), item_emb.clone()),
            EvalScore::Cosine => {
                let mut norms = vec![0.0f32; user_emb.rows().max(item_emb.rows())];
                let mut u = Matrix::zeros(user_emb.rows(), user_emb.cols());
                normalize_rows_into(user_emb, &mut u, &mut norms[..user_emb.rows()]);
                let mut i = Matrix::zeros(item_emb.rows(), item_emb.cols());
                normalize_rows_into(item_emb, &mut i, &mut norms[..item_emb.rows()]);
                (u, i)
            }
            EvalScore::NegSqDist => euclidean_rank_embeddings(user_emb, item_emb),
        };
        Self {
            backbone: backbone.into(),
            similarity: score,
            tables: Tables::F32 { users, items },
            index: None,
        }
    }

    /// Rebuilds an artifact from already-prepared tables (also useful for
    /// tests that craft tables by hand).
    ///
    /// # Panics
    /// Panics if the table widths disagree.
    pub fn from_prepared(
        backbone: impl Into<String>,
        similarity: EvalScore,
        users: Matrix,
        items: Matrix,
    ) -> Self {
        assert_eq!(users.cols(), items.cols(), "prepared table width mismatch");
        Self {
            backbone: backbone.into(),
            similarity,
            tables: Tables::F32 { users, items },
            index: None,
        }
    }

    /// The backbone label this artifact was exported from (`"MF"`, …).
    pub fn backbone(&self) -> &str {
        &self.backbone
    }

    /// The similarity convention the tables were prepared under.
    pub fn similarity(&self) -> EvalScore {
        self.similarity
    }

    /// The precision the score tables are stored at.
    pub fn precision(&self) -> Precision {
        match self.tables {
            Tables::F32 { .. } => Precision::F32,
            Tables::Int8 { .. } => Precision::Int8,
        }
    }

    /// The attached IVF index, if one was built or loaded.
    pub fn index(&self) -> Option<&IvfIndex> {
        self.index.as_ref()
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        match &self.tables {
            Tables::F32 { users, .. } | Tables::Int8 { users, .. } => users.rows(),
        }
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        match &self.tables {
            Tables::F32 { items, .. } => items.rows(),
            Tables::Int8 { items, .. } => items.rows(),
        }
    }

    /// Width of the prepared tables (CML artifacts store `d + 1`).
    pub fn dim(&self) -> usize {
        match &self.tables {
            Tables::F32 { users, .. } | Tables::Int8 { users, .. } => users.cols(),
        }
    }

    /// The prepared f32 user table (queries stay f32 at both precisions).
    pub fn users(&self) -> &Matrix {
        match &self.tables {
            Tables::F32 { users, .. } | Tables::Int8 { users, .. } => users,
        }
    }

    /// The prepared f32 item table.
    ///
    /// # Panics
    /// Panics on an int8 artifact — use [`precision`](Self::precision) to
    /// branch, or [`items_i8`](Self::items_i8) / the `score_*` dispatchers
    /// that handle both precisions.
    pub fn items(&self) -> &Matrix {
        match &self.tables {
            Tables::F32 { items, .. } => items,
            Tables::Int8 { .. } => panic!("items(): artifact is int8-quantized"),
        }
    }

    /// The f32 item table, if this artifact stores one.
    pub fn items_f32(&self) -> Option<&Matrix> {
        match &self.tables {
            Tables::F32 { items, .. } => Some(items),
            Tables::Int8 { .. } => None,
        }
    }

    /// The quantized item table, if this artifact stores one.
    pub fn items_i8(&self) -> Option<&QuantizedTable> {
        match &self.tables {
            Tables::F32 { .. } => None,
            Tables::Int8 { items, .. } => Some(items),
        }
    }

    /// Writes user `user`'s prepared f32 row into `out` (resized to
    /// `dim`). This is the query vector every retrieval path (exact, IVF
    /// probe, int8 rescore) scores with — queries are f32 at both
    /// precisions.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn query_into(&self, user: u32, out: &mut Vec<f32>) {
        out.resize(self.dim(), 0.0);
        out.copy_from_slice(self.users().row(user as usize));
    }

    /// Scores a prepared f32 query vector against the full catalogue into
    /// `out` (resized to `n_items`) — the precision-dispatched blocked
    /// kernel behind [`score_catalogue_into`](Self::score_catalogue_into).
    ///
    /// # Panics
    /// Panics if `q.len() != dim`.
    pub fn score_catalogue_query_into(&self, q: &[f32], out: &mut Vec<f32>) {
        match &self.tables {
            Tables::F32 { items, .. } => {
                out.resize(items.rows(), 0.0);
                scores_block(q, items.as_slice(), out);
            }
            Tables::Int8 { items, .. } => items.scores_into(q, out),
        }
    }

    /// Scores the full item catalogue for `user` into `out` (resized to
    /// `n_items`) with one blocked tall-skinny matvec — the single scoring
    /// implementation shared by training-loop eval, offline eval, and
    /// serving. Int8 artifacts score the f32 user row against the
    /// quantized items with the fused int8 kernel. Allocation-free either
    /// way.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn score_catalogue_into(&self, user: u32, out: &mut Vec<f32>) {
        match &self.tables {
            Tables::F32 { users, items } => {
                out.resize(items.rows(), 0.0);
                scores_block(users.row(user as usize), items.as_slice(), out);
            }
            Tables::Int8 { users, items } => {
                items.scores_into(users.row(user as usize), out);
            }
        }
    }

    /// Scores an explicit candidate list for `user` into `out` (resized to
    /// `items.len()`).
    ///
    /// For [`EvalScore::NegSqDist`] artifacts the values are the
    /// rank-equivalent augmented inner products, not raw distances —
    /// consistent with [`score_catalogue_into`](Self::score_catalogue_into).
    ///
    /// # Panics
    /// Panics if `user` or any item id is out of range.
    pub fn score_items_into(&self, user: u32, items: &[u32], out: &mut Vec<f32>) {
        let q = self.users().row(user as usize);
        self.score_items_query_into(q, items, out);
    }

    /// Scores an explicit candidate list against a prepared f32 query
    /// vector into `out` (cleared first) — the precision-dispatched
    /// shortlist rescorer behind the IVF serving path; callers hold the
    /// query from [`query_into`](Self::query_into) so the hot loop never
    /// allocates.
    ///
    /// # Panics
    /// Panics if `q.len() != dim` or any item id is out of range.
    pub fn score_items_query_into(&self, q: &[f32], items: &[u32], out: &mut Vec<f32>) {
        assert_eq!(q.len(), self.dim(), "query width mismatch");
        out.clear();
        match &self.tables {
            Tables::F32 { items: table, .. } => {
                out.extend(items.iter().map(|&i| dot(q, table.row(i as usize))));
            }
            Tables::Int8 { items: table, .. } => {
                table.scores_gather_into(q, items, out);
            }
        }
    }

    /// Returns an int8-quantized copy of this artifact: the item table
    /// becomes per-row int8 (~4× smaller); the user table stays f32, so
    /// queries keep full precision (asymmetric quantization). The attached
    /// index, if any, is kept — it was built over the same prepared
    /// geometry and quantization moves each item row by at most `scale/2`
    /// per coordinate. Quantizing an already-int8 artifact is a plain
    /// clone.
    pub fn quantize(&self) -> Self {
        let tables = match &self.tables {
            Tables::F32 { users, items } => {
                Tables::Int8 { users: users.clone(), items: QuantizedTable::from_matrix(items) }
            }
            int8 @ Tables::Int8 { .. } => int8.clone(),
        };
        Self {
            backbone: self.backbone.clone(),
            similarity: self.similarity,
            tables,
            index: self.index.clone(),
        }
    }

    /// Builds (or rebuilds) an IVF-flat index with `nlist` lists over the
    /// prepared item table. Int8 artifacts are dequantized for the build —
    /// the index stores f32 centroids either way.
    ///
    /// # Panics
    /// Panics if the catalogue is empty or `nlist` is out of `1..=n_items`.
    pub fn build_ivf(&mut self, nlist: usize) {
        let index = match &self.tables {
            Tables::F32 { items, .. } => IvfIndex::build(items, nlist),
            Tables::Int8 { items, .. } => IvfIndex::build(&items.dequantize(), nlist),
        };
        self.index = Some(index);
    }

    /// Builds an IVF index with the default `√n_items` list count.
    pub fn build_default_ivf(&mut self) {
        self.build_ivf(IvfIndex::default_nlist(self.n_items()));
    }

    /// Drops the attached index (the artifact serves exactly again).
    pub fn clear_index(&mut self) {
        self.index = None;
    }

    /// Encodes the artifact into the documented binary format: v1 for a
    /// plain f32 artifact with no index (bit-compatible with every v1
    /// reader), v2 otherwise.
    pub fn to_bytes(&self) -> Vec<u8> {
        let label = self.backbone.as_bytes();
        assert!(label.len() <= u8::MAX as usize, "backbone label too long for the format");
        let v2 = matches!(self.tables, Tables::Int8 { .. }) || self.index.is_some();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&(if v2 { 2u32 } else { 1u32 }).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum placeholder
        buf.push(similarity_code(self.similarity));
        buf.push(label.len() as u8);
        if v2 {
            let mut flags = 0u8;
            if matches!(self.tables, Tables::Int8 { .. }) {
                flags |= FLAG_INT8;
            }
            if self.index.is_some() {
                flags |= FLAG_INDEX;
            }
            buf.push(flags);
            buf.push(0); // reserved
        } else {
            buf.extend_from_slice(&0u16.to_le_bytes()); // v1 reserved
        }
        buf.extend_from_slice(&(self.n_users() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.n_items() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.dim() as u64).to_le_bytes());
        if v2 {
            let nlist = self.index.as_ref().map_or(0, |ix| ix.nlist());
            buf.extend_from_slice(&(nlist as u64).to_le_bytes());
        }
        buf.extend_from_slice(label);
        match &self.tables {
            Tables::F32 { users, items } => {
                for &v in users.as_slice().iter().chain(items.as_slice().iter()) {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            Tables::Int8 { users, items } => {
                for &v in users.as_slice() {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                for &s in items.scales() {
                    buf.extend_from_slice(&s.to_le_bytes());
                }
                buf.extend(items.data().iter().map(|&b| b as u8));
            }
        }
        if let Some(ix) = &self.index {
            for &o in ix.list_offsets() {
                buf.extend_from_slice(&(o as u64).to_le_bytes());
            }
            for &i in ix.list_items() {
                buf.extend_from_slice(&i.to_le_bytes());
            }
            for &v in ix.centroids().as_slice() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let sum = fnv1a64(fnv1a64_init(), &buf[CHECKSUM_START..]);
        buf[8..16].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes an artifact from [`to_bytes`](Self::to_bytes) output,
    /// verifying magic, version, declared sizes (with checked arithmetic,
    /// before any allocation sized by a header field), the checksum, and
    /// every semantic invariant of the payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        if bytes.len() < HEADER_LEN_V1 {
            return Err(ArtifactError::Truncated { expected: HEADER_LEN_V1, got: bytes.len() });
        }
        if bytes[0..4] != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let take_u64 =
            |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version == 0 || version > FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let header_len = if version == 1 { HEADER_LEN_V1 } else { HEADER_LEN_V2 };
        if bytes.len() < header_len {
            return Err(ArtifactError::Truncated { expected: header_len, got: bytes.len() });
        }
        let stored_sum = take_u64(8);
        let similarity_byte = bytes[16];
        let label_len = bytes[17] as usize;
        let flags = if version == 1 {
            if bytes[18..20] != [0, 0] {
                return Err(ArtifactError::Malformed("nonzero reserved bytes"));
            }
            0u8
        } else {
            let flags = bytes[18];
            if flags & !(FLAG_INT8 | FLAG_INDEX) != 0 {
                return Err(ArtifactError::Malformed("unknown flag bits"));
            }
            if bytes[19] != 0 {
                return Err(ArtifactError::Malformed("nonzero reserved bytes"));
            }
            flags
        };
        let int8 = flags & FLAG_INT8 != 0;
        let has_index = flags & FLAG_INDEX != 0;
        let n_users = usize::try_from(take_u64(20))
            .map_err(|_| ArtifactError::Malformed("n_users overflows usize"))?;
        let n_items = usize::try_from(take_u64(28))
            .map_err(|_| ArtifactError::Malformed("n_items overflows usize"))?;
        let dim = usize::try_from(take_u64(36))
            .map_err(|_| ArtifactError::Malformed("dim overflows usize"))?;
        if dim == 0 {
            return Err(ArtifactError::Malformed("zero-width tables"));
        }
        let nlist = if version == 1 {
            0
        } else {
            usize::try_from(take_u64(44))
                .map_err(|_| ArtifactError::Malformed("nlist overflows usize"))?
        };
        if has_index {
            if nlist == 0 || nlist > n_items {
                return Err(ArtifactError::Malformed("nlist out of 1..=n_items"));
            }
        } else if nlist != 0 {
            return Err(ArtifactError::Malformed("nonzero nlist without index flag"));
        }
        // Total size, fully checked before any alloc-by-header.
        let user_elems = n_users
            .checked_mul(dim)
            .ok_or(ArtifactError::Malformed("table size overflows usize"))?;
        let item_elems = n_items
            .checked_mul(dim)
            .ok_or(ArtifactError::Malformed("table size overflows usize"))?;
        let tables_bytes = if int8 {
            // f32 user table + item scales (4 bytes/row) + item rows
            // (1 byte/elem).
            user_elems
                .checked_mul(4)
                .and_then(|u| n_items.checked_mul(4)?.checked_add(u))
                .and_then(|b| b.checked_add(item_elems))
        } else {
            user_elems.checked_add(item_elems).and_then(|e| e.checked_mul(4))
        }
        .ok_or(ArtifactError::Malformed("table size overflows usize"))?;
        let index_bytes = if has_index {
            let offsets = nlist
                .checked_add(1)
                .and_then(|n| n.checked_mul(8))
                .ok_or(ArtifactError::Malformed("index size overflows usize"))?;
            let items = n_items
                .checked_mul(4)
                .ok_or(ArtifactError::Malformed("index size overflows usize"))?;
            let centroids = nlist
                .checked_mul(dim)
                .and_then(|e| e.checked_mul(4))
                .ok_or(ArtifactError::Malformed("index size overflows usize"))?;
            offsets
                .checked_add(items)
                .and_then(|b| b.checked_add(centroids))
                .ok_or(ArtifactError::Malformed("index size overflows usize"))?
        } else {
            0
        };
        let total = header_len
            .checked_add(label_len)
            .and_then(|h| h.checked_add(tables_bytes))
            .and_then(|h| h.checked_add(index_bytes))
            .ok_or(ArtifactError::Malformed("total size overflows usize"))?;
        if bytes.len() < total {
            return Err(ArtifactError::Truncated { expected: total, got: bytes.len() });
        }
        if bytes.len() > total {
            return Err(ArtifactError::Malformed("trailing bytes after payload"));
        }
        if fnv1a64(fnv1a64_init(), &bytes[CHECKSUM_START..]) != stored_sum {
            return Err(ArtifactError::ChecksumMismatch);
        }
        // Bytes are authentic from here on; semantic checks follow.
        let similarity = similarity_from_code(similarity_byte)
            .ok_or(ArtifactError::Malformed("unknown similarity code"))?;
        let backbone = std::str::from_utf8(&bytes[header_len..header_len + label_len])
            .map_err(|_| ArtifactError::Malformed("backbone label is not UTF-8"))?
            .to_string();
        let mut at = header_len + label_len;
        let read_f32s = |at: &mut usize, count: usize| {
            let mut data = Vec::with_capacity(count);
            for chunk in bytes[*at..*at + count * 4].chunks_exact(4) {
                data.push(f32::from_le_bytes(chunk.try_into().expect("4 bytes")));
            }
            *at += count * 4;
            data
        };
        let tables = if int8 {
            let users = Matrix::from_vec(n_users, dim, read_f32s(&mut at, user_elems));
            let scales = read_f32s(&mut at, n_items);
            if scales.iter().any(|s| !s.is_finite() || *s < 0.0) {
                return Err(ArtifactError::Malformed("quantization scale out of range"));
            }
            let data: Vec<i8> = bytes[at..at + item_elems].iter().map(|&b| b as i8).collect();
            at += item_elems;
            let items = QuantizedTable::from_parts(n_items, dim, data, scales);
            Tables::Int8 { users, items }
        } else {
            let users = Matrix::from_vec(n_users, dim, read_f32s(&mut at, user_elems));
            let items = Matrix::from_vec(n_items, dim, read_f32s(&mut at, item_elems));
            Tables::F32 { users, items }
        };
        let index = if has_index {
            let mut offsets = Vec::with_capacity(nlist + 1);
            for chunk in bytes[at..at + (nlist + 1) * 8].chunks_exact(8) {
                let o = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                offsets.push(
                    usize::try_from(o)
                        .map_err(|_| ArtifactError::Malformed("list offset overflows usize"))?,
                );
            }
            at += (nlist + 1) * 8;
            let mut list_items = Vec::with_capacity(n_items);
            for chunk in bytes[at..at + n_items * 4].chunks_exact(4) {
                list_items.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
            }
            at += n_items * 4;
            let centroids = Matrix::from_vec(nlist, dim, read_f32s(&mut at, nlist * dim));
            Some(
                IvfIndex::from_parts(centroids, offsets, list_items)
                    .map_err(ArtifactError::Malformed)?,
            )
        } else {
            None
        };
        Ok(Self { backbone, similarity, tables, index })
    }

    /// Writes the artifact to `path` (atomic enough for our purposes: a
    /// single buffered write of the encoded stream).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let bytes = self.to_bytes();
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(&bytes)?;
        f.flush()?;
        Ok(())
    }

    /// Reads an artifact from `path`, verifying the header and checksum.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(score: EvalScore) -> ModelArtifact {
        let mut rng = StdRng::seed_from_u64(9);
        let u = Matrix::gaussian(5, 7, 1.0, &mut rng);
        let i = Matrix::gaussian(11, 7, 1.0, &mut rng);
        ModelArtifact::from_embeddings("MF", &u, &i, score)
    }

    #[test]
    fn bytes_round_trip_is_bit_identical() {
        for score in [EvalScore::Dot, EvalScore::Cosine, EvalScore::NegSqDist] {
            let art = toy(score);
            let back = ModelArtifact::from_bytes(&art.to_bytes()).expect("decode");
            assert_eq!(back.backbone(), art.backbone());
            assert_eq!(back.similarity(), art.similarity());
            assert_eq!(back.users().as_slice(), art.users().as_slice());
            assert_eq!(back.items().as_slice(), art.items().as_slice());
        }
    }

    #[test]
    fn plain_f32_artifacts_still_write_format_v1() {
        let bytes = toy(EvalScore::Dot).to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 1);
    }

    #[test]
    fn quantized_round_trip_is_bit_identical() {
        let art = toy(EvalScore::Cosine).quantize();
        assert_eq!(art.precision(), Precision::Int8);
        let bytes = art.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 2);
        let back = ModelArtifact::from_bytes(&bytes).expect("decode");
        assert_eq!(back.precision(), Precision::Int8);
        assert_eq!(back.items_i8().unwrap(), art.items_i8().unwrap());
        assert_eq!(back.users().as_slice(), art.users().as_slice());
        assert!(back.index().is_none());
    }

    #[test]
    fn indexed_round_trip_preserves_the_index() {
        for quantized in [false, true] {
            let mut art = toy(EvalScore::Dot);
            if quantized {
                art = art.quantize();
            }
            art.build_ivf(3);
            let back = ModelArtifact::from_bytes(&art.to_bytes()).expect("decode");
            assert_eq!(back.index().expect("index survives"), art.index().unwrap());
            assert_eq!(back.precision(), art.precision());
        }
    }

    #[test]
    fn quantize_keeps_scores_close() {
        let art = toy(EvalScore::Cosine);
        let q8 = art.quantize();
        let (mut exact, mut approx) = (Vec::new(), Vec::new());
        for u in 0..art.n_users() as u32 {
            art.score_catalogue_into(u, &mut exact);
            q8.score_catalogue_into(u, &mut approx);
            for (a, b) in exact.iter().zip(approx.iter()) {
                // Unit-norm rows, d=7: quantization noise ≲ d·(scale/2) ≈ 0.03.
                assert!((a - b).abs() < 0.05, "user {u}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn score_items_matches_catalogue_at_both_precisions() {
        for art in [toy(EvalScore::Cosine), toy(EvalScore::Cosine).quantize()] {
            let mut all = Vec::new();
            art.score_catalogue_into(3, &mut all);
            let ids: Vec<u32> = (0..art.n_items() as u32).collect();
            let mut listed = Vec::new();
            art.score_items_into(3, &ids, &mut listed);
            for (a, b) in all.iter().zip(listed.iter()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn query_into_returns_the_scoring_row() {
        let art = toy(EvalScore::Dot);
        let mut q = Vec::new();
        art.query_into(2, &mut q);
        assert_eq!(q.as_slice(), art.users().row(2));
        let q8 = art.quantize();
        q8.query_into(2, &mut q);
        let mut scores_via_q = Vec::new();
        q8.score_catalogue_query_into(&q, &mut scores_via_q);
        let mut scores_direct = Vec::new();
        q8.score_catalogue_into(2, &mut scores_direct);
        assert_eq!(scores_via_q, scores_direct);
    }

    #[test]
    fn cosine_tables_are_prenormalized() {
        let art = toy(EvalScore::Cosine);
        for r in 0..art.n_items() {
            let n = dot(art.items().row(r), art.items().row(r)).sqrt();
            assert!((n - 1.0).abs() < 1e-5, "row {r} norm {n}");
        }
    }

    #[test]
    fn negsqdist_bakes_the_augmentation() {
        let art = toy(EvalScore::NegSqDist);
        assert_eq!(art.dim(), 8, "CML artifacts store d + 1");
        // Augmented dot ranks like negative distance: last user column is -1.
        assert!(art.users().row(0)[7] == -1.0);
    }

    #[test]
    fn score_catalogue_matches_score_items() {
        let art = toy(EvalScore::Cosine);
        let mut all = Vec::new();
        art.score_catalogue_into(3, &mut all);
        assert_eq!(all.len(), art.n_items());
        let ids: Vec<u32> = (0..art.n_items() as u32).collect();
        let mut listed = Vec::new();
        art.score_items_into(3, &ids, &mut listed);
        for (a, b) in all.iter().zip(listed.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(ModelArtifact::from_bytes(&bytes), Err(ArtifactError::BadMagic)));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_flipped_payload_byte() {
        for art in [toy(EvalScore::Dot), toy(EvalScore::Dot).quantize()] {
            let mut bytes = art.to_bytes();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
            assert!(matches!(
                ModelArtifact::from_bytes(&bytes),
                Err(ArtifactError::ChecksumMismatch)
            ));
        }
    }

    #[test]
    fn rejects_corrupted_header_field() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        // Inflate n_users: either the length check or the checksum must trip.
        bytes[20] ^= 0x01;
        assert!(ModelArtifact::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = toy(EvalScore::Dot).to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, HEADER_LEN_V1 - 1, 3] {
            assert!(
                matches!(
                    ModelArtifact::from_bytes(&bytes[..cut]),
                    Err(ArtifactError::Truncated { .. })
                ),
                "cut at {cut} must be rejected as truncated"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        bytes.push(0);
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ArtifactError::Malformed("trailing bytes after payload"))
        ));
    }

    #[test]
    fn rejects_unknown_similarity() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        bytes[16] = 7;
        // Re-stamp the checksum so the similarity check itself is reached.
        let sum = fnv1a64(fnv1a64_init(), &bytes[CHECKSUM_START..]);
        bytes[8..16].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ArtifactError::Malformed("unknown similarity code"))
        ));
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let mut art = toy(EvalScore::Cosine);
        art.build_default_ivf();
        let art = art.quantize();
        let dir = std::env::temp_dir().join("bsl-artifact-unit");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("toy.bsla");
        art.save(&path).expect("save");
        let back = ModelArtifact::load(&path).expect("load");
        assert_eq!(back.items_i8().unwrap(), art.items_i8().unwrap());
        assert_eq!(back.index().unwrap(), art.index().unwrap());
        std::fs::remove_file(&path).ok();
    }
}
