//! The frozen train→serve boundary: [`ModelArtifact`].
//!
//! Training produces parameters; retrieval needs *prepared score tables*.
//! An artifact freezes a backbone's final embeddings into the form the
//! serving dot product wants — rows pre-normalized for cosine backbones,
//! the CML distance augmentation pre-baked — so that evaluation and
//! serving never repay per-query preparation and **always score with one
//! blocked kernel** ([`scores_block`]). `bsl-eval` ranks through the same
//! tables, which is what makes "metrics offline" and "scores online"
//! bit-identical.
//!
//! Artifacts round-trip through a compact self-describing binary format
//! (manual little-endian codec, no external dependencies):
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"BSLA"
//!      4     4  format version (u32, currently 1)
//!      8     8  FNV-1a 64 checksum of every byte from offset 16 on
//!     16     1  similarity code (0 = dot, 1 = cosine, 2 = -||u-i||²)
//!     17     1  backbone label length L
//!     18     2  reserved (zero)
//!     20     8  n_users (u64)
//!     28     8  n_items (u64)
//!     36     8  dim (u64) — the *prepared* width (CML stores d+1)
//!     44     L  backbone label (UTF-8)
//!   44+L     …  user table  (n_users·dim little-endian f32)
//!      …     …  item table  (n_items·dim little-endian f32)
//! ```
//!
//! `f32 → to_le_bytes → from_le_bytes` is lossless, so a loaded artifact
//! reproduces the saved one bit for bit; the checksum covers the header
//! fields and both tables, so truncation and corruption are rejected
//! before any score is served.

use crate::backbone::EvalScore;
use crate::cml::euclidean_rank_embeddings;
use bsl_linalg::kernels::dot;
use bsl_linalg::simd::{normalize_rows_into, scores_block};
use bsl_linalg::Matrix;
use std::io::Write;
use std::path::Path;

/// Artifact format magic bytes.
const MAGIC: [u8; 4] = *b"BSLA";
/// Current artifact format version.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed header length (everything before the variable-length label).
const HEADER_LEN: usize = 44;
/// Offset of the first checksummed byte (just past the checksum field).
const CHECKSUM_START: usize = 16;

/// Errors from decoding or file I/O on an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the `BSLA` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The byte stream is shorter than its header promises.
    Truncated {
        /// Bytes the header declares.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The stored checksum does not match the content.
    ChecksumMismatch,
    /// A header field is internally inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::BadMagic => write!(f, "not a BSL artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact format version {v} (this build reads ≤ {FORMAT_VERSION})"
                )
            }
            ArtifactError::Truncated { expected, got } => {
                write!(f, "truncated artifact: header promises {expected} bytes, file has {got}")
            }
            ArtifactError::ChecksumMismatch => {
                write!(f, "artifact checksum mismatch (corrupted file)")
            }
            ArtifactError::Malformed(what) => write!(f, "malformed artifact: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes`, continuing from `state` (seed with
/// [`fnv1a64_init`]).
fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x100_0000_01b3);
    }
    state
}

/// FNV-1a 64 offset basis.
fn fnv1a64_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

fn similarity_code(s: EvalScore) -> u8 {
    match s {
        EvalScore::Dot => 0,
        EvalScore::Cosine => 1,
        EvalScore::NegSqDist => 2,
    }
}

fn similarity_from_code(c: u8) -> Option<EvalScore> {
    match c {
        0 => Some(EvalScore::Dot),
        1 => Some(EvalScore::Cosine),
        2 => Some(EvalScore::NegSqDist),
        _ => None,
    }
}

/// A frozen, self-describing snapshot of a trained model, ready to serve.
///
/// The stored tables are *prepared*: cosine backbones are row-normalized
/// and CML's distance ranking is converted to an equivalent inner product
/// by the `(2u, -1) · (i, ||i||²)` augmentation, so every retrieval —
/// `bsl-eval`'s full ranking, `bsl-serve`'s `recommend`, a future ANN
/// index — is a plain blocked dot product over these rows. The original
/// similarity convention is kept as metadata in [`similarity`].
///
/// [`similarity`]: ModelArtifact::similarity
#[derive(Clone, Debug)]
pub struct ModelArtifact {
    backbone: String,
    similarity: EvalScore,
    users: Matrix,
    items: Matrix,
}

impl ModelArtifact {
    /// Freezes raw final embeddings under `score` into a servable
    /// artifact, applying the score-specific preparation (normalization /
    /// distance augmentation) exactly once.
    ///
    /// The artifact *owns* its tables (that is what makes it saveable and
    /// independent of the model's lifetime), so freezing copies them —
    /// for [`EvalScore::Dot`] a plain clone. At catalogue scale that copy
    /// is small next to one full ranking pass; callers that only ever
    /// score raw tables in place can keep using the matrices directly.
    ///
    /// # Panics
    /// Panics if the embedding widths disagree.
    pub fn from_embeddings(
        backbone: impl Into<String>,
        user_emb: &Matrix,
        item_emb: &Matrix,
        score: EvalScore,
    ) -> Self {
        assert_eq!(user_emb.cols(), item_emb.cols(), "embedding width mismatch");
        let (users, items) = match score {
            EvalScore::Dot => (user_emb.clone(), item_emb.clone()),
            EvalScore::Cosine => {
                let mut norms = vec![0.0f32; user_emb.rows().max(item_emb.rows())];
                let mut u = Matrix::zeros(user_emb.rows(), user_emb.cols());
                normalize_rows_into(user_emb, &mut u, &mut norms[..user_emb.rows()]);
                let mut i = Matrix::zeros(item_emb.rows(), item_emb.cols());
                normalize_rows_into(item_emb, &mut i, &mut norms[..item_emb.rows()]);
                (u, i)
            }
            EvalScore::NegSqDist => euclidean_rank_embeddings(user_emb, item_emb),
        };
        Self { backbone: backbone.into(), similarity: score, users, items }
    }

    /// Rebuilds an artifact from already-prepared tables (the decoder's
    /// entry point; also useful for tests that craft tables by hand).
    ///
    /// # Panics
    /// Panics if the table widths disagree.
    pub fn from_prepared(
        backbone: impl Into<String>,
        similarity: EvalScore,
        users: Matrix,
        items: Matrix,
    ) -> Self {
        assert_eq!(users.cols(), items.cols(), "prepared table width mismatch");
        Self { backbone: backbone.into(), similarity, users, items }
    }

    /// The backbone label this artifact was exported from (`"MF"`, …).
    pub fn backbone(&self) -> &str {
        &self.backbone
    }

    /// The similarity convention the tables were prepared under.
    pub fn similarity(&self) -> EvalScore {
        self.similarity
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.users.rows()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.items.rows()
    }

    /// Width of the prepared tables (CML artifacts store `d + 1`).
    pub fn dim(&self) -> usize {
        self.users.cols()
    }

    /// The prepared user table.
    pub fn users(&self) -> &Matrix {
        &self.users
    }

    /// The prepared item table.
    pub fn items(&self) -> &Matrix {
        &self.items
    }

    /// Scores the full item catalogue for `user` into `out` (resized to
    /// `n_items`) with one blocked tall-skinny matvec — the single scoring
    /// implementation shared by training-loop eval, offline eval, and
    /// serving.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn score_catalogue_into(&self, user: u32, out: &mut Vec<f32>) {
        out.resize(self.items.rows(), 0.0);
        scores_block(self.users.row(user as usize), self.items.as_slice(), out);
    }

    /// Scores an explicit candidate list for `user` into `out` (resized to
    /// `items.len()`).
    ///
    /// For [`EvalScore::NegSqDist`] artifacts the values are the
    /// rank-equivalent augmented inner products, not raw distances —
    /// consistent with [`score_catalogue_into`](Self::score_catalogue_into).
    ///
    /// # Panics
    /// Panics if `user` or any item id is out of range.
    pub fn score_items_into(&self, user: u32, items: &[u32], out: &mut Vec<f32>) {
        let q = self.users.row(user as usize);
        out.clear();
        out.extend(items.iter().map(|&i| dot(q, self.items.row(i as usize))));
    }

    /// Encodes the artifact into the documented binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let label = self.backbone.as_bytes();
        assert!(label.len() <= u8::MAX as usize, "backbone label too long for the format");
        let n_floats = self.users.as_slice().len() + self.items.as_slice().len();
        let mut buf = Vec::with_capacity(HEADER_LEN + label.len() + n_floats * 4);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum placeholder
        buf.push(similarity_code(self.similarity));
        buf.push(label.len() as u8);
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&(self.n_users() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.n_items() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.dim() as u64).to_le_bytes());
        buf.extend_from_slice(label);
        for &v in self.users.as_slice() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for &v in self.items.as_slice() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let sum = fnv1a64(fnv1a64_init(), &buf[CHECKSUM_START..]);
        buf[8..16].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes an artifact from [`to_bytes`](Self::to_bytes) output,
    /// verifying magic, version, declared sizes, and the checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        if bytes.len() < HEADER_LEN {
            return Err(ArtifactError::Truncated { expected: HEADER_LEN, got: bytes.len() });
        }
        if bytes[0..4] != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let take_u64 =
            |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let stored_sum = take_u64(8);
        let similarity = similarity_from_code(bytes[16])
            .ok_or(ArtifactError::Malformed("unknown similarity code"))?;
        let label_len = bytes[17] as usize;
        if bytes[18..20] != [0, 0] {
            return Err(ArtifactError::Malformed("nonzero reserved bytes"));
        }
        let n_users = usize::try_from(take_u64(20))
            .map_err(|_| ArtifactError::Malformed("n_users overflows usize"))?;
        let n_items = usize::try_from(take_u64(28))
            .map_err(|_| ArtifactError::Malformed("n_items overflows usize"))?;
        let dim = usize::try_from(take_u64(36))
            .map_err(|_| ArtifactError::Malformed("dim overflows usize"))?;
        if dim == 0 {
            return Err(ArtifactError::Malformed("zero-width tables"));
        }
        let table_floats = n_users
            .checked_mul(dim)
            .and_then(|u| n_items.checked_mul(dim).map(|i| (u, i)))
            .ok_or(ArtifactError::Malformed("table size overflows usize"))?;
        let total = HEADER_LEN
            .checked_add(label_len)
            .and_then(|h| {
                table_floats.0.checked_add(table_floats.1)?.checked_mul(4)?.checked_add(h)
            })
            .ok_or(ArtifactError::Malformed("total size overflows usize"))?;
        if bytes.len() < total {
            return Err(ArtifactError::Truncated { expected: total, got: bytes.len() });
        }
        if bytes.len() > total {
            return Err(ArtifactError::Malformed("trailing bytes after item table"));
        }
        if fnv1a64(fnv1a64_init(), &bytes[CHECKSUM_START..]) != stored_sum {
            return Err(ArtifactError::ChecksumMismatch);
        }
        let backbone = std::str::from_utf8(&bytes[HEADER_LEN..HEADER_LEN + label_len])
            .map_err(|_| ArtifactError::Malformed("backbone label is not UTF-8"))?
            .to_string();
        let mut at = HEADER_LEN + label_len;
        let mut read_table = |rows: usize| {
            let floats = rows * dim;
            let mut data = Vec::with_capacity(floats);
            for chunk in bytes[at..at + floats * 4].chunks_exact(4) {
                data.push(f32::from_le_bytes(chunk.try_into().expect("4 bytes")));
            }
            at += floats * 4;
            Matrix::from_vec(rows, dim, data)
        };
        let users = read_table(n_users);
        let items = read_table(n_items);
        Ok(Self { backbone, similarity, users, items })
    }

    /// Writes the artifact to `path` (atomic enough for our purposes: a
    /// single buffered write of the encoded stream).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let bytes = self.to_bytes();
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(&bytes)?;
        f.flush()?;
        Ok(())
    }

    /// Reads an artifact from `path`, verifying the header and checksum.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(score: EvalScore) -> ModelArtifact {
        let mut rng = StdRng::seed_from_u64(9);
        let u = Matrix::gaussian(5, 7, 1.0, &mut rng);
        let i = Matrix::gaussian(11, 7, 1.0, &mut rng);
        ModelArtifact::from_embeddings("MF", &u, &i, score)
    }

    #[test]
    fn bytes_round_trip_is_bit_identical() {
        for score in [EvalScore::Dot, EvalScore::Cosine, EvalScore::NegSqDist] {
            let art = toy(score);
            let back = ModelArtifact::from_bytes(&art.to_bytes()).expect("decode");
            assert_eq!(back.backbone(), art.backbone());
            assert_eq!(back.similarity(), art.similarity());
            assert_eq!(back.users().as_slice(), art.users().as_slice());
            assert_eq!(back.items().as_slice(), art.items().as_slice());
        }
    }

    #[test]
    fn cosine_tables_are_prenormalized() {
        let art = toy(EvalScore::Cosine);
        for r in 0..art.n_items() {
            let n = dot(art.items().row(r), art.items().row(r)).sqrt();
            assert!((n - 1.0).abs() < 1e-5, "row {r} norm {n}");
        }
    }

    #[test]
    fn negsqdist_bakes_the_augmentation() {
        let art = toy(EvalScore::NegSqDist);
        assert_eq!(art.dim(), 8, "CML artifacts store d + 1");
        // Augmented dot ranks like negative distance: last user column is -1.
        assert!(art.users().row(0)[7] == -1.0);
    }

    #[test]
    fn score_catalogue_matches_score_items() {
        let art = toy(EvalScore::Cosine);
        let mut all = Vec::new();
        art.score_catalogue_into(3, &mut all);
        assert_eq!(all.len(), art.n_items());
        let ids: Vec<u32> = (0..art.n_items() as u32).collect();
        let mut listed = Vec::new();
        art.score_items_into(3, &ids, &mut listed);
        for (a, b) in all.iter().zip(listed.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(ModelArtifact::from_bytes(&bytes), Err(ArtifactError::BadMagic)));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_flipped_payload_byte() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(ModelArtifact::from_bytes(&bytes), Err(ArtifactError::ChecksumMismatch)));
    }

    #[test]
    fn rejects_corrupted_header_field() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        // Inflate n_users: either the length check or the checksum must trip.
        bytes[20] ^= 0x01;
        assert!(ModelArtifact::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = toy(EvalScore::Dot).to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, HEADER_LEN - 1, 3] {
            assert!(
                matches!(
                    ModelArtifact::from_bytes(&bytes[..cut]),
                    Err(ArtifactError::Truncated { .. })
                ),
                "cut at {cut} must be rejected as truncated"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        bytes.push(0);
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ArtifactError::Malformed("trailing bytes after item table"))
        ));
    }

    #[test]
    fn rejects_unknown_similarity() {
        let mut bytes = toy(EvalScore::Dot).to_bytes();
        bytes[16] = 7;
        // Re-stamp the checksum so the similarity check itself is reached.
        let sum = fnv1a64(fnv1a64_init(), &bytes[CHECKSUM_START..]);
        bytes[8..16].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ArtifactError::Malformed("unknown similarity code"))
        ));
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let art = toy(EvalScore::Cosine);
        let dir = std::env::temp_dir().join("bsl-artifact-unit");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("toy.bsla");
        art.save(&path).expect("save");
        let back = ModelArtifact::load(&path).expect("load");
        assert_eq!(back.users().as_slice(), art.users().as_slice());
        assert_eq!(back.items().as_slice(), art.items().as_slice());
        std::fs::remove_file(&path).ok();
    }
}
