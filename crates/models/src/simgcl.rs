//! SimGCL (Yu et al., SIGIR'22 — the paper's "SimSGL"): graph augmentation
//! replaced by *uniform noise in embedding space*. Each contrastive view
//! propagates through the full graph but adds a random signed perturbation
//! of magnitude `eps` after every hop. The noise is constant w.r.t. the
//! parameters, so each view's exact backward pass is plain propagation.

use crate::backbone::{Backbone, EvalScore, Hyper};
use crate::grad::GradBuffer;
use crate::lightgcn::LightGcn;
use crate::propagation::{dedup_cap, info_nce_grad, Propagator};
use bsl_data::Dataset;
use bsl_linalg::kernels::normalize_into;
use bsl_linalg::Matrix;
use bsl_opt::Adam;
use bsl_sparse::NormAdj;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use crate::sgl::AUX_NODE_CAP;

/// SimGCL backbone.
pub struct SimGcl {
    user_base: Matrix,
    item_base: Matrix,
    prop: Propagator,
    fin_u: Matrix,
    fin_i: Matrix,
    /// Noise-view finals (two views), refreshed per forward.
    views: Option<[(Matrix, Matrix); 2]>,
    eps: f32,
    ssl_reg: f32,
    ssl_tau: f32,
    adam_u: Adam,
    adam_i: Adam,
}

impl SimGcl {
    /// Builds SimGCL on `ds`'s training graph.
    ///
    /// # Panics
    /// Panics unless `eps >= 0`, `ssl_reg >= 0` and `ssl_tau > 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ds: &Arc<Dataset>,
        dim: usize,
        layers: usize,
        eps: f32,
        ssl_reg: f32,
        ssl_tau: f32,
        seed: u64,
    ) -> Self {
        assert!(eps >= 0.0, "eps must be non-negative");
        assert!(ssl_reg >= 0.0, "ssl_reg must be non-negative");
        assert!(ssl_tau > 0.0, "ssl_tau must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = NormAdj::from_interactions(ds.n_users, ds.n_items, &ds.train_pairs());
        Self {
            user_base: Matrix::xavier_uniform(ds.n_users, dim, &mut rng),
            item_base: Matrix::xavier_uniform(ds.n_items, dim, &mut rng),
            prop: Propagator::new(adj, layers),
            fin_u: Matrix::zeros(ds.n_users, dim),
            fin_i: Matrix::zeros(ds.n_items, dim),
            views: None,
            eps,
            ssl_reg,
            ssl_tau,
            adam_u: Adam::new(ds.n_users, dim),
            adam_i: Adam::new(ds.n_items, dim),
        }
    }

    /// Adds `eps · sign(e) ⊙ û` rowwise, with `û` a fresh random unit
    /// direction per row (the SimGCL perturbation).
    fn perturb(m: &mut Matrix, eps: f32, rng: &mut StdRng) {
        let d = m.cols();
        let mut noise = vec![0.0f32; d];
        let mut unit = vec![0.0f32; d];
        for r in 0..m.rows() {
            for n in noise.iter_mut() {
                *n = rng.gen_range(0.0..1.0);
            }
            normalize_into(&noise, &mut unit);
            let row = m.row_mut(r);
            for (x, &u) in row.iter_mut().zip(unit.iter()) {
                *x += eps * u * x.signum();
            }
        }
    }

    /// One noise view: layer-mean propagation with per-hop perturbation.
    fn noise_view(&self, rng: &mut StdRng) -> (Matrix, Matrix) {
        let k = self.prop.layers();
        let coef = 1.0 / (k + 1) as f32;
        let mut cur_u = self.user_base.clone();
        let mut cur_i = self.item_base.clone();
        let mut out_u = cur_u.clone();
        let mut out_i = cur_i.clone();
        for _ in 0..k {
            let (mut nu, mut ni) = self.prop.hop(&cur_u, &cur_i);
            Self::perturb(&mut nu, self.eps, rng);
            Self::perturb(&mut ni, self.eps, rng);
            cur_u = nu;
            cur_i = ni;
            out_u.add_assign(&cur_u);
            out_i.add_assign(&cur_i);
        }
        out_u.scale(coef);
        out_i.scale(coef);
        (out_u, out_i)
    }
}

impl Backbone for SimGcl {
    fn name(&self) -> &'static str {
        "SimGCL"
    }

    fn n_users(&self) -> usize {
        self.user_base.rows()
    }

    fn n_items(&self) -> usize {
        self.item_base.rows()
    }

    fn out_dim(&self) -> usize {
        self.user_base.cols()
    }

    fn forward(&mut self, rng: &mut StdRng) {
        let (u, i) = self.prop.forward(&self.user_base, &self.item_base);
        self.fin_u = u;
        self.fin_i = i;
        self.views = Some([self.noise_view(rng), self.noise_view(rng)]);
    }

    fn user_factors(&self) -> &Matrix {
        &self.fin_u
    }

    fn item_factors(&self) -> &Matrix {
        &self.fin_i
    }

    fn step(
        &mut self,
        grads: &GradBuffer,
        batch_users: &[u32],
        batch_items: &[u32],
        hp: Hyper,
        _rng: &mut StdRng,
    ) -> f64 {
        let (mut gu, mut gi) = self.prop.backward(grads.users(), grads.items());
        let mut aux = 0.0f64;
        if self.ssl_reg > 0.0 {
            if let Some([(v1u, v1i), (v2u, v2i)]) = &self.views {
                let (nu, d) = (self.user_base.rows(), self.user_base.cols());
                let ni = self.item_base.rows();
                let mut g1u = Matrix::zeros(nu, d);
                let mut g2u = Matrix::zeros(nu, d);
                let mut g1i = Matrix::zeros(ni, d);
                let mut g2i = Matrix::zeros(ni, d);
                let users = dedup_cap(batch_users, AUX_NODE_CAP);
                if !users.is_empty() {
                    aux += info_nce_grad(
                        v1u,
                        v2u,
                        &users,
                        self.ssl_tau,
                        self.ssl_reg,
                        &mut g1u,
                        &mut g2u,
                    );
                }
                let items = dedup_cap(batch_items, AUX_NODE_CAP);
                if !items.is_empty() {
                    aux += info_nce_grad(
                        v1i,
                        v2i,
                        &items,
                        self.ssl_tau,
                        self.ssl_reg,
                        &mut g1i,
                        &mut g2i,
                    );
                }
                // Both noise views share the full-graph propagation; the
                // noise is constant, so backward is plain propagation of
                // the summed view gradients.
                g1u.add_assign(&g2u);
                g1i.add_assign(&g2i);
                let (bu, bi) = self.prop.backward(&g1u, &g1i);
                gu.add_assign(&bu);
                gi.add_assign(&bi);
            }
        }
        LightGcn::apply_base_update(
            &mut self.user_base,
            &mut self.item_base,
            &mut self.adam_u,
            &mut self.adam_i,
            gu,
            gi,
            grads,
            hp,
        );
        aux
    }

    fn eval_score(&self) -> EvalScore {
        EvalScore::Dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};

    fn setup() -> (Arc<Dataset>, SimGcl, StdRng) {
        let ds = Arc::new(generate(&SynthConfig::tiny(1)));
        let m = SimGcl::new(&ds, 6, 2, 0.1, 0.5, 0.2, 3);
        (ds, m, StdRng::seed_from_u64(0))
    }

    #[test]
    fn perturbation_has_bounded_magnitude() {
        let mut m = Matrix::from_fn(10, 4, |r, c| ((r + c) as f32 - 5.0) * 0.3);
        let before = m.clone();
        let mut rng = StdRng::seed_from_u64(1);
        SimGcl::perturb(&mut m, 0.1, &mut rng);
        let mut max_shift = 0.0f32;
        for (a, b) in m.as_slice().iter().zip(before.as_slice()) {
            max_shift = max_shift.max((a - b).abs());
        }
        assert!(max_shift > 0.0, "perturbation did nothing");
        assert!(max_shift <= 0.1 + 1e-6, "row-unit noise exceeds eps: {max_shift}");
    }

    #[test]
    fn views_differ_from_main_and_each_other() {
        let (_, mut m, mut rng) = setup();
        m.forward(&mut rng);
        let [(v1u, _), (v2u, _)] = m.views.as_ref().expect("views exist");
        let diff_main: f64 = v1u
            .as_slice()
            .iter()
            .zip(m.fin_u.as_slice())
            .map(|(&a, &b)| (a - b).abs() as f64)
            .sum();
        let diff_views: f64 =
            v1u.as_slice().iter().zip(v2u.as_slice()).map(|(&a, &b)| (a - b).abs() as f64).sum();
        assert!(diff_main > 1e-3);
        assert!(diff_views > 1e-3);
    }

    #[test]
    fn zero_eps_views_coincide_with_main() {
        let ds = Arc::new(generate(&SynthConfig::tiny(2)));
        let mut m = SimGcl::new(&ds, 4, 2, 0.0, 0.5, 0.2, 5);
        let mut rng = StdRng::seed_from_u64(2);
        m.forward(&mut rng);
        let [(v1u, _), _] = m.views.as_ref().expect("views exist");
        for (a, b) in v1u.as_slice().iter().zip(m.fin_u.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn step_returns_positive_aux_and_stays_finite() {
        let (ds, mut m, mut rng) = setup();
        m.forward(&mut rng);
        let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 6);
        grads.user_row_mut(1)[2] = 0.7;
        let aux = m.step(&grads, &[1, 2], &[3, 4], Hyper { lr: 0.01, l2: 1e-4 }, &mut rng);
        assert!(aux > 0.0 && aux.is_finite());
        assert!(m.user_base.as_slice().iter().all(|v| v.is_finite()));
    }
}
