//! LightGCL-lite (Cai et al., ICLR'23): LightGCN plus an InfoNCE auxiliary
//! against an *SVD-reconstructed* graph view.
//!
//! The paper's LightGCL contrasts node embeddings propagated through the
//! observed graph with embeddings propagated through a low-rank
//! reconstruction `R̂ ≈ U·S·Vᵀ` of the normalized adjacency. We compute the
//! truncated factorization with the workspace's randomized SVD (itself
//! validated against dense reference SVDs) and keep a single SVD hop —
//! DESIGN.md documents this "lite" substitution.

use crate::backbone::{Backbone, EvalScore, Hyper};
use crate::grad::GradBuffer;
use crate::lightgcn::LightGcn;
use crate::propagation::{dedup_cap, info_nce_grad, Propagator};
use bsl_data::Dataset;
use bsl_linalg::svd::randomized_svd;
use bsl_linalg::Matrix;
use bsl_opt::Adam;
use bsl_sparse::NormAdj;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use crate::sgl::AUX_NODE_CAP;

/// LightGCL-lite backbone.
pub struct LightGcl {
    user_base: Matrix,
    item_base: Matrix,
    prop: Propagator,
    /// `U·diag(s)` (users × rank) of the normalized user–item block.
    us: Matrix,
    /// `V` (items × rank).
    v: Matrix,
    fin_u: Matrix,
    fin_i: Matrix,
    /// SVD-view finals, refreshed per forward.
    svd_u: Matrix,
    svd_i: Matrix,
    ssl_reg: f32,
    ssl_tau: f32,
    adam_u: Adam,
    adam_i: Adam,
}

impl LightGcl {
    /// Builds LightGCL-lite on `ds`'s training graph with an SVD view of
    /// rank `rank`.
    ///
    /// # Panics
    /// Panics unless `rank > 0`, `ssl_reg >= 0` and `ssl_tau > 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ds: &Arc<Dataset>,
        dim: usize,
        layers: usize,
        rank: usize,
        ssl_reg: f32,
        ssl_tau: f32,
        seed: u64,
    ) -> Self {
        assert!(rank > 0, "SVD rank must be positive");
        assert!(ssl_reg >= 0.0, "ssl_reg must be non-negative");
        assert!(ssl_tau > 0.0, "ssl_tau must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = NormAdj::from_interactions(ds.n_users, ds.n_items, &ds.train_pairs());
        let svd = randomized_svd(&adj.user_item, rank, 4, 8, &mut rng);
        // Fold the singular values into U once: view hops become two dense
        // (thin) matmuls.
        let mut us = svd.u.clone();
        for r in 0..us.rows() {
            for (c, &sv) in svd.s.iter().enumerate() {
                us.set(r, c, us.get(r, c) * sv);
            }
        }
        Self {
            user_base: Matrix::xavier_uniform(ds.n_users, dim, &mut rng),
            item_base: Matrix::xavier_uniform(ds.n_items, dim, &mut rng),
            prop: Propagator::new(adj, layers),
            us,
            v: svd.v,
            fin_u: Matrix::zeros(ds.n_users, dim),
            fin_i: Matrix::zeros(ds.n_items, dim),
            svd_u: Matrix::zeros(ds.n_users, dim),
            svd_i: Matrix::zeros(ds.n_items, dim),
            ssl_reg,
            ssl_tau,
            adam_u: Adam::new(ds.n_users, dim),
            adam_i: Adam::new(ds.n_items, dim),
        }
    }

    /// SVD-view forward: `u_view = U·S·Vᵀ·item_base`,
    /// `i_view = V·S·Uᵀ·user_base`.
    fn svd_view(&self) -> (Matrix, Matrix) {
        let u_view = self.us.matmul(&self.v.matmul_tn(&self.item_base));
        let i_view = self.v.matmul(&self.us.matmul_tn(&self.user_base));
        (u_view, i_view)
    }

    /// Backward of [`Self::svd_view`]: the maps are linear, so
    /// `g_item += V·S·Uᵀ·g_u_view` and `g_user += U·S·Vᵀ·g_i_view`.
    fn svd_view_backward(&self, g_u_view: &Matrix, g_i_view: &Matrix) -> (Matrix, Matrix) {
        let g_user = self.us.matmul(&self.v.matmul_tn(g_i_view));
        let g_item = self.v.matmul(&self.us.matmul_tn(g_u_view));
        (g_user, g_item)
    }
}

impl Backbone for LightGcl {
    fn name(&self) -> &'static str {
        "LightGCL"
    }

    fn n_users(&self) -> usize {
        self.user_base.rows()
    }

    fn n_items(&self) -> usize {
        self.item_base.rows()
    }

    fn out_dim(&self) -> usize {
        self.user_base.cols()
    }

    fn forward(&mut self, _rng: &mut StdRng) {
        let (u, i) = self.prop.forward(&self.user_base, &self.item_base);
        self.fin_u = u;
        self.fin_i = i;
        let (su, si) = self.svd_view();
        self.svd_u = su;
        self.svd_i = si;
    }

    fn user_factors(&self) -> &Matrix {
        &self.fin_u
    }

    fn item_factors(&self) -> &Matrix {
        &self.fin_i
    }

    fn step(
        &mut self,
        grads: &GradBuffer,
        batch_users: &[u32],
        batch_items: &[u32],
        hp: Hyper,
        _rng: &mut StdRng,
    ) -> f64 {
        let (mut gu, mut gi) = self.prop.backward(grads.users(), grads.items());
        let mut aux = 0.0f64;
        if self.ssl_reg > 0.0 {
            let (nu, d) = (self.user_base.rows(), self.user_base.cols());
            let ni = self.item_base.rows();
            // Main view vs SVD view.
            let mut g_main_u = Matrix::zeros(nu, d);
            let mut g_svd_u = Matrix::zeros(nu, d);
            let mut g_main_i = Matrix::zeros(ni, d);
            let mut g_svd_i = Matrix::zeros(ni, d);
            let users = dedup_cap(batch_users, AUX_NODE_CAP);
            if !users.is_empty() {
                aux += info_nce_grad(
                    &self.fin_u,
                    &self.svd_u,
                    &users,
                    self.ssl_tau,
                    self.ssl_reg,
                    &mut g_main_u,
                    &mut g_svd_u,
                );
            }
            let items = dedup_cap(batch_items, AUX_NODE_CAP);
            if !items.is_empty() {
                aux += info_nce_grad(
                    &self.fin_i,
                    &self.svd_i,
                    &items,
                    self.ssl_tau,
                    self.ssl_reg,
                    &mut g_main_i,
                    &mut g_svd_i,
                );
            }
            // Main-view gradients flow through the graph propagation…
            let (bu, bi) = self.prop.backward(&g_main_u, &g_main_i);
            gu.add_assign(&bu);
            gi.add_assign(&bi);
            // …SVD-view gradients through the low-rank reconstruction.
            let (bu, bi) = self.svd_view_backward(&g_svd_u, &g_svd_i);
            gu.add_assign(&bu);
            gi.add_assign(&bi);
        }
        LightGcn::apply_base_update(
            &mut self.user_base,
            &mut self.item_base,
            &mut self.adam_u,
            &mut self.adam_i,
            gu,
            gi,
            grads,
            hp,
        );
        aux
    }

    fn eval_score(&self) -> EvalScore {
        EvalScore::Dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};

    fn setup() -> (Arc<Dataset>, LightGcl, StdRng) {
        let ds = Arc::new(generate(&SynthConfig::tiny(1)));
        let m = LightGcl::new(&ds, 6, 2, 4, 0.5, 0.2, 3);
        (ds, m, StdRng::seed_from_u64(0))
    }

    /// The SVD view maps are adjoint: `<svd_view(x), y> = <x, backward(y)>`
    /// with the pairing taken per block.
    #[test]
    fn svd_view_backward_is_adjoint() {
        let (ds, mut m, mut rng) = setup();
        let inner = |a: &Matrix, b: &Matrix| -> f64 {
            a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x as f64 * y as f64).sum()
        };
        let yu = Matrix::gaussian(ds.n_users, 6, 1.0, &mut rng);
        let yi = Matrix::gaussian(ds.n_items, 6, 1.0, &mut rng);
        let (vu, vi) = m.svd_view();
        let (gu, gi) = m.svd_view_backward(&yu, &yi);
        // <u_view, yu> + <i_view, yi> must equal <user_base, g_user> +
        // <item_base, g_item>.
        let lhs = inner(&vu, &yu) + inner(&vi, &yi);
        let rhs = inner(&m.user_base, &gu) + inner(&m.item_base, &gi);
        assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
        m.forward(&mut rng);
    }

    #[test]
    fn svd_view_fidelity_grows_with_rank() {
        // The low-rank view approximates one propagation hop R̂·item_base;
        // the approximation must be positively correlated and sharpen as
        // the rank grows.
        let ds = Arc::new(generate(&SynthConfig::tiny(1)));
        let corr_at = |rank: usize| -> f64 {
            let mut m = LightGcl::new(&ds, 6, 2, rank, 0.5, 0.2, 3);
            let mut rng = StdRng::seed_from_u64(0);
            m.forward(&mut rng);
            let hop = m.prop.adj().user_item.spmm(&m.item_base);
            let mut num = 0.0f64;
            let mut na = 0.0f64;
            let mut nb = 0.0f64;
            for (&a, &b) in m.svd_u.as_slice().iter().zip(hop.as_slice()) {
                num += a as f64 * b as f64;
                na += (a as f64).powi(2);
                nb += (b as f64).powi(2);
            }
            num / (na.sqrt() * nb.sqrt()).max(1e-12)
        };
        let low = corr_at(4);
        let high = corr_at(24);
        assert!(low > 0.3, "rank-4 view uncorrelated with one-hop: {low}");
        assert!(high > low, "fidelity did not grow with rank: {low} vs {high}");
        assert!(high > 0.9, "rank-24 view should be near-exact: {high}");
    }

    #[test]
    fn step_returns_positive_aux_and_stays_finite() {
        let (ds, mut m, mut rng) = setup();
        m.forward(&mut rng);
        let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 6);
        grads.user_row_mut(0)[0] = 0.4;
        let aux = m.step(&grads, &[0, 5, 9], &[2, 4], Hyper { lr: 0.01, l2: 1e-4 }, &mut rng);
        assert!(aux > 0.0 && aux.is_finite());
        assert!(m.user_base.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn aux_only_training_reduces_contrastive_loss() {
        let (ds, mut m, mut rng) = setup();
        let empty = GradBuffer::new(ds.n_users, ds.n_items, 6);
        let users: Vec<u32> = (0..16).collect();
        let items: Vec<u32> = (0..16).collect();
        m.forward(&mut rng);
        let first = m.step(&empty, &users, &items, Hyper { lr: 0.05, l2: 0.0 }, &mut rng);
        for _ in 0..25 {
            m.forward(&mut rng);
            m.step(&empty, &users, &items, Hyper { lr: 0.05, l2: 0.0 }, &mut rng);
        }
        m.forward(&mut rng);
        let last = m.step(&empty, &users, &items, Hyper { lr: 0.05, l2: 0.0 }, &mut rng);
        assert!(last < first, "aux loss did not improve: {first} -> {last}");
    }
}
