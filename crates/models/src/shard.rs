//! Sparse, batch-footprint gradient shards for the multi-threaded trainer.
//!
//! PR 2's sharded trainer gave every worker a private dense
//! [`GradBuffer`], so scratch memory scaled as
//! `threads × (n_users + n_items) × d` — a wall on many-core machines
//! with catalogue-scale item tables. A training step only ever touches
//! the rows of its batch (`B` users, at most `B·(1+m)` items), so
//! [`ShardGrad`] stores exactly those rows: an open-addressed row map
//! from node id to a dense `d`-wide slab, **grow-only** across batches
//! (after the first full batch no step allocates), with
//! insertion-ordered iteration so the shard merge replays the dense
//! buffer's touch order bit for bit.
//!
//! Memory is proportional to the *batch footprint*, never the catalogue:
//! [`ShardGrad::rows_capacity`] is bounded by the largest set of distinct
//! rows any single batch touched on that shard.

use crate::grad::GradBuffer;

/// Multiply-shift hash of a row id into a table of size `mask + 1`.
#[inline]
fn hash(key: u32, mask: usize) -> usize {
    (((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & mask
}

/// An insertion-ordered sparse set of dense gradient rows.
///
/// `table` is open-addressed with linear probing and stores `slot + 1`
/// (0 = empty); `keys[slot]` is the row id and
/// `data[slot·dim .. (slot+1)·dim]` its gradient slab. `clear` zeroes
/// only the used slabs and keeps all capacity.
struct SparseRows {
    dim: usize,
    /// Touched row ids in insertion order (`slot` = index here).
    keys: Vec<u32>,
    /// `keys.len() × dim` slabs; retains its high-water length (zeroed)
    /// across clears so steady-state batches never reallocate.
    data: Vec<f32>,
    /// Open-addressed table of `slot + 1` entries, 0 = empty.
    table: Vec<u32>,
    mask: usize,
}

impl SparseRows {
    fn new(dim: usize) -> Self {
        const INITIAL_TABLE: usize = 64;
        Self {
            dim,
            keys: Vec::new(),
            data: Vec::new(),
            table: vec![0; INITIAL_TABLE],
            mask: INITIAL_TABLE - 1,
        }
    }

    /// The gradient slab of `key`, inserting a zeroed slab on first touch.
    fn row_mut(&mut self, key: u32) -> &mut [f32] {
        let mut h = hash(key, self.mask);
        let slot = loop {
            let e = self.table[h];
            if e == 0 {
                let slot = self.keys.len();
                self.keys.push(key);
                if self.data.len() < self.keys.len() * self.dim {
                    // First time this slot index is used: extend by one
                    // zeroed slab (kept zeroed by `clear` thereafter).
                    self.data.resize(self.keys.len() * self.dim, 0.0);
                }
                self.table[h] = (slot + 1) as u32;
                // Keep load factor ≤ 3/4 so probes stay short.
                if (self.keys.len() + 1) * 4 > self.table.len() * 3 {
                    self.grow_table();
                }
                break slot;
            }
            let slot = (e - 1) as usize;
            if self.keys[slot] == key {
                break slot;
            }
            h = (h + 1) & self.mask;
        };
        &mut self.data[slot * self.dim..(slot + 1) * self.dim]
    }

    /// Doubles the probe table and reinserts every key (slots unchanged).
    fn grow_table(&mut self) {
        let new_len = self.table.len() * 2;
        self.table.clear();
        self.table.resize(new_len, 0);
        self.mask = new_len - 1;
        for (slot, &key) in self.keys.iter().enumerate() {
            let mut h = hash(key, self.mask);
            while self.table[h] != 0 {
                h = (h + 1) & self.mask;
            }
            self.table[h] = (slot + 1) as u32;
        }
    }

    /// Zeroes the used slabs and forgets the keys; capacity is retained.
    fn clear(&mut self) {
        self.data[..self.keys.len() * self.dim].fill(0.0);
        self.table.fill(0);
        self.keys.clear();
    }

    /// Allocated slab rows (the high-water distinct-row count).
    fn rows_capacity(&self) -> usize {
        self.data.len() / self.dim.max(1)
    }

    /// The slab of insertion slot `slot`.
    #[inline]
    fn slab(&self, slot: usize) -> &[f32] {
        &self.data[slot * self.dim..(slot + 1) * self.dim]
    }
}

/// A worker shard's gradient accumulator sized to the batch footprint.
///
/// Drop-in replacement for the per-shard dense [`GradBuffer`]s of the
/// sharded trainer: same `*_row_mut` accumulation API, same
/// insertion-ordered `touched_*` iteration, and
/// [`ShardGrad::merge_into`] adds rows into the main dense buffer with
/// exactly the element order [`GradBuffer::merge_from`] used — so the
/// exact merge-then-step path is bit-identical while per-shard memory
/// drops from `(n_users + n_items) × d` to `O(batch footprint × d)`.
pub struct ShardGrad {
    users: SparseRows,
    items: SparseRows,
}

impl ShardGrad {
    /// An empty shard accumulator for gradient rows of width `dim`.
    ///
    /// Note the constructor takes **no catalogue sizes**: nothing in a
    /// `ShardGrad` scales with `n_users` or `n_items`.
    pub fn new(dim: usize) -> Self {
        Self { users: SparseRows::new(dim), items: SparseRows::new(dim) }
    }

    /// Gradient dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.users.dim
    }

    /// Mutable gradient row of user `u`, zero-initialized on first touch.
    #[inline]
    pub fn user_row_mut(&mut self, u: u32) -> &mut [f32] {
        self.users.row_mut(u)
    }

    /// Mutable gradient row of item `i`, zero-initialized on first touch.
    #[inline]
    pub fn item_row_mut(&mut self, i: u32) -> &mut [f32] {
        self.items.row_mut(i)
    }

    /// Users touched since the last clear, in first-touch order.
    #[inline]
    pub fn touched_users(&self) -> &[u32] {
        &self.users.keys
    }

    /// Items touched since the last clear, in first-touch order.
    #[inline]
    pub fn touched_items(&self) -> &[u32] {
        &self.items.keys
    }

    /// Whether nothing has been accumulated since the last clear.
    pub fn is_empty(&self) -> bool {
        self.users.keys.is_empty() && self.items.keys.is_empty()
    }

    /// Adds every touched row into `dst`, users then items, in
    /// first-touch order — the same reduction order (and therefore the
    /// same f32 sums, bit for bit) as [`GradBuffer::merge_from`] between
    /// two dense buffers.
    ///
    /// # Panics
    /// Panics if `dst`'s gradient width differs from [`ShardGrad::dim`].
    pub fn merge_into(&self, dst: &mut GradBuffer) {
        assert_eq!(self.dim(), dst.dim(), "gradient widths differ");
        for (slot, &u) in self.users.keys.iter().enumerate() {
            let src = self.users.slab(slot);
            for (d, &s) in dst.user_row_mut(u).iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        for (slot, &i) in self.items.keys.iter().enumerate() {
            let src = self.items.slab(slot);
            for (d, &s) in dst.item_row_mut(i).iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
    }

    /// Zeroes the touched slabs and resets the bookkeeping; all capacity
    /// (slabs and probe tables) is retained for the next batch.
    pub fn clear(&mut self) {
        self.users.clear();
        self.items.clear();
    }

    /// Total allocated slab rows (users + items): the high-water count of
    /// distinct rows any batch touched, *not* a function of the catalogue.
    pub fn rows_capacity(&self) -> usize {
        self.users.rows_capacity() + self.items.rows_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_tracks_touch_order() {
        let mut g = ShardGrad::new(2);
        g.user_row_mut(7)[0] += 1.0;
        g.user_row_mut(3)[1] += 2.0;
        g.user_row_mut(7)[0] += 0.5;
        g.item_row_mut(1_000_000)[1] = -4.0;
        assert_eq!(g.touched_users(), &[7, 3], "first-touch order, no duplicates");
        assert_eq!(g.touched_items(), &[1_000_000]);
        assert_eq!(g.users.slab(0), &[1.5, 0.0]);
        assert!(!g.is_empty());
    }

    #[test]
    fn merge_into_matches_dense_merge_bitwise() {
        // The same accumulation pattern through a dense shard buffer and a
        // sparse one must merge to bit-identical dense results.
        let (nu, ni, d) = (50usize, 80usize, 3usize);
        let touches: Vec<(bool, u32, f32)> = (0..200)
            .map(|t| {
                let is_user = t % 3 != 0;
                let id = ((t * 37 + 11) % if is_user { nu } else { ni }) as u32;
                (is_user, id, (t as f32 * 0.173).sin())
            })
            .collect();

        let mut dense_shard = GradBuffer::new(nu, ni, d);
        let mut sparse_shard = ShardGrad::new(d);
        for &(is_user, id, v) in &touches {
            let (a, b) = if is_user {
                (dense_shard.user_row_mut(id), sparse_shard.user_row_mut(id))
            } else {
                (dense_shard.item_row_mut(id), sparse_shard.item_row_mut(id))
            };
            a[(id as usize) % d] += v;
            b[(id as usize) % d] += v;
        }

        let mut via_dense = GradBuffer::new(nu, ni, d);
        via_dense.user_row_mut(0)[0] = 0.25; // pre-existing content overlaps
        let mut via_sparse = via_dense.clone();
        via_dense.merge_from(&dense_shard);
        sparse_shard.merge_into(&mut via_sparse);

        assert_eq!(via_dense.users().as_slice(), via_sparse.users().as_slice());
        assert_eq!(via_dense.items().as_slice(), via_sparse.items().as_slice());
        assert_eq!(via_dense.touched_users(), via_sparse.touched_users());
        assert_eq!(via_dense.touched_items(), via_sparse.touched_items());
    }

    #[test]
    fn clear_retains_capacity_and_zeroes_slabs() {
        let mut g = ShardGrad::new(4);
        for id in 0..100u32 {
            g.user_row_mut(id * 31)[2] = 1.0;
        }
        let cap = g.rows_capacity();
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.rows_capacity(), cap, "clear must not release slabs");
        // Reused slabs start zeroed.
        assert_eq!(g.user_row_mut(3100), &[0.0; 4]);
    }

    #[test]
    fn capacity_tracks_batch_footprint_not_catalogue() {
        // A shard serving a catalogue of millions still only allocates
        // slabs for the rows it actually touched.
        let mut g = ShardGrad::new(64);
        for step in 0..10 {
            for row in 0..128u32 {
                // ids spread across a huge virtual catalogue
                let id = row * 1_000_003 + step;
                g.item_row_mut(id)[0] += 1.0;
                g.user_row_mut(row)[0] += 1.0;
            }
            g.clear();
        }
        assert!(
            g.rows_capacity() <= 2 * 128,
            "capacity {} exceeds the per-batch footprint",
            g.rows_capacity()
        );
    }

    #[test]
    fn many_colliding_keys_stay_correct_through_table_growth() {
        let mut g = ShardGrad::new(1);
        let n = 5_000u32;
        for id in 0..n {
            g.item_row_mut(id.wrapping_mul(2_654_435_761))[0] += 1.0;
        }
        assert_eq!(g.touched_items().len(), n as usize);
        for slot in 0..n as usize {
            assert_eq!(g.items.slab(slot), &[1.0]);
        }
    }
}
