//! Recommendation backbones with hand-derived exact gradients.
//!
//! Every backbone implements [`Backbone`]: the trainer (in `bsl-core`)
//! computes score-level gradients with a [`RankingLoss`] and chains them
//! through the score function into a [`GradBuffer`] holding `∂L/∂(final
//! embeddings)`; the backbone then owns the final-embedding → parameter
//! backward pass and its optimizer state.
//!
//! [`RankingLoss`]: https://docs.rs/bsl-losses
//!
//! The zoo (paper §V-A):
//! * [`Mf`] — matrix factorization (also the CML body via unit-ball
//!   projection and squared-distance scores);
//! * [`LightGcn`] — K-layer linear propagation, exact backward by the same
//!   (symmetric) propagation operator;
//! * [`Ngcf`] — nonlinear propagation with per-layer weight matrices and a
//!   fully hand-written backward pass;
//! * [`LrGccf`] — linear residual GCN;
//! * [`Sgl`] / [`SimGcl`] / [`LightGcl`] — LightGCN plus self-supervised
//!   InfoNCE auxiliaries (edge-dropout views / embedding-noise views /
//!   randomized-SVD views);
//! * [`enmf::train_enmf`] and [`ultragcn::train_ultragcn`] — the two
//!   baselines whose training protocol does not fit the sampled-batch
//!   trainer (whole-data non-sampling loss; degree-weighted BCE).

// Enforced by bsl-audit (audit/policy.toml): this crate is not on the
// unsafe allowlist.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod backbone;
pub mod cml;
pub mod enmf;
pub mod grad;
pub mod ivf;
pub mod lightgcl;
pub mod lightgcn;
pub mod lrgccf;
pub mod mf;
pub mod ngcf;
pub mod propagation;
pub mod quant;
pub mod sgl;
pub mod shard;
pub mod simgcl;
pub mod ultragcn;

pub use artifact::{ArtifactError, ModelArtifact, Precision};
pub use backbone::{build, Backbone, BackboneConfig, EvalScore, Hyper, TrainScore};
pub use grad::GradBuffer;
pub use ivf::{IvfIndex, ProbeScratch};
pub use lightgcl::LightGcl;
pub use lightgcn::LightGcn;
pub use lrgccf::LrGccf;
pub use mf::Mf;
pub use ngcf::Ngcf;
pub use quant::QuantizedTable;
pub use sgl::Sgl;
pub use shard::ShardGrad;
pub use simgcl::SimGcl;
