//! The [`Backbone`] trait and the serializable model selector.

use crate::artifact::ModelArtifact;
use crate::grad::GradBuffer;
use bsl_data::Dataset;
use bsl_linalg::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Score function used during *training* (paper Table V: all backbones
/// train on cosine similarity; CML trains on negated squared distances).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainScore {
    /// Cosine similarity of final embeddings.
    Cosine,
    /// Negated squared Euclidean distance (CML).
    NegSqDist,
}

/// Score function used during *testing* (Table V: cosine for MF, inner
/// product for the GCN backbones, distance for CML).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalScore {
    /// Inner product.
    Dot,
    /// Cosine similarity.
    Cosine,
    /// Negated squared Euclidean distance.
    NegSqDist,
}

/// Per-step optimizer hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hyper {
    /// Learning rate for this step.
    pub lr: f32,
    /// L2 regularization coefficient on the touched parameters.
    pub l2: f32,
}

/// A trainable recommendation backbone.
pub trait Backbone: Send {
    /// Short identifier used in experiment tables (`"MF"`, `"LGN"`, …).
    fn name(&self) -> &'static str;
    /// Number of users.
    fn n_users(&self) -> usize;
    /// Number of items.
    fn n_items(&self) -> usize;
    /// Dimensionality of the *final* embeddings (may exceed the base
    /// embedding size, e.g. NGCF concatenates layers).
    fn out_dim(&self) -> usize;

    /// Recomputes the final embeddings from the current parameters. `rng`
    /// drives stochastic augmentations (edge-dropout / noise views); plain
    /// backbones ignore it.
    fn forward(&mut self, rng: &mut StdRng);

    /// Final user embeddings (valid after [`Backbone::forward`]).
    fn user_factors(&self) -> &Matrix;
    /// Final item embeddings (valid after [`Backbone::forward`]).
    fn item_factors(&self) -> &Matrix;

    /// One optimizer step. `grads` holds `∂L/∂(final embeddings)` for the
    /// main ranking loss; implementations add their auxiliary
    /// (self-supervised) gradients and L2, then update parameters with
    /// their own Adam state. `batch_users`/`batch_items` identify the
    /// batch's nodes for in-batch auxiliary losses. Returns the auxiliary
    /// loss value (0 when the model has none).
    fn step(
        &mut self,
        grads: &GradBuffer,
        batch_users: &[u32],
        batch_items: &[u32],
        hp: Hyper,
        rng: &mut StdRng,
    ) -> f64;

    /// The training-time score function.
    fn train_score(&self) -> TrainScore {
        TrainScore::Cosine
    }

    /// Raw `(user, item)` parameter matrices for **in-place** updates —
    /// `Some` only when the final embeddings *are* the parameters (the
    /// backward pass is the identity and no post-step projection is
    /// required), as for plain [`Mf`](crate::Mf). The Hogwild trainer
    /// uses this to apply lock-free SGD updates directly; backbones with
    /// a real backward pass (GCNs) or a projection step (CML) return
    /// `None` and fall back to the exact sharded path.
    fn params_mut(&mut self) -> Option<(&mut Matrix, &mut Matrix)> {
        None
    }

    /// The test-time score function.
    fn eval_score(&self) -> EvalScore;

    /// Freezes the current final embeddings into a servable
    /// [`ModelArtifact`] — the train→deploy boundary. The tables are
    /// prepared under [`Backbone::eval_score`] (cosine backbones
    /// pre-normalized, CML's distance ranking converted to an inner
    /// product), so the artifact serves with plain blocked dot products.
    ///
    /// Call [`Backbone::forward`] first; the export snapshots whatever the
    /// final embeddings currently hold.
    fn export(&self) -> ModelArtifact {
        ModelArtifact::from_embeddings(
            self.name(),
            self.user_factors(),
            self.item_factors(),
            self.eval_score(),
        )
    }
}

/// Serializable backbone selector used by experiment configs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BackboneConfig {
    /// Matrix factorization.
    Mf,
    /// CML: MF body, unit-ball projection, distance scores.
    Cml,
    /// LightGCN with `layers` propagation hops.
    LightGcn {
        /// Number of propagation layers.
        layers: usize,
    },
    /// NGCF with `layers` nonlinear propagation layers.
    Ngcf {
        /// Number of propagation layers.
        layers: usize,
    },
    /// LR-GCCF: linear residual GCN.
    LrGccf {
        /// Number of propagation layers.
        layers: usize,
    },
    /// SGL: LightGCN + edge-dropout InfoNCE.
    Sgl {
        /// Number of propagation layers.
        layers: usize,
        /// Edge dropout probability per view.
        dropout: f32,
        /// Weight of the self-supervised loss.
        ssl_reg: f32,
        /// InfoNCE temperature.
        ssl_tau: f32,
    },
    /// SimGCL (the paper's "SimSGL"): LightGCN + noise-view InfoNCE.
    SimGcl {
        /// Number of propagation layers.
        layers: usize,
        /// Noise magnitude ε.
        eps: f32,
        /// Weight of the self-supervised loss.
        ssl_reg: f32,
        /// InfoNCE temperature.
        ssl_tau: f32,
    },
    /// LightGCL-lite: LightGCN + randomized-SVD view InfoNCE.
    LightGcl {
        /// Number of propagation layers.
        layers: usize,
        /// Rank of the SVD view.
        rank: usize,
        /// Weight of the self-supervised loss.
        ssl_reg: f32,
        /// InfoNCE temperature.
        ssl_tau: f32,
    },
}

impl BackboneConfig {
    /// Short display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            BackboneConfig::Mf => "MF",
            BackboneConfig::Cml => "CML",
            BackboneConfig::LightGcn { .. } => "LGN",
            BackboneConfig::Ngcf { .. } => "NGCF",
            BackboneConfig::LrGccf { .. } => "LR-GCCF",
            BackboneConfig::Sgl { .. } => "SGL",
            BackboneConfig::SimGcl { .. } => "SimGCL",
            BackboneConfig::LightGcl { .. } => "LightGCL",
        }
    }
}

/// Instantiates the backbone described by `cfg` on `ds` with base embedding
/// size `dim`, Xavier-initialized from `seed`.
pub fn build(cfg: BackboneConfig, ds: &Arc<Dataset>, dim: usize, seed: u64) -> Box<dyn Backbone> {
    match cfg {
        BackboneConfig::Mf => Box::new(crate::mf::Mf::new(ds, dim, seed)),
        BackboneConfig::Cml => Box::new(crate::mf::Mf::new_cml(ds, dim, seed)),
        BackboneConfig::LightGcn { layers } => {
            Box::new(crate::lightgcn::LightGcn::new(ds, dim, layers, seed))
        }
        BackboneConfig::Ngcf { layers } => Box::new(crate::ngcf::Ngcf::new(ds, dim, layers, seed)),
        BackboneConfig::LrGccf { layers } => {
            Box::new(crate::lrgccf::LrGccf::new(ds, dim, layers, seed))
        }
        BackboneConfig::Sgl { layers, dropout, ssl_reg, ssl_tau } => {
            Box::new(crate::sgl::Sgl::new(ds, dim, layers, dropout, ssl_reg, ssl_tau, seed))
        }
        BackboneConfig::SimGcl { layers, eps, ssl_reg, ssl_tau } => {
            Box::new(crate::simgcl::SimGcl::new(ds, dim, layers, eps, ssl_reg, ssl_tau, seed))
        }
        BackboneConfig::LightGcl { layers, rank, ssl_reg, ssl_tau } => {
            Box::new(crate::lightgcl::LightGcl::new(ds, dim, layers, rank, ssl_reg, ssl_tau, seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};
    use rand::SeedableRng;

    #[test]
    fn build_constructs_every_backbone() {
        let ds = Arc::new(generate(&SynthConfig::tiny(1)));
        let cfgs = [
            BackboneConfig::Mf,
            BackboneConfig::Cml,
            BackboneConfig::LightGcn { layers: 2 },
            BackboneConfig::Ngcf { layers: 2 },
            BackboneConfig::LrGccf { layers: 2 },
            BackboneConfig::Sgl { layers: 2, dropout: 0.1, ssl_reg: 0.1, ssl_tau: 0.2 },
            BackboneConfig::SimGcl { layers: 2, eps: 0.1, ssl_reg: 0.1, ssl_tau: 0.2 },
            BackboneConfig::LightGcl { layers: 2, rank: 4, ssl_reg: 0.1, ssl_tau: 0.2 },
        ];
        let mut rng = StdRng::seed_from_u64(0);
        for cfg in cfgs {
            let mut bb = build(cfg, &ds, 8, 7);
            bb.forward(&mut rng);
            assert_eq!(bb.n_users(), ds.n_users, "{}", bb.name());
            assert_eq!(bb.n_items(), ds.n_items, "{}", bb.name());
            assert_eq!(bb.user_factors().rows(), ds.n_users, "{}", bb.name());
            assert_eq!(bb.item_factors().rows(), ds.n_items, "{}", bb.name());
            assert_eq!(bb.user_factors().cols(), bb.out_dim(), "{}", bb.name());
            assert!(
                bb.user_factors().as_slice().iter().all(|v| v.is_finite()),
                "{} produced non-finite embeddings",
                bb.name()
            );
        }
    }

    #[test]
    fn export_prepares_tables_per_eval_score() {
        let ds = Arc::new(generate(&SynthConfig::tiny(2)));
        let mut rng = StdRng::seed_from_u64(3);
        for cfg in [BackboneConfig::Mf, BackboneConfig::Cml, BackboneConfig::LightGcn { layers: 2 }]
        {
            let mut bb = build(cfg, &ds, 8, 11);
            bb.forward(&mut rng);
            let art = bb.export();
            assert_eq!(art.backbone(), bb.name());
            assert_eq!(art.similarity(), bb.eval_score());
            assert_eq!(art.n_users(), ds.n_users);
            assert_eq!(art.n_items(), ds.n_items);
            match bb.eval_score() {
                // CML bakes the distance augmentation: one extra column.
                EvalScore::NegSqDist => assert_eq!(art.dim(), bb.out_dim() + 1),
                _ => assert_eq!(art.dim(), bb.out_dim()),
            }
            if bb.eval_score() == EvalScore::Cosine {
                let r = art.items().row(0);
                let n: f32 = r.iter().map(|x| x * x).sum::<f32>().sqrt();
                assert!((n - 1.0).abs() < 1e-5, "{}: unnormalized export", bb.name());
            }
        }
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(BackboneConfig::Mf.label(), "MF");
        assert_eq!(BackboneConfig::LightGcn { layers: 3 }.label(), "LGN");
        assert_eq!(
            BackboneConfig::SimGcl { layers: 2, eps: 0.1, ssl_reg: 0.1, ssl_tau: 0.2 }.label(),
            "SimGCL"
        );
    }
}
