//! ENMF (Chen et al., TOIS'20): Efficient Neural Matrix Factorization
//! *without sampling* — every unobserved pair contributes to the loss with
//! a uniform weight `c0`, made tractable by the `d × d` Gram-matrix trick:
//!
//! ```text
//! L = Σ_u Σ_{i∈S+} [(û·î − 1)² − c0·(û·î)²] + c0·Σ_u ûᵀ·G_I·û + reg
//! G_I = Σ_i î·îᵀ   (d × d, recomputed once per half-epoch)
//! ```
//!
//! Training alternates full-gradient Adam steps on the user and item
//! tables, which is the whole-data (non-sampling) protocol the paper's
//! Table II row refers to.

use bsl_data::Dataset;
use bsl_linalg::kernels::{axpy, dot};
use bsl_linalg::Matrix;
use bsl_opt::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// ENMF hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EnmfConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Uniform negative weight `c0 ∈ (0, 1]`.
    pub c0: f32,
    /// Learning rate.
    pub lr: f32,
    /// L2 coefficient.
    pub l2: f32,
    /// Training epochs (one user sweep + one item sweep each).
    pub epochs: usize,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for EnmfConfig {
    fn default() -> Self {
        Self { dim: 64, c0: 0.05, lr: 0.01, l2: 1e-5, epochs: 60, seed: 0 }
    }
}

/// Trains ENMF and returns `(user_emb, item_emb)` (dot-product scoring).
///
/// # Panics
/// Panics unless `0 < c0 <= 1`, `dim > 0` and `epochs > 0`.
pub fn train_enmf(ds: &Dataset, cfg: &EnmfConfig) -> (Matrix, Matrix) {
    assert!(cfg.c0 > 0.0 && cfg.c0 <= 1.0, "c0 must be in (0,1], got {}", cfg.c0);
    assert!(cfg.dim > 0, "dim must be positive");
    assert!(cfg.epochs > 0, "epochs must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = cfg.dim;
    let mut user_emb = Matrix::xavier_uniform(ds.n_users, d, &mut rng);
    let mut item_emb = Matrix::xavier_uniform(ds.n_items, d, &mut rng);
    let mut adam_u = Adam::new(ds.n_users, d);
    let mut adam_i = Adam::new(ds.n_items, d);
    let item_of_user = ds.train.clone();
    let user_of_item = ds.train.transpose();

    for _ in 0..cfg.epochs {
        // --- user sweep (items fixed) ---
        let gram_i = item_emb.matmul_tn(&item_emb); // d × d
        let mut grad_u = Matrix::zeros(ds.n_users, d);
        for u in 0..ds.n_users {
            let urow = user_emb.row(u).to_vec();
            let g = grad_u.row_mut(u);
            // 2·c0·G_I·u
            for (j, gj) in g.iter_mut().enumerate() {
                *gj = 2.0 * cfg.c0 * dot(gram_i.row(j), &urow);
            }
            // positives: 2(1−c0)(u·i)·i − 2·i
            for &i in item_of_user.row_indices(u) {
                let irow = item_emb.row(i as usize);
                let s = dot(&urow, irow);
                axpy(2.0 * (1.0 - cfg.c0) * s - 2.0, irow, g);
            }
            axpy(cfg.l2, &urow, g);
        }
        adam_u.step_dense(&mut user_emb, &grad_u, cfg.lr);

        // --- item sweep (users fixed) ---
        let gram_u = user_emb.matmul_tn(&user_emb);
        let mut grad_i = Matrix::zeros(ds.n_items, d);
        for i in 0..ds.n_items {
            let irow = item_emb.row(i).to_vec();
            let g = grad_i.row_mut(i);
            for (j, gj) in g.iter_mut().enumerate() {
                *gj = 2.0 * cfg.c0 * dot(gram_u.row(j), &irow);
            }
            for &u in user_of_item.row_indices(i) {
                let urow = user_emb.row(u as usize);
                let s = dot(&irow, urow);
                axpy(2.0 * (1.0 - cfg.c0) * s - 2.0, urow, g);
            }
            axpy(cfg.l2, &irow, g);
        }
        adam_i.step_dense(&mut item_emb, &grad_i, cfg.lr);
    }
    (user_emb, item_emb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};

    /// The ENMF objective, computed naively over every (u, i) pair —
    /// ground truth for the Gram-trick gradients.
    fn naive_loss(ds: &Dataset, users: &Matrix, items: &Matrix, c0: f32) -> f64 {
        let mut l = 0.0f64;
        for u in 0..ds.n_users {
            for i in 0..ds.n_items {
                let s = dot(users.row(u), items.row(i)) as f64;
                let w = if ds.train.contains(u, i as u32) { 1.0 } else { c0 as f64 };
                let r = if ds.train.contains(u, i as u32) { 1.0 } else { 0.0 };
                l += w * (s - r) * (s - r);
            }
        }
        l
    }

    #[test]
    fn training_decreases_whole_data_loss() {
        let ds = generate(&SynthConfig::tiny(1));
        let cfg = EnmfConfig { dim: 8, c0: 0.1, lr: 0.02, l2: 0.0, epochs: 1, seed: 4 };
        let (u0, i0) = {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            (
                Matrix::xavier_uniform(ds.n_users, cfg.dim, &mut rng),
                Matrix::xavier_uniform(ds.n_items, cfg.dim, &mut rng),
            )
        };
        let before = naive_loss(&ds, &u0, &i0, cfg.c0);
        let long = EnmfConfig { epochs: 40, ..cfg };
        let (u1, i1) = train_enmf(&ds, &long);
        let after = naive_loss(&ds, &u1, &i1, cfg.c0);
        assert!(after < before * 0.9, "loss {before} -> {after}");
    }

    #[test]
    fn trained_embeddings_beat_random_on_recall() {
        let ds = generate(&SynthConfig::tiny(2));
        let cfg = EnmfConfig { dim: 16, c0: 0.1, lr: 0.02, l2: 1e-6, epochs: 80, seed: 9 };
        let (u, i) = train_enmf(&ds, &cfg);
        // Score test items above random guessing: positives should score
        // higher than average.
        let mut pos_mean = 0.0f64;
        let mut all_mean = 0.0f64;
        let mut n_pos = 0usize;
        let mut n_all = 0usize;
        for uu in 0..ds.n_users {
            for ii in 0..ds.n_items {
                let s = dot(u.row(uu), i.row(ii)) as f64;
                all_mean += s;
                n_all += 1;
                if ds.train.contains(uu, ii as u32) {
                    pos_mean += s;
                    n_pos += 1;
                }
            }
        }
        pos_mean /= n_pos as f64;
        all_mean /= n_all as f64;
        assert!(pos_mean > all_mean + 0.1, "positives {pos_mean} vs overall {all_mean}");
    }

    #[test]
    fn deterministic_in_seed() {
        let ds = generate(&SynthConfig::tiny(3));
        let cfg = EnmfConfig { dim: 4, c0: 0.2, lr: 0.05, l2: 0.0, epochs: 3, seed: 11 };
        let (a, _) = train_enmf(&ds, &cfg);
        let (b, _) = train_enmf(&ds, &cfg);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "c0 must be in")]
    fn rejects_bad_c0() {
        let ds = generate(&SynthConfig::tiny(4));
        let cfg = EnmfConfig { c0: 0.0, ..EnmfConfig::default() };
        let _ = train_enmf(&ds, &cfg);
    }
}
