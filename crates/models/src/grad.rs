//! Accumulator for gradients w.r.t. final embeddings.

use bsl_linalg::Matrix;

/// Dense per-node gradient buffer with touched-row bookkeeping.
///
/// The trainer accumulates `∂L/∂(final embedding)` rows for the users and
/// items a batch touches; [`GradBuffer::clear`] then zeroes *only* those
/// rows, keeping per-batch cost proportional to the batch, not the
/// catalogue.
#[derive(Clone, Debug)]
pub struct GradBuffer {
    users: Matrix,
    items: Matrix,
    user_touched: Vec<bool>,
    item_touched: Vec<bool>,
    user_list: Vec<u32>,
    item_list: Vec<u32>,
}

impl GradBuffer {
    /// A zeroed buffer for `n_users`/`n_items` nodes of dimension `dim`.
    pub fn new(n_users: usize, n_items: usize, dim: usize) -> Self {
        Self {
            users: Matrix::zeros(n_users, dim),
            items: Matrix::zeros(n_items, dim),
            user_touched: vec![false; n_users],
            item_touched: vec![false; n_items],
            user_list: Vec::new(),
            item_list: Vec::new(),
        }
    }

    /// Gradient dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.users.cols()
    }

    /// Mutable gradient row of user `u`, marking it touched.
    #[inline]
    pub fn user_row_mut(&mut self, u: u32) -> &mut [f32] {
        let ui = u as usize;
        if !self.user_touched[ui] {
            self.user_touched[ui] = true;
            self.user_list.push(u);
        }
        self.users.row_mut(ui)
    }

    /// Mutable gradient row of item `i`, marking it touched.
    #[inline]
    pub fn item_row_mut(&mut self, i: u32) -> &mut [f32] {
        let ii = i as usize;
        if !self.item_touched[ii] {
            self.item_touched[ii] = true;
            self.item_list.push(i);
        }
        self.items.row_mut(ii)
    }

    /// The dense user-gradient matrix (zeros outside touched rows).
    #[inline]
    pub fn users(&self) -> &Matrix {
        &self.users
    }

    /// The dense item-gradient matrix (zeros outside touched rows).
    #[inline]
    pub fn items(&self) -> &Matrix {
        &self.items
    }

    /// Users with a non-trivially-zero gradient row (no duplicates).
    #[inline]
    pub fn touched_users(&self) -> &[u32] {
        &self.user_list
    }

    /// Items with a non-trivially-zero gradient row (no duplicates).
    #[inline]
    pub fn touched_items(&self) -> &[u32] {
        &self.item_list
    }

    /// Whether nothing has been accumulated since the last clear.
    pub fn is_empty(&self) -> bool {
        self.user_list.is_empty() && self.item_list.is_empty()
    }

    /// Adds every touched row of `other` into this buffer (marking the
    /// rows touched here too).
    ///
    /// This is the reduction step of the sharded trainer: each worker
    /// accumulates into a private buffer and the shards are merged in a
    /// fixed order, so results are exact up to f32 addition order and
    /// deterministic for a given shard count.
    ///
    /// # Panics
    /// Panics if the two buffers have different shapes.
    pub fn merge_from(&mut self, other: &GradBuffer) {
        assert_eq!(self.users.shape(), other.users.shape(), "user grad shapes differ");
        assert_eq!(self.items.shape(), other.items.shape(), "item grad shapes differ");
        for &u in other.touched_users() {
            let src = other.users.row(u as usize);
            for (dst, &s) in self.user_row_mut(u).iter_mut().zip(src.iter()) {
                *dst += s;
            }
        }
        for &i in other.touched_items() {
            let src = other.items.row(i as usize);
            for (dst, &s) in self.item_row_mut(i).iter_mut().zip(src.iter()) {
                *dst += s;
            }
        }
    }

    /// Zeroes the touched rows and resets the bookkeeping.
    pub fn clear(&mut self) {
        for &u in &self.user_list {
            self.users.row_mut(u as usize).fill(0.0);
            self.user_touched[u as usize] = false;
        }
        for &i in &self.item_list {
            self.items.row_mut(i as usize).fill(0.0);
            self.item_touched[i as usize] = false;
        }
        self.user_list.clear();
        self.item_list.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_tracks_touched() {
        let mut g = GradBuffer::new(3, 4, 2);
        g.user_row_mut(1)[0] += 1.0;
        g.user_row_mut(1)[1] += 2.0;
        g.item_row_mut(3)[0] += -0.5;
        assert_eq!(g.touched_users(), &[1]);
        assert_eq!(g.touched_items(), &[3]);
        assert_eq!(g.users().row(1), &[1.0, 2.0]);
        assert_eq!(g.items().row(3), &[-0.5, 0.0]);
        assert!(!g.is_empty());
    }

    #[test]
    fn clear_zeroes_only_touched_rows() {
        let mut g = GradBuffer::new(2, 2, 2);
        g.user_row_mut(0)[0] = 5.0;
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.users().row(0), &[0.0, 0.0]);
        assert!(g.touched_users().is_empty());
        // Reuse after clear works.
        g.user_row_mut(0)[1] = 3.0;
        assert_eq!(g.users().row(0), &[0.0, 3.0]);
        assert_eq!(g.touched_users(), &[0]);
    }

    #[test]
    fn merge_from_adds_rows_and_marks_touched() {
        let mut a = GradBuffer::new(3, 3, 2);
        a.user_row_mut(0)[0] = 1.0;
        a.item_row_mut(2)[1] = 4.0;
        let mut b = GradBuffer::new(3, 3, 2);
        b.user_row_mut(0)[0] = 2.0; // overlaps a's touched row
        b.user_row_mut(1)[1] = 3.0; // new row
        b.item_row_mut(2)[1] = -1.0;
        a.merge_from(&b);
        assert_eq!(a.users().row(0), &[3.0, 0.0]);
        assert_eq!(a.users().row(1), &[0.0, 3.0]);
        assert_eq!(a.items().row(2), &[0.0, 3.0]);
        let mut tu = a.touched_users().to_vec();
        tu.sort_unstable();
        assert_eq!(tu, vec![0, 1]);
        // b is untouched by the merge.
        assert_eq!(b.users().row(0), &[2.0, 0.0]);
    }

    #[test]
    fn merge_order_of_disjoint_shards_is_exact() {
        // Shard buffers touching disjoint rows merge to the same result in
        // any order (the trainer still fixes the order for determinism).
        let mut main1 = GradBuffer::new(2, 1, 1);
        let mut main2 = GradBuffer::new(2, 1, 1);
        let mut s0 = GradBuffer::new(2, 1, 1);
        s0.user_row_mut(0)[0] = 0.25;
        let mut s1 = GradBuffer::new(2, 1, 1);
        s1.user_row_mut(1)[0] = 0.5;
        main1.merge_from(&s0);
        main1.merge_from(&s1);
        main2.merge_from(&s1);
        main2.merge_from(&s0);
        assert_eq!(main1.users().as_slice(), main2.users().as_slice());
    }

    #[test]
    fn repeated_touch_registers_once() {
        let mut g = GradBuffer::new(2, 2, 1);
        g.user_row_mut(1)[0] += 1.0;
        g.user_row_mut(1)[0] += 1.0;
        assert_eq!(g.touched_users(), &[1]);
        assert_eq!(g.users().row(1), &[2.0]);
    }
}
