//! NGCF (Wang et al., SIGIR'19): nonlinear graph propagation with
//! per-layer weight matrices and the neighbour-interaction Hadamard term.
//!
//! Layer update (Eq. 7 of the NGCF paper, message/node dropout omitted —
//! the paper tunes them off for the BSL experiments):
//!
//! ```text
//! s^k   = Â·e^{k-1}                     (neighbour aggregate)
//! z^k   = (s^k + e^{k-1})·W1_k + (s^k ⊙ e^{k-1})·W2_k
//! e^k   = LeakyReLU(z^k)                (slope 0.2)
//! final = [e^0 ‖ e^1 ‖ … ‖ e^K]         (column concat)
//! ```
//!
//! The backward pass is written out by hand; the finite-difference tests
//! below check every gradient path (base embeddings, `W1`, `W2`).

use crate::backbone::{Backbone, EvalScore, Hyper};
use crate::grad::GradBuffer;
use bsl_data::Dataset;
use bsl_linalg::Matrix;
use bsl_opt::Adam;
use bsl_sparse::NormAdj;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const LEAKY_SLOPE: f32 = 0.2;

fn leaky(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        LEAKY_SLOPE * x
    }
}

fn leaky_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        LEAKY_SLOPE
    }
}

fn map(m: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
    let mut out = m.clone();
    out.as_mut_slice().iter_mut().for_each(|x| *x = f(*x));
    out
}

fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "hadamard shape mismatch");
    let mut out = a.clone();
    for (o, &x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o *= x;
    }
    out
}

fn added(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = a.clone();
    out.add_assign(b);
    out
}

/// Concatenates matrices column-wise.
fn concat_cols(parts: &[&Matrix]) -> Matrix {
    let rows = parts[0].rows();
    let total: usize = parts.iter().map(|m| m.cols()).sum();
    let mut out = Matrix::zeros(rows, total);
    for r in 0..rows {
        let dst = out.row_mut(r);
        let mut off = 0;
        for m in parts {
            dst[off..off + m.cols()].copy_from_slice(m.row(r));
            off += m.cols();
        }
    }
    out
}

/// Extracts the `k`-th `d`-wide column chunk.
fn col_chunk(m: &Matrix, k: usize, d: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), d);
    for r in 0..m.rows() {
        out.row_mut(r).copy_from_slice(&m.row(r)[k * d..(k + 1) * d]);
    }
    out
}

/// Per-layer forward cache.
struct LayerCache {
    /// Neighbour aggregates `s^k` for both blocks.
    s_u: Matrix,
    s_i: Matrix,
    /// Pre-activations `z^k`.
    z_u: Matrix,
    z_i: Matrix,
}

/// Gradients of all NGCF parameters (test hook return type).
pub struct NgcfGrads {
    /// Gradient w.r.t. the user base embeddings.
    pub user_base: Matrix,
    /// Gradient w.r.t. the item base embeddings.
    pub item_base: Matrix,
    /// Per-layer gradients of `W1`.
    pub w1: Vec<Matrix>,
    /// Per-layer gradients of `W2`.
    pub w2: Vec<Matrix>,
}

/// The NGCF backbone.
pub struct Ngcf {
    user_base: Matrix,
    item_base: Matrix,
    w1: Vec<Matrix>,
    w2: Vec<Matrix>,
    adj: NormAdj,
    layers: usize,
    dim: usize,
    // Forward cache (refreshed by `forward`).
    e_u: Vec<Matrix>,
    e_i: Vec<Matrix>,
    cache: Vec<LayerCache>,
    fin_u: Matrix,
    fin_i: Matrix,
    adam_u: Adam,
    adam_i: Adam,
    adam_w1: Vec<Adam>,
    adam_w2: Vec<Adam>,
}

impl Ngcf {
    /// Builds NGCF on `ds`'s training graph.
    ///
    /// # Panics
    /// Panics if `layers == 0`.
    pub fn new(ds: &Arc<Dataset>, dim: usize, layers: usize, seed: u64) -> Self {
        assert!(layers > 0, "need at least one layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = NormAdj::from_interactions(ds.n_users, ds.n_items, &ds.train_pairs());
        let w1: Vec<Matrix> =
            (0..layers).map(|_| Matrix::xavier_uniform(dim, dim, &mut rng)).collect();
        let w2: Vec<Matrix> =
            (0..layers).map(|_| Matrix::xavier_uniform(dim, dim, &mut rng)).collect();
        Self {
            user_base: Matrix::xavier_uniform(ds.n_users, dim, &mut rng),
            item_base: Matrix::xavier_uniform(ds.n_items, dim, &mut rng),
            adam_w1: (0..layers).map(|_| Adam::new(dim, dim)).collect(),
            adam_w2: (0..layers).map(|_| Adam::new(dim, dim)).collect(),
            w1,
            w2,
            adj,
            layers,
            dim,
            e_u: Vec::new(),
            e_i: Vec::new(),
            cache: Vec::new(),
            fin_u: Matrix::zeros(ds.n_users, dim * (layers + 1)),
            fin_i: Matrix::zeros(ds.n_items, dim * (layers + 1)),
            adam_u: Adam::new(ds.n_users, dim),
            adam_i: Adam::new(ds.n_items, dim),
        }
    }

    /// Exact gradients of all parameters for the given final-embedding
    /// gradients (valid after [`Backbone::forward`]). Test hook;
    /// [`Backbone::step`] chains this into Adam.
    pub fn backward(&self, grads: &GradBuffer) -> NgcfGrads {
        let d = self.dim;
        // Start from the top layer's chunk.
        let mut g_eu = col_chunk(grads.users(), self.layers, d);
        let mut g_ei = col_chunk(grads.items(), self.layers, d);
        let mut g_w1: Vec<Matrix> = (0..self.layers).map(|_| Matrix::zeros(d, d)).collect();
        let mut g_w2: Vec<Matrix> = (0..self.layers).map(|_| Matrix::zeros(d, d)).collect();

        for k in (0..self.layers).rev() {
            let cache = &self.cache[k];
            let (eu_prev, ei_prev) = (&self.e_u[k], &self.e_i[k]);
            // g_z = g_e ⊙ LeakyReLU'(z)
            let gz_u = hadamard(&g_eu, &map(&cache.z_u, leaky_grad));
            let gz_i = hadamard(&g_ei, &map(&cache.z_i, leaky_grad));
            // Weight gradients accumulate over both blocks.
            let sum_u = added(&cache.s_u, eu_prev);
            let sum_i = added(&cache.s_i, ei_prev);
            let had_u = hadamard(&cache.s_u, eu_prev);
            let had_i = hadamard(&cache.s_i, ei_prev);
            g_w1[k].add_assign(&sum_u.matmul_tn(&gz_u));
            g_w1[k].add_assign(&sum_i.matmul_tn(&gz_i));
            g_w2[k].add_assign(&had_u.matmul_tn(&gz_u));
            g_w2[k].add_assign(&had_i.matmul_tn(&gz_i));
            // Propagate to inputs.
            let w1t = self.w1[k].transpose();
            let w2t = self.w2[k].transpose();
            let p_u = gz_u.matmul(&w1t);
            let p_i = gz_i.matmul(&w1t);
            let q_u = gz_u.matmul(&w2t);
            let q_i = gz_i.matmul(&w2t);
            // g_s = p + q ⊙ e_prev; then its graph-propagated image feeds
            // g_e_prev along with the two direct paths.
            let gs_u = added(&p_u, &hadamard(&q_u, eu_prev));
            let gs_i = added(&p_i, &hadamard(&q_i, ei_prev));
            let (prop_u, prop_i) = self.adj.propagate(&gs_u, &gs_i);
            let mut prev_u = added(&p_u, &hadamard(&q_u, &cache.s_u));
            prev_u.add_assign(&prop_u);
            let mut prev_i = added(&p_i, &hadamard(&q_i, &cache.s_i));
            prev_i.add_assign(&prop_i);
            // Add the concat chunk that feeds e^{k-1} directly.
            prev_u.add_assign(&col_chunk(grads.users(), k, d));
            prev_i.add_assign(&col_chunk(grads.items(), k, d));
            g_eu = prev_u;
            g_ei = prev_i;
        }
        NgcfGrads { user_base: g_eu, item_base: g_ei, w1: g_w1, w2: g_w2 }
    }
}

impl Backbone for Ngcf {
    fn name(&self) -> &'static str {
        "NGCF"
    }

    fn n_users(&self) -> usize {
        self.user_base.rows()
    }

    fn n_items(&self) -> usize {
        self.item_base.rows()
    }

    fn out_dim(&self) -> usize {
        self.dim * (self.layers + 1)
    }

    fn forward(&mut self, _rng: &mut StdRng) {
        self.e_u = vec![self.user_base.clone()];
        self.e_i = vec![self.item_base.clone()];
        self.cache.clear();
        for k in 0..self.layers {
            let (s_u, s_i) = self.adj.propagate(&self.e_u[k], &self.e_i[k]);
            let z_u = {
                let mut z = added(&s_u, &self.e_u[k]).matmul(&self.w1[k]);
                z.add_assign(&hadamard(&s_u, &self.e_u[k]).matmul(&self.w2[k]));
                z
            };
            let z_i = {
                let mut z = added(&s_i, &self.e_i[k]).matmul(&self.w1[k]);
                z.add_assign(&hadamard(&s_i, &self.e_i[k]).matmul(&self.w2[k]));
                z
            };
            self.e_u.push(map(&z_u, leaky));
            self.e_i.push(map(&z_i, leaky));
            self.cache.push(LayerCache { s_u, s_i, z_u, z_i });
        }
        let parts_u: Vec<&Matrix> = self.e_u.iter().collect();
        let parts_i: Vec<&Matrix> = self.e_i.iter().collect();
        self.fin_u = concat_cols(&parts_u);
        self.fin_i = concat_cols(&parts_i);
    }

    fn user_factors(&self) -> &Matrix {
        &self.fin_u
    }

    fn item_factors(&self) -> &Matrix {
        &self.fin_i
    }

    fn step(
        &mut self,
        grads: &GradBuffer,
        _batch_users: &[u32],
        _batch_items: &[u32],
        hp: Hyper,
        _rng: &mut StdRng,
    ) -> f64 {
        let mut g = self.backward(grads);
        // L2 on the batch's ego rows of the base tables.
        for &u in grads.touched_users() {
            let r = u as usize;
            bsl_linalg::kernels::axpy(hp.l2, self.user_base.row(r), g.user_base.row_mut(r));
        }
        for &i in grads.touched_items() {
            let r = i as usize;
            bsl_linalg::kernels::axpy(hp.l2, self.item_base.row(r), g.item_base.row_mut(r));
        }
        self.adam_u.step_dense(&mut self.user_base, &g.user_base, hp.lr);
        self.adam_i.step_dense(&mut self.item_base, &g.item_base, hp.lr);
        for k in 0..self.layers {
            self.adam_w1[k].step_dense(&mut self.w1[k], &g.w1[k], hp.lr);
            self.adam_w2[k].step_dense(&mut self.w2[k], &g.w2[k], hp.lr);
        }
        0.0
    }

    fn eval_score(&self) -> EvalScore {
        EvalScore::Dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};

    fn setup() -> (Arc<Dataset>, Ngcf, StdRng) {
        let ds = Arc::new(generate(&SynthConfig::tiny(1)));
        let m = Ngcf::new(&ds, 5, 2, 3);
        (ds, m, StdRng::seed_from_u64(0))
    }

    /// Shared FD harness: objective = <C, final user row 4> + <C', final
    /// item row 2> with fixed coefficient vectors.
    fn fd_objective(m: &mut Ngcf, rng: &mut StdRng) -> f64 {
        m.forward(rng);
        let mut l = 0.0f64;
        for (j, &x) in m.user_factors().row(4).iter().enumerate() {
            l += (0.1 * (j as f32 + 1.0) * x) as f64;
        }
        for (j, &x) in m.item_factors().row(2).iter().enumerate() {
            l += (-0.07 * (j as f32 + 1.0) * x) as f64;
        }
        l
    }

    fn fd_gradbuffer(ds: &Arc<Dataset>, out_dim: usize) -> GradBuffer {
        let mut grads = GradBuffer::new(ds.n_users, ds.n_items, out_dim);
        for (j, g) in grads.user_row_mut(4).iter_mut().enumerate() {
            *g = 0.1 * (j as f32 + 1.0);
        }
        for (j, g) in grads.item_row_mut(2).iter_mut().enumerate() {
            *g = -0.07 * (j as f32 + 1.0);
        }
        grads
    }

    #[test]
    fn base_gradients_match_finite_difference() {
        let (ds, mut m, mut rng) = setup();
        m.forward(&mut rng);
        let grads = fd_gradbuffer(&ds, m.out_dim());
        let g = m.backward(&grads);
        let h = 5e-3f32;
        for (r, c) in [(4usize, 0usize), (0, 2), (17, 4)] {
            let orig = m.user_base.get(r, c);
            m.user_base.set(r, c, orig + h);
            let up = fd_objective(&mut m, &mut rng);
            m.user_base.set(r, c, orig - h);
            let down = fd_objective(&mut m, &mut rng);
            m.user_base.set(r, c, orig);
            let num = (up - down) / (2.0 * h as f64);
            let ana = g.user_base.get(r, c) as f64;
            assert!(
                (ana - num).abs() < 3e-2 * (1.0 + num.abs()),
                "user base ({r},{c}): analytic {ana} vs numeric {num}"
            );
        }
        for (r, c) in [(2usize, 1usize), (9, 3)] {
            let orig = m.item_base.get(r, c);
            m.item_base.set(r, c, orig + h);
            let up = fd_objective(&mut m, &mut rng);
            m.item_base.set(r, c, orig - h);
            let down = fd_objective(&mut m, &mut rng);
            m.item_base.set(r, c, orig);
            let num = (up - down) / (2.0 * h as f64);
            let ana = g.item_base.get(r, c) as f64;
            assert!(
                (ana - num).abs() < 3e-2 * (1.0 + num.abs()),
                "item base ({r},{c}): analytic {ana} vs numeric {num}"
            );
        }
    }

    #[test]
    fn weight_gradients_match_finite_difference() {
        let (ds, mut m, mut rng) = setup();
        m.forward(&mut rng);
        let grads = fd_gradbuffer(&ds, m.out_dim());
        let g = m.backward(&grads);
        let h = 5e-3f32;
        for (layer, r, c) in [(0usize, 0usize, 0usize), (1, 2, 3), (0, 4, 1)] {
            let orig = m.w1[layer].get(r, c);
            m.w1[layer].set(r, c, orig + h);
            let up = fd_objective(&mut m, &mut rng);
            m.w1[layer].set(r, c, orig - h);
            let down = fd_objective(&mut m, &mut rng);
            m.w1[layer].set(r, c, orig);
            let num = (up - down) / (2.0 * h as f64);
            let ana = g.w1[layer].get(r, c) as f64;
            assert!(
                (ana - num).abs() < 3e-2 * (1.0 + num.abs()),
                "W1[{layer}] ({r},{c}): analytic {ana} vs numeric {num}"
            );
            let orig = m.w2[layer].get(r, c);
            m.w2[layer].set(r, c, orig + h);
            let up = fd_objective(&mut m, &mut rng);
            m.w2[layer].set(r, c, orig - h);
            let down = fd_objective(&mut m, &mut rng);
            m.w2[layer].set(r, c, orig);
            let num = (up - down) / (2.0 * h as f64);
            let ana = g.w2[layer].get(r, c) as f64;
            assert!(
                (ana - num).abs() < 3e-2 * (1.0 + num.abs()),
                "W2[{layer}] ({r},{c}): analytic {ana} vs numeric {num}"
            );
        }
    }

    #[test]
    fn out_dim_is_concat_of_layers() {
        let (_, m, _) = setup();
        assert_eq!(m.out_dim(), 5 * 3);
    }

    #[test]
    fn concat_and_chunk_roundtrip() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let b = Matrix::from_fn(2, 3, |r, c| 10.0 + (r * 3 + c) as f32);
        let cat = concat_cols(&[&a, &b]);
        assert_eq!(cat.cols(), 6);
        assert_eq!(cat.row(1), &[3.0, 4.0, 5.0, 13.0, 14.0, 15.0]);
        assert_eq!(col_chunk(&cat, 0, 3), a);
        assert_eq!(col_chunk(&cat, 1, 3), b);
    }

    #[test]
    fn step_descends_linear_objective() {
        let (ds, mut m, mut rng) = setup();
        let before = fd_objective(&mut m, &mut rng);
        for _ in 0..10 {
            m.forward(&mut rng);
            let grads = fd_gradbuffer(&ds, m.out_dim());
            m.step(&grads, &[4], &[2], Hyper { lr: 0.02, l2: 0.0 }, &mut rng);
        }
        let after = fd_objective(&mut m, &mut rng);
        assert!(after < before, "{after} vs {before}");
    }
}
