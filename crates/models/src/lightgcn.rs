//! LightGCN (He et al., SIGIR'20): K-layer linear propagation over the
//! normalized bipartite graph with layer-mean readout.

use crate::backbone::{Backbone, EvalScore, Hyper};
use crate::grad::GradBuffer;
use crate::propagation::Propagator;
use bsl_data::Dataset;
use bsl_linalg::Matrix;
use bsl_opt::Adam;
use bsl_sparse::NormAdj;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// LightGCN backbone. Because the propagation operator is linear and
/// symmetric, the exact parameter gradient is the propagated final-
/// embedding gradient — no stored activations needed.
pub struct LightGcn {
    user_base: Matrix,
    item_base: Matrix,
    prop: Propagator,
    fin_u: Matrix,
    fin_i: Matrix,
    adam_u: Adam,
    adam_i: Adam,
}

impl LightGcn {
    /// Builds LightGCN on `ds`'s training graph.
    pub fn new(ds: &Arc<Dataset>, dim: usize, layers: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = NormAdj::from_interactions(ds.n_users, ds.n_items, &ds.train_pairs());
        Self {
            user_base: Matrix::xavier_uniform(ds.n_users, dim, &mut rng),
            item_base: Matrix::xavier_uniform(ds.n_items, dim, &mut rng),
            prop: Propagator::new(adj, layers),
            fin_u: Matrix::zeros(ds.n_users, dim),
            fin_i: Matrix::zeros(ds.n_items, dim),
            adam_u: Adam::new(ds.n_users, dim),
            adam_i: Adam::new(ds.n_items, dim),
        }
    }

    /// Exact gradients w.r.t. the base embeddings (test hook; [`Backbone::step`]
    /// chains this into Adam).
    pub fn backward_base(&self, grads: &GradBuffer) -> (Matrix, Matrix) {
        self.prop.backward(grads.users(), grads.items())
    }

    /// Shared step body for LightGCN-shaped models: L2 on touched rows,
    /// dense Adam on both embedding tables.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn apply_base_update(
        user_base: &mut Matrix,
        item_base: &mut Matrix,
        adam_u: &mut Adam,
        adam_i: &mut Adam,
        mut gu: Matrix,
        mut gi: Matrix,
        grads: &GradBuffer,
        hp: Hyper,
    ) {
        // Coupled L2 on the batch's ego rows (the standard minibatch
        // regularizer) — gradient rows elsewhere come only from propagation.
        for &u in grads.touched_users() {
            let r = u as usize;
            bsl_linalg::kernels::axpy(hp.l2, user_base.row(r), gu.row_mut(r));
        }
        for &i in grads.touched_items() {
            let r = i as usize;
            bsl_linalg::kernels::axpy(hp.l2, item_base.row(r), gi.row_mut(r));
        }
        adam_u.step_dense(user_base, &gu, hp.lr);
        adam_i.step_dense(item_base, &gi, hp.lr);
    }
}

impl Backbone for LightGcn {
    fn name(&self) -> &'static str {
        "LGN"
    }

    fn n_users(&self) -> usize {
        self.user_base.rows()
    }

    fn n_items(&self) -> usize {
        self.item_base.rows()
    }

    fn out_dim(&self) -> usize {
        self.user_base.cols()
    }

    fn forward(&mut self, _rng: &mut StdRng) {
        let (u, i) = self.prop.forward(&self.user_base, &self.item_base);
        self.fin_u = u;
        self.fin_i = i;
    }

    fn user_factors(&self) -> &Matrix {
        &self.fin_u
    }

    fn item_factors(&self) -> &Matrix {
        &self.fin_i
    }

    fn step(
        &mut self,
        grads: &GradBuffer,
        _batch_users: &[u32],
        _batch_items: &[u32],
        hp: Hyper,
        _rng: &mut StdRng,
    ) -> f64 {
        let (gu, gi) = self.backward_base(grads);
        Self::apply_base_update(
            &mut self.user_base,
            &mut self.item_base,
            &mut self.adam_u,
            &mut self.adam_i,
            gu,
            gi,
            grads,
            hp,
        );
        0.0
    }

    fn eval_score(&self) -> EvalScore {
        EvalScore::Dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};

    fn setup() -> (Arc<Dataset>, LightGcn, StdRng) {
        let ds = Arc::new(generate(&SynthConfig::tiny(1)));
        let lgn = LightGcn::new(&ds, 6, 2, 3);
        (ds, lgn, StdRng::seed_from_u64(0))
    }

    /// End-to-end finite-difference check: L = <C, final embeddings> is
    /// linear, so ∂L/∂base must equal backward_base(C) exactly.
    #[test]
    fn base_gradient_matches_finite_difference() {
        let (ds, mut lgn, mut rng) = setup();
        // Random linear objective over a handful of final rows.
        let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 6);
        let coeffs: [(u32, f32); 3] = [(0, 0.7), (5, -1.1), (11, 0.4)];
        for &(u, c) in &coeffs {
            grads.user_row_mut(u).iter_mut().for_each(|g| *g = c);
        }
        grads.item_row_mut(3).iter_mut().for_each(|g| *g = 0.9);

        let objective = |m: &mut LightGcn, rng: &mut StdRng| -> f64 {
            m.forward(rng);
            let mut l = 0.0f64;
            for &(u, c) in &coeffs {
                l += m.user_factors().row(u as usize).iter().map(|&x| (c * x) as f64).sum::<f64>();
            }
            l += m.item_factors().row(3).iter().map(|&x| (0.9 * x) as f64).sum::<f64>();
            l
        };

        let (gu, gi) = {
            lgn.forward(&mut rng);
            lgn.backward_base(&grads)
        };
        let h = 1e-2f32;
        for (r, c) in [(0usize, 0usize), (7, 3), (31, 5)] {
            let orig = lgn.user_base.get(r, c);
            lgn.user_base.set(r, c, orig + h);
            let up = objective(&mut lgn, &mut rng);
            lgn.user_base.set(r, c, orig - h);
            let down = objective(&mut lgn, &mut rng);
            lgn.user_base.set(r, c, orig);
            let num = (up - down) / (2.0 * h as f64);
            let ana = gu.get(r, c) as f64;
            assert!((ana - num).abs() < 1e-3 * (1.0 + num.abs()), "user ({r},{c}): {ana} vs {num}");
        }
        for (r, c) in [(3usize, 1usize), (20, 0)] {
            let orig = lgn.item_base.get(r, c);
            lgn.item_base.set(r, c, orig + h);
            let up = objective(&mut lgn, &mut rng);
            lgn.item_base.set(r, c, orig - h);
            let down = objective(&mut lgn, &mut rng);
            lgn.item_base.set(r, c, orig);
            let num = (up - down) / (2.0 * h as f64);
            let ana = gi.get(r, c) as f64;
            assert!((ana - num).abs() < 1e-3 * (1.0 + num.abs()), "item ({r},{c}): {ana} vs {num}");
        }
    }

    #[test]
    fn forward_mixes_neighbourhood_information() {
        let (_ds, mut lgn, mut rng) = setup();
        lgn.forward(&mut rng);
        // Final embeddings must differ from the base (propagation did
        // something) but stay finite.
        assert!(lgn.user_factors().as_slice().iter().all(|v| v.is_finite()));
        let diff: f64 = lgn
            .user_factors()
            .as_slice()
            .iter()
            .zip(lgn.user_base.as_slice())
            .map(|(&a, &b)| (a - b).abs() as f64)
            .sum();
        assert!(diff > 1e-3, "propagation changed nothing");
    }

    #[test]
    fn step_descends_linear_objective() {
        let (ds, mut lgn, mut rng) = setup();
        let c: Vec<f32> = (0..6).map(|k| if k % 2 == 0 { 1.0 } else { -0.5 }).collect();
        let l = |m: &mut LightGcn, rng: &mut StdRng| -> f64 {
            m.forward(rng);
            bsl_linalg::kernels::dot(m.user_factors().row(4), &c) as f64
        };
        let before = l(&mut lgn, &mut rng);
        for _ in 0..15 {
            lgn.forward(&mut rng);
            let mut grads = GradBuffer::new(ds.n_users, ds.n_items, 6);
            grads.user_row_mut(4).copy_from_slice(&c);
            lgn.step(&grads, &[4], &[], Hyper { lr: 0.05, l2: 0.0 }, &mut rng);
        }
        let after = l(&mut lgn, &mut rng);
        assert!(after < before, "{after} vs {before}");
    }
}
