//! Per-row symmetric int8 quantization for prepared score tables.
//!
//! A [`QuantizedTable`] stores each row of an embedding table as `dim`
//! signed bytes plus one f32 scale: `x ≈ scale · q` with
//! `q = round(x / scale)` and `scale = max_j |x_j| / 127`. The grid is
//! symmetric around zero (no zero-point), so a dot product against an f32
//! query needs exactly one multiply by `scale` after the integer-widening
//! accumulation — the fused [`dequant_dot`] / [`scores_block_i8`] kernels
//! in `bsl_linalg::simd` — and the table itself is 4× smaller than f32.
//!
//! Guarantees (property-tested in `tests/retrieval.rs` and below):
//!
//! * elementwise round-trip error is at most `scale / 2` — `round` never
//!   moves a value by more than half a grid step and the clamp at ±127 is
//!   unreachable because `|x| / scale ≤ 127` by construction;
//! * an all-zero row gets `scale = 0` and dequantizes to exactly zero;
//! * scales are always finite and non-negative — the codec rejects
//!   anything else as corruption.
//!
//! [`dequant_dot`]: bsl_linalg::simd::dequant_dot
//! [`scores_block_i8`]: bsl_linalg::simd::scores_block_i8

use bsl_linalg::simd::{scores_block_i8, scores_gather_i8};
use bsl_linalg::Matrix;

/// Quantizes one row: writes `round(x / scale)` into `dst` and returns
/// `scale = max|x| / 127` (`0.0` for an all-zero row, in which case `dst`
/// is zeroed).
///
/// # Panics
/// Panics if the slice lengths disagree.
pub fn quantize_row_i8(src: &[f32], dst: &mut [i8]) -> f32 {
    assert_eq!(src.len(), dst.len(), "quantize_row_i8 length mismatch");
    let amax = src.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if amax == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let scale = amax / 127.0;
    let inv = 127.0 / amax;
    for (d, &x) in dst.iter_mut().zip(src.iter()) {
        *d = (x * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// An `rows × dim` table of per-row-scaled int8 embeddings.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedTable {
    rows: usize,
    dim: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedTable {
    /// Quantizes every row of `src`.
    pub fn from_matrix(src: &Matrix) -> Self {
        let (rows, dim) = src.shape();
        let mut data = vec![0i8; rows * dim];
        let mut scales = vec![0.0f32; rows];
        for (r, s) in scales.iter_mut().enumerate() {
            *s = quantize_row_i8(src.row(r), &mut data[r * dim..(r + 1) * dim]);
        }
        Self { rows, dim, data, scales }
    }

    /// Rebuilds a table from its stored parts (the codec's entry point).
    ///
    /// # Panics
    /// Panics if `data.len() != rows * dim` or `scales.len() != rows`.
    pub fn from_parts(rows: usize, dim: usize, data: Vec<i8>, scales: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * dim, "quantized buffer length mismatch");
        assert_eq!(scales.len(), rows, "scales length mismatch");
        Self { rows, dim, data, scales }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `r` as quantized bytes.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// The scale of row `r`.
    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// The whole quantized buffer in row-major order.
    #[inline]
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// All per-row scales.
    #[inline]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dequantizes row `r` into `out` (`out[j] = scale · q[j]`).
    ///
    /// # Panics
    /// Panics if `out.len() != dim`.
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "dequantize_row_into length mismatch");
        let s = self.scales[r];
        for (o, &b) in out.iter_mut().zip(self.row(r).iter()) {
            *o = b as f32 * s;
        }
    }

    /// Dequantizes the whole table (tests and index rebuilds; serving
    /// never needs this).
    pub fn dequantize(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.dim);
        for r in 0..self.rows {
            self.dequantize_row_into(r, m.row_mut(r));
        }
        m
    }

    /// Scores `q` against every row via the fused int8 kernel:
    /// `out[r] = scale_r · <q, row_r>` (resizes `out` to `rows`).
    ///
    /// # Panics
    /// Panics if `q.len() != dim`.
    pub fn scores_into(&self, q: &[f32], out: &mut Vec<f32>) {
        assert_eq!(q.len(), self.dim, "query width mismatch");
        out.resize(self.rows, 0.0);
        scores_block_i8(q, &self.data, &self.scales, out);
    }

    /// Scores `q` against the gathered rows `ids` via the blocked gather
    /// kernel: `out[j] = scale(ids[j]) · <q, row(ids[j])>` (resizes `out`
    /// to `ids.len()`) — the IVF shortlist rescoring path.
    ///
    /// # Panics
    /// Panics if `q.len() != dim` or any id is out of range.
    pub fn scores_gather_into(&self, q: &[f32], ids: &[u32], out: &mut Vec<f32>) {
        assert_eq!(q.len(), self.dim, "query width mismatch");
        out.resize(ids.len(), 0.0);
        scores_gather_i8(q, &self.data, &self.scales, ids, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_linalg::simd::{dequant_dot, scalar};
    use proptest::prelude::*;

    #[test]
    fn zero_row_quantizes_to_zero_scale() {
        let m = Matrix::zeros(2, 5);
        let t = QuantizedTable::from_matrix(&m);
        assert_eq!(t.scale(0), 0.0);
        assert!(t.row(0).iter().all(|&b| b == 0));
        let mut out = vec![1.0f32; 5];
        t.dequantize_row_into(0, &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn extreme_values_hit_plus_minus_127() {
        let m = Matrix::from_vec(1, 3, vec![2.0, -2.0, 0.0]);
        let t = QuantizedTable::from_matrix(&m);
        assert_eq!(t.row(0), &[127, -127, 0]);
        assert!((t.scale(0) - 2.0 / 127.0).abs() < 1e-9);
    }

    proptest! {
        /// Elementwise round-trip error is bounded by `scale / 2`.
        #[test]
        fn prop_roundtrip_error_within_half_step(
            row in proptest::collection::vec(-10.0f32..10.0, 1..80),
        ) {
            let m = Matrix::from_vec(1, row.len(), row.clone());
            let t = QuantizedTable::from_matrix(&m);
            let s = t.scale(0);
            prop_assert!(s.is_finite() && s >= 0.0);
            let mut deq = vec![0.0f32; row.len()];
            t.dequantize_row_into(0, &mut deq);
            for (&x, &y) in row.iter().zip(deq.iter()) {
                // A hair of slack for the f32 divide/multiply round trip.
                prop_assert!((x - y).abs() <= s * 0.5 + s * 1e-5, "{x} vs {y} (scale {s})");
            }
        }

        /// The fused kernel over a quantized row equals the f32 dot of the
        /// dequantized row, and stays within the quantization error budget
        /// of the original dot: `|Δ| ≤ (scale/2)·Σ|q_j|`.
        #[test]
        fn prop_quantized_dot_error_is_bounded(
            row in proptest::collection::vec(-4.0f32..4.0, 1..80),
            seed in 0u64..500,
        ) {
            let d = row.len();
            let q: Vec<f32> = (0..d).map(|i| (((i as u64 * 37 + seed) % 17) as f32) * 0.1 - 0.8).collect();
            let m = Matrix::from_vec(1, d, row.clone());
            let t = QuantizedTable::from_matrix(&m);
            let fused = dequant_dot(&q, t.row(0), t.scale(0));
            let exact = scalar::dot(&q, &row);
            let budget = 0.5 * t.scale(0) * q.iter().map(|x| x.abs()).sum::<f32>() + 1e-4;
            prop_assert!((fused - exact).abs() <= budget, "{fused} vs {exact} (budget {budget})");
        }
    }

    #[test]
    fn scores_into_matches_per_row_dequant_dot() {
        let m = Matrix::from_fn(7, 13, |r, c| ((r * 31 + c * 17) % 11) as f32 * 0.3 - 1.5);
        let t = QuantizedTable::from_matrix(&m);
        let q: Vec<f32> = (0..13).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut got = Vec::new();
        t.scores_into(&q, &mut got);
        for (r, &g) in got.iter().enumerate() {
            let want = dequant_dot(&q, t.row(r), t.scale(r));
            assert!((g - want).abs() <= 1e-5 * (1.0 + want.abs()), "row {r}");
        }
    }
}
