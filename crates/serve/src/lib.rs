//! Retrieval serving over frozen [`ModelArtifact`]s — from a single
//! in-process recommender up to a traffic-facing TCP engine with
//! micro-batching and zero-downtime artifact hot swap.
//!
//! Training (`bsl-core`) ends at `Backbone::export() → ModelArtifact`;
//! this crate is everything after that boundary. It is layered so each
//! piece is usable on its own:
//!
//! 1. **[`ServeState`]** (`state`) — an *immutable* artifact + seen-mask
//!    snapshot. Every method takes `&self`; per-call knobs ride in a
//!    [`RecommendRequest`] (`user`, `k`, [`ServeOptions`]) and scratch
//!    buffers are caller-owned ([`ServeScratch`]), so one state serves
//!    any number of threads with zero shared mutability. Batched calls
//!    ([`ServeState::recommend_batch_into`]) stream each tile of the item
//!    table past *all* exact-mode queries in the batch while it is cache
//!    resident — the multi-query analogue of the blocked scoring pass,
//!    and bit-identical to serial calls.
//! 2. **[`Recommender`]** (`recommender`) — the original convenience
//!    wrapper, now a thin shim over `ServeState` + owned scratch. Its
//!    API (including `set_nprobe`/`set_exact`, now deprecated in favour
//!    of [`ServeOptions`]) is unchanged.
//! 3. **[`SwapSlot`]/[`ArtifactSlot`]** (`swap`) — lock-free-reader hot
//!    swap: publish a new artifact generation atomically; in-flight
//!    requests finish on the generation they loaded, which drops with
//!    its last holder. [`Registry`] (`registry`) names one slot per
//!    tenant.
//! 4. **[`ServeEngine`]** (`engine`) — the micro-batching scheduler:
//!    a bounded queue plus worker threads that coalesce concurrent
//!    requests into one batched scoring pass per artifact generation.
//! 5. **[`TcpFrontend`]/[`ServeClient`]** (`protocol`) — a framed,
//!    length-prefixed TCP wire protocol (`recommend` / `score_items` /
//!    `swap_artifact` / `stats` / `shutdown`) over `std::net`.
//!
//! Scoring everywhere is the same blocked kernel `bsl-eval` ranks with
//! ([`ModelArtifact::score_catalogue_into`]), so offline metrics and
//! online scores come from one implementation. Artifacts carrying an IVF
//! index (built with [`ModelArtifact::build_ivf`] or loaded from a
//! format-v2 file) are served sub-linearly via an `nprobe` shortlist —
//! seen-item filtering and tie-breaking unchanged, and `nprobe = nlist`
//! bit-identical to the exact path; [`ServeOptions`] overrides the mode
//! per request.
//!
//! ```no_run
//! use bsl_models::ModelArtifact;
//! use bsl_serve::{RecommendRequest, ServeScratch, ServeState};
//!
//! let artifact = ModelArtifact::load("model.bsla").expect("artifact");
//! let state = ServeState::new(artifact);
//! let mut scratch = ServeScratch::new();
//! let resp = state.respond(&RecommendRequest::new(42, 10), &mut scratch).unwrap();
//! for r in &resp.recs {
//!     println!("item {}  score {:.4}", r.item, r.score);
//! }
//! ```
//!
//! Steady-state serving is allocation-free: the catalogue score buffer,
//! the bounded top-k heap, the probe scratch, and the id/candidate
//! buffers all live in [`ServeScratch`] (or the `Recommender`) and are
//! reused across calls; the `_into` variants don't allocate at all once
//! warm.

// On the bsl-audit unsafe allowlist (audit/policy.toml): unsafe fns must
// still spell out every unsafe operation in an explicit `unsafe {}` block.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]

pub mod engine;
pub mod protocol;
pub mod recommender;
pub mod registry;
pub mod state;
pub mod swap;

pub use bsl_models::{ArtifactError, EvalScore, ModelArtifact, Precision};
pub use engine::{BatchPolicy, ServeEngine, StatsSnapshot};
pub use protocol::{ClientError, ProtocolError, Request, Response, ServeClient, TcpFrontend};
pub use recommender::{Rec, Recommender, Retrieval};
pub use registry::{Registry, TenantInfo};
pub use state::{
    RecommendRequest, RecommendResponse, ServeError, ServeOptions, ServeScratch, ServeState,
};
pub use swap::{ArtifactSlot, SwapSlot};
