//! Retrieval serving over frozen [`ModelArtifact`]s.
//!
//! Training (`bsl-core`) ends at `Backbone::export() → ModelArtifact`;
//! this crate is everything after that boundary: load an artifact, wrap
//! it in a [`Recommender`], and answer `recommend(user, k)` /
//! `recommend_batch` / `score_items` queries. Scoring is the same blocked
//! kernel `bsl-eval` ranks with ([`ModelArtifact::score_catalogue_into`]),
//! so offline metrics and online scores come from one implementation.
//!
//! ```no_run
//! use bsl_models::ModelArtifact;
//! use bsl_serve::Recommender;
//!
//! let artifact = ModelArtifact::load("model.bsla").expect("artifact");
//! let mut rec = Recommender::new(artifact);
//! for r in rec.recommend(42, 10) {
//!     println!("item {}  score {:.4}", r.item, r.score);
//! }
//! ```
//!
//! Steady-state serving is allocation-free: the catalogue score buffer,
//! the bounded top-k heap, and the id scratch all live in the
//! `Recommender` and are reused across calls (the convenience methods
//! that *return* `Vec`s allocate only their results; the `_into` variants
//! don't allocate at all once warm).

#![deny(missing_docs)]

pub mod recommender;

pub use bsl_models::{ArtifactError, EvalScore, ModelArtifact};
pub use recommender::{Rec, Recommender};
