//! Retrieval serving over frozen [`ModelArtifact`]s.
//!
//! Training (`bsl-core`) ends at `Backbone::export() → ModelArtifact`;
//! this crate is everything after that boundary: load an artifact, wrap
//! it in a [`Recommender`], and answer `recommend(user, k)` /
//! `recommend_batch` / `score_items` queries. Scoring is the same blocked
//! kernel `bsl-eval` ranks with ([`ModelArtifact::score_catalogue_into`]),
//! so offline metrics and online scores come from one implementation.
//!
//! ```no_run
//! use bsl_models::ModelArtifact;
//! use bsl_serve::Recommender;
//!
//! let artifact = ModelArtifact::load("model.bsla").expect("artifact");
//! let mut rec = Recommender::new(artifact);
//! for r in rec.recommend(42, 10) {
//!     println!("item {}  score {:.4}", r.item, r.score);
//! }
//! ```
//!
//! Artifacts carrying an IVF index (built with
//! [`ModelArtifact::build_ivf`] or loaded from a format-v2 file) are
//! served **sub-linearly**: the recommender scores the index's centroids,
//! gathers the `nprobe` most promising inverted lists, and rescores only
//! that shortlist with the exact kernel — seen-item filtering and
//! tie-breaking unchanged, and `nprobe = nlist` bit-identical to the
//! exact path. Plain artifacts keep the exact full-scan. The mode is
//! selected automatically and can be overridden per recommender
//! ([`Recommender::set_nprobe`] / [`Recommender::set_exact`]).
//!
//! Steady-state serving is allocation-free: the catalogue score buffer,
//! the bounded top-k heap, the probe scratch, and the id/candidate
//! buffers all live in the `Recommender` and are reused across calls
//! (the convenience methods that *return* `Vec`s allocate only their
//! results; the `_into` variants don't allocate at all once warm).

#![deny(missing_docs)]

pub mod recommender;

pub use bsl_models::{ArtifactError, EvalScore, ModelArtifact, Precision};
pub use recommender::{Rec, Recommender, Retrieval};
