//! The [`Recommender`]: batched top-k retrieval with seen-item filtering,
//! exact or IVF-accelerated.

use bsl_data::Dataset;
use bsl_linalg::topk::{select_scored_into, TopK};
use bsl_models::{ivf::ProbeScratch, ModelArtifact};

/// One recommendation: an item id and its retrieval score.
///
/// Scores come from the artifact's prepared tables (cosine similarity for
/// cosine backbones, inner product otherwise; CML artifacts serve the
/// rank-equivalent augmented inner product). The IVF path rescores its
/// shortlist with the same exact kernel, so a served score is always the
/// true prepared-table score of that item — approximation only affects
/// *which* items make the shortlist.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rec {
    /// The recommended item id.
    pub item: u32,
    /// The retrieval score (higher = better).
    pub score: f32,
}

/// How a [`Recommender`] walks the catalogue per query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Retrieval {
    /// Score every item with one blocked matvec (the reference path).
    Exact,
    /// Probe the artifact's IVF index: score `nlist` centroids, gather the
    /// `nprobe` best lists' members, rescore only those exactly.
    ///
    /// `nprobe ≥ nlist` degenerates to [`Retrieval::Exact`] — probing
    /// every list *is* a full scan, and routing it through the exact
    /// blocked kernel makes that setting bit-identical to exact serving
    /// (same accumulation order, same tie-breaks).
    Ivf {
        /// Number of inverted lists probed per query.
        nprobe: usize,
    },
}

/// Serves top-k retrieval queries over a frozen [`ModelArtifact`].
///
/// Construction is the only place that allocates proportionally to the
/// catalogue: an optional CSR copy of the training interactions (the
/// "seen" mask) and the reusable per-call scratch. After the first query
/// every call reuses the same buffers — the exact hot path is one blocked
/// matvec over the item table plus a bounded-heap selection; the IVF hot
/// path is a centroid matvec, a list gather, and an exact rescore of the
/// shortlist (same kernels, ~`nprobe/nlist` of the work).
///
/// The retrieval mode is picked automatically: artifacts carrying an
/// [`IvfIndex`](bsl_models::IvfIndex) serve through it at its default
/// `nprobe`, plain artifacts serve exactly. Override with
/// [`set_nprobe`](Self::set_nprobe) / [`set_exact`](Self::set_exact).
pub struct Recommender {
    artifact: ModelArtifact,
    retrieval: Retrieval,
    /// CSR mask of already-seen items: `seen_items[seen_indptr[u] ..
    /// seen_indptr[u + 1]]` are the (sorted) item ids to exclude for `u`.
    /// All-zero indptr = no filtering. `usize` offsets, matching
    /// `bsl_sparse::Csr` — catalogue-scale nnz must not wrap.
    seen_indptr: Vec<usize>,
    seen_items: Vec<u32>,
    // Per-call scratch, reused across queries.
    qbuf: Vec<f32>,
    scores: Vec<f32>,
    topk: TopK,
    ids: Vec<u32>,
    probe: ProbeScratch,
    candidates: Vec<u32>,
    cand_scores: Vec<f32>,
    pairs: Vec<(u32, f32)>,
}

impl Recommender {
    /// A recommender with **no** seen-item filtering (every catalogue item
    /// is eligible). Serves through the artifact's IVF index when one is
    /// attached, exactly otherwise.
    pub fn new(artifact: ModelArtifact) -> Self {
        let n = artifact.n_users();
        let retrieval = match artifact.index() {
            Some(ix) => Retrieval::Ivf { nprobe: ix.default_nprobe() },
            None => Retrieval::Exact,
        };
        Self {
            artifact,
            retrieval,
            seen_indptr: vec![0; n + 1],
            seen_items: Vec::new(),
            qbuf: Vec::new(),
            scores: Vec::new(),
            topk: TopK::new(),
            ids: Vec::new(),
            probe: ProbeScratch::default(),
            candidates: Vec::new(),
            cand_scores: Vec::new(),
            pairs: Vec::new(),
        }
    }

    /// A recommender that filters each user's *training* interactions out
    /// of their recommendations — the standard deployment protocol (and
    /// exactly the mask `bsl-eval` applies). The mask is copied out of
    /// `ds`, so the dataset need not outlive the recommender.
    ///
    /// # Panics
    /// Panics if `ds`'s shape disagrees with the artifact.
    pub fn with_seen(artifact: ModelArtifact, ds: &Dataset) -> Self {
        assert_eq!(artifact.n_users(), ds.n_users, "artifact user rows != dataset users");
        assert_eq!(artifact.n_items(), ds.n_items, "artifact item rows != dataset items");
        let mut indptr = Vec::with_capacity(ds.n_users + 1);
        let mut items = Vec::with_capacity(ds.train.nnz());
        indptr.push(0usize);
        for u in 0..ds.n_users {
            items.extend_from_slice(ds.train_items(u));
            indptr.push(items.len());
        }
        let mut rec = Self::new(artifact);
        rec.seen_indptr = indptr;
        rec.seen_items = items;
        rec
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The active retrieval mode.
    pub fn retrieval(&self) -> Retrieval {
        self.retrieval
    }

    /// Switches to IVF retrieval probing `nprobe` lists per query
    /// (clamped to at least 1; values ≥ `nlist` serve exactly).
    ///
    /// # Panics
    /// Panics if the artifact carries no IVF index.
    pub fn set_nprobe(&mut self, nprobe: usize) {
        assert!(self.artifact.index().is_some(), "set_nprobe: artifact has no IVF index");
        self.retrieval = Retrieval::Ivf { nprobe: nprobe.max(1) };
    }

    /// Switches to exact full-catalogue scoring (index, if any, unused).
    pub fn set_exact(&mut self) {
        self.retrieval = Retrieval::Exact;
    }

    /// The (sorted) item ids filtered out for `user`.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn seen(&self, user: u32) -> &[u32] {
        let u = user as usize;
        &self.seen_items[self.seen_indptr[u]..self.seen_indptr[u + 1]]
    }

    /// Top-`k` unseen items for `user`, best first, written into `out`
    /// (cleared first). Allocation-free once the scratch is warm.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn recommend_into(&mut self, user: u32, k: usize, out: &mut Vec<Rec>) {
        let shortlist_nprobe = match self.retrieval {
            // nprobe ≥ nlist probes everything: take the exact path, which
            // is both faster (no gather) and bit-identical to exact serving.
            Retrieval::Ivf { nprobe } => {
                let nlist = self.artifact.index().expect("IVF retrieval requires an index").nlist();
                (nprobe < nlist).then_some(nprobe)
            }
            Retrieval::Exact => None,
        };
        match shortlist_nprobe {
            Some(nprobe) => self.recommend_ivf_into(user, k, nprobe, out),
            None => self.recommend_exact_into(user, k, out),
        }
    }

    /// The exact path: one blocked matvec over the whole item table.
    fn recommend_exact_into(&mut self, user: u32, k: usize, out: &mut Vec<Rec>) {
        let u = user as usize;
        self.artifact.query_into(user, &mut self.qbuf);
        self.artifact.score_catalogue_query_into(&self.qbuf, &mut self.scores);
        let seen = &self.seen_items[self.seen_indptr[u]..self.seen_indptr[u + 1]];
        self.topk.select_masked_into(
            &self.scores,
            k,
            |i| seen.binary_search(&(i as u32)).is_ok(),
            &mut self.ids,
        );
        out.clear();
        out.extend(self.ids.iter().map(|&i| Rec { item: i, score: self.scores[i as usize] }));
    }

    /// The IVF path: probe `nprobe` lists, rescore the shortlist exactly.
    ///
    /// Selection runs [`select_scored_into`], whose tie-break is on the
    /// item *id* value — scan-order independent, so the gathered candidate
    /// lists need no sort and IVF orders equal-scored items exactly like
    /// the exact path does whenever both shortlist them. The seen mask is
    /// a binary search, only paid for candidates that could enter the
    /// top-k.
    fn recommend_ivf_into(&mut self, user: u32, k: usize, nprobe: usize, out: &mut Vec<Rec>) {
        let u = user as usize;
        self.artifact.query_into(user, &mut self.qbuf);
        let index = self.artifact.index().expect("IVF retrieval requires an index");
        index.probe_into(&self.qbuf, nprobe, &mut self.probe, &mut self.candidates);
        self.artifact.score_items_query_into(&self.qbuf, &self.candidates, &mut self.cand_scores);
        let seen = &self.seen_items[self.seen_indptr[u]..self.seen_indptr[u + 1]];
        let candidates = &self.candidates;
        select_scored_into(
            &self.cand_scores,
            candidates,
            k,
            |p| seen.binary_search(&candidates[p]).is_ok(),
            &mut self.pairs,
        );
        out.clear();
        out.extend(self.pairs.iter().map(|&(item, score)| Rec { item, score }));
    }

    /// Top-`k` unseen items for `user`, best first.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn recommend(&mut self, user: u32, k: usize) -> Vec<Rec> {
        let mut out = Vec::with_capacity(k);
        self.recommend_into(user, k, &mut out);
        out
    }

    /// Top-`k` lists for a batch of users (one inner `Vec` per user, in
    /// request order). The scoring scratch is shared across the whole
    /// batch; only the returned lists allocate.
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn recommend_batch(&mut self, users: &[u32], k: usize) -> Vec<Vec<Rec>> {
        let mut out = Vec::with_capacity(users.len());
        for &u in users {
            let mut one = Vec::with_capacity(k);
            self.recommend_into(u, k, &mut one);
            out.push(one);
        }
        out
    }

    /// Scores an explicit candidate list for `user` (no seen-filtering —
    /// callers asking about specific items get answers about those items).
    ///
    /// # Panics
    /// Panics if `user` or any item id is out of range.
    pub fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(items.len());
        self.artifact.score_items_into(user, items, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_linalg::Matrix;
    use bsl_models::EvalScore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 2 users × 4 items, d = 2, scores = dot with one-hot-ish rows.
    fn art() -> ModelArtifact {
        let users = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let items = Matrix::from_vec(4, 2, vec![0.9, 0.0, 0.5, 0.1, 0.1, 0.8, 0.3, 0.3]);
        ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot)
    }

    /// A bigger random artifact for IVF-vs-exact comparisons.
    fn big_art() -> ModelArtifact {
        let mut rng = StdRng::seed_from_u64(77);
        let users = Matrix::gaussian(30, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(300, 8, 1.0, &mut rng);
        ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Cosine)
    }

    #[test]
    fn recommend_orders_by_score() {
        let mut rec = Recommender::new(art());
        let got = rec.recommend(0, 4);
        let items: Vec<u32> = got.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![0, 1, 3, 2]);
        assert!(got.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(got[0].score, 0.9);
    }

    #[test]
    fn seen_items_are_filtered() {
        let ds = Dataset::from_pairs("s", 2, 4, &[(0, 0), (0, 2)], &[(0, 3)]);
        let mut rec = Recommender::with_seen(art(), &ds);
        assert_eq!(rec.seen(0), &[0, 2]);
        let items: Vec<u32> = rec.recommend(0, 4).iter().map(|r| r.item).collect();
        assert_eq!(items, vec![1, 3], "seen items 0 and 2 must be excluded");
        // User 1 has no seen items: full catalogue eligible.
        assert_eq!(rec.recommend(1, 4).len(), 4);
    }

    #[test]
    fn k_larger_than_catalogue_truncates() {
        let mut rec = Recommender::new(art());
        assert_eq!(rec.recommend(0, 100).len(), 4);
        assert!(rec.recommend(0, 0).is_empty());
    }

    #[test]
    fn batch_matches_single_calls() {
        let ds = Dataset::from_pairs("b", 2, 4, &[(1, 1)], &[]);
        let mut rec = Recommender::with_seen(art(), &ds);
        let batch = rec.recommend_batch(&[0, 1, 0], 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], rec.recommend(0, 3));
        assert_eq!(batch[1], rec.recommend(1, 3));
        assert_eq!(batch[2], batch[0], "same user, same answer");
    }

    #[test]
    fn score_items_answers_the_candidates_asked() {
        let rec = Recommender::new(art());
        let scores = rec.score_items(1, &[2, 0]);
        assert!((scores[0] - 0.8).abs() < 1e-6);
        assert!((scores[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn scratch_reuse_is_stable_across_calls() {
        let mut rec = Recommender::new(art());
        let first = rec.recommend(0, 3);
        for _ in 0..10 {
            let again = rec.recommend(0, 3);
            assert_eq!(again, first);
        }
    }

    #[test]
    fn retrieval_mode_follows_the_artifact() {
        assert_eq!(Recommender::new(art()).retrieval(), Retrieval::Exact);
        let mut indexed = big_art();
        indexed.build_default_ivf();
        let nprobe = indexed.index().unwrap().default_nprobe();
        assert_eq!(Recommender::new(indexed).retrieval(), Retrieval::Ivf { nprobe });
    }

    #[test]
    fn nprobe_equal_nlist_is_bit_identical_to_exact() {
        let mut indexed = big_art();
        indexed.build_default_ivf();
        let nlist = indexed.index().unwrap().nlist();
        let mut exact = Recommender::new(big_art());
        let mut ivf = Recommender::new(indexed);
        ivf.set_nprobe(nlist);
        for u in 0..30 {
            assert_eq!(ivf.recommend(u, 10), exact.recommend(u, 10), "user {u}");
        }
    }

    #[test]
    fn ivf_rescores_its_shortlist_exactly() {
        let mut indexed = big_art();
        indexed.build_default_ivf();
        let mut exact = Recommender::new(big_art());
        let mut ivf = Recommender::new(indexed);
        for u in 0..30u32 {
            let truth = exact.recommend(u, 10);
            for r in ivf.recommend(u, 10) {
                // Every served score is the true prepared-table score.
                let s = exact.score_items(u, &[r.item])[0];
                assert!((r.score - s).abs() < 1e-6, "user {u} item {}", r.item);
                // And every IVF pick scores no better than the true best.
                assert!(r.score <= truth[0].score + 1e-6);
            }
        }
    }

    #[test]
    fn ivf_respects_the_seen_mask() {
        let mut indexed = big_art();
        indexed.build_ivf(4);
        let pairs: Vec<(u32, u32)> = (0..40).map(|i| (i % 30, i * 7 % 300)).collect();
        let ds = Dataset::from_pairs("seen", 30, 300, &pairs, &[]);
        let mut rec = Recommender::with_seen(indexed, &ds);
        rec.set_nprobe(2);
        for u in 0..30u32 {
            let seen = rec.seen(u).to_vec();
            for r in rec.recommend(u, 20) {
                assert!(seen.binary_search(&r.item).is_err(), "user {u} served seen {}", r.item);
            }
        }
    }

    #[test]
    fn set_exact_overrides_the_index() {
        let mut indexed = big_art();
        indexed.build_default_ivf();
        let mut rec = Recommender::new(indexed);
        rec.set_exact();
        assert_eq!(rec.retrieval(), Retrieval::Exact);
        let mut exact = Recommender::new(big_art());
        for u in 0..10 {
            assert_eq!(rec.recommend(u, 5), exact.recommend(u, 5));
        }
    }

    #[test]
    #[should_panic(expected = "artifact has no IVF index")]
    fn set_nprobe_requires_an_index() {
        Recommender::new(art()).set_nprobe(2);
    }

    #[test]
    #[should_panic(expected = "artifact user rows != dataset users")]
    fn with_seen_rejects_shape_mismatch() {
        let ds = Dataset::from_pairs("m", 3, 4, &[], &[]);
        let _ = Recommender::with_seen(art(), &ds);
    }
}
