//! The [`Recommender`]: the PR 5/6 library-style facade, now a thin
//! wrapper bundling one [`ServeState`] with one [`ServeScratch`].
//!
//! New code (and anything concurrent) should use [`ServeState`] directly
//! — it is `&self`-scoring and shareable across threads — or go through
//! the [`ServeEngine`](crate::ServeEngine). This wrapper keeps the
//! original single-threaded API compiling unchanged: the mutable-config
//! methods [`set_nprobe`](Recommender::set_nprobe) /
//! [`set_exact`](Recommender::set_exact) are deprecated shims that
//! translate to the sticky default [`ServeOptions`] applied to every
//! call.

use crate::state::{RecommendRequest, ServeOptions, ServeScratch, ServeState};
use bsl_data::Dataset;
use bsl_models::ModelArtifact;

/// One recommendation: an item id and its retrieval score.
///
/// Scores come from the artifact's prepared tables (cosine similarity for
/// cosine backbones, inner product otherwise; CML artifacts serve the
/// rank-equivalent augmented inner product). The IVF path rescores its
/// shortlist with the same exact kernel, so a served score is always the
/// true prepared-table score of that item — approximation only affects
/// *which* items make the shortlist.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rec {
    /// The recommended item id.
    pub item: u32,
    /// The retrieval score (higher = better).
    pub score: f32,
}

/// How a query walks the catalogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Retrieval {
    /// Score every item with one blocked matvec (the reference path).
    Exact,
    /// Probe the artifact's IVF index: score `nlist` centroids, gather the
    /// `nprobe` best lists' members, rescore only those exactly.
    ///
    /// `nprobe ≥ nlist` degenerates to [`Retrieval::Exact`] — probing
    /// every list *is* a full scan, and routing it through the exact
    /// blocked kernel makes that setting bit-identical to exact serving
    /// (same accumulation order, same tie-breaks).
    Ivf {
        /// Number of inverted lists probed per query.
        nprobe: usize,
    },
}

/// Serves top-k retrieval queries over a frozen [`ModelArtifact`] from a
/// single thread: a [`ServeState`] plus its reusable [`ServeScratch`].
///
/// After the first query every call reuses the same buffers — the exact
/// hot path is one blocked matvec over the item table plus a
/// bounded-heap selection; the IVF hot path is a centroid matvec, a list
/// gather, and an exact rescore of the shortlist.
///
/// The default retrieval mode is picked automatically: artifacts carrying
/// an [`IvfIndex`](bsl_models::IvfIndex) serve through it at its default
/// `nprobe`, plain artifacts serve exactly. Prefer passing per-call
/// [`ServeOptions`] via [`ServeState`]; the deprecated
/// [`set_nprobe`](Self::set_nprobe) / [`set_exact`](Self::set_exact)
/// shims set this wrapper's sticky default instead.
pub struct Recommender {
    state: ServeState,
    scratch: ServeScratch,
    /// The sticky options every call of this wrapper uses.
    opts: ServeOptions,
}

impl Recommender {
    /// A recommender with **no** seen-item filtering (every catalogue item
    /// is eligible). Serves through the artifact's IVF index when one is
    /// attached, exactly otherwise.
    pub fn new(artifact: ModelArtifact) -> Self {
        Self::from_state(ServeState::new(artifact))
    }

    /// A recommender that filters each user's *training* interactions out
    /// of their recommendations — the standard deployment protocol (and
    /// exactly the mask `bsl-eval` applies). The mask is copied out of
    /// `ds`, so the dataset need not outlive the recommender.
    ///
    /// # Panics
    /// Panics if `ds`'s shape disagrees with the artifact.
    pub fn with_seen(artifact: ModelArtifact, ds: &Dataset) -> Self {
        Self::from_state(ServeState::with_seen(artifact, ds))
    }

    /// Wraps an already-built serving state.
    pub fn from_state(state: ServeState) -> Self {
        Self { state, scratch: ServeScratch::new(), opts: ServeOptions::default() }
    }

    /// The shared-state core this wrapper drives (hand an
    /// `Arc<ServeState>` to threads instead of cloning recommenders).
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// Consumes the wrapper, returning its state (the scratch is
    /// discarded — it is cheap to rebuild).
    pub fn into_state(self) -> ServeState {
        self.state
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        self.state.artifact()
    }

    /// The retrieval mode the sticky default options resolve to.
    pub fn retrieval(&self) -> Retrieval {
        self.state.retrieval(&self.opts)
    }

    /// Switches every subsequent call to IVF retrieval probing `nprobe`
    /// lists (clamped to at least 1; values ≥ `nlist` serve exactly).
    ///
    /// # Panics
    /// Panics if the artifact carries no IVF index.
    #[deprecated(
        since = "0.1.0",
        note = "pass per-request options instead: `ServeOptions::with_nprobe(n)` on a \
                `RecommendRequest` against a shared `ServeState`"
    )]
    pub fn set_nprobe(&mut self, nprobe: usize) {
        assert!(self.state.artifact().index().is_some(), "set_nprobe: artifact has no IVF index");
        self.opts = ServeOptions { nprobe: Some(nprobe.max(1)), exact: false, ..self.opts };
    }

    /// Switches every subsequent call to exact full-catalogue scoring
    /// (index, if any, unused).
    #[deprecated(
        since = "0.1.0",
        note = "pass per-request options instead: `ServeOptions::exact()` on a \
                `RecommendRequest` against a shared `ServeState`"
    )]
    pub fn set_exact(&mut self) {
        self.opts = ServeOptions { exact: true, ..self.opts };
    }

    /// The (sorted) item ids filtered out for `user`.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn seen(&self, user: u32) -> &[u32] {
        self.state.seen(user)
    }

    /// Top-`k` unseen items for `user`, best first, written into `out`
    /// (cleared first). Allocation-free once the scratch is warm.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn recommend_into(&mut self, user: u32, k: usize, out: &mut Vec<Rec>) {
        let req = RecommendRequest { user, k, opts: self.opts };
        self.state.recommend_into(&req, &mut self.scratch, out);
    }

    /// Top-`k` unseen items for `user`, best first.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn recommend(&mut self, user: u32, k: usize) -> Vec<Rec> {
        let mut out = Vec::with_capacity(k);
        self.recommend_into(user, k, &mut out);
        out
    }

    /// Top-`k` lists for a batch of users, written into `out` (one inner
    /// list per user, in request order) **reusing `out`'s inner
    /// allocations** — the steady-state batch path is allocation-free.
    ///
    /// Exact-path batches are scored with the tiled multi-query pass of
    /// [`ServeState::recommend_batch_into`], so coalesced requests share
    /// each item-table tile while it is cache-resident; results are
    /// bit-identical to per-user [`recommend_into`](Self::recommend_into)
    /// calls.
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn recommend_batch_into(&mut self, users: &[u32], k: usize, out: &mut Vec<Vec<Rec>>) {
        let reqs: Vec<RecommendRequest> =
            users.iter().map(|&user| RecommendRequest { user, k, opts: self.opts }).collect();
        self.state.recommend_batch_into(&reqs, &mut self.scratch, out);
    }

    /// Top-`k` lists for a batch of users (one inner `Vec` per user, in
    /// request order), as freshly allocated lists — prefer
    /// [`recommend_batch_into`](Self::recommend_batch_into) on hot paths.
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn recommend_batch(&mut self, users: &[u32], k: usize) -> Vec<Vec<Rec>> {
        let mut out = Vec::with_capacity(users.len());
        self.recommend_batch_into(users, k, &mut out);
        out
    }

    /// Scores an explicit candidate list for `user` (no seen-filtering —
    /// callers asking about specific items get answers about those items).
    ///
    /// # Panics
    /// Panics if `user` or any item id is out of range.
    pub fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(items.len());
        self.state
            .score_items_into(user, items, &mut out)
            .unwrap_or_else(|e| panic!("score_items: {e}"));
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the compat shims are exactly what's under test

    use super::*;
    use bsl_linalg::Matrix;
    use bsl_models::EvalScore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 2 users × 4 items, d = 2, scores = dot with one-hot-ish rows.
    fn art() -> ModelArtifact {
        let users = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let items = Matrix::from_vec(4, 2, vec![0.9, 0.0, 0.5, 0.1, 0.1, 0.8, 0.3, 0.3]);
        ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot)
    }

    /// A bigger random artifact for IVF-vs-exact comparisons.
    fn big_art() -> ModelArtifact {
        let mut rng = StdRng::seed_from_u64(77);
        let users = Matrix::gaussian(30, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(300, 8, 1.0, &mut rng);
        ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Cosine)
    }

    #[test]
    fn recommend_orders_by_score() {
        let mut rec = Recommender::new(art());
        let got = rec.recommend(0, 4);
        let items: Vec<u32> = got.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![0, 1, 3, 2]);
        assert!(got.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(got[0].score, 0.9);
    }

    #[test]
    fn seen_items_are_filtered() {
        let ds = Dataset::from_pairs("s", 2, 4, &[(0, 0), (0, 2)], &[(0, 3)]);
        let mut rec = Recommender::with_seen(art(), &ds);
        assert_eq!(rec.seen(0), &[0, 2]);
        let items: Vec<u32> = rec.recommend(0, 4).iter().map(|r| r.item).collect();
        assert_eq!(items, vec![1, 3], "seen items 0 and 2 must be excluded");
        // User 1 has no seen items: full catalogue eligible.
        assert_eq!(rec.recommend(1, 4).len(), 4);
    }

    #[test]
    fn k_larger_than_catalogue_truncates() {
        let mut rec = Recommender::new(art());
        assert_eq!(rec.recommend(0, 100).len(), 4);
        assert!(rec.recommend(0, 0).is_empty());
    }

    #[test]
    fn batch_matches_single_calls() {
        let ds = Dataset::from_pairs("b", 2, 4, &[(1, 1)], &[]);
        let mut rec = Recommender::with_seen(art(), &ds);
        let batch = rec.recommend_batch(&[0, 1, 0], 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], rec.recommend(0, 3));
        assert_eq!(batch[1], rec.recommend(1, 3));
        assert_eq!(batch[2], batch[0], "same user, same answer");
    }

    #[test]
    fn batch_into_reuses_buffers_and_matches_batch() {
        let mut rec = Recommender::new(big_art());
        let users: Vec<u32> = (0..20).collect();
        let fresh = rec.recommend_batch(&users, 10);
        let mut out = Vec::new();
        rec.recommend_batch_into(&users, 10, &mut out);
        assert_eq!(out, fresh);
        let ptrs: Vec<*const Rec> = out.iter().map(|v| v.as_ptr()).collect();
        rec.recommend_batch_into(&users, 10, &mut out);
        assert_eq!(out, fresh);
        assert_eq!(ptrs, out.iter().map(|v| v.as_ptr()).collect::<Vec<_>>(), "buffers reused");
    }

    #[test]
    fn score_items_answers_the_candidates_asked() {
        let rec = Recommender::new(art());
        let scores = rec.score_items(1, &[2, 0]);
        assert!((scores[0] - 0.8).abs() < 1e-6);
        assert!((scores[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn scratch_reuse_is_stable_across_calls() {
        let mut rec = Recommender::new(art());
        let first = rec.recommend(0, 3);
        for _ in 0..10 {
            let again = rec.recommend(0, 3);
            assert_eq!(again, first);
        }
    }

    #[test]
    fn retrieval_mode_follows_the_artifact() {
        assert_eq!(Recommender::new(art()).retrieval(), Retrieval::Exact);
        let mut indexed = big_art();
        indexed.build_default_ivf();
        let nprobe = indexed.index().unwrap().default_nprobe();
        assert_eq!(Recommender::new(indexed).retrieval(), Retrieval::Ivf { nprobe });
    }

    #[test]
    fn nprobe_equal_nlist_is_bit_identical_to_exact() {
        let mut indexed = big_art();
        indexed.build_default_ivf();
        let nlist = indexed.index().unwrap().nlist();
        let mut exact = Recommender::new(big_art());
        let mut ivf = Recommender::new(indexed);
        ivf.set_nprobe(nlist);
        for u in 0..30 {
            assert_eq!(ivf.recommend(u, 10), exact.recommend(u, 10), "user {u}");
        }
    }

    #[test]
    fn ivf_rescores_its_shortlist_exactly() {
        let mut indexed = big_art();
        indexed.build_default_ivf();
        let mut exact = Recommender::new(big_art());
        let mut ivf = Recommender::new(indexed);
        for u in 0..30u32 {
            let truth = exact.recommend(u, 10);
            for r in ivf.recommend(u, 10) {
                // Every served score is the true prepared-table score.
                let s = exact.score_items(u, &[r.item])[0];
                assert!((r.score - s).abs() < 1e-6, "user {u} item {}", r.item);
                // And every IVF pick scores no better than the true best.
                assert!(r.score <= truth[0].score + 1e-6);
            }
        }
    }

    #[test]
    fn ivf_respects_the_seen_mask() {
        let mut indexed = big_art();
        indexed.build_ivf(4);
        let pairs: Vec<(u32, u32)> = (0..40).map(|i| (i % 30, i * 7 % 300)).collect();
        let ds = Dataset::from_pairs("seen", 30, 300, &pairs, &[]);
        let mut rec = Recommender::with_seen(indexed, &ds);
        rec.set_nprobe(2);
        for u in 0..30u32 {
            let seen = rec.seen(u).to_vec();
            for r in rec.recommend(u, 20) {
                assert!(seen.binary_search(&r.item).is_err(), "user {u} served seen {}", r.item);
            }
        }
    }

    #[test]
    fn set_exact_overrides_the_index() {
        let mut indexed = big_art();
        indexed.build_default_ivf();
        let mut rec = Recommender::new(indexed);
        rec.set_exact();
        assert_eq!(rec.retrieval(), Retrieval::Exact);
        let mut exact = Recommender::new(big_art());
        for u in 0..10 {
            assert_eq!(rec.recommend(u, 5), exact.recommend(u, 5));
        }
    }

    #[test]
    #[should_panic(expected = "artifact has no IVF index")]
    fn set_nprobe_requires_an_index() {
        Recommender::new(art()).set_nprobe(2);
    }

    #[test]
    #[should_panic(expected = "artifact user rows != dataset users")]
    fn with_seen_rejects_shape_mismatch() {
        let ds = Dataset::from_pairs("m", 3, 4, &[], &[]);
        let _ = Recommender::with_seen(art(), &ds);
    }
}
