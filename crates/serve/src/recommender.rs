//! The [`Recommender`]: batched top-k retrieval with seen-item filtering.

use bsl_data::Dataset;
use bsl_linalg::topk::TopK;
use bsl_models::ModelArtifact;

/// One recommendation: an item id and its retrieval score.
///
/// Scores come from the artifact's prepared tables (cosine similarity for
/// cosine backbones, inner product otherwise; CML artifacts serve the
/// rank-equivalent augmented inner product).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rec {
    /// The recommended item id.
    pub item: u32,
    /// The retrieval score (higher = better).
    pub score: f32,
}

/// Serves top-k retrieval queries over a frozen [`ModelArtifact`].
///
/// Construction is the only place that allocates proportionally to the
/// catalogue: an optional CSR copy of the training interactions (the
/// "seen" mask) and the reusable per-call scratch. After the first query
/// every call reuses the same buffers — the hot path is one blocked
/// matvec over the item table plus a bounded-heap selection.
pub struct Recommender {
    artifact: ModelArtifact,
    /// CSR mask of already-seen items: `seen_items[seen_indptr[u] ..
    /// seen_indptr[u + 1]]` are the (sorted) item ids to exclude for `u`.
    /// All-zero indptr = no filtering. `usize` offsets, matching
    /// `bsl_sparse::Csr` — catalogue-scale nnz must not wrap.
    seen_indptr: Vec<usize>,
    seen_items: Vec<u32>,
    // Per-call scratch, reused across queries.
    scores: Vec<f32>,
    topk: TopK,
    ids: Vec<u32>,
}

impl Recommender {
    /// A recommender with **no** seen-item filtering (every catalogue item
    /// is eligible).
    pub fn new(artifact: ModelArtifact) -> Self {
        let n = artifact.n_users();
        Self {
            artifact,
            seen_indptr: vec![0; n + 1],
            seen_items: Vec::new(),
            scores: Vec::new(),
            topk: TopK::new(),
            ids: Vec::new(),
        }
    }

    /// A recommender that filters each user's *training* interactions out
    /// of their recommendations — the standard deployment protocol (and
    /// exactly the mask `bsl-eval` applies). The mask is copied out of
    /// `ds`, so the dataset need not outlive the recommender.
    ///
    /// # Panics
    /// Panics if `ds`'s shape disagrees with the artifact.
    pub fn with_seen(artifact: ModelArtifact, ds: &Dataset) -> Self {
        assert_eq!(artifact.n_users(), ds.n_users, "artifact user rows != dataset users");
        assert_eq!(artifact.n_items(), ds.n_items, "artifact item rows != dataset items");
        let mut indptr = Vec::with_capacity(ds.n_users + 1);
        let mut items = Vec::with_capacity(ds.train.nnz());
        indptr.push(0usize);
        for u in 0..ds.n_users {
            items.extend_from_slice(ds.train_items(u));
            indptr.push(items.len());
        }
        let mut rec = Self::new(artifact);
        rec.seen_indptr = indptr;
        rec.seen_items = items;
        rec
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The (sorted) item ids filtered out for `user`.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn seen(&self, user: u32) -> &[u32] {
        let u = user as usize;
        &self.seen_items[self.seen_indptr[u]..self.seen_indptr[u + 1]]
    }

    /// Top-`k` unseen items for `user`, best first, written into `out`
    /// (cleared first). Allocation-free once the scratch is warm.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn recommend_into(&mut self, user: u32, k: usize, out: &mut Vec<Rec>) {
        let u = user as usize;
        self.artifact.score_catalogue_into(user, &mut self.scores);
        let seen = &self.seen_items[self.seen_indptr[u]..self.seen_indptr[u + 1]];
        self.topk.select_masked_into(
            &self.scores,
            k,
            |i| seen.binary_search(&(i as u32)).is_ok(),
            &mut self.ids,
        );
        out.clear();
        out.extend(self.ids.iter().map(|&i| Rec { item: i, score: self.scores[i as usize] }));
    }

    /// Top-`k` unseen items for `user`, best first.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn recommend(&mut self, user: u32, k: usize) -> Vec<Rec> {
        let mut out = Vec::with_capacity(k);
        self.recommend_into(user, k, &mut out);
        out
    }

    /// Top-`k` lists for a batch of users (one inner `Vec` per user, in
    /// request order). The scoring scratch is shared across the whole
    /// batch; only the returned lists allocate.
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn recommend_batch(&mut self, users: &[u32], k: usize) -> Vec<Vec<Rec>> {
        let mut out = Vec::with_capacity(users.len());
        for &u in users {
            let mut one = Vec::with_capacity(k);
            self.recommend_into(u, k, &mut one);
            out.push(one);
        }
        out
    }

    /// Scores an explicit candidate list for `user` (no seen-filtering —
    /// callers asking about specific items get answers about those items).
    ///
    /// # Panics
    /// Panics if `user` or any item id is out of range.
    pub fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(items.len());
        self.artifact.score_items_into(user, items, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_linalg::Matrix;
    use bsl_models::EvalScore;

    /// 2 users × 4 items, d = 2, scores = dot with one-hot-ish rows.
    fn art() -> ModelArtifact {
        let users = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let items = Matrix::from_vec(4, 2, vec![0.9, 0.0, 0.5, 0.1, 0.1, 0.8, 0.3, 0.3]);
        ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot)
    }

    #[test]
    fn recommend_orders_by_score() {
        let mut rec = Recommender::new(art());
        let got = rec.recommend(0, 4);
        let items: Vec<u32> = got.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![0, 1, 3, 2]);
        assert!(got.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(got[0].score, 0.9);
    }

    #[test]
    fn seen_items_are_filtered() {
        let ds = Dataset::from_pairs("s", 2, 4, &[(0, 0), (0, 2)], &[(0, 3)]);
        let mut rec = Recommender::with_seen(art(), &ds);
        assert_eq!(rec.seen(0), &[0, 2]);
        let items: Vec<u32> = rec.recommend(0, 4).iter().map(|r| r.item).collect();
        assert_eq!(items, vec![1, 3], "seen items 0 and 2 must be excluded");
        // User 1 has no seen items: full catalogue eligible.
        assert_eq!(rec.recommend(1, 4).len(), 4);
    }

    #[test]
    fn k_larger_than_catalogue_truncates() {
        let mut rec = Recommender::new(art());
        assert_eq!(rec.recommend(0, 100).len(), 4);
        assert!(rec.recommend(0, 0).is_empty());
    }

    #[test]
    fn batch_matches_single_calls() {
        let ds = Dataset::from_pairs("b", 2, 4, &[(1, 1)], &[]);
        let mut rec = Recommender::with_seen(art(), &ds);
        let batch = rec.recommend_batch(&[0, 1, 0], 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], rec.recommend(0, 3));
        assert_eq!(batch[1], rec.recommend(1, 3));
        assert_eq!(batch[2], batch[0], "same user, same answer");
    }

    #[test]
    fn score_items_answers_the_candidates_asked() {
        let rec = Recommender::new(art());
        let scores = rec.score_items(1, &[2, 0]);
        assert!((scores[0] - 0.8).abs() < 1e-6);
        assert!((scores[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn scratch_reuse_is_stable_across_calls() {
        let mut rec = Recommender::new(art());
        let first = rec.recommend(0, 3);
        for _ in 0..10 {
            let again = rec.recommend(0, 3);
            assert_eq!(again, first);
        }
    }

    #[test]
    #[should_panic(expected = "artifact user rows != dataset users")]
    fn with_seen_rejects_shape_mismatch() {
        let ds = Dataset::from_pairs("m", 3, 4, &[], &[]);
        let _ = Recommender::with_seen(art(), &ds);
    }
}
