//! Hot artifact swap: an atomically swappable, epoch-counted `Arc` slot
//! built on `std` only (the workspace's no-external-deps constraint rules
//! out `arc-swap`).
//!
//! [`SwapSlot`] publishes an `Arc<T>` that readers grab wait-free-ish
//! ([`SwapSlot::load`] is two atomic RMWs plus a refcount bump — no
//! locks) and writers replace atomically. In-flight requests keep serving
//! from the `Arc` they loaded; the swapped-out value drops exactly when
//! the last such request finishes — which is what makes deploying a
//! freshly trained `repro --save` artifact a zero-downtime operation.
//!
//! The reclamation scheme is a reader-counted grace period: readers
//! announce themselves in a counter around the (pointer-load +
//! refcount-bump) critical section, and a writer that has unpublished the
//! old pointer waits for the counter to drain before releasing the
//! slot's own strong reference to it. The critical section is a few
//! nanoseconds, so the writer's wait is bounded by concurrent `load`
//! calls *in flight at the swap instant*, never by request processing.
//! All counter/pointer operations are `SeqCst`: the safety argument needs
//! the reader's announce and the writer's drain check to be totally
//! ordered against the pointer exchange (see the SAFETY comments).

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use crate::state::ServeState;

/// Schedule-perturbation points for the interleaving stress harness
/// (`crates/serve/tests/interleave.rs`).
///
/// Compiled only under `RUSTFLAGS="--cfg audit_stress"` (see
/// `scripts/audit.sh`); in normal builds [`pause`](stress::pause) is an
/// empty inline fn the optimizer erases, so the hooks cost nothing.
mod stress {
    /// The windows of the swap protocol worth widening: each sits between
    /// two atomic accesses whose relative order the SAFETY argument
    /// depends on.
    #[derive(Clone, Copy)]
    pub enum Site {
        /// Reader announced (`readers += 1`) but has not loaded the
        /// pointer yet.
        LoadAnnounced,
        /// Reader loaded the pointer but has not bumped the refcount yet
        /// — the window the writer's drain wait exists for.
        LoadPtrLoaded,
        /// Writer exchanged the pointer but has not checked the drain
        /// counter yet.
        SwapExchanged,
    }

    #[cfg(not(audit_stress))]
    #[inline(always)]
    pub fn pause(_site: Site) {}

    /// Seeded pseudo-random delay: per thread, derived from
    /// `BSL_STRESS_SEED` so a failing schedule can be replayed.
    #[cfg(audit_stress)]
    pub fn pause(site: Site) {
        use std::cell::Cell;
        use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
        // ORDERING: Relaxed — the counter only hands each thread a
        // distinct salt; nothing is published through it.
        static THREAD_SALT: AtomicU64 = AtomicU64::new(0);
        fn seed() -> u64 {
            let base: u64 = std::env::var("BSL_STRESS_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            // ORDERING: Relaxed — distinct-salt counter only (see above).
            let salt = THREAD_SALT.fetch_add(1, Relaxed) + 1;
            base ^ salt.wrapping_mul(0xD134_2543_DE82_EF95)
        }
        thread_local! {
            static RNG: Cell<u64> = Cell::new(seed());
        }
        RNG.with(|r| {
            let mut x = r.get();
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            r.set(x);
            match (x ^ site as u64) % 4 {
                0 => {}
                1 => std::hint::spin_loop(),
                2 => {
                    for _ in 0..(x % 64) {
                        std::hint::spin_loop();
                    }
                }
                _ => std::thread::yield_now(),
            }
        });
    }
}

/// An atomically swappable `Arc<T>` cell with an epoch counter.
///
/// The slot always holds exactly one strong reference to the current
/// value; [`load`](Self::load) hands out additional ones. See the module
/// docs for the reclamation protocol.
pub struct SwapSlot<T> {
    /// The published value, as a raw pointer carrying one strong count.
    ptr: AtomicPtr<T>,
    /// Readers currently inside the `load` critical section.
    readers: AtomicUsize,
    /// Completed swaps (epoch 0 = the initial value).
    epoch: AtomicU64,
}

impl<T> SwapSlot<T> {
    /// A slot publishing `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            readers: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// The number of completed [`swap`](Self::swap)s.
    pub fn epoch(&self) -> u64 {
        // ORDERING: a monotone counter read — Relaxed would do, but every
        // access on this slot stays SeqCst so the whole protocol reasons
        // in one total order.
        self.epoch.load(SeqCst)
    }

    /// Clones out the currently published `Arc` — lock-free, a few
    /// nanoseconds. The clone pins the value for as long as the caller
    /// holds it; concurrent swaps never invalidate it.
    #[allow(unsafe_code)] // raw-pointer Arc round trip; see SAFETY
    pub fn load(&self) -> Arc<T> {
        // ORDERING: SeqCst, and deliberately not Acquire/Release. The
        // proof needs *our announce store* ordered before *our pointer
        // load* in an order the writer shares — a StoreLoad edge, the one
        // edge acquire/release fencing cannot give. With anything weaker,
        // announce could pass the pointer load; the writer could then
        // exchange + observe `readers == 0` between them and free the
        // value we are about to read. SeqCst on all four accesses (this
        // pair, plus the writer's exchange and drain check) puts them in
        // one total order where that interleaving is impossible.
        self.readers.fetch_add(1, SeqCst);
        stress::pause(stress::Site::LoadAnnounced);
        // ORDERING: SeqCst — the load half of the StoreLoad edge above.
        let p = self.ptr.load(SeqCst);
        stress::pause(stress::Site::LoadPtrLoaded);
        // SAFETY: `p` came from `Arc::into_raw`, and the strong reference
        // it carries is still held by the slot: a writer only releases it
        // after (a) unpublishing `p` and (b) observing `readers == 0`.
        // Both that pointer exchange and the drain check are `SeqCst`,
        // as are our announce (`fetch_add`) and pointer load, so in the
        // single total order either our announce precedes the writer's
        // drain check — the writer waits until our `fetch_sub`, by which
        // time we hold our own strong count — or the writer's pointer
        // exchange precedes our load and we see the *new* pointer, whose
        // slot-held reference is live. Either way `p` is alive here.
        let arc = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        };
        // ORDERING: SeqCst exit — the refcount bump above must be ordered
        // before the count the writer's drain check reads, so a writer
        // that sees `readers == 0` knows our strong count is already in
        // place.
        self.readers.fetch_sub(1, SeqCst);
        arc
    }

    /// Publishes `new`, returning the previous value. In-flight `Arc`s
    /// handed out by [`load`](Self::load) remain valid; the returned
    /// `Arc` (plus any such clones) are the old value's only remaining
    /// owners, so it drops when the last of them does.
    #[allow(unsafe_code)] // raw-pointer Arc round trip; see SAFETY
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        // ORDERING: SeqCst exchange — the store half of the writer's
        // StoreLoad edge: the unpublish must be ordered before the drain
        // check below in the total order shared with readers (see the
        // derivation in `load`).
        let old = self.ptr.swap(Arc::into_raw(new).cast_mut(), SeqCst);
        stress::pause(stress::Site::SwapExchanged);
        // ORDERING: SeqCst so the epoch tick is ordered after the
        // exchange: an observer that sees epoch == n also sees the n-th
        // pointer (or a later one).
        self.epoch.fetch_add(1, SeqCst);
        // Grace period: readers that announced themselves before the
        // exchange above may still be between their pointer load and
        // their refcount bump. Wait them out — the window is a handful of
        // instructions, so this spin is nanoseconds, not request-time.
        let mut spins = 0u32;
        // ORDERING: SeqCst drain check — the load half of the writer's
        // StoreLoad edge: only readers that announced *before* our
        // exchange matter, and the total order guarantees we either see
        // their announce here or they saw our new pointer.
        while self.readers.load(SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: `old` came from `Arc::into_raw` and still carries the
        // strong count the slot held; it is unpublished and no reader can
        // be mid-bump on it (drained above), so reconstituting the Arc —
        // i.e. transferring that count to the caller — is sound.
        unsafe { Arc::from_raw(old) }
    }
}

impl<T> Drop for SwapSlot<T> {
    #[allow(unsafe_code)] // releasing the slot's own strong count
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no concurrent load/swap; the slot
        // still owns the strong count carried by the published pointer.
        // ORDERING: exclusive access — any ordering is correct; SeqCst
        // keeps the slot's accesses uniform.
        unsafe { drop(Arc::from_raw(self.ptr.load(SeqCst))) }
    }
}

/// A named, hot-swappable serving slot: a [`SwapSlot`] over
/// [`ServeState`] that stamps every swapped-in generation with a
/// monotonically increasing version (the initial state is version 1).
///
/// This is what the [`Registry`](crate::Registry) holds per tenant and
/// what `swap_artifact` requests replace — readers mid-request finish on
/// the generation they loaded, and
/// [`RecommendResponse::version`](crate::RecommendResponse) tells every
/// consumer which generation answered.
pub struct ArtifactSlot {
    slot: SwapSlot<ServeState>,
    /// Version stamps handed out (1 = the initial state).
    versions: AtomicU64,
}

impl ArtifactSlot {
    /// A slot serving `state`, stamped as version 1.
    pub fn new(state: ServeState) -> Self {
        Self { slot: SwapSlot::new(Arc::new(state.with_version(1))), versions: AtomicU64::new(1) }
    }

    /// The currently served generation.
    pub fn load(&self) -> Arc<ServeState> {
        self.slot.load()
    }

    /// Atomically replaces the served state with `state` stamped as the
    /// next version; returns `(new_version, old_state)`. In-flight
    /// requests finish on the generation they loaded; the old state drops
    /// when its last holder does.
    pub fn swap(&self, state: ServeState) -> (u64, Arc<ServeState>) {
        // ORDERING: SeqCst so version stamps are allocated in the same
        // total order as the slot swaps they are baked into — versions
        // observed through `load` can then never regress.
        let version = self.versions.fetch_add(1, SeqCst) + 1;
        let old = self.slot.swap(Arc::new(state.with_version(version)));
        (version, old)
    }

    /// Completed swaps on this slot.
    pub fn swaps(&self) -> u64 {
        self.slot.epoch()
    }

    /// The version currently being served.
    pub fn version(&self) -> u64 {
        self.load().version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Weak;

    #[test]
    fn load_swap_round_trip() {
        let slot = SwapSlot::new(Arc::new(10u32));
        assert_eq!(*slot.load(), 10);
        assert_eq!(slot.epoch(), 0);
        let old = slot.swap(Arc::new(20));
        assert_eq!(*old, 10);
        assert_eq!(*slot.load(), 20);
        assert_eq!(slot.epoch(), 1);
    }

    #[test]
    fn swapped_out_value_drops_with_its_last_holder() {
        let first = Arc::new(vec![1u8; 64]);
        let weak_first: Weak<Vec<u8>> = Arc::downgrade(&first);
        let slot = SwapSlot::new(first);
        let pinned = slot.load(); // an in-flight request's handle
        let old = slot.swap(Arc::new(vec![2u8; 64]));
        drop(old); // the writer releases its handle...
        assert!(weak_first.upgrade().is_some(), "in-flight holder keeps the old value alive");
        drop(pinned); // ...and the last in-flight request finishes
        assert!(weak_first.upgrade().is_none(), "old value drops with its last holder");
    }

    #[test]
    fn slot_drop_releases_the_current_value() {
        let v = Arc::new(5u8);
        let weak = Arc::downgrade(&v);
        let slot = SwapSlot::new(v);
        drop(slot);
        assert!(weak.upgrade().is_none());
    }

    #[test]
    fn concurrent_loads_and_swaps_stay_consistent() {
        let slot = Arc::new(SwapSlot::new(Arc::new(0u64)));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..500 {
                        let v = *slot.load();
                        assert!(v >= last, "published values must be monotone: {v} < {last}");
                        last = v;
                        if last % 7 == 0 {
                            std::thread::yield_now(); // interleave with the swapper
                        }
                    }
                })
            })
            .collect();
        for v in 1..=200u64 {
            let old = slot.swap(Arc::new(v));
            assert!(*old < v);
            if v % 10 == 0 {
                std::thread::yield_now();
            }
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*slot.load(), 200);
        assert_eq!(slot.epoch(), 200);
    }
}
