//! The multi-tenant artifact registry: named, hot-swappable serving
//! slots so many models/datasets are resident at once (per-tenant
//! seen-masks live inside each tenant's [`ServeState`]).
//!
//! The map itself is read-mostly: request threads resolve a tenant name
//! to its [`ArtifactSlot`] under a shared `RwLock` read guard (held only
//! for the `HashMap` lookup + `Arc` clone), then serve and swap through
//! the slot's lock-free machinery. Registering or removing tenants takes
//! the write lock; swapping an existing tenant's artifact does **not**.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::state::{ServeError, ServeState};
use crate::swap::ArtifactSlot;

/// A summary row of one registered tenant (for `stats` reporting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantInfo {
    /// The tenant's registry name.
    pub name: String,
    /// The artifact generation currently served.
    pub version: u64,
    /// Completed hot swaps on the slot.
    pub swaps: u64,
    /// User rows of the current artifact.
    pub n_users: usize,
    /// Catalogue size of the current artifact.
    pub n_items: usize,
}

/// Named [`ArtifactSlot`]s, one per tenant.
#[derive(Default)]
pub struct Registry {
    slots: RwLock<HashMap<String, Arc<ArtifactSlot>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces the slot of) `tenant`, serving `state` as
    /// version 1. Returns the slot for direct use.
    ///
    /// Replacing a slot orphans the old one: holders keep serving from it
    /// until they re-resolve the name. Prefer [`swap`](Self::swap) to
    /// deploy a new artifact generation to an existing tenant — that
    /// keeps the slot (and its version history) and moves all holders on
    /// their next load.
    pub fn insert(&self, tenant: impl Into<String>, state: ServeState) -> Arc<ArtifactSlot> {
        let slot = Arc::new(ArtifactSlot::new(state));
        self.slots.write().expect("registry lock").insert(tenant.into(), Arc::clone(&slot));
        slot
    }

    /// Resolves `tenant` to its slot.
    pub fn get(&self, tenant: &str) -> Result<Arc<ArtifactSlot>, ServeError> {
        self.slots
            .read()
            .expect("registry lock")
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))
    }

    /// Hot-swaps `tenant`'s served artifact to `state`; returns the new
    /// version. In-flight requests finish on the old generation, which
    /// drops when its last holder does.
    pub fn swap(&self, tenant: &str, state: ServeState) -> Result<u64, ServeError> {
        let (version, _old) = self.get(tenant)?.swap(state);
        Ok(version)
    }

    /// Removes `tenant`. Holders of the slot keep serving from it;
    /// the slot (and its artifact) drop with their last holder.
    pub fn remove(&self, tenant: &str) -> bool {
        self.slots.write().expect("registry lock").remove(tenant).is_some()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.slots.read().expect("registry lock").len()
    }

    /// Whether no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sorted summary of every tenant (name order, for stable output).
    pub fn tenants(&self) -> Vec<TenantInfo> {
        let mut rows: Vec<TenantInfo> = self
            .slots
            .read()
            .expect("registry lock")
            .iter()
            .map(|(name, slot)| {
                let state = slot.load();
                TenantInfo {
                    name: name.clone(),
                    version: state.version(),
                    swaps: slot.swaps(),
                    n_users: state.n_users(),
                    n_items: state.n_items(),
                }
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_linalg::Matrix;
    use bsl_models::{EvalScore, ModelArtifact};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn state(seed: u64) -> ServeState {
        let mut rng = StdRng::seed_from_u64(seed);
        let users = Matrix::gaussian(4, 4, 1.0, &mut rng);
        let items = Matrix::gaussian(20, 4, 1.0, &mut rng);
        ServeState::new(ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot))
    }

    #[test]
    fn insert_get_swap_remove() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.insert("yelp", state(1));
        reg.insert("gowalla", state(2));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("yelp").unwrap().version(), 1);
        assert_eq!(reg.swap("yelp", state(3)).unwrap(), 2);
        assert_eq!(reg.get("yelp").unwrap().version(), 2);
        assert_eq!(reg.get("gowalla").unwrap().version(), 1, "tenants swap independently");
        assert_eq!(
            reg.swap("nope", state(4)).unwrap_err(),
            ServeError::UnknownTenant("nope".into())
        );
        assert!(reg.remove("yelp"));
        assert!(!reg.remove("yelp"));
        assert!(matches!(reg.get("yelp"), Err(ServeError::UnknownTenant(_))));
    }

    #[test]
    fn tenants_reports_sorted_summaries() {
        let reg = Registry::new();
        reg.insert("b", state(1));
        reg.insert("a", state(2));
        reg.swap("b", state(3)).unwrap();
        let rows = reg.tenants();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "a");
        assert_eq!(rows[0].version, 1);
        assert_eq!(rows[1].name, "b");
        assert_eq!(rows[1].version, 2);
        assert_eq!(rows[1].swaps, 1);
        assert_eq!(rows[0].n_users, 4);
        assert_eq!(rows[0].n_items, 20);
    }
}
