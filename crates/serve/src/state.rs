//! The redesigned serving API: a shared, immutable [`ServeState`] scored
//! through caller-owned [`ServeScratch`], driven by per-request
//! [`RecommendRequest`]/[`ServeOptions`] values instead of mutable
//! recommender configuration.
//!
//! PR 5/6's [`Recommender`](crate::Recommender) bundled the frozen
//! artifact, the seen-mask, *and* the per-call scratch into one object
//! whose `recommend*` methods took `&mut self` — fine as a library, a
//! dead end for a server where many request threads share one loaded
//! model. This module splits that god-object along its natural seam:
//!
//! * [`ServeState`] — everything immutable after load: the
//!   [`ModelArtifact`], its optional IVF index, the per-user seen-item
//!   mask, and a version stamp. Every scoring method takes `&self`, so
//!   one `Arc<ServeState>` can serve from any number of threads.
//! * [`ServeScratch`] — the reusable per-call buffers (query row,
//!   catalogue scores, top-k heap, probe scratch). One per thread;
//!   steady-state serving allocates nothing.
//! * [`ServeOptions`] — the knobs that used to be recommender state
//!   (`set_nprobe`/`set_exact`), now carried by each request.
//!
//! The batched entry point [`ServeState::recommend_batch_into`] is the
//! micro-batcher's workhorse: exact-path requests in the batch are scored
//! in one **tiled multi-query pass** over the item table (each tile of
//! item rows stays cache-resident while every query in the batch scores
//! it), which is the paper's amortize-one-blocked-pass insight applied to
//! serving. Per-request results are bit-identical to serial
//! [`ServeState::recommend_into`] calls — tiling never splits a row's
//! accumulation, it only reorders *which row* is scored when.

use crate::recommender::{Rec, Retrieval};
use bsl_data::Dataset;
use bsl_linalg::simd::scores_block;
use bsl_linalg::topk::{select_scored_into, TopK};
use bsl_models::{ivf::ProbeScratch, ModelArtifact};

/// Per-request serving knobs (the state that used to live on the
/// recommender as `set_nprobe`/`set_exact`).
///
/// `Default` reproduces the automatic PR 6 behaviour: serve through the
/// artifact's IVF index at its default `nprobe` when one is attached,
/// exactly otherwise, with seen-item filtering on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeOptions {
    /// Probe width override for IVF retrieval. `None` uses the index's
    /// default; values `≥ nlist` (and any value on an index-less
    /// artifact) serve exactly. Ignored when [`exact`](Self::exact) is
    /// set.
    pub nprobe: Option<usize>,
    /// Force the exact full-catalogue scan even on indexed artifacts.
    pub exact: bool,
    /// Filter the user's seen items (the training interactions baked into
    /// the state) out of the response — the standard deployment protocol.
    /// Disable to rank the full catalogue.
    pub filter_seen: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self { nprobe: None, exact: false, filter_seen: true }
    }
}

impl ServeOptions {
    /// Exact-scan options (with seen-filtering).
    pub fn exact() -> Self {
        Self { exact: true, ..Self::default() }
    }

    /// IVF options probing `nprobe` lists (clamped to at least 1).
    pub fn with_nprobe(nprobe: usize) -> Self {
        Self { nprobe: Some(nprobe.max(1)), ..Self::default() }
    }
}

/// One retrieval request: a user, how many items, and the per-request
/// [`ServeOptions`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecommendRequest {
    /// The user to recommend for.
    pub user: u32,
    /// How many items to return (truncated to the eligible catalogue).
    pub k: usize,
    /// Retrieval knobs for this request.
    pub opts: ServeOptions,
}

impl RecommendRequest {
    /// A request with default options.
    pub fn new(user: u32, k: usize) -> Self {
        Self { user, k, opts: ServeOptions::default() }
    }
}

/// One answered request: the recommendations plus the version of the
/// [`ServeState`] that produced them (so hot-swap consumers can tell
/// which artifact generation they were served from).
#[derive(Clone, Debug, PartialEq)]
pub struct RecommendResponse {
    /// The user the response is for.
    pub user: u32,
    /// The serving-state version that answered (see
    /// [`ServeState::version`]).
    pub version: u64,
    /// Top-k recommendations, best first.
    pub recs: Vec<Rec>,
}

/// A request that cannot be answered. Serving must not take the process
/// down on bad input, so the request-level entry points validate and
/// return this instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a user the artifact has no row for.
    UserOutOfRange {
        /// The offending user id.
        user: u32,
        /// The artifact's user count.
        n_users: usize,
    },
    /// The request named an item the artifact has no row for.
    ItemOutOfRange {
        /// The offending item id.
        item: u32,
        /// The artifact's item count.
        n_items: usize,
    },
    /// The named tenant has no registered artifact slot.
    UnknownTenant(String),
    /// The engine is shutting down and no longer accepts requests.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UserOutOfRange { user, n_users } => {
                write!(f, "user {user} out of range (artifact has {n_users} users)")
            }
            Self::ItemOutOfRange { item, n_items } => {
                write!(f, "item {item} out of range (artifact has {n_items} items)")
            }
            Self::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            Self::Closed => write!(f, "serving engine is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Reusable per-call scoring buffers. One per thread (or per
/// [`Recommender`](crate::Recommender)); every [`ServeState`] scoring
/// method is allocation-free once its scratch is warm.
#[derive(Default)]
pub struct ServeScratch {
    /// The prepared f32 query row.
    qbuf: Vec<f32>,
    /// Full-catalogue scores (exact path).
    scores: Vec<f32>,
    /// Bounded top-k selector.
    topk: TopK,
    /// Selected item ids (exact path).
    ids: Vec<u32>,
    /// IVF probe scratch.
    probe: ProbeScratch,
    /// Gathered IVF candidates.
    candidates: Vec<u32>,
    /// Exact rescores of the candidates.
    cand_scores: Vec<f32>,
    /// Selected `(item, score)` pairs (IVF path).
    pairs: Vec<(u32, f32)>,
    /// Batched exact path: request indices taking the tiled pass.
    batch_exact: Vec<usize>,
    /// Batched exact path: the `B × n_items` score block.
    batch_scores: Vec<f32>,
}

impl ServeScratch {
    /// A fresh (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Item-row tile size of the batched exact pass: `64 rows × d=64 × 4 B`
/// = 16 KiB per tile — comfortably L1-resident at typical widths, so the
/// tile is streamed from memory once and then rescored from cache by
/// every query in the batch.
const EXACT_TILE_ROWS: usize = 64;

/// Everything serving needs that is immutable after load: the frozen
/// artifact (plus optional IVF index), the per-user seen-item mask, and a
/// version stamp for hot-swap bookkeeping.
///
/// All scoring methods take `&self` and caller scratch, so a single
/// `Arc<ServeState>` is shared freely across request threads; the
/// concurrency smoke test pins down that parallel calls are bit-identical
/// to serial ones.
pub struct ServeState {
    artifact: ModelArtifact,
    version: u64,
    /// CSR mask of already-seen items: `seen_items[seen_indptr[u] ..
    /// seen_indptr[u + 1]]` are the (sorted) item ids to exclude for `u`.
    /// All-zero indptr = no filtering.
    seen_indptr: Vec<usize>,
    seen_items: Vec<u32>,
}

impl ServeState {
    /// A state with **no** seen-item filtering (every catalogue item
    /// eligible), at version 0.
    pub fn new(artifact: ModelArtifact) -> Self {
        let n = artifact.n_users();
        Self { artifact, version: 0, seen_indptr: vec![0; n + 1], seen_items: Vec::new() }
    }

    /// A state that filters each user's *training* interactions out of
    /// their recommendations — the mask `bsl-eval` applies. The mask is
    /// copied out of `ds`, so the dataset need not outlive the state.
    ///
    /// # Panics
    /// Panics if `ds`'s shape disagrees with the artifact.
    pub fn with_seen(artifact: ModelArtifact, ds: &Dataset) -> Self {
        assert_eq!(artifact.n_users(), ds.n_users, "artifact user rows != dataset users");
        assert_eq!(artifact.n_items(), ds.n_items, "artifact item rows != dataset items");
        let mut indptr = Vec::with_capacity(ds.n_users + 1);
        let mut items = Vec::with_capacity(ds.train.nnz());
        indptr.push(0usize);
        for u in 0..ds.n_users {
            items.extend_from_slice(ds.train_items(u));
            indptr.push(items.len());
        }
        let mut state = Self::new(artifact);
        state.seen_indptr = indptr;
        state.seen_items = items;
        state
    }

    /// A state serving `artifact` that adopts `prev`'s seen-mask when the
    /// shapes still match (the hot-deploy path: a retrained artifact for
    /// the same dataset keeps filtering without re-reading the dataset).
    /// On a shape change the mask is dropped and filtering is off, as
    /// with [`new`](Self::new).
    pub fn with_seen_from(artifact: ModelArtifact, prev: &ServeState) -> Self {
        let mut state = Self::new(artifact);
        if state.n_users() == prev.n_users() && state.n_items() == prev.n_items() {
            state.seen_indptr.clone_from(&prev.seen_indptr);
            state.seen_items.clone_from(&prev.seen_items);
        }
        state
    }

    /// The same state stamped with `version` (builder-style; used by the
    /// hot-swap slot to number artifact generations).
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// The version stamp ([`ArtifactSlot`](crate::ArtifactSlot) numbers
    /// swapped-in generations monotonically; hand-built states default
    /// to 0).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// Number of user rows the state can answer for.
    pub fn n_users(&self) -> usize {
        self.artifact.n_users()
    }

    /// Number of catalogue items.
    pub fn n_items(&self) -> usize {
        self.artifact.n_items()
    }

    /// The (sorted) item ids filtered out for `user`.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn seen(&self, user: u32) -> &[u32] {
        let u = user as usize;
        &self.seen_items[self.seen_indptr[u]..self.seen_indptr[u + 1]]
    }

    /// The retrieval mode `opts` resolves to on this state's artifact:
    /// `Some(nprobe)` for a genuine IVF shortlist probe, `None` for the
    /// exact full scan (no index, forced exact, or `nprobe ≥ nlist`,
    /// which routes through the exact kernel to stay bit-identical).
    pub fn resolve(&self, opts: &ServeOptions) -> Option<usize> {
        if opts.exact {
            return None;
        }
        let ix = self.artifact.index()?;
        let nprobe = opts.nprobe.unwrap_or_else(|| ix.default_nprobe()).max(1);
        (nprobe < ix.nlist()).then_some(nprobe)
    }

    /// The [`Retrieval`] mode `opts` resolves to (the compat-facing view
    /// of [`resolve`](Self::resolve)).
    pub fn retrieval(&self, opts: &ServeOptions) -> Retrieval {
        match self.resolve(opts) {
            Some(nprobe) => Retrieval::Ivf { nprobe },
            None => Retrieval::Exact,
        }
    }

    /// Validates that `req` is answerable on this state.
    pub fn check(&self, req: &RecommendRequest) -> Result<(), ServeError> {
        let n_users = self.n_users();
        if (req.user as usize) < n_users {
            Ok(())
        } else {
            Err(ServeError::UserOutOfRange { user: req.user, n_users })
        }
    }

    /// Top-`k` eligible items for one request, best first, written into
    /// `out` (cleared first). Allocation-free once `scratch` is warm.
    ///
    /// # Panics
    /// Panics if the user is out of range — use [`check`](Self::check)
    /// (or the validated [`respond`](Self::respond)) on untrusted input.
    pub fn recommend_into(
        &self,
        req: &RecommendRequest,
        scratch: &mut ServeScratch,
        out: &mut Vec<Rec>,
    ) {
        match self.resolve(&req.opts) {
            Some(nprobe) => self.recommend_ivf_into(req, nprobe, scratch, out),
            None => self.recommend_exact_into(req, scratch, out),
        }
    }

    /// Answers one request as a versioned [`RecommendResponse`],
    /// validating instead of panicking. Allocates the response `Vec` only.
    pub fn respond(
        &self,
        req: &RecommendRequest,
        scratch: &mut ServeScratch,
    ) -> Result<RecommendResponse, ServeError> {
        self.check(req)?;
        let mut recs = Vec::with_capacity(req.k.min(self.n_items()));
        self.recommend_into(req, scratch, &mut recs);
        Ok(RecommendResponse { user: req.user, version: self.version, recs })
    }

    /// The exact path: one blocked matvec over the whole item table.
    fn recommend_exact_into(
        &self,
        req: &RecommendRequest,
        scratch: &mut ServeScratch,
        out: &mut Vec<Rec>,
    ) {
        self.artifact.query_into(req.user, &mut scratch.qbuf);
        self.artifact.score_catalogue_query_into(&scratch.qbuf, &mut scratch.scores);
        let seen = self.mask_for(req);
        scratch.topk.select_masked_into(
            &scratch.scores,
            req.k,
            |i| seen.binary_search(&(i as u32)).is_ok(),
            &mut scratch.ids,
        );
        out.clear();
        out.extend(scratch.ids.iter().map(|&i| Rec { item: i, score: scratch.scores[i as usize] }));
    }

    /// The IVF path: probe `nprobe` lists, rescore the shortlist exactly.
    fn recommend_ivf_into(
        &self,
        req: &RecommendRequest,
        nprobe: usize,
        scratch: &mut ServeScratch,
        out: &mut Vec<Rec>,
    ) {
        self.artifact.query_into(req.user, &mut scratch.qbuf);
        let index = self.artifact.index().expect("IVF retrieval requires an index");
        index.probe_into(&scratch.qbuf, nprobe, &mut scratch.probe, &mut scratch.candidates);
        self.artifact.score_items_query_into(
            &scratch.qbuf,
            &scratch.candidates,
            &mut scratch.cand_scores,
        );
        let seen = self.mask_for(req);
        let candidates = &scratch.candidates;
        select_scored_into(
            &scratch.cand_scores,
            candidates,
            req.k,
            |p| seen.binary_search(&candidates[p]).is_ok(),
            &mut scratch.pairs,
        );
        out.clear();
        out.extend(scratch.pairs.iter().map(|&(item, score)| Rec { item, score }));
    }

    /// The seen-slice `req` filters with (empty when filtering is off).
    fn mask_for(&self, req: &RecommendRequest) -> &[u32] {
        if req.opts.filter_seen {
            self.seen(req.user)
        } else {
            &[]
        }
    }

    /// Answers a whole batch of requests, one inner list per request in
    /// request order, reusing `out`'s inner allocations.
    ///
    /// This is the micro-batcher's workhorse: all requests of the batch
    /// that resolve to the **exact** path over an f32 table are scored in
    /// one tiled multi-query pass over the item table — each
    /// `EXACT_TILE_ROWS`-row tile is streamed from memory once and then
    /// scored against every query in the batch while cache-resident,
    /// which is where coalescing concurrent requests wins over
    /// dispatching them one by one (the same blocked-pass amortization
    /// the trainer exploits). IVF / int8 requests are answered
    /// per-request with the shared scratch.
    ///
    /// Results are bit-identical to serial
    /// [`recommend_into`](Self::recommend_into) calls: tiling reorders
    /// which *row* is
    /// scored when, never how a row's dot product accumulates.
    ///
    /// # Panics
    /// Panics if any user is out of range — validate untrusted requests
    /// with [`check`](Self::check) first (the engine does).
    pub fn recommend_batch_into(
        &self,
        reqs: &[RecommendRequest],
        scratch: &mut ServeScratch,
        out: &mut Vec<Vec<Rec>>,
    ) {
        out.truncate(reqs.len());
        // Vec::new below is the empty-vec constructor (capacity 0, no heap
        // touch); steady-state callers pass warm out vecs whose spare
        // capacity truncate + resize_with preserve.
        // bsl-audit: allow(hot-path-alloc) -- empty-vec ctor, no allocation
        out.resize_with(reqs.len(), Vec::new);

        // Split the batch: exact-path requests over an f32 table take the
        // tiled pass, everything else (IVF shortlists, int8 tables with
        // their own fused kernel) answers per-request.
        scratch.batch_exact.clear();
        for (r, req) in reqs.iter().enumerate() {
            if self.resolve(&req.opts).is_none() && self.artifact.items_f32().is_some() {
                scratch.batch_exact.push(r);
            } else {
                let (req, slot) = (&reqs[r], &mut out[r]);
                self.recommend_into(req, scratch, slot);
            }
        }
        if scratch.batch_exact.is_empty() {
            return;
        }

        let items = self.artifact.items_f32().expect("exact batch path requires f32 items");
        let (n, d) = (items.rows(), items.cols());
        let nq = scratch.batch_exact.len();
        scratch.batch_scores.resize(nq * n, 0.0);
        // One tile of item rows scored by every query before moving on.
        let table = items.as_slice();
        let mut tile_start = 0usize;
        while tile_start < n {
            let tile_rows = EXACT_TILE_ROWS.min(n - tile_start);
            let tile = &table[tile_start * d..(tile_start + tile_rows) * d];
            for (qi, &r) in scratch.batch_exact.iter().enumerate() {
                let q = self.artifact.users().row(reqs[r].user as usize);
                let row = &mut scratch.batch_scores[qi * n + tile_start..][..tile_rows];
                scores_block(q, tile, row);
            }
            tile_start += tile_rows;
        }
        for (qi, &r) in scratch.batch_exact.iter().enumerate() {
            let req = &reqs[r];
            let scores = &scratch.batch_scores[qi * n..(qi + 1) * n];
            let seen = self.mask_for(req);
            scratch.topk.select_masked_into(
                scores,
                req.k,
                |i| seen.binary_search(&(i as u32)).is_ok(),
                &mut scratch.ids,
            );
            let slot = &mut out[r];
            slot.clear();
            slot.extend(scratch.ids.iter().map(|&i| Rec { item: i, score: scores[i as usize] }));
        }
    }

    /// Scores an explicit candidate list for `user` into `out` (no
    /// seen-filtering — callers asking about specific items get answers
    /// about those items). Validates ids instead of panicking.
    pub fn score_items_into(
        &self,
        user: u32,
        items: &[u32],
        out: &mut Vec<f32>,
    ) -> Result<(), ServeError> {
        let n_users = self.n_users();
        if user as usize >= n_users {
            return Err(ServeError::UserOutOfRange { user, n_users });
        }
        let n_items = self.n_items();
        if let Some(&bad) = items.iter().find(|&&i| i as usize >= n_items) {
            return Err(ServeError::ItemOutOfRange { item: bad, n_items });
        }
        self.artifact.score_items_into(user, items, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_linalg::Matrix;
    use bsl_models::EvalScore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn art(n_users: usize, n_items: usize, d: usize, seed: u64) -> ModelArtifact {
        let mut rng = StdRng::seed_from_u64(seed);
        let users = Matrix::gaussian(n_users, d, 1.0, &mut rng);
        let items = Matrix::gaussian(n_items, d, 1.0, &mut rng);
        ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot)
    }

    #[test]
    fn options_resolve_like_pr6_modes() {
        let state = ServeState::new(art(4, 50, 8, 1));
        // No index: everything is exact.
        assert_eq!(state.resolve(&ServeOptions::default()), None);
        assert_eq!(state.resolve(&ServeOptions::with_nprobe(2)), None);

        let mut indexed = art(4, 300, 8, 1);
        indexed.build_ivf(8);
        let state = ServeState::new(indexed);
        let default_np = state.artifact().index().unwrap().default_nprobe();
        assert_eq!(state.resolve(&ServeOptions::default()), Some(default_np));
        assert_eq!(state.resolve(&ServeOptions::with_nprobe(3)), Some(3));
        assert_eq!(state.resolve(&ServeOptions::exact()), None);
        // nprobe ≥ nlist routes through the exact kernel.
        assert_eq!(state.resolve(&ServeOptions::with_nprobe(8)), None);
        assert_eq!(state.resolve(&ServeOptions::with_nprobe(999)), None);
    }

    #[test]
    fn batched_exact_is_bit_identical_to_serial() {
        let state = ServeState::new(art(40, 700, 16, 7));
        let mut scratch = ServeScratch::new();
        let reqs: Vec<RecommendRequest> =
            (0..17u32).map(|u| RecommendRequest::new(u * 2 % 40, 10)).collect();
        let mut batched = Vec::new();
        state.recommend_batch_into(&reqs, &mut scratch, &mut batched);
        for (req, got) in reqs.iter().zip(&batched) {
            let mut serial = Vec::new();
            state.recommend_into(req, &mut scratch, &mut serial);
            assert_eq!(*got, serial, "user {}", req.user);
        }
    }

    #[test]
    fn batched_mixed_modes_match_serial() {
        let mut indexed = art(30, 600, 8, 9);
        indexed.build_ivf(10);
        let state = ServeState::new(indexed);
        let mut scratch = ServeScratch::new();
        // Alternate exact / default-IVF / explicit-nprobe requests.
        let reqs: Vec<RecommendRequest> = (0..12u32)
            .map(|u| {
                let opts = match u % 3 {
                    0 => ServeOptions::exact(),
                    1 => ServeOptions::default(),
                    _ => ServeOptions::with_nprobe(2),
                };
                RecommendRequest { user: u, k: 8, opts }
            })
            .collect();
        let mut batched = Vec::new();
        state.recommend_batch_into(&reqs, &mut scratch, &mut batched);
        for (req, got) in reqs.iter().zip(&batched) {
            let mut serial = Vec::new();
            state.recommend_into(req, &mut scratch, &mut serial);
            assert_eq!(*got, serial, "user {} opts {:?}", req.user, req.opts);
        }
    }

    #[test]
    fn batch_reuses_output_allocations() {
        let state = ServeState::new(art(10, 200, 8, 3));
        let mut scratch = ServeScratch::new();
        let reqs: Vec<RecommendRequest> = (0..6u32).map(|u| RecommendRequest::new(u, 5)).collect();
        let mut out = Vec::new();
        state.recommend_batch_into(&reqs, &mut scratch, &mut out);
        let caps: Vec<usize> = out.iter().map(Vec::capacity).collect();
        let ptrs: Vec<*const Rec> = out.iter().map(|v| v.as_ptr()).collect();
        state.recommend_batch_into(&reqs, &mut scratch, &mut out);
        assert_eq!(caps, out.iter().map(Vec::capacity).collect::<Vec<_>>());
        assert_eq!(ptrs, out.iter().map(|v| v.as_ptr()).collect::<Vec<_>>());
    }

    #[test]
    fn filter_seen_off_serves_the_full_catalogue() {
        let pairs: Vec<(u32, u32)> = (0..20).map(|i| (i % 5, i)).collect();
        let ds = Dataset::from_pairs("f", 5, 50, &pairs, &[]);
        let state = ServeState::with_seen(art(5, 50, 8, 4), &ds);
        let mut scratch = ServeScratch::new();
        let mut filtered = Vec::new();
        state.recommend_into(&RecommendRequest::new(0, 50), &mut scratch, &mut filtered);
        assert_eq!(filtered.len(), 50 - state.seen(0).len());
        let mut unfiltered = Vec::new();
        let req = RecommendRequest {
            user: 0,
            k: 50,
            opts: ServeOptions { filter_seen: false, ..Default::default() },
        };
        state.recommend_into(&req, &mut scratch, &mut unfiltered);
        assert_eq!(unfiltered.len(), 50);
    }

    #[test]
    fn respond_validates_instead_of_panicking() {
        let state = ServeState::new(art(3, 20, 4, 5)).with_version(9);
        let mut scratch = ServeScratch::new();
        let ok = state.respond(&RecommendRequest::new(2, 5), &mut scratch).unwrap();
        assert_eq!(ok.version, 9);
        assert_eq!(ok.user, 2);
        assert_eq!(ok.recs.len(), 5);
        let err = state.respond(&RecommendRequest::new(3, 5), &mut scratch).unwrap_err();
        assert_eq!(err, ServeError::UserOutOfRange { user: 3, n_users: 3 });
    }

    #[test]
    fn score_items_validates_ids() {
        let state = ServeState::new(art(3, 20, 4, 6));
        let mut out = Vec::new();
        state.score_items_into(1, &[0, 19], &mut out).unwrap();
        assert_eq!(out.len(), 2);
        let err = state.score_items_into(1, &[0, 20], &mut out).unwrap_err();
        assert_eq!(err, ServeError::ItemOutOfRange { item: 20, n_items: 20 });
        let err = state.score_items_into(9, &[0], &mut out).unwrap_err();
        assert_eq!(err, ServeError::UserOutOfRange { user: 9, n_users: 3 });
    }

    #[test]
    fn int8_artifacts_batch_through_the_fused_kernel() {
        let q = art(12, 300, 8, 8).quantize();
        let state = ServeState::new(q);
        let mut scratch = ServeScratch::new();
        let reqs: Vec<RecommendRequest> = (0..12u32).map(|u| RecommendRequest::new(u, 7)).collect();
        let mut batched = Vec::new();
        state.recommend_batch_into(&reqs, &mut scratch, &mut batched);
        for (req, got) in reqs.iter().zip(&batched) {
            let mut serial = Vec::new();
            state.recommend_into(req, &mut scratch, &mut serial);
            assert_eq!(*got, serial);
        }
    }
}
