//! The traffic-facing [`ServeEngine`]: a micro-batching request
//! scheduler over hot-swappable, multi-tenant serving state.
//!
//! Concurrent callers enqueue single-user [`RecommendRequest`]s on a
//! **bounded MPSC queue** (backpressure instead of unbounded memory) and
//! block for their [`RecommendResponse`]. Long-lived worker threads —
//! the same parked-workers-on-`std::sync::mpsc` pattern as
//! `bsl_core::engine::WorkerPool`, created once and reused for every
//! batch — drain the queue in **micro-batches**: a worker takes the
//! first request, then coalesces whatever else arrives within
//! [`BatchPolicy::window`] up to [`BatchPolicy::max_batch`], groups the
//! batch by tenant slot, and answers each group through one
//! [`ServeState::recommend_batch_into`] pass. That is the paper's
//! amortization insight turned into a serving lever: one tiled blocked
//! pass over the item table for the whole batch instead of one full scan
//! per request (plus one worker wake-up per *batch* instead of per
//! request).
//!
//! Artifacts are resolved through a [`Registry`] of named
//! [`ArtifactSlot`]s, so `swap` deploys a new generation with **zero
//! downtime**: requests already in flight finish on the generation they
//! loaded; every later batch serves the new one. Candidate scoring
//! (`score_items`) answers inline on the caller's thread — it touches a
//! handful of rows, so there is nothing to amortize by batching.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::recommender::Rec;
use crate::registry::{Registry, TenantInfo};
use crate::state::{RecommendRequest, RecommendResponse, ServeError, ServeScratch, ServeState};
use crate::swap::ArtifactSlot;

/// Micro-batching knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most requests coalesced into one scoring pass. `1` disables
    /// micro-batching (per-request dispatch — the comparison baseline the
    /// load generator measures against).
    pub max_batch: usize,
    /// How long a worker holding a non-full batch waits for more requests
    /// before scoring. Zero = score immediately, still coalescing
    /// whatever is already queued.
    pub window: Duration,
    /// Bound of the request queue; senders block (backpressure) when the
    /// engine is this far behind.
    pub queue_depth: usize,
    /// Worker threads draining the queue. One is right for one core;
    /// more lets batch scoring overlap with batch formation.
    pub workers: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { max_batch: 32, window: Duration::from_micros(200), queue_depth: 1024, workers: 1 }
    }
}

impl BatchPolicy {
    /// Per-request dispatch: batches of 1, no coalescing window — what
    /// serving looks like without the micro-batcher.
    pub fn unbatched() -> Self {
        Self { max_batch: 1, window: Duration::ZERO, ..Self::default() }
    }
}

/// One queued request: the resolved tenant slot, the request, and the
/// completion channel its caller blocks on.
struct Queued {
    slot: Arc<ArtifactSlot>,
    req: RecommendRequest,
    done: Sender<Result<RecommendResponse, ServeError>>,
}

/// Monotonic engine counters (relaxed atomics — stats, not synchronization).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    swaps: AtomicU64,
}

/// A point-in-time stats report.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Recommend requests answered (including error responses).
    pub requests: u64,
    /// Requests answered with a [`ServeError`].
    pub errors: u64,
    /// Scoring batches executed.
    pub batches: u64,
    /// Mean requests per batch (the coalescing factor).
    pub avg_batch: f64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Artifact hot-swaps performed through the engine.
    pub swaps: u64,
    /// Per-tenant summaries (name order).
    pub tenants: Vec<TenantInfo>,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests={} errors={} batches={} avg_batch={:.2} max_batch={} swaps={}",
            self.requests, self.errors, self.batches, self.avg_batch, self.max_batch, self.swaps
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "tenant {} version={} swaps={} users={} items={}",
                t.name, t.version, t.swaps, t.n_users, t.n_items
            )?;
        }
        Ok(())
    }
}

/// The micro-batched, hot-swappable serving engine. See the module docs.
///
/// Construct with [`ServeEngine::new`] (multi-tenant) or
/// [`ServeEngine::single_tenant`]; share as `Arc<ServeEngine>` across
/// request threads ([`recommend`](Self::recommend) takes `&self` and
/// blocks only its caller). Dropping the engine (or calling
/// [`shutdown`](Self::shutdown)) drains in-flight requests and joins the
/// workers.
pub struct ServeEngine {
    registry: Arc<Registry>,
    policy: BatchPolicy,
    /// `None` after shutdown: the master sender is dropped so workers
    /// drain and exit; late callers get [`ServeError::Closed`].
    tx: Mutex<Option<SyncSender<Queued>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    counters: Arc<Counters>,
}

impl ServeEngine {
    /// An engine serving `registry`'s tenants under `policy` (knob floors:
    /// at least 1 each of `max_batch`, `queue_depth`, `workers`).
    pub fn new(registry: Arc<Registry>, mut policy: BatchPolicy) -> Arc<Self> {
        policy.max_batch = policy.max_batch.max(1);
        policy.queue_depth = policy.queue_depth.max(1);
        policy.workers = policy.workers.max(1);
        let (tx, rx) = sync_channel::<Queued>(policy.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let counters = Arc::new(Counters::default());
        let workers = (0..policy.workers)
            .map(|k| {
                let rx = Arc::clone(&rx);
                let counters = Arc::clone(&counters);
                std::thread::Builder::new()
                    .name(format!("bsl-serve-{k}"))
                    .spawn(move || worker_loop(&rx, &counters, policy))
                    .expect("spawning serve worker")
            })
            .collect();
        Arc::new(Self {
            registry,
            policy,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            counters,
        })
    }

    /// A one-tenant engine serving `state` under the name `"default"`.
    pub fn single_tenant(state: ServeState, policy: BatchPolicy) -> Arc<Self> {
        let registry = Arc::new(Registry::new());
        registry.insert(Self::DEFAULT_TENANT, state);
        Self::new(registry, policy)
    }

    /// The tenant name [`single_tenant`](Self::single_tenant) registers.
    pub const DEFAULT_TENANT: &'static str = "default";

    /// The tenant registry (register/swap/remove tenants directly; swaps
    /// through [`swap`](Self::swap) additionally count in the stats).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The active batching policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Answers one request for `tenant`, blocking until a worker serves
    /// the micro-batch it lands in. Backpressure: blocks on a full queue.
    pub fn recommend(
        &self,
        tenant: &str,
        req: RecommendRequest,
    ) -> Result<RecommendResponse, ServeError> {
        let slot = self.registry.get(tenant)?;
        let (done, wait) = std::sync::mpsc::channel();
        let tx = match &*self.tx.lock().expect("engine sender lock") {
            Some(tx) => tx.clone(),
            None => return Err(ServeError::Closed),
        };
        if tx.send(Queued { slot, req, done }).is_err() {
            return Err(ServeError::Closed);
        }
        wait.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Scores an explicit candidate list for `tenant`'s current artifact
    /// generation, inline on the caller's thread (a handful of row dots —
    /// nothing to gain from batching). Returns the answering generation's
    /// version alongside the scores.
    pub fn score_items(
        &self,
        tenant: &str,
        user: u32,
        items: &[u32],
    ) -> Result<(u64, Vec<f32>), ServeError> {
        let state = self.registry.get(tenant)?.load();
        let mut out = Vec::with_capacity(items.len());
        state.score_items_into(user, items, &mut out)?;
        Ok((state.version(), out))
    }

    /// Hot-swaps `tenant`'s artifact to `state` with zero downtime;
    /// returns the new version. In-flight batches finish on the old
    /// generation, which drops when its last holder does.
    pub fn swap(&self, tenant: &str, state: ServeState) -> Result<u64, ServeError> {
        let version = self.registry.swap(tenant, state)?;
        // ORDERING: Relaxed — monotone stats counter; consistency of the
        // swap itself is carried by the slot's SeqCst protocol, not here.
        self.counters.swaps.fetch_add(1, Relaxed);
        Ok(version)
    }

    /// A point-in-time stats snapshot.
    // ORDERING: Relaxed throughout — independent monotone counters; the
    // snapshot is advisory and does not claim cross-counter consistency.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.counters;
        let batches = c.batches.load(Relaxed);
        let batched = c.batched_requests.load(Relaxed);
        StatsSnapshot {
            requests: c.requests.load(Relaxed),
            errors: c.errors.load(Relaxed),
            batches,
            avg_batch: if batches == 0 { 0.0 } else { batched as f64 / batches as f64 },
            max_batch: c.max_batch.load(Relaxed),
            swaps: c.swaps.load(Relaxed),
            tenants: self.registry.tenants(),
        }
    }

    /// Shuts the engine down (idempotent): stops accepting requests,
    /// lets queued ones drain, and joins the workers. Also runs on drop.
    pub fn shutdown(&self) {
        drop(self.tx.lock().expect("engine sender lock").take());
        let mut workers = self.workers.lock().expect("engine worker lock");
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One serve worker: form a micro-batch (first request blocking, the
/// rest coalesced within the policy window), then score it per tenant
/// group through the shared-state batched pass. Exits when the queue
/// closes.
// ORDERING: all counter updates in here are Relaxed — monotone stats
// counters read only by the advisory `stats` snapshot; request/response
// hand-off synchronizes through the channels, never through these.
fn worker_loop(rx: &Mutex<Receiver<Queued>>, counters: &Counters, policy: BatchPolicy) {
    let mut scratch = ServeScratch::new();
    let mut batch: Vec<Queued> = Vec::with_capacity(policy.max_batch);
    let mut order: Vec<usize> = Vec::with_capacity(policy.max_batch);
    let mut reqs: Vec<RecommendRequest> = Vec::with_capacity(policy.max_batch);
    let mut idxs: Vec<usize> = Vec::with_capacity(policy.max_batch);
    let mut outs: Vec<Vec<Rec>> = Vec::new();
    loop {
        batch.clear();
        {
            // The queue lock is held while the batch forms (including the
            // coalescing wait): exactly one worker builds a batch at a
            // time, while the others are busy scoring already-formed
            // batches. `recv` parks this worker until traffic arrives.
            let guard = rx.lock().expect("serve queue lock");
            match guard.recv() {
                Ok(q) => batch.push(q),
                Err(_) => return, // queue closed: engine shutdown
            }
            let deadline = Instant::now() + policy.window;
            while batch.len() < policy.max_batch {
                match guard.try_recv() {
                    Ok(q) => batch.push(q),
                    Err(TryRecvError::Disconnected) => break,
                    Err(TryRecvError::Empty) => {
                        // The queue is drained. Score what we have as soon
                        // as it is an actual batch — delaying further only
                        // adds latency for the requests already in hand
                        // (and under closed-loop load the senders are
                        // blocked on *us*, so nothing more can arrive).
                        // Only a lone request waits out the window for
                        // company.
                        let now = Instant::now();
                        if batch.len() > 1 || now >= deadline {
                            break;
                        }
                        match guard.recv_timeout(deadline - now) {
                            Ok(q) => batch.push(q),
                            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                                break
                            }
                        }
                    }
                }
            }
        }

        counters.requests.fetch_add(batch.len() as u64, Relaxed);
        counters.batches.fetch_add(1, Relaxed);
        counters.batched_requests.fetch_add(batch.len() as u64, Relaxed);
        counters.max_batch.fetch_max(batch.len() as u64, Relaxed);

        // Group by tenant slot so each group scores through one state
        // load (one consistent artifact generation per group).
        order.clear();
        order.extend(0..batch.len());
        order.sort_by_key(|&i| Arc::as_ptr(&batch[i].slot) as usize);
        let mut g0 = 0;
        while g0 < order.len() {
            let mut g1 = g0 + 1;
            while g1 < order.len() && Arc::ptr_eq(&batch[order[g0]].slot, &batch[order[g1]].slot) {
                g1 += 1;
            }
            let state = batch[order[g0]].slot.load();
            reqs.clear();
            idxs.clear();
            for &i in &order[g0..g1] {
                match state.check(&batch[i].req) {
                    Ok(()) => {
                        idxs.push(i);
                        reqs.push(batch[i].req);
                    }
                    Err(e) => {
                        counters.errors.fetch_add(1, Relaxed);
                        let _ = batch[i].done.send(Err(e));
                    }
                }
            }
            state.recommend_batch_into(&reqs, &mut scratch, &mut outs);
            for (j, &i) in idxs.iter().enumerate() {
                let resp = RecommendResponse {
                    user: reqs[j].user,
                    version: state.version(),
                    recs: outs[j].clone(),
                };
                let _ = batch[i].done.send(Ok(resp));
            }
            g0 = g1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServeOptions;
    use bsl_linalg::Matrix;
    use bsl_models::{EvalScore, ModelArtifact};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn state(seed: u64, n_users: usize, n_items: usize) -> ServeState {
        let mut rng = StdRng::seed_from_u64(seed);
        let users = Matrix::gaussian(n_users, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(n_items, 8, 1.0, &mut rng);
        ServeState::new(ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot))
    }

    #[test]
    fn engine_answers_match_direct_state_calls() {
        let reference = state(11, 20, 200);
        let engine = ServeEngine::single_tenant(state(11, 20, 200), BatchPolicy::default());
        let mut scratch = ServeScratch::new();
        for u in 0..20u32 {
            let req = RecommendRequest::new(u, 10);
            let got = engine.recommend(ServeEngine::DEFAULT_TENANT, req).unwrap();
            let want = reference.respond(&req, &mut scratch).unwrap();
            assert_eq!(got.recs, want.recs, "user {u}");
            assert_eq!(got.version, 1, "initial generation serves as version 1");
        }
        let snap = engine.stats();
        assert_eq!(snap.requests, 20);
        assert_eq!(snap.errors, 0);
    }

    #[test]
    fn engine_reports_request_errors() {
        let engine = ServeEngine::single_tenant(state(3, 5, 50), BatchPolicy::default());
        let err = engine.recommend("default", RecommendRequest::new(5, 3)).unwrap_err();
        assert_eq!(err, ServeError::UserOutOfRange { user: 5, n_users: 5 });
        let err = engine.recommend("nope", RecommendRequest::new(0, 3)).unwrap_err();
        assert_eq!(err, ServeError::UnknownTenant("nope".into()));
        assert_eq!(engine.stats().errors, 1, "unknown tenant is rejected before the queue");
    }

    #[test]
    fn concurrent_burst_is_coalesced() {
        let engine = ServeEngine::single_tenant(
            state(7, 64, 400),
            BatchPolicy { window: Duration::from_millis(5), ..Default::default() },
        );
        let n_threads = 8usize;
        let per_thread = 25usize;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let engine = &engine;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let u = ((t * per_thread + i) % 64) as u32;
                        let resp =
                            engine.recommend("default", RecommendRequest::new(u, 5)).unwrap();
                        assert_eq!(resp.recs.len(), 5);
                    }
                });
            }
        });
        let snap = engine.stats();
        assert_eq!(snap.requests, (n_threads * per_thread) as u64);
        assert!(
            snap.batches < snap.requests,
            "burst of {} requests must coalesce into fewer batches (got {})",
            snap.requests,
            snap.batches
        );
        assert!(snap.max_batch > 1, "at least one batch must hold >1 request");
    }

    #[test]
    fn multi_tenant_requests_route_to_their_artifacts() {
        let registry = Arc::new(Registry::new());
        registry.insert("a", state(1, 10, 100));
        registry.insert("b", state(2, 30, 50));
        let ref_a = state(1, 10, 100);
        let ref_b = state(2, 30, 50);
        let engine = ServeEngine::new(Arc::clone(&registry), BatchPolicy::default());
        let mut scratch = ServeScratch::new();
        let req = RecommendRequest::new(3, 7);
        assert_eq!(
            engine.recommend("a", req).unwrap().recs,
            ref_a.respond(&req, &mut scratch).unwrap().recs
        );
        assert_eq!(
            engine.recommend("b", req).unwrap().recs,
            ref_b.respond(&req, &mut scratch).unwrap().recs
        );
        // Tenant b has 30 users; user 20 is valid there but not on a.
        let req = RecommendRequest::new(20, 3);
        assert!(engine.recommend("b", req).is_ok());
        assert_eq!(
            engine.recommend("a", req).unwrap_err(),
            ServeError::UserOutOfRange { user: 20, n_users: 10 }
        );
    }

    #[test]
    fn swap_changes_answers_and_versions() {
        let engine = ServeEngine::single_tenant(state(5, 8, 120), BatchPolicy::default());
        let req = RecommendRequest { user: 2, k: 6, opts: ServeOptions::default() };
        let before = engine.recommend("default", req).unwrap();
        assert_eq!(before.version, 1);
        let v = engine.swap("default", state(99, 8, 120)).unwrap();
        assert_eq!(v, 2);
        let after = engine.recommend("default", req).unwrap();
        assert_eq!(after.version, 2);
        assert_ne!(before.recs, after.recs, "different artifact, different answers");
        assert_eq!(engine.stats().swaps, 1);
    }

    #[test]
    fn score_items_reports_the_serving_version() {
        let engine = ServeEngine::single_tenant(state(4, 6, 40), BatchPolicy::default());
        let (v, scores) = engine.score_items("default", 1, &[0, 5, 39]).unwrap();
        assert_eq!(v, 1);
        assert_eq!(scores.len(), 3);
        let err = engine.score_items("default", 1, &[40]).unwrap_err();
        assert_eq!(err, ServeError::ItemOutOfRange { item: 40, n_items: 40 });
    }

    #[test]
    fn shutdown_is_clean_and_idempotent() {
        let engine = ServeEngine::single_tenant(state(6, 4, 30), BatchPolicy::default());
        assert!(engine.recommend("default", RecommendRequest::new(0, 3)).is_ok());
        engine.shutdown();
        engine.shutdown();
        assert_eq!(
            engine.recommend("default", RecommendRequest::new(0, 3)).unwrap_err(),
            ServeError::Closed
        );
    }
}
