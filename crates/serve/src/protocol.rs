//! The framed TCP front end: a tiny length-prefixed wire protocol over
//! `std::net` (the offline-vendor constraint rules out HTTP stacks) plus
//! the blocking [`ServeClient`] the load generator and the `repro --swap`
//! CLI drive it with.
//!
//! # Wire format
//!
//! Every message is one **frame**: a `u32` little-endian payload length
//! followed by the payload. Payloads start with an op byte:
//!
//! | op   | direction | body |
//! |------|-----------|------|
//! | 0x01 | request   | `recommend` — tenant str, user u32, k u16, flags u8 (bit0 exact, bit1 no seen-filter), nprobe u32 (0 = auto) |
//! | 0x02 | request   | `score_items` — tenant str, user u32, n u32, n × item u32 |
//! | 0x03 | request   | `swap_artifact` — tenant str, artifact path str |
//! | 0x04 | request   | `stats` — empty |
//! | 0x05 | request   | `shutdown` — empty |
//! | 0x81 | response  | `recs` — version u64, n u16, n × (item u32, score f32) |
//! | 0x82 | response  | `scores` — version u64, n u32, n × f32 |
//! | 0x83 | response  | `swapped` — version u64 |
//! | 0x84 | response  | `stats` — UTF-8 text |
//! | 0x85 | response  | `shutdown acknowledged` — empty |
//! | 0xFF | response  | `error` — UTF-8 message |
//!
//! Integers and floats are little-endian; strings are `u16` length +
//! UTF-8 bytes. Frames are capped at [`MAX_FRAME`] so a corrupt length
//! can't allocate unboundedly. Malformed payloads decode to a
//! [`ProtocolError`], answered with an error frame — a bad client cannot
//! take the server down.
//!
//! `swap_artifact` names a path the **server** loads (the deploy flow:
//! `repro --save` writes the artifact, `repro --swap` tells the running
//! server to pick it up). The new generation adopts the current one's
//! seen-mask when shapes match, so filtering survives hot deploys.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::engine::ServeEngine;
use crate::recommender::Rec;
use crate::state::{RecommendRequest, RecommendResponse, ServeOptions, ServeState};
use bsl_models::ModelArtifact;

/// Upper bound on a frame payload (16 MiB): large enough for any real
/// response, small enough that a corrupt length prefix cannot OOM the
/// peer.
pub const MAX_FRAME: usize = 16 << 20;

/// A request frame, decoded.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Top-k retrieval for one user of one tenant.
    Recommend {
        /// Target tenant.
        tenant: String,
        /// The request (user, k, per-request options).
        req: RecommendRequest,
    },
    /// Score an explicit candidate list.
    ScoreItems {
        /// Target tenant.
        tenant: String,
        /// The user to score for.
        user: u32,
        /// The candidate items.
        items: Vec<u32>,
    },
    /// Hot-swap the tenant's artifact to the one at `path` (server-side
    /// file system).
    SwapArtifact {
        /// Target tenant.
        tenant: String,
        /// Artifact path on the server.
        path: String,
    },
    /// Engine stats, as text.
    Stats,
    /// Stop the server (acknowledged before the listener closes).
    Shutdown,
}

/// A response frame, decoded.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Recommendations plus the artifact generation that served them.
    Recs {
        /// Serving-state version.
        version: u64,
        /// Top-k items, best first.
        recs: Vec<Rec>,
    },
    /// Candidate scores plus the serving generation.
    Scores {
        /// Serving-state version.
        version: u64,
        /// One score per requested item, in request order.
        scores: Vec<f32>,
    },
    /// Swap succeeded; the new generation's version.
    Swapped {
        /// The version now being served.
        version: u64,
    },
    /// Stats text.
    Stats(String),
    /// Shutdown acknowledged.
    ShutdownOk,
    /// The request failed; human-readable reason.
    Error(String),
}

/// A malformed frame or payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before its fields did.
    Truncated,
    /// Unknown op byte.
    BadOp(u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Frame length exceeds [`MAX_FRAME`].
    Oversize(usize),
    /// Bytes left over after the last field.
    TrailingBytes,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "truncated payload"),
            Self::BadOp(op) => write!(f, "unknown op 0x{op:02x}"),
            Self::BadUtf8 => write!(f, "string field is not UTF-8"),
            Self::Oversize(n) => write!(f, "frame of {n} bytes exceeds the {MAX_FRAME} cap"),
            Self::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for ProtocolError {}

// ---- encoding ----------------------------------------------------------

fn push_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "string field too long");
    buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Request option flags: bit 0 = force exact, bit 1 = disable
/// seen-filtering.
fn opts_flags(opts: &ServeOptions) -> u8 {
    (opts.exact as u8) | ((!opts.filter_seen as u8) << 1)
}

/// Encodes `req` as a payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Recommend { tenant, req } => {
            buf.push(0x01);
            push_str(&mut buf, tenant);
            buf.extend_from_slice(&req.user.to_le_bytes());
            buf.extend_from_slice(&(req.k.min(u16::MAX as usize) as u16).to_le_bytes());
            buf.push(opts_flags(&req.opts));
            let nprobe = req.opts.nprobe.unwrap_or(0).min(u32::MAX as usize) as u32;
            buf.extend_from_slice(&nprobe.to_le_bytes());
        }
        Request::ScoreItems { tenant, user, items } => {
            buf.push(0x02);
            push_str(&mut buf, tenant);
            buf.extend_from_slice(&user.to_le_bytes());
            buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for i in items {
                buf.extend_from_slice(&i.to_le_bytes());
            }
        }
        Request::SwapArtifact { tenant, path } => {
            buf.push(0x03);
            push_str(&mut buf, tenant);
            push_str(&mut buf, path);
        }
        Request::Stats => buf.push(0x04),
        Request::Shutdown => buf.push(0x05),
    }
    buf
}

/// Encodes `resp` as a payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Recs { version, recs } => {
            buf.push(0x81);
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&(recs.len().min(u16::MAX as usize) as u16).to_le_bytes());
            for r in recs {
                buf.extend_from_slice(&r.item.to_le_bytes());
                buf.extend_from_slice(&r.score.to_le_bytes());
            }
        }
        Response::Scores { version, scores } => {
            buf.push(0x82);
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&(scores.len() as u32).to_le_bytes());
            for s in scores {
                buf.extend_from_slice(&s.to_le_bytes());
            }
        }
        Response::Swapped { version } => {
            buf.push(0x83);
            buf.extend_from_slice(&version.to_le_bytes());
        }
        Response::Stats(text) => {
            buf.push(0x84);
            buf.extend_from_slice(text.as_bytes());
        }
        Response::ShutdownOk => buf.push(0x85),
        Response::Error(msg) => {
            buf.push(0xFF);
            buf.extend_from_slice(msg.as_bytes());
        }
    }
    buf
}

// ---- decoding ----------------------------------------------------------

/// A little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, ProtocolError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn str(&mut self) -> Result<String, ProtocolError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn rest_utf8(&mut self) -> Result<String, ProtocolError> {
        let bytes = self.take(self.buf.len() - self.pos)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes)
        }
    }
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        0x01 => {
            let tenant = c.str()?;
            let user = c.u32()?;
            let k = c.u16()? as usize;
            let flags = c.u8()?;
            let nprobe = c.u32()?;
            let opts = ServeOptions {
                exact: flags & 1 != 0,
                filter_seen: flags & 2 == 0,
                nprobe: (nprobe > 0).then_some(nprobe as usize),
            };
            Request::Recommend { tenant, req: RecommendRequest { user, k, opts } }
        }
        0x02 => {
            let tenant = c.str()?;
            let user = c.u32()?;
            let n = c.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(MAX_FRAME / 4));
            for _ in 0..n {
                items.push(c.u32()?);
            }
            Request::ScoreItems { tenant, user, items }
        }
        0x03 => Request::SwapArtifact { tenant: c.str()?, path: c.str()? },
        0x04 => Request::Stats,
        0x05 => Request::Shutdown,
        op => return Err(ProtocolError::BadOp(op)),
    };
    c.finish()?;
    Ok(req)
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        0x81 => {
            let version = c.u64()?;
            let n = c.u16()? as usize;
            let mut recs = Vec::with_capacity(n);
            for _ in 0..n {
                recs.push(Rec { item: c.u32()?, score: c.f32()? });
            }
            Response::Recs { version, recs }
        }
        0x82 => {
            let version = c.u64()?;
            let n = c.u32()? as usize;
            let mut scores = Vec::with_capacity(n.min(MAX_FRAME / 4));
            for _ in 0..n {
                scores.push(c.f32()?);
            }
            Response::Scores { version, scores }
        }
        0x83 => Response::Swapped { version: c.u64()? },
        0x84 => Response::Stats(c.rest_utf8()?),
        0x85 => Response::ShutdownOk,
        0xFF => Response::Error(c.rest_utf8()?),
        op => return Err(ProtocolError::BadOp(op)),
    };
    c.finish()?;
    Ok(resp)
}

// ---- framing -----------------------------------------------------------

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` on a clean EOF at a frame
/// boundary; oversize lengths become `InvalidData` without allocating.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, ProtocolError::Oversize(len)));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---- server ------------------------------------------------------------

/// Answers one decoded request against the engine. `shutdown` is flipped
/// on a [`Request::Shutdown`] (the caller tears the listener down after
/// acknowledging).
fn handle(engine: &ServeEngine, req: Request, shutdown: &AtomicBool) -> Response {
    match req {
        Request::Recommend { tenant, req } => match engine.recommend(&tenant, req) {
            Ok(RecommendResponse { version, recs, .. }) => Response::Recs { version, recs },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::ScoreItems { tenant, user, items } => {
            match engine.score_items(&tenant, user, &items) {
                Ok((version, scores)) => Response::Scores { version, scores },
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::SwapArtifact { tenant, path } => {
            let artifact = match ModelArtifact::load(&path) {
                Ok(a) => a,
                Err(e) => return Response::Error(format!("loading {path}: {e}")),
            };
            // Keep filtering across deploys: adopt the serving
            // generation's seen-mask when the new artifact's shape
            // still matches it.
            let state = match engine.registry().get(&tenant) {
                Ok(slot) => ServeState::with_seen_from(artifact, &slot.load()),
                Err(e) => return Response::Error(e.to_string()),
            };
            match engine.swap(&tenant, state) {
                Ok(version) => Response::Swapped { version },
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Stats => Response::Stats(engine.stats().to_string()),
        Request::Shutdown => {
            // ORDERING: SeqCst — set-once shutdown latch; total order
            // keeps the flag, the ShutdownOk reply, and the accept-loop
            // poke from being reordered against each other.
            shutdown.store(true, SeqCst);
            Response::ShutdownOk
        }
    }
}

/// The TCP front end: an accept loop handing each connection to its own
/// thread, all speaking the framed protocol against one shared
/// [`ServeEngine`].
///
/// Stop it with [`TcpFrontend::stop`] (or remotely with a `shutdown`
/// frame): the listener closes, open connections are shut down, and
/// every thread is joined — in-flight requests get their responses
/// first.
pub struct TcpFrontend {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpFrontend {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `engine`.
    pub fn start(engine: Arc<ServeEngine>, addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let threads = Arc::clone(&threads);
            std::thread::Builder::new().name("bsl-serve-accept".into()).spawn(move || {
                for stream in listener.incoming() {
                    // ORDERING: SeqCst — shutdown-latch read; `stop`'s
                    // store is totally ordered before the poke connection
                    // that unblocks this accept, so the flag is visible
                    // here by then.
                    if shutdown.load(SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().expect("conn registry").push(clone);
                    }
                    let engine = Arc::clone(&engine);
                    let shutdown = Arc::clone(&shutdown);
                    let handle = std::thread::Builder::new()
                        .name("bsl-serve-conn".into())
                        .spawn(move || connection_loop(stream, &engine, &shutdown))
                        .expect("spawning connection thread");
                    threads.lock().expect("conn threads").push(handle);
                }
            })?
        };
        Ok(Self { addr, shutdown, accept: Some(accept), conns, threads })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown (local or via a `shutdown` frame) has been
    /// requested.
    pub fn shutdown_requested(&self) -> bool {
        // ORDERING: SeqCst — shutdown-latch read (see `stop`).
        self.shutdown.load(SeqCst)
    }

    /// Blocks until a `shutdown` frame arrives, polling `period`.
    pub fn wait_for_shutdown(&self, period: std::time::Duration) {
        while !self.shutdown_requested() {
            std::thread::sleep(period);
        }
    }

    /// Stops accepting, closes open connections, and joins every thread
    /// (idempotent; also runs on drop). In-flight requests are answered
    /// before their connections close.
    pub fn stop(&mut self) {
        // ORDERING: SeqCst — set-once shutdown latch: every reader
        // (accept loop, connection loops, shutdown_requested) observes it
        // in the single total order, so none can run past a completed
        // stop(). Uncontended after startup, so the strength is free.
        self.shutdown.store(true, SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for conn in self.conns.lock().expect("conn registry").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = self.threads.lock().expect("conn threads").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for TcpFrontend {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection: read frames, answer them, until EOF / error /
/// shutdown.
fn connection_loop(mut stream: TcpStream, engine: &ServeEngine, shutdown: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // EOF or torn-down socket
        };
        let resp = match decode_request(&payload) {
            Ok(req) => handle(engine, req, shutdown),
            Err(e) => Response::Error(format!("bad request: {e}")),
        };
        let was_shutdown = matches!(resp, Response::ShutdownOk);
        if write_frame(&mut stream, &encode_response(&resp)).is_err() {
            return;
        }
        // ORDERING: SeqCst — shutdown-latch read (see `stop`).
        if was_shutdown || shutdown.load(SeqCst) {
            // Poke the accept loop so it observes the flag and exits.
            return;
        }
    }
}

// ---- client ------------------------------------------------------------

/// A client-side failure: transport, framing, or a server-reported error.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent a malformed or unexpected frame.
    Protocol(ProtocolError),
    /// The server answered with an error frame.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io: {e}"),
            Self::Protocol(e) => write!(f, "protocol: {e}"),
            Self::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

/// A blocking protocol client over one TCP connection (one request in
/// flight at a time; open several clients for concurrency — that is
/// exactly what the load generator does).
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a [`TcpFrontend`].
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// One request/response round trip.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Io(io::ErrorKind::UnexpectedEof.into()))?;
        match decode_response(&payload)? {
            Response::Error(msg) => Err(ClientError::Server(msg)),
            resp => Ok(resp),
        }
    }

    /// Top-k retrieval for `req.user` on `tenant`.
    pub fn recommend(
        &mut self,
        tenant: &str,
        req: RecommendRequest,
    ) -> Result<RecommendResponse, ClientError> {
        let user = req.user;
        match self.call(&Request::Recommend { tenant: to_owned(tenant), req })? {
            Response::Recs { version, recs } => Ok(RecommendResponse { user, version, recs }),
            other => Err(unexpected(other)),
        }
    }

    /// Scores `items` for `user` on `tenant`; returns `(version, scores)`.
    pub fn score_items(
        &mut self,
        tenant: &str,
        user: u32,
        items: &[u32],
    ) -> Result<(u64, Vec<f32>), ClientError> {
        let req = Request::ScoreItems { tenant: to_owned(tenant), user, items: items.to_vec() };
        match self.call(&req)? {
            Response::Scores { version, scores } => Ok((version, scores)),
            other => Err(unexpected(other)),
        }
    }

    /// Tells the server to hot-swap `tenant` to the artifact at `path`
    /// (a path on the **server's** file system); returns the new version.
    pub fn swap_artifact(&mut self, tenant: &str, path: &str) -> Result<u64, ClientError> {
        let req = Request::SwapArtifact { tenant: to_owned(tenant), path: to_owned(path) };
        match self.call(&req)? {
            Response::Swapped { version } => Ok(version),
            other => Err(unexpected(other)),
        }
    }

    /// The engine's stats text.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to shut down (acknowledged before it does).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn to_owned(s: &str) -> String {
    s.to_string()
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::Protocol(match resp {
        Response::Recs { .. } => ProtocolError::BadOp(0x81),
        Response::Scores { .. } => ProtocolError::BadOp(0x82),
        Response::Swapped { .. } => ProtocolError::BadOp(0x83),
        Response::Stats(_) => ProtocolError::BadOp(0x84),
        Response::ShutdownOk => ProtocolError::BadOp(0x85),
        Response::Error(_) => ProtocolError::BadOp(0xFF),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let enc = encode_request(&req);
        assert_eq!(decode_request(&enc).expect("decode"), req);
    }

    fn round_trip_response(resp: Response) {
        let enc = encode_response(&resp);
        assert_eq!(decode_response(&enc).expect("decode"), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Recommend {
            tenant: "yelp".into(),
            req: RecommendRequest::new(42, 10),
        });
        round_trip_request(Request::Recommend {
            tenant: "".into(),
            req: RecommendRequest {
                user: u32::MAX,
                k: 65535,
                opts: ServeOptions { nprobe: Some(7), exact: true, filter_seen: false },
            },
        });
        round_trip_request(Request::ScoreItems {
            tenant: "t".into(),
            user: 3,
            items: vec![1, 2, u32::MAX],
        });
        round_trip_request(Request::ScoreItems { tenant: "t".into(), user: 0, items: vec![] });
        round_trip_request(Request::SwapArtifact {
            tenant: "default".into(),
            path: "/tmp/model.bsla".into(),
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Recs {
            version: 9,
            recs: vec![Rec { item: 5, score: -1.25 }, Rec { item: 0, score: f32::MAX }],
        });
        round_trip_response(Response::Recs { version: 0, recs: vec![] });
        round_trip_response(Response::Scores { version: 3, scores: vec![0.0, -0.5, 1e9] });
        round_trip_response(Response::Swapped { version: u64::MAX });
        round_trip_response(Response::Stats("requests=5\ntenant a version=2\n".into()));
        round_trip_response(Response::ShutdownOk);
        round_trip_response(Response::Error("unknown tenant \"x\"".into()));
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panics() {
        assert_eq!(decode_request(&[]), Err(ProtocolError::Truncated));
        assert_eq!(decode_request(&[0x42]), Err(ProtocolError::BadOp(0x42)));
        // Recommend cut off mid-fields.
        let mut enc = encode_request(&Request::Recommend {
            tenant: "abc".into(),
            req: RecommendRequest::new(1, 5),
        });
        enc.truncate(enc.len() - 3);
        assert_eq!(decode_request(&enc), Err(ProtocolError::Truncated));
        // Trailing garbage.
        let mut enc = encode_request(&Request::Stats);
        enc.push(0);
        assert_eq!(decode_request(&enc), Err(ProtocolError::TrailingBytes));
        // Bad UTF-8 tenant.
        let enc = vec![0x03, 2, 0, 0xFF, 0xFE, 0, 0];
        assert_eq!(decode_request(&enc), Err(ProtocolError::BadUtf8));
        // ScoreItems claiming more items than the payload carries.
        let mut enc = Vec::new();
        enc.push(0x02);
        push_str(&mut enc, "t");
        enc.extend_from_slice(&0u32.to_le_bytes());
        enc.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert_eq!(decode_request(&enc), Err(ProtocolError::Truncated));
    }

    #[test]
    fn frames_round_trip_and_cap_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at a frame boundary");

        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut r = io::Cursor::new(huge.to_vec());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A frame that promises more bytes than arrive is an error, not a
        // hang or a short read.
        let mut partial = 10u32.to_le_bytes().to_vec();
        partial.extend_from_slice(b"abc");
        let mut r = io::Cursor::new(partial);
        assert!(read_frame(&mut r).is_err());
    }
}
