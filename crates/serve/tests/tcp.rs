//! End-to-end TCP front-end test: real sockets, the framed wire protocol,
//! a hot deploy via `swap_artifact`, and a remote shutdown.

use std::sync::Arc;

use bsl_linalg::Matrix;
use bsl_models::{EvalScore, ModelArtifact};
use bsl_serve::{
    BatchPolicy, ClientError, RecommendRequest, ServeClient, ServeEngine, ServeScratch, ServeState,
    TcpFrontend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn art(seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let users = Matrix::gaussian(16, 8, 1.0, &mut rng);
    let items = Matrix::gaussian(120, 8, 1.0, &mut rng);
    ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot)
}

#[test]
fn tcp_round_trip_swap_and_shutdown() {
    let tmp = std::env::temp_dir().join(format!("bsl-serve-tcp-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("temp dir");
    let v2_path = tmp.join("gen2.bsla");
    art(2).save(&v2_path).expect("saving the deploy artifact");

    let engine = ServeEngine::single_tenant(ServeState::new(art(1)), BatchPolicy::default());
    let frontend =
        TcpFrontend::start(Arc::clone(&engine), "127.0.0.1:0").expect("binding ephemeral port");
    let addr = frontend.local_addr();

    // Expected answers computed locally from identical artifacts.
    let mut scratch = ServeScratch::new();
    let expect = |artifact: ModelArtifact, user: u32, scratch: &mut ServeScratch| {
        let state = ServeState::new(artifact);
        let mut out = Vec::new();
        state.recommend_into(&RecommendRequest::new(user, 5), scratch, &mut out);
        out
    };

    let mut client = ServeClient::connect(addr).expect("connect");

    // recommend over the wire == recommend in process.
    let resp = client.recommend("default", RecommendRequest::new(3, 5)).expect("recommend");
    assert_eq!(resp.version, 1);
    assert_eq!(resp.user, 3);
    assert_eq!(resp.recs, expect(art(1), 3, &mut scratch));

    // score_items round trip.
    let items: Vec<u32> = vec![0, 7, 119];
    let (version, scores) = client.score_items("default", 3, &items).expect("score_items");
    assert_eq!(version, 1);
    let state1 = ServeState::new(art(1));
    let mut direct = vec![0.0f32; items.len()];
    state1.score_items_into(3, &items, &mut direct).unwrap();
    assert_eq!(scores, direct);

    // Server-side errors come back as error frames, not broken streams.
    let err = client.recommend("nope", RecommendRequest::new(0, 5)).unwrap_err();
    assert!(matches!(err, ClientError::Server(ref msg) if msg.contains("nope")), "{err}");
    let err = client.recommend("default", RecommendRequest::new(999, 5)).unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "{err}");
    // ...and the connection still works afterwards.
    assert_eq!(client.recommend("default", RecommendRequest::new(3, 5)).unwrap().version, 1);

    // stats text mentions the tenant and the request counter.
    let stats = client.stats().expect("stats");
    assert!(stats.contains("requests"), "stats missing counters: {stats}");
    assert!(stats.contains("default"), "stats missing tenant: {stats}");

    // Hot deploy: the server loads gen2 from disk and swaps it in.
    let version = client
        .swap_artifact("default", v2_path.to_str().expect("utf-8 temp path"))
        .expect("swap_artifact");
    assert_eq!(version, 2);
    let resp = client.recommend("default", RecommendRequest::new(3, 5)).expect("post-swap");
    assert_eq!(resp.version, 2);
    assert_eq!(resp.recs, expect(art(2), 3, &mut scratch));

    // A second connection sees the same swapped state.
    let mut client2 = ServeClient::connect(addr).expect("second connection");
    assert_eq!(client2.recommend("default", RecommendRequest::new(0, 5)).unwrap().version, 2);

    // Swapping a missing file is an error, not a crash.
    let err = client.swap_artifact("default", "/nonexistent/nope.bsla").unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "{err}");

    // Remote shutdown: acknowledged, then the listener goes down.
    client.shutdown_server().expect("shutdown ack");
    assert!(frontend.shutdown_requested());
    drop(frontend); // stop(): joins the accept loop and every connection
    engine.shutdown();

    std::fs::remove_dir_all(&tmp).ok();
}
