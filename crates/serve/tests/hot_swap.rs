//! Hot-swap torture: artifact generations are swapped in mid-stream while
//! client threads hammer the engine. Every response must be consistent
//! with **exactly one** generation (no torn reads), zero requests may be
//! dropped, and each swapped-out generation must drop as soon as its last
//! in-flight holder finishes.

use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bsl_linalg::Matrix;
use bsl_models::{EvalScore, ModelArtifact};
use bsl_serve::{BatchPolicy, RecommendRequest, ServeEngine, ServeScratch, ServeState};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_USERS: usize = 48;
const N_ITEMS: usize = 400;
const DIM: usize = 16;
const K: usize = 10;
const N_VERSIONS: u64 = 12; // initial generation + 11 swaps
const CLIENTS: usize = 4;
const REQS_PER_CLIENT: usize = 150;

/// Each generation gets its own embeddings, so two generations agreeing
/// on a full top-10 list is vanishingly unlikely — matching one
/// generation's expected output *identifies* the generation.
fn state_for(version: u64) -> ServeState {
    let mut rng = StdRng::seed_from_u64(1000 + version);
    let users = Matrix::gaussian(N_USERS, DIM, 1.0, &mut rng);
    let items = Matrix::gaussian(N_ITEMS, DIM, 1.0, &mut rng);
    ServeState::new(ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot))
}

fn wait_dead(weak: &Weak<ServeState>, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while weak.upgrade().is_some() {
        assert!(Instant::now() < deadline, "{what} still alive 5s after its last request");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn swaps_under_load_are_atomic_and_leak_free() {
    // Precompute every generation's expected answers for every user.
    let mut expected: Vec<Vec<Vec<bsl_serve::Rec>>> = Vec::new();
    let mut scratch = ServeScratch::new();
    for v in 1..=N_VERSIONS {
        let state = state_for(v);
        let mut per_user = Vec::with_capacity(N_USERS);
        for u in 0..N_USERS as u32 {
            let mut out = Vec::new();
            state.recommend_into(&RecommendRequest::new(u, K), &mut scratch, &mut out);
            per_user.push(out);
        }
        expected.push(per_user);
    }
    let expected = Arc::new(expected);

    let engine = ServeEngine::single_tenant(state_for(1), BatchPolicy::default());
    let slot = engine.registry().get(ServeEngine::DEFAULT_TENANT).unwrap();
    let done = Arc::new(AtomicUsize::new(0));
    let total = CLIENTS * REQS_PER_CLIENT;

    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut last_version = 0u64;
                for i in 0..REQS_PER_CLIENT {
                    let u = ((t * 31 + i * 7) % N_USERS) as u32;
                    let resp = engine
                        .recommend(ServeEngine::DEFAULT_TENANT, RecommendRequest::new(u, K))
                        .expect("no request may be dropped across swaps");
                    // Version sanity: stamped, in range, and (since one
                    // thread's requests are sequential) non-decreasing.
                    assert!(
                        (1..=N_VERSIONS).contains(&resp.version),
                        "version {} out of range",
                        resp.version
                    );
                    assert!(
                        resp.version >= last_version,
                        "thread {t} went back in time: {} after {last_version}",
                        resp.version
                    );
                    last_version = resp.version;
                    // The torn-read check: the response must equal the
                    // answer of exactly the generation it claims.
                    assert_eq!(
                        resp.recs,
                        expected[(resp.version - 1) as usize][u as usize],
                        "thread {t} req {i}: response inconsistent with version {}",
                        resp.version
                    );
                    done.fetch_add(1, SeqCst);
                }
            });
        }

        // The swapper: spread 11 swaps across the request stream, pacing
        // on completed-request counts so every swap happens mid-load.
        let mut retired: Vec<(u64, Weak<ServeState>)> = Vec::new();
        for v in 2..=N_VERSIONS {
            let threshold = (v - 1) as usize * total / (N_VERSIONS as usize + 1);
            while done.load(SeqCst) < threshold {
                std::thread::yield_now();
            }
            let (version, old) = slot.swap(state_for(v));
            assert_eq!(version, v);
            retired.push((v - 1, Arc::downgrade(&old)));
            // `old` (the last strong ref we hold) drops here; in-flight
            // requests may still pin the generation briefly.
        }
        for (v, weak) in &retired {
            wait_dead(weak, &format!("generation {v}"));
        }
    });

    let stats = engine.stats();
    assert_eq!(stats.requests, total as u64, "every request accounted for");
    assert_eq!(stats.errors, 0);
    assert_eq!(slot.swaps(), N_VERSIONS - 1);
    assert_eq!(slot.version(), N_VERSIONS);

    // The final generation is released once the engine lets go of it.
    let last = Arc::downgrade(&slot.load());
    drop(slot);
    engine.shutdown();
    drop(engine);
    wait_dead(&last, "final generation");
}

#[test]
fn swap_preserves_seen_mask_when_shapes_match() {
    use bsl_data::{generate, SynthConfig};
    let ds = generate(&SynthConfig::yelp_like(3));
    let mut rng = StdRng::seed_from_u64(1);
    let users = Matrix::gaussian(ds.n_users, 8, 1.0, &mut rng);
    let items = Matrix::gaussian(ds.n_items, 8, 1.0, &mut rng);
    let masked = ServeState::with_seen(
        ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot),
        &ds,
    );
    let seen0: Vec<u32> = masked.seen(0).to_vec();
    assert!(!seen0.is_empty(), "synthetic user 0 should have training items");

    // Same-shape retrain: mask carries over.
    let users2 = Matrix::gaussian(ds.n_users, 8, 1.0, &mut rng);
    let items2 = Matrix::gaussian(ds.n_items, 8, 1.0, &mut rng);
    let next = ServeState::with_seen_from(
        ModelArtifact::from_embeddings("MF", &users2, &items2, EvalScore::Dot),
        &masked,
    );
    assert_eq!(next.seen(0), &seen0[..]);

    // Shape change: mask is dropped, not misapplied.
    let other = ServeState::with_seen_from(
        ModelArtifact::from_embeddings(
            "MF",
            &Matrix::gaussian(4, 8, 1.0, &mut rng),
            &Matrix::gaussian(9, 8, 1.0, &mut rng),
            EvalScore::Dot,
        ),
        &masked,
    );
    assert!(other.seen(0).is_empty());
}
