//! Concurrency smoke: one shared, immutable [`ServeState`] hammered from
//! four threads (each with its own [`ServeScratch`]) must produce
//! bit-identical results to a serial pass — the whole point of the
//! `&self` + caller-scratch API split.

use std::sync::Arc;

use bsl_linalg::Matrix;
use bsl_models::{EvalScore, ModelArtifact};
use bsl_serve::{
    BatchPolicy, RecommendRequest, ServeEngine, ServeOptions, ServeScratch, ServeState,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn art(n_users: usize, n_items: usize, d: usize, seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let users = Matrix::gaussian(n_users, d, 1.0, &mut rng);
    let items = Matrix::gaussian(n_items, d, 1.0, &mut rng);
    ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot)
}

fn opts_for(u: u32) -> ServeOptions {
    match u % 3 {
        0 => ServeOptions::exact(),
        1 => ServeOptions::default(),
        _ => ServeOptions::with_nprobe(3),
    }
}

#[test]
fn four_threads_match_serial_bit_for_bit() {
    let mut artifact = art(64, 500, 16, 42);
    artifact.build_ivf(10); // mixed exact + IVF requests
    let state = Arc::new(ServeState::new(artifact));

    // Serial reference pass.
    let mut scratch = ServeScratch::new();
    let reqs: Vec<RecommendRequest> =
        (0..64u32).map(|u| RecommendRequest { user: u, k: 10, opts: opts_for(u) }).collect();
    let mut expected = Vec::new();
    for req in &reqs {
        let mut out = Vec::new();
        state.recommend_into(req, &mut scratch, &mut out);
        expected.push(out);
    }

    // Four threads, each sweeping every user several times with its own
    // scratch, all against the same `&ServeState`.
    std::thread::scope(|s| {
        for t in 0..4 {
            let state = Arc::clone(&state);
            let reqs = &reqs;
            let expected = &expected;
            s.spawn(move || {
                let mut scratch = ServeScratch::new();
                for round in 0..5 {
                    // Each thread walks the users in a different order so
                    // the threads are never in lockstep.
                    for i in 0..reqs.len() {
                        let j = (i * 7 + t * 13 + round) % reqs.len();
                        let mut out = Vec::new();
                        state.recommend_into(&reqs[j], &mut scratch, &mut out);
                        assert_eq!(
                            out, expected[j],
                            "thread {t} round {round} user {} diverged",
                            reqs[j].user
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn concurrent_score_items_matches_serial() {
    let state = Arc::new(ServeState::new(art(20, 300, 8, 7)));
    let items: Vec<u32> = (0..300u32).step_by(3).collect();
    let mut expected = vec![0.0f32; items.len()];
    state.score_items_into(4, &items, &mut expected).unwrap();

    std::thread::scope(|s| {
        for _ in 0..4 {
            let state = Arc::clone(&state);
            let items = &items;
            let expected = &expected;
            s.spawn(move || {
                let mut out = vec![0.0f32; items.len()];
                for _ in 0..50 {
                    state.score_items_into(4, items, &mut out).unwrap();
                    assert_eq!(out, *expected);
                }
            });
        }
    });
}

#[test]
fn engine_under_concurrent_load_matches_serial() {
    let state_a = ServeState::new(art(32, 400, 8, 5));
    let reference = ServeState::new(art(32, 400, 8, 5)); // identical twin
    let mut scratch = ServeScratch::new();
    let mut expected = Vec::new();
    for u in 0..32u32 {
        let mut out = Vec::new();
        reference.recommend_into(&RecommendRequest::new(u, 8), &mut scratch, &mut out);
        expected.push(out);
    }

    let engine = ServeEngine::single_tenant(state_a, BatchPolicy::default());
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let engine = Arc::clone(&engine);
            let expected = &expected;
            s.spawn(move || {
                for i in 0..64u32 {
                    let u = (t * 17 + i) % 32;
                    let resp = engine
                        .recommend(ServeEngine::DEFAULT_TENANT, RecommendRequest::new(u, 8))
                        .expect("request served");
                    assert_eq!(resp.recs, expected[u as usize], "user {u}");
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.requests, 4 * 64);
    assert_eq!(stats.errors, 0);
    engine.shutdown();
}
