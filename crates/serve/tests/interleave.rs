//! Interleaving stress harness for the hot-swap reclamation protocol.
//!
//! Hammers [`SwapSlot`] with concurrent readers and a swapper across many
//! seeds. In a normal build this is a plain concurrency smoke test; under
//! `RUSTFLAGS="--cfg audit_stress"` (see `scripts/audit.sh`) the slot's
//! internal `stress::pause` hooks inject seeded pseudo-random delays into
//! the three windows the SAFETY argument depends on (announce→ptr-load,
//! ptr-load→refcount-bump, exchange→drain-check), so rare schedules —
//! including the ones a wrong memory ordering would corrupt — are hit
//! deterministically per `BSL_STRESS_SEED`. Run it under TSan/ASan for
//! the strongest signal (CI's `sanitizers` job does).
//!
//! What each round asserts:
//! * **content consistency** — every loaded value is internally uniform
//!   (`vec![gen; N]` all-equal); a use-after-free or torn publication
//!   shows up as mixed elements or a sanitizer report.
//! * **monotonicity** — generations observed by a reader never regress,
//!   and the swapper always gets back an older generation.
//! * **reclamation** — after the round, every swapped-out generation has
//!   actually dropped (Weak probes), and the final value is alive.

use bsl_serve::SwapSlot;
use std::sync::{Arc, Weak};

const READERS: usize = 3;
const LOADS_PER_READER: usize = 400;
const SWAPS: u64 = 150;
const PAYLOAD: usize = 32;

/// One seeded round of readers-vs-swapper.
fn stress_round(seed: u64) {
    // The slot's pause hooks (compiled under `audit_stress`) derive their
    // per-thread RNG from this variable at thread start.
    std::env::set_var("BSL_STRESS_SEED", seed.to_string());

    let slot = Arc::new(SwapSlot::new(Arc::new(vec![0u64; PAYLOAD])));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                let mut last = 0u64;
                for i in 0..LOADS_PER_READER {
                    let v = slot.load();
                    assert_eq!(v.len(), PAYLOAD, "seed {seed}: payload length changed");
                    let gen = v[0];
                    assert!(
                        v.iter().all(|&x| x == gen),
                        "seed {seed}: torn value — mixed generations in one payload"
                    );
                    assert!(gen >= last, "seed {seed}: generation regressed ({gen} < {last})");
                    last = gen;
                    if i % 16 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let mut probes: Vec<(u64, Weak<Vec<u64>>)> = Vec::with_capacity(SWAPS as usize);
    for gen in 1..=SWAPS {
        let old = slot.swap(Arc::new(vec![gen; PAYLOAD]));
        assert!(old[0] < gen, "seed {seed}: swap returned a non-older generation");
        probes.push((old[0], Arc::downgrade(&old)));
    }
    for r in readers {
        r.join().expect("reader panicked");
    }

    // Reclamation: with readers joined and the swapper's handles dropped,
    // only the currently published generation may still be alive.
    assert_eq!(slot.epoch(), SWAPS, "seed {seed}: epoch mismatch");
    assert_eq!(slot.load()[0], SWAPS, "seed {seed}: final generation wrong");
    for (gen, probe) in &probes {
        assert!(probe.upgrade().is_none(), "seed {seed}: swapped-out generation {gen} leaked");
    }
    let current = Arc::downgrade(&slot.load());
    drop(slot);
    assert!(
        current.upgrade().is_none(),
        "seed {seed}: dropping the slot leaked the current generation"
    );
}

#[test]
fn swap_slot_survives_many_seeded_interleavings() {
    let base: u64 =
        std::env::var("BSL_STRESS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5EED);
    for round in 0..24 {
        stress_round(base.wrapping_add(round * 0x9E37_79B9));
    }
}
