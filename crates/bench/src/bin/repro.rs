//! The reproduction driver:
//! `repro <experiment> [--scale quick|full] [--threads N] [--sync exact|hogwild]`
//! `repro --save <path> | --serve <path>`.
//!
//! One subcommand per table/figure of the paper's evaluation section (see
//! DESIGN.md §6 for the experiment index). `all` runs everything in order.
//! `--threads` feeds [`TrainConfig::threads`](bsl_core::TrainConfig) for
//! every experiment (`0` = one worker per core; default `1` keeps outputs
//! bit-reproducible across machines). `--sync hogwild` switches the
//! multi-threaded trainer to lock-free in-place updates
//! ([`SyncMode::Hogwild`](bsl_core::SyncMode)) — faster on contended
//! machines, not reproducible; only meaningful with `--threads != 1`.
//!
//! `--save <path>` trains MF + BSL and writes the exported
//! `ModelArtifact` to disk; `--serve <path>` loads it back and prints
//! top-10 recommendations for a few users — the on-disk round trip of the
//! train→serve boundary. They may be combined in one invocation (save
//! runs first) and need no experiment name. `--ann` makes `--save` export
//! the format-v2 production configuration (int8-quantized item table +
//! IVF index); `--nprobe N` makes `--serve` probe `N` inverted lists per
//! query instead of the index's default (`N ≥ nlist` serves exactly).
//!
//! The online counterparts: `--serve-tcp <path>` serves the artifact over
//! the framed TCP protocol (micro-batched `ServeEngine` behind a
//! `TcpFrontend`) until stopped; `--swap <path> --addr …` hot-deploys a
//! new artifact into the running server with zero downtime; `--stop
//! --addr …` shuts it down remotely.

use bsl_bench::experiments::*;
use bsl_bench::Scale;

const EXPERIMENTS: &[&str] = &[
    "table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig12",
    "fig13", "table2", "table3", "table4", "table5",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all> [--scale quick|full] [--threads N] [--sync exact|hogwild]"
    );
    eprintln!("       repro --save <artifact-path> [--ann]");
    eprintln!("           train MF+BSL, export + save the artifact; --ann additionally");
    eprintln!("           quantizes the item table to int8 and attaches an IVF index (format v2)");
    eprintln!("       repro --serve <artifact-path> [--nprobe N]");
    eprintln!("           load an artifact, print top-10 per user; --nprobe N probes N");
    eprintln!("           inverted lists per query (needs an --ann artifact; N >= nlist = exact)");
    eprintln!("       repro --serve-tcp <artifact-path> [--addr HOST:PORT]");
    eprintln!("           serve the artifact over the framed TCP protocol until stopped");
    eprintln!("       repro --swap <artifact-path> --addr HOST:PORT");
    eprintln!("           hot-deploy a new artifact to a running --serve-tcp server");
    eprintln!("       repro --stop --addr HOST:PORT");
    eprintln!("           shut a running --serve-tcp server down remotely");
    eprintln!("       (--addr defaults to {})", serve_tcp::DEFAULT_ADDR);
    eprintln!("experiments: {}", EXPERIMENTS.join(", "));
    eprintln!(
        "(fig2 is the paper's conceptual diagram — nothing to run; fig11 is covered by fig10)"
    );
    std::process::exit(2);
}

fn dispatch(name: &str, scale: Scale) {
    let start = std::time::Instant::now();
    match name {
        "table1" => table1::run(scale),
        "fig1" => fig1::run_exp(scale),
        "fig3" => fig3::run_exp(scale),
        "fig4" => fig4::run_exp(scale),
        "fig5" => fig5::run_exp(scale),
        "fig6" => fig6::run_exp(scale),
        "fig7" => fig7::run_exp(scale),
        "fig8" => fig8::run_exp(scale),
        "fig9" => fig9::run_exp(scale),
        "fig10" | "fig11" => fig10::run_exp(scale),
        "fig12" => fig12::run_exp(scale),
        "fig13" => fig13::run_exp(scale),
        "table2" => table2::run_exp(scale),
        "table3" => table3::run_exp(scale),
        "table4" => table4::run_exp(scale),
        "table5" => table5::run_exp(scale),
        _ => usage(),
    }
    eprintln!("[{name} done in {:.1}s]", start.elapsed().as_secs_f64());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale::Quick;
    let mut names: Vec<String> = Vec::new();
    let mut save_path: Option<String> = None;
    let mut serve_path: Option<String> = None;
    let mut serve_tcp_path: Option<String> = None;
    let mut swap_path: Option<String> = None;
    let mut stop = false;
    let mut addr = serve_tcp::DEFAULT_ADDR.to_string();
    let mut ann = false;
    let mut nprobe: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--save" => save_path = Some(it.next().unwrap_or_else(|| usage())),
            "--serve" => serve_path = Some(it.next().unwrap_or_else(|| usage())),
            "--serve-tcp" => serve_tcp_path = Some(it.next().unwrap_or_else(|| usage())),
            "--swap" => swap_path = Some(it.next().unwrap_or_else(|| usage())),
            "--stop" => stop = true,
            "--addr" => addr = it.next().unwrap_or_else(|| usage()),
            "--ann" => ann = true,
            "--nprobe" => {
                let v = it.next().unwrap_or_else(|| usage());
                let n: usize = v.parse().unwrap_or_else(|_| usage());
                nprobe = Some(n.max(1));
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Scale::parse(&v).unwrap_or_else(|| usage());
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| usage());
                let n: usize = v.parse().unwrap_or_else(|_| usage());
                common::set_default_threads(n);
            }
            "--sync" => {
                let v = it.next().unwrap_or_else(|| usage());
                let sync = match v.to_ascii_lowercase().as_str() {
                    "exact" => bsl_core::SyncMode::Exact,
                    "hogwild" => bsl_core::SyncMode::Hogwild,
                    _ => usage(),
                };
                common::set_default_sync(sync);
            }
            other => names.push(other.to_string()),
        }
    }
    if ann && save_path.is_none() {
        eprintln!("--ann only applies to --save");
        usage();
    }
    if nprobe.is_some() && serve_path.is_none() {
        eprintln!("--nprobe only applies to --serve");
        usage();
    }
    if let Some(path) = &save_path {
        serve_demo::save(path, scale, ann);
    }
    if let Some(path) = &serve_path {
        serve_demo::serve(path, nprobe);
    }
    if let Some(path) = &swap_path {
        serve_tcp::swap(path, &addr);
    }
    if stop {
        serve_tcp::stop(&addr);
    }
    // --serve-tcp blocks until stopped, so it runs after the one-shot ops.
    if let Some(path) = &serve_tcp_path {
        serve_tcp::serve_tcp(path, &addr);
    }
    if names.is_empty() {
        if save_path.is_some()
            || serve_path.is_some()
            || serve_tcp_path.is_some()
            || swap_path.is_some()
            || stop
        {
            return;
        }
        usage();
    }
    for name in names {
        if name == "all" {
            for &e in EXPERIMENTS {
                dispatch(e, scale);
            }
        } else {
            dispatch(&name, scale);
        }
    }
}
