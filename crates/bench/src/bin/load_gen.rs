//! Serving load generator: drives a [`ServeEngine`] (in process) or a
//! TCP front end (over real sockets) with concurrent clients and reports
//! throughput + latency percentiles on grep-stable `serve_*` lines.
//!
//! ```text
//! load_gen [--mode inproc|tcp] [--requests N] [--concurrency C]
//!          [--batch B] [--window-us U] [--users N] [--items N] [--dim D]
//!          [--addr HOST:PORT | --with-server] [--shutdown]
//!          [--p99-budget-us N] [--min-speedup X]
//! ```
//!
//! `--mode inproc` (default) runs the **same** request stream twice —
//! once through an unbatched engine (`max_batch = 1`) and once through
//! the micro-batching scheduler — and prints the speedup, which is the
//! PR's acceptance number (batching amortizes queue wakeups and streams
//! each item-table tile past every query in the batch). `--min-speedup`
//! turns the comparison into an exit-code gate for CI.
//!
//! `--mode tcp` fires a mixed stream (recommend / score_items / stats)
//! at `--addr`, or at a front end it starts itself (`--with-server`);
//! `--shutdown` sends a shutdown frame afterwards and `--p99-budget-us`
//! gates the exit code on tail latency — together they make the CI smoke:
//! start server, 1k mixed requests, check p99, clean shutdown.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bsl_linalg::Matrix;
use bsl_models::{EvalScore, ModelArtifact};
use bsl_serve::{BatchPolicy, RecommendRequest, ServeClient, ServeEngine, ServeState, TcpFrontend};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Config {
    mode: Mode,
    requests: usize,
    concurrency: usize,
    batch: usize,
    window_us: u64,
    n_users: usize,
    n_items: usize,
    dim: usize,
    addr: Option<String>,
    with_server: bool,
    shutdown: bool,
    p99_budget_us: Option<u64>,
    min_speedup: Option<f64>,
    k: usize,
}

#[derive(PartialEq)]
enum Mode {
    Inproc,
    Tcp,
}

fn usage() -> ! {
    eprintln!("usage: load_gen [--mode inproc|tcp] [--requests N] [--concurrency C] [--batch B]");
    eprintln!("                [--window-us U] [--users N] [--items N] [--dim D] [--k K]");
    eprintln!("                [--addr HOST:PORT | --with-server] [--shutdown]");
    eprintln!("                [--p99-budget-us N] [--min-speedup X]");
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        mode: Mode::Inproc,
        // Defaults are the acceptance workload: a catalogue big enough
        // (32k × d64 ≈ 8 MiB f32) that per-request scoring is
        // memory-bandwidth-bound, which is exactly what the batched tile
        // pass amortizes. Concurrency 16 keeps the micro-batcher fed.
        requests: 1024,
        concurrency: 16,
        batch: 32,
        window_us: 200,
        n_users: 2048,
        n_items: 32768,
        dim: 64,
        addr: None,
        with_server: false,
        shutdown: false,
        p99_budget_us: None,
        min_speedup: None,
        k: 10,
    };
    let mut it = std::env::args().skip(1);
    fn num<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>) -> T {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => {
                cfg.mode = match it.next().as_deref() {
                    Some("inproc") => Mode::Inproc,
                    Some("tcp") => Mode::Tcp,
                    _ => usage(),
                }
            }
            "--requests" => cfg.requests = num(&mut it),
            "--concurrency" => cfg.concurrency = std::cmp::max(1, num(&mut it)),
            "--batch" => cfg.batch = std::cmp::max(1, num(&mut it)),
            "--window-us" => cfg.window_us = num(&mut it),
            "--users" => cfg.n_users = num(&mut it),
            "--items" => cfg.n_items = num(&mut it),
            "--dim" => cfg.dim = num(&mut it),
            "--k" => cfg.k = std::cmp::max(1, num(&mut it)),
            "--addr" => cfg.addr = Some(it.next().unwrap_or_else(|| usage())),
            "--with-server" => cfg.with_server = true,
            "--shutdown" => cfg.shutdown = true,
            "--p99-budget-us" => cfg.p99_budget_us = Some(num(&mut it)),
            "--min-speedup" => cfg.min_speedup = Some(num(&mut it)),
            _ => usage(),
        }
    }
    if cfg.addr.is_some() && cfg.with_server {
        eprintln!("--addr and --with-server are mutually exclusive");
        usage();
    }
    cfg
}

fn make_state(cfg: &Config) -> ServeState {
    let mut rng = StdRng::seed_from_u64(99);
    let users = Matrix::gaussian(cfg.n_users, cfg.dim, 1.0, &mut rng);
    let items = Matrix::gaussian(cfg.n_items, cfg.dim, 1.0, &mut rng);
    ServeState::new(ModelArtifact::from_embeddings("MF", &users, &items, EvalScore::Dot))
}

struct RunStats {
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    errors: usize,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn summarize(wall: Duration, mut lat_us: Vec<u64>, errors: usize) -> RunStats {
    lat_us.sort_unstable();
    RunStats {
        qps: lat_us.len() as f64 / wall.as_secs_f64(),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        errors,
    }
}

/// Drives `engine` with `cfg.concurrency` threads until `requests`
/// requests have completed; returns wall-clock + per-request latencies.
fn drive_inproc(engine: &Arc<ServeEngine>, requests: usize, cfg: &Config) -> RunStats {
    let per_thread = requests.div_ceil(cfg.concurrency);
    let n_users = cfg.n_users as u32;
    let start = Instant::now();
    let mut lat_us: Vec<u64> = Vec::with_capacity(per_thread * cfg.concurrency);
    let mut errors = 0usize;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.concurrency)
            .map(|t| {
                let engine = Arc::clone(engine);
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(per_thread);
                    let mut errs = 0usize;
                    for i in 0..per_thread {
                        let u = ((t * 7919 + i * 31) as u32) % n_users;
                        let t0 = Instant::now();
                        let ok = engine
                            .recommend(ServeEngine::DEFAULT_TENANT, RecommendRequest::new(u, cfg.k))
                            .is_ok();
                        lat.push(t0.elapsed().as_micros() as u64);
                        errs += usize::from(!ok);
                    }
                    (lat, errs)
                })
            })
            .collect();
        for h in handles {
            let (lat, errs) = h.join().expect("client thread");
            lat_us.extend(lat);
            errors += errs;
        }
    });
    summarize(start.elapsed(), lat_us, errors)
}

fn run_inproc(cfg: &Config) -> i32 {
    eprintln!(
        "inproc: {} requests, concurrency {}, catalogue {}x{} d={}, k={}",
        cfg.requests, cfg.concurrency, cfg.n_users, cfg.n_items, cfg.dim, cfg.k
    );

    let unbatched_engine = ServeEngine::single_tenant(make_state(cfg), BatchPolicy::unbatched());
    // Warm-up pass so thread spawn + first-touch costs stay out of both
    // measured runs equally.
    let warm = cfg.requests / 8 + 1;
    drive_inproc(&unbatched_engine, warm, cfg);
    let unbatched = drive_inproc(&unbatched_engine, cfg.requests, cfg);
    unbatched_engine.shutdown();

    let policy = BatchPolicy {
        max_batch: cfg.batch,
        window: Duration::from_micros(cfg.window_us),
        ..BatchPolicy::default()
    };
    let batched_engine = ServeEngine::single_tenant(make_state(cfg), policy);
    drive_inproc(&batched_engine, warm, cfg);
    let batched = drive_inproc(&batched_engine, cfg.requests, cfg);
    let stats = batched_engine.stats();
    batched_engine.shutdown();

    let speedup = batched.qps / unbatched.qps;
    eprintln!(
        "batched run: {} batches for {} requests (avg batch {:.1}, max {})",
        stats.batches, stats.requests, stats.avg_batch, stats.max_batch
    );
    println!(
        "serve_qps unbatched={:.0} batched={:.0} speedup={speedup:.2} concurrency={}",
        unbatched.qps, batched.qps, cfg.concurrency
    );
    println!("serve_p50_us unbatched={} batched={}", unbatched.p50_us, batched.p50_us);
    println!("serve_p99_us unbatched={} batched={}", unbatched.p99_us, batched.p99_us);

    if unbatched.errors + batched.errors > 0 {
        eprintln!("FAIL: {} request errors", unbatched.errors + batched.errors);
        return 1;
    }
    if let Some(min) = cfg.min_speedup {
        if speedup < min {
            eprintln!("FAIL: speedup {speedup:.2} below required {min:.2}");
            return 1;
        }
    }
    0
}

fn run_tcp(cfg: &Config) -> i32 {
    // Either target a running server or start one ourselves.
    let mut server = None;
    let addr = match (&cfg.addr, cfg.with_server) {
        (Some(a), _) => a.clone(),
        (None, true) => {
            let policy = BatchPolicy {
                max_batch: cfg.batch,
                window: Duration::from_micros(cfg.window_us),
                ..BatchPolicy::default()
            };
            let engine = ServeEngine::single_tenant(make_state(cfg), policy);
            let fe =
                TcpFrontend::start(Arc::clone(&engine), "127.0.0.1:0").expect("binding loopback");
            let addr = fe.local_addr().to_string();
            server = Some((fe, engine));
            addr
        }
        (None, false) => {
            eprintln!("--mode tcp needs --addr or --with-server");
            usage();
        }
    };
    eprintln!(
        "tcp: {} mixed requests, concurrency {}, target {addr}",
        cfg.requests, cfg.concurrency
    );

    let per_thread = cfg.requests.div_ceil(cfg.concurrency);
    let n_users = cfg.n_users as u32;
    let n_items = cfg.n_items as u32;
    let start = Instant::now();
    let mut lat_us: Vec<u64> = Vec::new();
    let mut errors = 0usize;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.concurrency)
            .map(|t| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = ServeClient::connect(&*addr).expect("connect");
                    let mut lat = Vec::with_capacity(per_thread);
                    let mut errs = 0usize;
                    for i in 0..per_thread {
                        let u = ((t * 7919 + i * 31) as u32) % n_users;
                        let t0 = Instant::now();
                        // Mixed stream: mostly recommend, some score_items,
                        // an occasional stats poll.
                        let ok = match i % 16 {
                            15 => client.stats().is_ok(),
                            7 => {
                                let items = [u % n_items, (u * 3 + 1) % n_items];
                                client.score_items("default", u, &items).is_ok()
                            }
                            _ => {
                                client.recommend("default", RecommendRequest::new(u, cfg.k)).is_ok()
                            }
                        };
                        lat.push(t0.elapsed().as_micros() as u64);
                        errs += usize::from(!ok);
                    }
                    (lat, errs)
                })
            })
            .collect();
        for h in handles {
            let (lat, errs) = h.join().expect("client thread");
            lat_us.extend(lat);
            errors += errs;
        }
    });
    let stats = summarize(start.elapsed(), lat_us, errors);

    println!(
        "serve_tcp_qps qps={:.0} concurrency={} requests={}",
        stats.qps, cfg.concurrency, cfg.requests
    );
    println!("serve_tcp_p50_us {}", stats.p50_us);
    println!("serve_tcp_p99_us {}", stats.p99_us);

    let mut code = 0;
    if stats.errors > 0 {
        eprintln!("FAIL: {} request errors", stats.errors);
        code = 1;
    }
    if let Some(budget) = cfg.p99_budget_us {
        if stats.p99_us > budget {
            eprintln!("FAIL: p99 {}us over budget {budget}us", stats.p99_us);
            code = 1;
        }
    }
    if cfg.shutdown {
        match ServeClient::connect(&*addr).and_then(|mut c| {
            c.shutdown_server().map_err(|e| std::io::Error::other(e.to_string()))?;
            Ok(())
        }) {
            Ok(()) => eprintln!("server acknowledged shutdown"),
            Err(e) => {
                eprintln!("FAIL: shutdown request failed: {e}");
                code = 1;
            }
        }
    }
    if let Some((mut fe, engine)) = server {
        fe.stop();
        engine.shutdown();
        eprintln!("server stopped cleanly");
    }
    code
}

fn main() {
    let cfg = parse_args();
    let code = match cfg.mode {
        Mode::Inproc => run_inproc(&cfg),
        Mode::Tcp => run_tcp(&cfg),
    };
    std::process::exit(code);
}
