//! Figure 12 — NDCG@20 vs embedding dimension. SL/BSL on basic backbones
//! should keep pace with a SOTA contrastive model across dimensions, and
//! already perform well at small dimensions.

use super::common::{base_cfg, header, lgn, row, run, suite, Scale};
use bsl_core::TrainConfig;
use bsl_losses::LossConfig;
use bsl_models::BackboneConfig;

fn dims(scale: Scale) -> Vec<usize> {
    match scale {
        // The paper sweeps 128/256/512; scaled to the synthetic sizes.
        Scale::Quick => vec![8, 16, 32],
        Scale::Full => vec![32, 64, 128],
    }
}

/// Prints the Fig-12 dimension sweep.
pub fn run_exp(scale: Scale) {
    println!("\n## Figure 12 — NDCG@20 vs embedding dimension\n");
    for ds in suite(scale) {
        println!("\n### {}\n", ds.name);
        let dlist = dims(scale);
        let mut head = vec!["Model".to_string()];
        head.extend(dlist.iter().map(|d| format!("d={d}")));
        header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        let models: Vec<(String, BackboneConfig, LossConfig)> = vec![
            (
                "SimGCL".into(),
                BackboneConfig::SimGcl { layers: 2, eps: 0.1, ssl_reg: 0.1, ssl_tau: 0.2 },
                LossConfig::Bpr,
            ),
            ("MF_SL".into(), BackboneConfig::Mf, LossConfig::Sl { tau: 0.15 }),
            ("MF_BSL".into(), BackboneConfig::Mf, LossConfig::Bsl { tau1: 0.3, tau2: 0.15 }),
            ("LGN_SL".into(), lgn(), LossConfig::Sl { tau: 0.15 }),
            ("LGN_BSL".into(), lgn(), LossConfig::Bsl { tau1: 0.3, tau2: 0.15 }),
        ];
        for (label, backbone, loss) in models {
            let mut cells = vec![label];
            for &d in &dlist {
                let out = run(&ds, TrainConfig { backbone, loss, dim: d, ..base_cfg(scale) });
                cells.push(format!("{:.4}", out.best.ndcg(20)));
            }
            row(&cells);
        }
    }
    println!("\nShape check: SL/BSL rows competitive at every dimension, including the smallest.");
}
