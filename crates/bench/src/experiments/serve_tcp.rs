//! `repro --serve-tcp / --swap / --stop`: the online serving engine on a
//! real socket — the operational counterpart of `--save`/`--serve`.
//!
//! `--serve-tcp <artifact>` loads the artifact, wraps it in a
//! [`ServeEngine`] behind a [`TcpFrontend`], and blocks until a shutdown
//! frame arrives. `--swap <artifact> --addr …` tells a *running* server to
//! hot-deploy a new artifact generation (in-flight requests finish on the
//! old one); `--stop --addr …` shuts the server down remotely. Together
//! they are the zero-downtime deploy walkthrough from README.md.

use bsl_data::synth::{generate, SynthConfig};
use bsl_serve::{BatchPolicy, ModelArtifact, ServeClient, ServeEngine, ServeState, TcpFrontend};
use std::time::Duration;

/// The default address the walkthrough commands agree on.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Loads `path` and serves it over TCP at `addr` until a shutdown frame
/// arrives (send one with `repro --stop`). The demo dataset's seen-mask
/// is attached when the artifact's shape matches it (always true for
/// `repro --save` artifacts), so served recommendations filter training
/// interactions exactly like `--serve` does.
pub fn serve_tcp(path: &str, addr: &str) {
    let art = ModelArtifact::load(path).unwrap_or_else(|e| panic!("loading {path}: {e}"));
    println!(
        "# TCP serving — {path}: backbone {} ({:?}), {} users × {} items, dim {}, {:?} items",
        art.backbone(),
        art.similarity(),
        art.n_users(),
        art.n_items(),
        art.dim(),
        art.precision()
    );
    let ds = generate(&SynthConfig::yelp_like(7));
    let state = if art.n_users() == ds.n_users && art.n_items() == ds.n_items {
        println!("seen-mask: demo dataset training interactions");
        ServeState::with_seen(art, &ds)
    } else {
        println!("seen-mask: none (artifact shape does not match the demo dataset)");
        ServeState::new(art)
    };
    let engine = ServeEngine::single_tenant(state, BatchPolicy::default());
    let frontend = TcpFrontend::start(std::sync::Arc::clone(&engine), addr)
        .unwrap_or_else(|e| panic!("binding {addr}: {e}"));
    println!(
        "serving tenant \"default\" on {} — deploy with `repro --swap <artifact> --addr {}`, \
         stop with `repro --stop --addr {}`",
        frontend.local_addr(),
        frontend.local_addr(),
        frontend.local_addr()
    );
    frontend.wait_for_shutdown(Duration::from_millis(100));
    println!("shutdown frame received; draining");
    drop(frontend); // joins the accept loop and every connection
    println!("{}", engine.stats());
    engine.shutdown();
}

fn connect(addr: &str) -> ServeClient {
    ServeClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("connecting to {addr}: {e} (is `repro --serve-tcp` running?)");
        std::process::exit(1);
    })
}

/// Hot-swaps the running server at `addr` to the artifact at `path`.
pub fn swap(path: &str, addr: &str) {
    let mut client = connect(addr);
    match client.swap_artifact("default", path) {
        Ok(version) => println!("swapped \"default\" to {path}: now serving version {version}"),
        Err(e) => {
            eprintln!("swap failed: {e}");
            std::process::exit(1);
        }
    }
    if let Ok(stats) = client.stats() {
        print!("{stats}");
    }
}

/// Shuts down the running server at `addr`.
pub fn stop(addr: &str) {
    match connect(addr).shutdown_server() {
        Ok(()) => println!("server at {addr} acknowledged shutdown"),
        Err(e) => {
            eprintln!("shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}
