//! Figure 9 — NDCG@20 vs the number of sampled negatives for the five
//! losses on MF. More negatives ⇒ more accidental false negatives; SL/BSL
//! should remain stable while the pointwise losses wobble or decline.

use super::common::{
    base_cfg, classic_losses, dataset, header, row, run, tune_bsl, tune_sl, Scale,
};
use bsl_core::TrainConfig;

fn counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![8, 32, 128],
        Scale::Full => vec![32, 64, 128, 256, 512, 1024],
    }
}

/// Prints the Fig-9 sweep on MovieLens-like, Gowalla-like and Yelp-like.
pub fn run_exp(scale: Scale) {
    println!("\n## Figure 9 — NDCG@20 vs number of negatives (MF)\n");
    for name in ["ml1m", "gowalla", "yelp"] {
        let ds = dataset(scale, name);
        println!("\n### {}\n", ds.name);
        let clist = counts(scale);
        let mut head = vec!["Loss".to_string()];
        head.extend(clist.iter().map(|c| format!("m={c}")));
        header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for (label, loss) in classic_losses() {
            let mut cells = vec![label.to_string()];
            for &m in &clist {
                let out = run(&ds, TrainConfig { loss, negatives: m, ..base_cfg(scale) });
                cells.push(format!("{:.4}", out.best.ndcg(20)));
            }
            row(&cells);
        }
        for bsl in [false, true] {
            let mut cells = vec![if bsl { "BSL".to_string() } else { "SL".to_string() }];
            for &m in &clist {
                let base = TrainConfig { negatives: m, ..base_cfg(scale) };
                let ndcg = if bsl {
                    tune_bsl(&ds, base, scale).1.best.ndcg(20)
                } else {
                    tune_sl(&ds, base, scale).1.best.ndcg(20)
                };
                cells.push(format!("{ndcg:.4}"));
            }
            row(&cells);
        }
    }
    println!("\nShape check: SL/BSL stable (or improving) in m; BSL ≥ SL.");
}
