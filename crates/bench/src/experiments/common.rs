//! Shared plumbing for the experiment harnesses.

use bsl_core::prelude::*;
use bsl_core::SamplingConfig;
use bsl_data::synth::SynthConfig;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Worker-thread default applied by [`base_cfg`]; `1` keeps experiment
/// outputs bit-reproducible across machines, the `repro` binary's
/// `--threads` flag overrides it (0 = one per core).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Hogwild default applied by [`base_cfg`] (`false` = exact sharded
/// updates); the `repro` binary's `--sync` flag overrides it.
static DEFAULT_HOGWILD: AtomicBool = AtomicBool::new(false);

/// Sets the thread count [`base_cfg`] hands to every experiment config.
/// Note that `threads != 1` changes sampling streams, so figures/tables
/// are then reproducible per machine-independent `(seed, threads)` pair
/// but no longer bit-comparable to the serial baseline.
// ORDERING: Relaxed — process-wide CLI default written once by `repro`'s
// flag parsing before any experiment thread exists; no data is published
// through it.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The thread count experiments currently run with (see
/// [`set_default_threads`]).
// ORDERING: Relaxed — see `set_default_threads`.
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// Sets the gradient-sync mode [`base_cfg`] hands to every experiment
/// config. [`SyncMode::Hogwild`] trades reproducibility for lock-free
/// in-place updates (metrics within run-to-run noise of exact; see the
/// README's execution-modes table) and only engages with `threads > 1`
/// on backbones that support it.
// ORDERING: Relaxed — single-flag CLI default, written before experiment
// threads spawn (see `set_default_threads`).
pub fn set_default_sync(sync: SyncMode) {
    DEFAULT_HOGWILD.store(sync == SyncMode::Hogwild, Ordering::Relaxed);
}

/// The sync mode experiments currently run with (see [`set_default_sync`]).
pub fn default_sync() -> SyncMode {
    // ORDERING: Relaxed — see `set_default_threads`.
    if DEFAULT_HOGWILD.load(Ordering::Relaxed) {
        SyncMode::Hogwild
    } else {
        SyncMode::Exact
    }
}

/// Experiment scale.
///
/// `Quick` shrinks the synthetic datasets and the training budget so the
/// whole suite finishes in minutes on a laptop; `Full` uses the DESIGN.md
/// dataset sizes and a longer budget. Shape conclusions are the same; only
/// variance differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-long runs for CI and iteration.
    Quick,
    /// The DESIGN.md-sized runs.
    Full,
}

impl Scale {
    /// Parses `"quick"`/`"full"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    fn dataset_frac(self) -> f64 {
        match self {
            Scale::Quick => 0.42,
            Scale::Full => 1.0,
        }
    }

    /// Training epochs at this scale.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Quick => 18,
            Scale::Full => 50,
        }
    }

    /// Embedding dimension at this scale (paper default 64).
    pub fn dim(self) -> usize {
        match self {
            Scale::Quick => 16,
            Scale::Full => 64,
        }
    }

    /// Negatives per positive at this scale (paper tunes 200–1500).
    pub fn negatives(self) -> usize {
        match self {
            Scale::Quick => 32,
            Scale::Full => 128,
        }
    }
}

/// Shrinks a generator config by `frac` in users/items/activity.
fn shrink(mut cfg: SynthConfig, frac: f64) -> SynthConfig {
    cfg.n_users = ((cfg.n_users as f64 * frac) as usize).max(40);
    cfg.n_items = ((cfg.n_items as f64 * frac) as usize).max(40);
    cfg.mean_activity = (cfg.mean_activity * frac.sqrt()).max(8.0);
    cfg
}

/// The four paper-shaped datasets, paper order (Amazon, Yelp2018, Gowalla,
/// MovieLens-1M), scaled.
pub fn suite(scale: Scale) -> Vec<Arc<Dataset>> {
    SynthConfig::paper_suite(7)
        .into_iter()
        .map(|c| Arc::new(generate(&shrink(c, scale.dataset_frac()))))
        .collect()
}

/// One named dataset from the suite (`"amazon"`, `"yelp"`, `"gowalla"`,
/// `"ml1m"`).
///
/// # Panics
/// Panics on an unknown name.
pub fn dataset(scale: Scale, name: &str) -> Arc<Dataset> {
    let cfg = match name {
        "amazon" => SynthConfig::amazon_like(7),
        "yelp" => SynthConfig::yelp_like(8),
        "gowalla" => SynthConfig::gowalla_like(9),
        "ml1m" => SynthConfig::ml1m_like(10),
        other => panic!("unknown dataset {other}"),
    };
    Arc::new(generate(&shrink(cfg, scale.dataset_frac())))
}

/// The Yelp-like dataset with its popularity skew boosted to real-log
/// levels (head items ×100 the median, as in Yelp2018) — used by the
/// fairness analyses (Figs 4a/5), where the mild skew of the default
/// generator mutes the popularity-bias channel the paper studies.
pub fn fairness_dataset(scale: Scale) -> Arc<Dataset> {
    let mut cfg = shrink(SynthConfig::yelp_like(8), scale.dataset_frac());
    cfg.mean_activity *= 0.7;
    cfg.zipf_exponent = 1.3;
    cfg.popularity_bias = 1.8;
    cfg.preference_temp = 0.5;
    Arc::new(generate(&cfg))
}

/// Base training config at a scale (MF backbone placeholder; callers
/// override `backbone`/`loss`).
pub fn base_cfg(scale: Scale) -> TrainConfig {
    TrainConfig {
        backbone: BackboneConfig::Mf,
        loss: LossConfig::Sl { tau: 0.15 },
        sampling: SamplingConfig::Uniform,
        dim: scale.dim(),
        epochs: scale.epochs(),
        batch_size: 512,
        negatives: scale.negatives(),
        lr: 1e-2,
        l2: 1e-6,
        eval_every: 3,
        patience: 4,
        seed: 0,
        threads: default_threads(),
        sync: default_sync(),
    }
}

/// Default GCN layer count.
pub const GCN_LAYERS: usize = 2;

/// LightGCN backbone config at the default depth.
pub fn lgn() -> BackboneConfig {
    BackboneConfig::LightGcn { layers: GCN_LAYERS }
}

/// The loss grid the comparison experiments sweep (paper Fig 1 / Table II).
pub fn classic_losses() -> Vec<(&'static str, LossConfig)> {
    vec![
        ("BPR", LossConfig::Bpr),
        ("BCE", LossConfig::Bce { neg_weight: 1.0 }),
        ("MSE", LossConfig::Mse { neg_weight: 1.0 }),
    ]
}

/// SL temperatures searched when tuning (paper: [0.05, 1.0] at 0.05 grid;
/// trimmed here).
pub fn tau_grid(scale: Scale) -> Vec<f32> {
    match scale {
        Scale::Quick => vec![0.2, 0.35, 0.5],
        Scale::Full => vec![0.1, 0.15, 0.22, 0.33, 0.5],
    }
}

/// Trains `cfg` on `ds` and returns the outcome.
pub fn run(ds: &Arc<Dataset>, cfg: TrainConfig) -> TrainOutcome {
    Trainer::new(cfg).fit(ds)
}

/// Grid-searches SL's τ and returns `(best_tau, best_outcome)`.
pub fn tune_sl(ds: &Arc<Dataset>, base: TrainConfig, scale: Scale) -> (f32, TrainOutcome) {
    let mut best: Option<(f32, TrainOutcome)> = None;
    for tau in tau_grid(scale) {
        let out = run(ds, TrainConfig { loss: LossConfig::Sl { tau }, ..base });
        if best.as_ref().map(|(_, b)| out.best.ndcg(20) > b.best.ndcg(20)).unwrap_or(true) {
            best = Some((tau, out));
        }
    }
    best.expect("non-empty tau grid")
}

/// Grid-searches BSL's (τ1, τ2) over `tau_grid × ratio ∈ {1, 1.5, 3}` and
/// returns the best outcome.
pub fn tune_bsl(ds: &Arc<Dataset>, base: TrainConfig, scale: Scale) -> ((f32, f32), TrainOutcome) {
    let mut best: Option<((f32, f32), TrainOutcome)> = None;
    for tau2 in tau_grid(scale) {
        for ratio in [1.0f32, 1.5, 3.0] {
            let tau1 = tau2 * ratio;
            let out = run(ds, TrainConfig { loss: LossConfig::Bsl { tau1, tau2 }, ..base });
            if best.as_ref().map(|(_, b)| out.best.ndcg(20) > b.best.ndcg(20)).unwrap_or(true) {
                best = Some(((tau1, tau2), out));
            }
        }
    }
    best.expect("non-empty grid")
}

/// `(new − old)/old` as a signed percentage string.
pub fn pct(new: f64, old: f64) -> String {
    if old.abs() < 1e-12 {
        return "n/a".into();
    }
    format!("{:+.2}%", 100.0 * (new - old) / old)
}

/// Prints a markdown-ish table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a header row plus separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_roundtrip() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("FULL"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn suite_has_four_datasets_in_paper_order() {
        let suite = suite(Scale::Quick);
        assert_eq!(suite.len(), 4);
        assert!(suite[0].name.contains("amazon"));
        assert!(suite[1].name.contains("yelp"));
        assert!(suite[2].name.contains("gowalla"));
        assert!(suite[3].name.contains("ml1m"));
    }

    #[test]
    fn quick_suite_is_smaller_than_full_configs() {
        let q = dataset(Scale::Quick, "yelp");
        assert!(q.n_users < 700);
        assert!(q.n_users >= 40);
    }

    #[test]
    fn thread_override_flows_into_base_cfg() {
        let before = default_threads();
        set_default_threads(4);
        assert_eq!(base_cfg(Scale::Quick).threads, 4);
        set_default_threads(before);
        assert_eq!(base_cfg(Scale::Quick).threads, before);
    }

    #[test]
    fn sync_override_flows_into_base_cfg() {
        set_default_sync(SyncMode::Hogwild);
        assert_eq!(base_cfg(Scale::Quick).sync, SyncMode::Hogwild);
        set_default_sync(SyncMode::Exact);
        assert_eq!(base_cfg(Scale::Quick).sync, SyncMode::Exact);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1.2, 1.0), "+20.00%");
        assert_eq!(pct(0.0, 0.0), "n/a");
    }
}
