//! Figure 7 — NDCG@{5,10,15} across datasets: SOTA contrastive models vs
//! basic backbones equipped with SL/BSL. The claim: MF/LGN + SL/BSL reach
//! or beat the SOTA models at every cutoff.

use super::common::{base_cfg, header, lgn, row, suite, tune_bsl, tune_sl, Scale};
use bsl_core::TrainConfig;
use bsl_losses::LossConfig;
use bsl_models::BackboneConfig;

/// Prints the Fig-7 multi-cutoff comparison.
pub fn run_exp(scale: Scale) {
    println!("\n## Figure 7 — NDCG@5/@10/@15 comparison\n");
    for ds in suite(scale) {
        println!("\n### {}\n", ds.name);
        header(&["Model", "NDCG@5", "NDCG@10", "NDCG@15"]);
        // One representative SOTA contrastive model (SimGCL with BPR).
        let simgcl = bsl_core::Trainer::new(TrainConfig {
            backbone: BackboneConfig::SimGcl { layers: 2, eps: 0.1, ssl_reg: 0.1, ssl_tau: 0.2 },
            loss: LossConfig::Bpr,
            ..base_cfg(scale)
        })
        .fit(&ds);
        let cells = |label: &str, out: &bsl_core::TrainOutcome| {
            vec![
                label.to_string(),
                format!("{:.4}", out.best.ndcg(5)),
                format!("{:.4}", out.best.ndcg(10)),
                format!("{:.4}", out.best.ndcg(15)),
            ]
        };
        row(&cells("SimGCL", &simgcl));
        for (bb_label, backbone) in [("MF", BackboneConfig::Mf), ("LGN", lgn())] {
            let base = TrainConfig { backbone, ..base_cfg(scale) };
            let (_, sl) = tune_sl(&ds, base, scale);
            row(&cells(&format!("{bb_label}_SL"), &sl));
            let (_, bsl) = tune_bsl(&ds, base, scale);
            row(&cells(&format!("{bb_label}_BSL"), &bsl));
        }
    }
    println!("\nShape check: MF/LGN + SL/BSL match or beat the SOTA row at every cutoff.");
}
