//! Figure 5 — ablation of the variance penalty (Lemma 2).
//!
//! Train MF with the second-order Taylor surrogate of SL, with and without
//! the variance term, and compare per-popularity-group NDCG@20: dropping
//! the term should *help* the popular groups and *hurt* the unpopular ones
//! — i.e. the variance penalty is where the fairness comes from.

use super::common::{base_cfg, fairness_dataset, header, row, run, Scale};
use bsl_core::TrainConfig;
use bsl_eval::group_ndcg_restricted;
use bsl_losses::LossConfig;
use bsl_models::EvalScore;

const N_GROUPS: usize = 10;

/// Prints the Fig-5 ablation.
pub fn run_exp(scale: Scale) {
    let ds = fairness_dataset(scale);
    let groups = ds.popularity_groups(N_GROUPS);
    println!("\n## Figure 5 — variance-term ablation, per-group NDCG@20 (MF, TaylorSL)\n");
    let mut head = vec!["Variant".to_string()];
    head.extend((1..=N_GROUPS).map(|g| format!("G{g}")));
    header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let tau = 0.15f32;
    let mut per_variant = Vec::new();
    for (label, with_variance) in [("w/o variance", false), ("w/ variance", true)] {
        let out = run(
            &ds,
            TrainConfig { loss: LossConfig::TaylorSl { tau, with_variance }, ..base_cfg(scale) },
        );
        let per_group = group_ndcg_restricted(
            &ds,
            &out.user_emb,
            &out.item_emb,
            EvalScore::Cosine,
            &groups,
            N_GROUPS,
            20,
        );
        let mut cells = vec![label.to_string()];
        cells.extend(per_group.iter().map(|v| format!("{v:.4}")));
        row(&cells);
        per_variant.push(per_group);
    }
    let unpop_delta: f64 = (0..N_GROUPS / 2).map(|g| per_variant[1][g] - per_variant[0][g]).sum();
    println!(
        "\nShape check: w/ variance should win the unpopular half (Δ groups 1–5 = {unpop_delta:+.4})."
    );
}
