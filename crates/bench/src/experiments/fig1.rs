//! Figure 1 — Recall@20 of {BPR, MSE, BCE, SL} × {MF, LightGCN} on the
//! Yelp-like and Amazon-like datasets. The paper's claim: SL beats every
//! other loss by a large margin (>15%) on both backbones and datasets.

use super::common::{
    base_cfg, classic_losses, dataset, header, lgn, pct, row, run, tune_sl, Scale,
};
use bsl_core::TrainConfig;

/// Prints the Figure-1 comparison.
pub fn run_exp(scale: Scale) {
    println!("\n## Figure 1 — loss comparison (Recall@20), MF vs LightGCN\n");
    header(&["Dataset", "Backbone", "BPR", "BCE", "MSE", "SL", "SL vs best other"]);
    for name in ["yelp", "amazon"] {
        let ds = dataset(scale, name);
        for (bb_label, backbone) in [("MF", bsl_models::BackboneConfig::Mf), ("LGN", lgn())] {
            let base = TrainConfig { backbone, ..base_cfg(scale) };
            let mut recalls = Vec::new();
            for (_, loss) in classic_losses() {
                let out = run(&ds, TrainConfig { loss, ..base });
                recalls.push(out.best.recall(20));
            }
            let (_, sl) = tune_sl(&ds, base, scale);
            let sl_recall = sl.best.recall(20);
            let best_other = recalls.iter().copied().fold(f64::MIN, f64::max);
            row(&[
                ds.name.clone(),
                bb_label.to_string(),
                format!("{:.4}", recalls[0]),
                format!("{:.4}", recalls[1]),
                format!("{:.4}", recalls[2]),
                format!("{:.4}", sl_recall),
                pct(sl_recall, best_other),
            ]);
        }
    }
    println!("\nShape check: SL's column should dominate every row (paper: >15% gains).");
}
