//! Table IV — SL vs BSL under {10, 20, 30, 40}% positive noise, four
//! datasets. BSL's degradation should be consistently smaller, with the
//! gap widening as the noise ratio grows.

use super::common::{base_cfg, header, pct, row, suite, tune_bsl, tune_sl, Scale};
use bsl_data::noise::inject_false_positives;
use std::sync::Arc;

/// Prints the Table-IV grid.
pub fn run_exp(scale: Scale) {
    println!("\n## Table IV — SL vs BSL under positive noise (Recall@20/NDCG@20)\n");
    header(&["Dataset", "ratio", "MF-SL", "MF-BSL", "%Improv (NDCG)"]);
    let mut improvements: Vec<(f64, f64)> = Vec::new();
    for ds in suite(scale) {
        for &ratio in &[0.1f64, 0.2, 0.3, 0.4] {
            let noisy = Arc::new(inject_false_positives(&ds, ratio, 200).dataset);
            let base = base_cfg(scale);
            let (_, sl) = tune_sl(&noisy, base, scale);
            let (_, bsl) = tune_bsl(&noisy, base, scale);
            let (rs, ns) = (sl.best.recall(20), sl.best.ndcg(20));
            let (rb, nb) = (bsl.best.recall(20), bsl.best.ndcg(20));
            row(&[
                ds.name.clone(),
                format!("{}%", (ratio * 100.0) as u32),
                format!("{rs:.4}/{ns:.4}"),
                format!("{rb:.4}/{nb:.4}"),
                pct(nb, ns),
            ]);
            if ns > 0.0 {
                improvements.push((ratio, (nb - ns) / ns));
            }
        }
    }
    // Does the BSL advantage grow with the noise ratio?
    let mean_at = |r: f64| -> f64 {
        let v: Vec<f64> =
            improvements.iter().filter(|(rr, _)| (*rr - r).abs() < 1e-9).map(|(_, g)| *g).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "\nMean NDCG improvement by ratio: 10% {:+.2}%, 40% {:+.2}%",
        100.0 * mean_at(0.1),
        100.0 * mean_at(0.4)
    );
    println!("Shape check: BSL ≥ SL in every row; the mean gap grows with the noise ratio.");
}
