//! Table I — dataset statistics.

use super::common::{header, row, suite, Scale};

/// Prints the Table-I statistics of the four synthetic datasets.
pub fn run(scale: Scale) {
    println!("\n## Table I — dataset statistics ({scale:?} scale)\n");
    header(&["Dataset", "#Users", "#Items", "#Interactions", "Density"]);
    for ds in suite(scale) {
        let s = ds.stats();
        row(&[
            ds.name.clone(),
            s.n_users.to_string(),
            s.n_items.to_string(),
            (s.n_train + s.n_test).to_string(),
            format!("{:.3}%", s.density * 100.0),
        ]);
    }
    println!("\nShape check: ML-1M-like densest, Amazon-like sparsest (paper Table I ordering).");
}
