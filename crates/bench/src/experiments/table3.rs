//! Table III — applying SL and BSL on top of the contrastive SOTA models
//! (SGL, SimGCL, LightGCL): both should improve over the native BPR main
//! loss, with BSL edging out SL on average.

use super::common::{base_cfg, header, pct, row, run, suite, tune_bsl, tune_sl, Scale};
use super::table2::contrastive_backbones;
use bsl_core::TrainConfig;
use bsl_losses::LossConfig;

/// Prints the Table-III grid with % improvements over the native loss.
pub fn run_exp(scale: Scale) {
    println!("\n## Table III — SL/BSL applied to SGL, SimGCL, LightGCL (Recall@20/NDCG@20)\n");
    for (label, backbone) in contrastive_backbones() {
        println!("\n### {label}\n");
        header(&["Dataset", "native (BPR)", "+SL", "+BSL", "SL vs native", "BSL vs native"]);
        let mut sl_gain = 0.0f64;
        let mut bsl_gain = 0.0f64;
        let mut n = 0usize;
        for ds in suite(scale) {
            let base = TrainConfig { backbone, ..base_cfg(scale) };
            let native = run(&ds, TrainConfig { loss: LossConfig::Bpr, ..base });
            let (_, sl) = tune_sl(&ds, base, scale);
            let (_, bsl) = tune_bsl(&ds, base, scale);
            let (rn, nn) = (native.best.recall(20), native.best.ndcg(20));
            let (rs, ns) = (sl.best.recall(20), sl.best.ndcg(20));
            let (rb, nb) = (bsl.best.recall(20), bsl.best.ndcg(20));
            row(&[
                ds.name.clone(),
                format!("{rn:.4}/{nn:.4}"),
                format!("{rs:.4}/{ns:.4}"),
                format!("{rb:.4}/{nb:.4}"),
                pct(ns, nn),
                pct(nb, nn),
            ]);
            if nn > 0.0 {
                sl_gain += (ns - nn) / nn;
                bsl_gain += (nb - nn) / nn;
                n += 1;
            }
        }
        if n > 0 {
            println!(
                "\nAvg NDCG gain: +SL {:+.2}%, +BSL {:+.2}%",
                100.0 * sl_gain / n as f64,
                100.0 * bsl_gain / n as f64
            );
        }
    }
    println!("\nShape check: both replacements improve the native loss; BSL ≥ SL on average.");
}
