//! Figures 10/11 — item-embedding structure under positive noise, SL vs
//! BSL, on the Gowalla-like and Yelp-like datasets.
//!
//! The paper argues from t-SNE pictures; here the same embeddings are (a)
//! scored quantitatively — mean silhouette and Davies–Bouldin over the
//! generator's ground-truth item clusters — and (b) exported as t-SNE
//! coordinates (`target/tsne-*.csv`) for visual inspection.

use super::common::{base_cfg, dataset, header, row, run, Scale};
use bsl_core::TrainConfig;
use bsl_data::noise::inject_false_positives;
use bsl_embedviz::{davies_bouldin, silhouette, tsne, TsneConfig};
use bsl_losses::LossConfig;
use std::io::Write;
use std::sync::Arc;

fn ratios(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.0, 0.4],
        Scale::Full => vec![0.0, 0.2, 0.4],
    }
}

/// Prints separation scores and writes t-SNE CSVs.
pub fn run_exp(scale: Scale) {
    println!("\n## Figures 10/11 — embedding separation under positive noise (SL vs BSL)\n");
    header(&["Dataset", "noise", "loss", "silhouette ↑", "Davies-Bouldin ↓", "t-SNE csv"]);
    for name in ["gowalla", "yelp"] {
        let ds = dataset(scale, name);
        let clusters = ds.item_cluster.clone().expect("synthetic datasets carry clusters");
        for &ratio in &ratios(scale) {
            let noisy = if ratio == 0.0 {
                ds.clone()
            } else {
                Arc::new(inject_false_positives(&ds, ratio, 300).dataset)
            };
            for (label, loss) in [
                ("SL", LossConfig::Sl { tau: 0.15 }),
                ("BSL", LossConfig::Bsl { tau1: 0.3, tau2: 0.15 }),
            ] {
                let out = run(&noisy, TrainConfig { loss, ..base_cfg(scale) });
                let sil = silhouette(&out.item_emb, &clusters);
                let db = davies_bouldin(&out.item_emb, &clusters);
                // t-SNE on a subsample for the CSV artifact.
                let n = out.item_emb.rows().min(400);
                let sub = out.item_emb.gather_rows(&(0..n).collect::<Vec<_>>());
                let map = tsne(
                    &sub,
                    &TsneConfig {
                        perplexity: 20.0,
                        iters: if scale == Scale::Quick { 120 } else { 300 },
                        ..TsneConfig::default()
                    },
                );
                let path = format!("target/tsne-{name}-{}-{label}.csv", (ratio * 100.0) as u32);
                if let Ok(mut f) = std::fs::File::create(&path) {
                    let _ = writeln!(f, "x,y,cluster");
                    for (r, &cluster) in clusters.iter().enumerate().take(n) {
                        let _ = writeln!(f, "{},{},{}", map.get(r, 0), map.get(r, 1), cluster);
                    }
                }
                row(&[
                    noisy.name.clone(),
                    format!("{}%", (ratio * 100.0) as u32),
                    label.to_string(),
                    format!("{sil:.4}"),
                    format!("{db:.3}"),
                    path,
                ]);
            }
        }
    }
    println!("\nShape check: separation degrades with noise for both, but BSL keeps a higher");
    println!("silhouette (and lower Davies-Bouldin) than SL at matched noise.");
}
