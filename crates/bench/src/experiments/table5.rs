//! Table V — the backbone train/test/sampling protocol (configuration
//! table; reproduced verbatim from the implementation's conventions).

use super::common::{header, row, Scale};

/// Prints the protocol table and verifies it against the implementation's
/// actual conventions.
pub fn run_exp(_scale: Scale) {
    println!("\n## Table V — backbone protocol\n");
    header(&["Backbone", "Training score", "Testing score", "Sampling"]);
    for (bb, train, test, sampling) in [
        ("MF", "cosine", "cosine", "negative sampling"),
        ("NGCF", "cosine", "inner product", "in-batch"),
        ("LightGCN", "cosine", "inner product", "in-batch"),
    ] {
        row(&[bb.into(), train.into(), test.into(), sampling.into()]);
    }
    // Cross-check against the live trait implementations.
    use bsl_data::synth::{generate, SynthConfig};
    use bsl_models::{build, BackboneConfig, EvalScore, TrainScore};
    use std::sync::Arc;
    let ds = Arc::new(generate(&SynthConfig::tiny(0)));
    let mf = build(BackboneConfig::Mf, &ds, 8, 0);
    assert_eq!(mf.train_score(), TrainScore::Cosine);
    assert_eq!(mf.eval_score(), EvalScore::Cosine);
    let ngcf = build(BackboneConfig::Ngcf { layers: 2 }, &ds, 8, 0);
    assert_eq!(ngcf.train_score(), TrainScore::Cosine);
    assert_eq!(ngcf.eval_score(), EvalScore::Dot);
    let lgn = build(BackboneConfig::LightGcn { layers: 2 }, &ds, 8, 0);
    assert_eq!(lgn.eval_score(), EvalScore::Dot);
    println!("\nVerified against the live `TrainScore`/`EvalScore` conventions. ✓");
}
