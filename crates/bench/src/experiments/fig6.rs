//! Figure 6 — SL's performance degradation under *positive* noise.
//!
//! Contaminate the training positives of each dataset with 0–40% random
//! false positives (test split untouched) and report MF+SL's NDCG@20
//! relative to the clean run. The paper's point: SL has no positive-side
//! defence, so the curve declines — the motivation for BSL.

use super::common::{base_cfg, header, row, run, suite, Scale};

use bsl_data::noise::inject_false_positives;
use std::sync::Arc;

/// The Fig-6/Table-IV noise grid.
pub const NOISE_RATIOS: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.4];

/// Prints relative NDCG@20 vs positive-noise ratio for all four datasets.
pub fn run_exp(scale: Scale) {
    println!("\n## Figure 6 — relative NDCG@20 of MF+SL under positive noise\n");
    let mut head = vec!["Dataset".to_string()];
    head.extend(NOISE_RATIOS.iter().map(|r| format!("{}%", (r * 100.0) as u32)));
    header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for ds in suite(scale) {
        let mut cells = vec![ds.name.clone()];
        let mut clean = None;
        for (k, &ratio) in NOISE_RATIOS.iter().enumerate() {
            let noisy = if ratio == 0.0 {
                ds.clone()
            } else {
                Arc::new(inject_false_positives(&ds, ratio, 100 + k as u64).dataset)
            };
            let out = run(&noisy, base_cfg(scale));
            // Evaluate on the *clean* test split (it is unchanged by
            // injection, but the train mask differs — use the noisy train
            // mask as the protocol does).
            let ndcg = out.best.ndcg(20);
            if ratio == 0.0 {
                clean = Some(ndcg);
                cells.push("100.0%".into());
            } else {
                let rel = 100.0 * ndcg / clean.expect("clean run first");
                cells.push(format!("{rel:.1}%"));
            }
        }
        row(&cells);
    }
    println!("\nShape check: every row declines monotonically (noise hurts SL).");
}
