//! `repro --save` / `--serve`: round-trip a trained model through the
//! artifact format on disk and answer retrieval queries from the loaded
//! copy — the end-to-end proof that the train→serve boundary works
//! outside the test suite.
//!
//! Both halves regenerate the same deterministic Yelp-shaped dataset, so
//! `--serve` can rebuild the seen-item mask and name the held-out test
//! items next to what the loaded model actually retrieves.

use super::common::{base_cfg, Scale};
use bsl_core::prelude::*;
use bsl_data::synth::{generate, SynthConfig};
use bsl_serve::Recommender;
use std::sync::Arc;

/// The dataset both halves of the round trip agree on.
fn demo_dataset() -> Arc<Dataset> {
    Arc::new(generate(&SynthConfig::yelp_like(7)))
}

/// Trains MF + BSL at `scale`, exports the best epoch's artifact, and
/// saves it to `path`.
pub fn save(path: &str, scale: Scale) {
    let ds = demo_dataset();
    println!("# Artifact save — {} — {}", ds.name, ds.stats());
    let cfg = TrainConfig { loss: LossConfig::Bsl { tau1: 0.3, tau2: 0.15 }, ..base_cfg(scale) };
    println!("training {} …", cfg.label());
    let out = Trainer::new(cfg).fit(&ds);
    println!("best epoch {} — NDCG@20 {:.4}", out.best_epoch, out.best.ndcg(20));
    out.artifact.save(path).unwrap_or_else(|e| panic!("saving artifact to {path}: {e}"));
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {path}: backbone {} ({:?}), {} users × {} items, dim {}, {:.1} MiB",
        out.artifact.backbone(),
        out.artifact.similarity(),
        out.artifact.n_users(),
        out.artifact.n_items(),
        out.artifact.dim(),
        bytes as f64 / (1024.0 * 1024.0)
    );
}

/// Loads the artifact at `path` and prints top-10 recommendations for a
/// few evaluable users, flagging retrieved items that are test-split hits.
pub fn serve(path: &str) {
    let art = ModelArtifact::load(path).unwrap_or_else(|e| panic!("loading {path}: {e}"));
    println!(
        "# Artifact serve — {path}: backbone {} ({:?}), {} users × {} items, dim {}",
        art.backbone(),
        art.similarity(),
        art.n_users(),
        art.n_items(),
        art.dim()
    );
    let ds = demo_dataset();
    let mut rec = Recommender::with_seen(art, &ds);
    let users: Vec<u32> = ds.evaluable_users().into_iter().take(4).collect();
    let k = 10;
    for (u, recs) in users.iter().zip(rec.recommend_batch(&users, k)) {
        let test = ds.test_items(*u as usize);
        println!(
            "\nuser {u} (train {} items, test {} items) — top {k}:",
            ds.train_items(*u as usize).len(),
            test.len()
        );
        for (rank, r) in recs.iter().enumerate() {
            let hit = if test.binary_search(&r.item).is_ok() { "  << test hit" } else { "" };
            println!("  {:>2}. item {:>6}  score {:+.4}{hit}", rank + 1, r.item, r.score);
        }
    }
}
