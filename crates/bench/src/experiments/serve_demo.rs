//! `repro --save` / `--serve`: round-trip a trained model through the
//! artifact format on disk and answer retrieval queries from the loaded
//! copy — the end-to-end proof that the train→serve boundary works
//! outside the test suite.
//!
//! Both halves regenerate the same deterministic Yelp-shaped dataset, so
//! `--serve` can rebuild the seen-item mask and name the held-out test
//! items next to what the loaded model actually retrieves.

use super::common::{base_cfg, Scale};
use bsl_core::prelude::*;
use bsl_data::synth::{generate, SynthConfig};
use bsl_serve::{RecommendRequest, Retrieval, ServeOptions, ServeScratch, ServeState};
use std::sync::Arc;

/// The dataset both halves of the round trip agree on.
fn demo_dataset() -> Arc<Dataset> {
    Arc::new(generate(&SynthConfig::yelp_like(7)))
}

/// Trains MF + BSL at `scale`, exports the best epoch's artifact, and
/// saves it to `path`. With `ann`, the artifact is saved in the format-v2
/// production configuration: int8-quantized item table plus an IVF index
/// at the default `nlist` — what `--serve` then probes sub-linearly.
pub fn save(path: &str, scale: Scale, ann: bool) {
    let ds = demo_dataset();
    println!("# Artifact save — {} — {}", ds.name, ds.stats());
    let cfg = TrainConfig { loss: LossConfig::Bsl { tau1: 0.3, tau2: 0.15 }, ..base_cfg(scale) };
    println!("training {} …", cfg.label());
    let out = Trainer::new(cfg).fit(&ds);
    println!("best epoch {} — NDCG@20 {:.4}", out.best_epoch, out.best.ndcg(20));
    let mut art = out.artifact;
    if ann {
        art = art.quantize();
        art.build_default_ivf();
        let ix = art.index().expect("build_default_ivf attaches an index");
        println!(
            "quantized items to int8 and built IVF index: nlist {}, default nprobe {}",
            ix.nlist(),
            ix.default_nprobe()
        );
    }
    art.save(path).unwrap_or_else(|e| panic!("saving artifact to {path}: {e}"));
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {path}: backbone {} ({:?}), {} users × {} items, dim {}, {:?} items, {:.1} MiB",
        art.backbone(),
        art.similarity(),
        art.n_users(),
        art.n_items(),
        art.dim(),
        art.precision(),
        bytes as f64 / (1024.0 * 1024.0)
    );
}

/// Loads the artifact at `path` and prints top-10 recommendations for a
/// few evaluable users, flagging retrieved items that are test-split hits.
/// `nprobe` overrides the IVF probe width (the artifact must carry an
/// index — save it with `--ann`); `None` keeps the automatic mode.
pub fn serve(path: &str, nprobe: Option<usize>) {
    let art = ModelArtifact::load(path).unwrap_or_else(|e| panic!("loading {path}: {e}"));
    println!(
        "# Artifact serve — {path}: backbone {} ({:?}), {} users × {} items, dim {}, {:?} items",
        art.backbone(),
        art.similarity(),
        art.n_users(),
        art.n_items(),
        art.dim(),
        art.precision()
    );
    let ds = demo_dataset();
    let state = ServeState::with_seen(art, &ds);
    let opts = match nprobe {
        Some(np) => {
            assert!(
                state.artifact().index().is_some(),
                "--nprobe needs an IVF-indexed artifact (save it with --ann)"
            );
            ServeOptions::with_nprobe(np)
        }
        None => ServeOptions::default(),
    };
    match state.retrieval(&opts) {
        Retrieval::Exact => println!("retrieval: exact full scan"),
        Retrieval::Ivf { nprobe } => {
            let nlist = state.artifact().index().expect("IVF mode implies an index").nlist();
            println!("retrieval: IVF, probing {nprobe} of {nlist} lists");
        }
    }
    let users: Vec<u32> = ds.evaluable_users().into_iter().take(4).collect();
    let k = 10;
    let reqs: Vec<RecommendRequest> =
        users.iter().map(|&user| RecommendRequest { user, k, opts }).collect();
    let mut scratch = ServeScratch::new();
    let mut batched = Vec::new();
    state.recommend_batch_into(&reqs, &mut scratch, &mut batched);
    for (u, recs) in users.iter().zip(&batched) {
        let test = ds.test_items(*u as usize);
        println!(
            "\nuser {u} (train {} items, test {} items) — top {k}:",
            ds.train_items(*u as usize).len(),
            test.len()
        );
        for (rank, r) in recs.iter().enumerate() {
            let hit = if test.binary_search(&r.item).is_ok() { "  << test hit" } else { "" };
            println!("  {:>2}. item {:>6}  score {:+.4}{hit}", rank + 1, r.item, r.score);
        }
    }
}
