//! One module per paper table/figure.

pub mod common;

pub mod fig1;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod serve_demo;
pub mod serve_tcp;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
