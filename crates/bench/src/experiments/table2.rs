//! Table II — the paper's main comparison: ten standalone baselines plus
//! {BPR, BCE, MSE, SL, BSL} on {MF, NGCF, LightGCN}, four datasets,
//! Recall@20 / NDCG@20.
//!
//! NIA-GCN, DGCF and NCL are reported `n/a` (DESIGN.md §2: reference
//! points whose mechanisms exceed a validatable from-scratch scope).

use super::common::{base_cfg, header, lgn, row, run, suite, tune_bsl, tune_sl, Scale, GCN_LAYERS};
use bsl_core::TrainConfig;
use bsl_data::Dataset;
use bsl_eval::evaluate;
use bsl_losses::LossConfig;
use bsl_models::enmf::{train_enmf, EnmfConfig};
use bsl_models::ultragcn::{train_ultragcn, UltraGcnConfig};
use bsl_models::{BackboneConfig, EvalScore};
use std::sync::Arc;

fn metric_pair(recall: f64, ndcg: f64) -> String {
    format!("{recall:.4}/{ndcg:.4}")
}

/// Standalone baseline rows (those not expressed as backbone × loss).
fn baselines(ds: &Arc<Dataset>, scale: Scale) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    // CML — metric learning.
    let cml = run(
        ds,
        TrainConfig {
            backbone: BackboneConfig::Cml,
            loss: LossConfig::Hinge { margin: 0.5 },
            lr: 0.05,
            ..base_cfg(scale)
        },
    );
    rows.push(("CML".into(), metric_pair(cml.best.recall(20), cml.best.ndcg(20))));
    // ENMF — whole-data non-sampling MSE.
    let enmf_cfg = EnmfConfig {
        dim: scale.dim(),
        c0: 0.05,
        lr: 0.02,
        l2: 1e-6,
        epochs: scale.epochs() * 2,
        seed: 0,
    };
    let (ue, ie) = train_enmf(ds, &enmf_cfg);
    let rep = evaluate(ds, &ue, &ie, EvalScore::Dot, &[20]);
    rows.push(("ENMF".into(), metric_pair(rep.recall(20), rep.ndcg(20))));
    // SimpleX — MF + cosine contrastive loss.
    let simplex = run(
        ds,
        TrainConfig { loss: LossConfig::Ccl { margin: 0.4, neg_weight: 2.0 }, ..base_cfg(scale) },
    );
    rows.push(("SimpleX".into(), metric_pair(simplex.best.recall(20), simplex.best.ndcg(20))));
    // UltraGCN-lite.
    let ug_cfg = UltraGcnConfig {
        dim: scale.dim(),
        epochs: scale.epochs(),
        negatives: scale.negatives().min(64),
        batch_size: 512,
        lr: 5e-3,
        ..UltraGcnConfig::default()
    };
    let (uu, ui) = train_ultragcn(ds, &ug_cfg);
    let rep = evaluate(ds, &uu, &ui, EvalScore::Dot, &[20]);
    rows.push(("UltraGCN".into(), metric_pair(rep.recall(20), rep.ndcg(20))));
    // LR-GCCF (+BPR, its native loss).
    let lr_gccf = run(
        ds,
        TrainConfig {
            backbone: BackboneConfig::LrGccf { layers: GCN_LAYERS },
            loss: LossConfig::Bpr,
            ..base_cfg(scale)
        },
    );
    rows.push(("LR-GCCF".into(), metric_pair(lr_gccf.best.recall(20), lr_gccf.best.ndcg(20))));
    // SGL / SimGCL / LightGCL with their native BPR main loss.
    for (label, backbone) in contrastive_backbones() {
        let out = run(ds, TrainConfig { backbone, loss: LossConfig::Bpr, ..base_cfg(scale) });
        rows.push((label.into(), metric_pair(out.best.recall(20), out.best.ndcg(20))));
    }
    for missing in ["NIA-GCN", "DGCF", "NCL"] {
        rows.push((missing.into(), "n/a (see DESIGN.md §2)".into()));
    }
    rows
}

/// The three contrastive SOTA backbones with the paper-ish auxiliaries.
pub fn contrastive_backbones() -> Vec<(&'static str, BackboneConfig)> {
    vec![
        (
            "SGL",
            BackboneConfig::Sgl { layers: GCN_LAYERS, dropout: 0.1, ssl_reg: 0.1, ssl_tau: 0.2 },
        ),
        (
            "SimGCL",
            BackboneConfig::SimGcl { layers: GCN_LAYERS, eps: 0.1, ssl_reg: 0.1, ssl_tau: 0.2 },
        ),
        (
            "LightGCL",
            BackboneConfig::LightGcl { layers: GCN_LAYERS, rank: 8, ssl_reg: 0.1, ssl_tau: 0.2 },
        ),
    ]
}

/// Prints the full Table-II grid.
pub fn run_exp(scale: Scale) {
    println!("\n## Table II — overall comparison (Recall@20/NDCG@20)\n");
    for ds in suite(scale) {
        println!("\n### {}\n", ds.name);
        header(&["Model", "Recall@20/NDCG@20"]);
        for (label, cell) in baselines(&ds, scale) {
            row(&[label, cell]);
        }
        for (bb_label, backbone) in [
            ("MF", BackboneConfig::Mf),
            ("NGCF", BackboneConfig::Ngcf { layers: GCN_LAYERS }),
            ("LGN", lgn()),
        ] {
            let base = TrainConfig { backbone, ..base_cfg(scale) };
            for (loss_label, loss) in [
                ("BPR", LossConfig::Bpr),
                ("BCE", LossConfig::Bce { neg_weight: 1.0 }),
                ("MSE", LossConfig::Mse { neg_weight: 1.0 }),
            ] {
                let out = run(&ds, TrainConfig { loss, ..base });
                row(&[
                    format!("{bb_label}+{loss_label}"),
                    metric_pair(out.best.recall(20), out.best.ndcg(20)),
                ]);
            }
            let (tau, sl) = tune_sl(&ds, base, scale);
            row(&[
                format!("{bb_label}+SL (τ={tau})"),
                metric_pair(sl.best.recall(20), sl.best.ndcg(20)),
            ]);
            let ((t1, t2), bsl) = tune_bsl(&ds, base, scale);
            row(&[
                format!("{bb_label}+BSL (τ1={t1:.2},τ2={t2})"),
                metric_pair(bsl.best.recall(20), bsl.best.ndcg(20)),
            ]);
        }
    }
    println!("\nShape check: SL ≫ {{BPR,BCE,MSE}} on every backbone; BSL ≥ SL throughout.");
}
