//! Figure 13 — sensitivity to the temperature ratio τ1/τ2 for BSL on MF
//! and LightGCN. The paper reports an interior optimum: very large τ1/τ2
//! (tiny positive-side robustness radius) underperforms, and so does a
//! very small ratio (implausible worst case).

use super::common::{base_cfg, header, lgn, row, run, suite, Scale};
use bsl_core::TrainConfig;
use bsl_losses::LossConfig;
use bsl_models::BackboneConfig;

/// The paper's ratio grid.
pub const RATIOS: [f32; 6] = [0.5, 0.8, 1.0, 1.2, 1.4, 2.0];

/// Prints the Fig-13 ratio sweep.
pub fn run_exp(scale: Scale) {
    println!("\n## Figure 13 — NDCG@20 vs τ1/τ2 (BSL)\n");
    let tau2 = 0.15f32;
    for ds in suite(scale) {
        println!("\n### {}\n", ds.name);
        let mut head = vec!["Backbone".to_string()];
        head.extend(RATIOS.iter().map(|r| format!("τ1/τ2={r}")));
        header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for (label, backbone) in [("MF", BackboneConfig::Mf), ("LightGCN", lgn())] {
            let mut cells = vec![label.to_string()];
            for &ratio in &RATIOS {
                let out = run(
                    &ds,
                    TrainConfig {
                        backbone,
                        loss: LossConfig::Bsl { tau1: tau2 * ratio, tau2 },
                        ..base_cfg(scale)
                    },
                );
                cells.push(format!("{:.4}", out.best.ndcg(20)));
            }
            row(&cells);
        }
    }
    println!("\nShape check: interior optimum in the ratio (neither extreme wins).");
}
