//! Figure 8 — NDCG@20 vs the false-negative sampling probability
//! `r_noise ∈ {1, 3, 5, 7, 10}` for the five losses on MF. SL and BSL
//! should degrade most gracefully.

use super::common::{
    base_cfg, classic_losses, dataset, header, row, run, tune_bsl, tune_sl, Scale,
};
use bsl_core::{SamplingConfig, TrainConfig};

fn probs(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![1.0, 5.0, 10.0],
        Scale::Full => vec![1.0, 3.0, 5.0, 7.0, 10.0],
    }
}

/// Prints the Fig-8 sweep on MovieLens-like, Gowalla-like and Yelp-like.
pub fn run_exp(scale: Scale) {
    println!("\n## Figure 8 — NDCG@20 vs false-negative sampling prob (MF)\n");
    for name in ["ml1m", "gowalla", "yelp"] {
        let ds = dataset(scale, name);
        println!("\n### {}\n", ds.name);
        let plist = probs(scale);
        let mut head = vec!["Loss".to_string()];
        head.extend(plist.iter().map(|p| format!("r={p}")));
        header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for (label, loss) in classic_losses() {
            let mut cells = vec![label.to_string()];
            for &r in &plist {
                let out = run(
                    &ds,
                    TrainConfig {
                        loss,
                        sampling: SamplingConfig::Noisy { r_noise: r },
                        ..base_cfg(scale)
                    },
                );
                cells.push(format!("{:.4}", out.best.ndcg(20)));
            }
            row(&cells);
        }
        for bsl in [false, true] {
            let mut cells = vec![if bsl { "BSL".to_string() } else { "SL".to_string() }];
            for &r in &plist {
                let base = TrainConfig {
                    sampling: SamplingConfig::Noisy { r_noise: r },
                    ..base_cfg(scale)
                };
                let ndcg = if bsl {
                    tune_bsl(&ds, base, scale).1.best.ndcg(20)
                } else {
                    tune_sl(&ds, base, scale).1.best.ndcg(20)
                };
                cells.push(format!("{ndcg:.4}"));
            }
            row(&cells);
        }
    }
    println!("\nShape check: SL/BSL rows stay flat-ish and on top as r grows.");
}
