//! Figure 4 — fairness and worst-case-distribution analyses.
//!
//! (a) Per-popularity-group NDCG@20 of MF with {BPR, MSE, BCE, SL}: SL
//!     should lift the unpopular groups (low ids) at some cost to the most
//!     popular ones.
//! (b) The DRO worst-case weight `P*(j) ∝ exp(f_j/τ)` of one batch of
//!     negative scores under a trained MF+SL model, at τ ∈ {0.09, 0.11,
//!     0.13}: lower τ ⇒ more extreme weighting of hard negatives.

use super::common::{base_cfg, classic_losses, fairness_dataset, header, row, run, tune_sl, Scale};
use bsl_core::TrainConfig;
use bsl_dro::worst_case_weights;
use bsl_eval::group_ndcg_restricted;
use bsl_linalg::kernels::{dot, normalize_into};
use bsl_models::EvalScore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_GROUPS: usize = 10;

/// Prints Fig 4a (group NDCG per loss) and Fig 4b (weight-vs-score curves).
pub fn run_exp(scale: Scale) {
    let ds = fairness_dataset(scale);
    let groups = ds.popularity_groups(N_GROUPS);

    println!("\n## Figure 4a — per-popularity-group NDCG@20 (restricted relevance, MF)\n");
    let mut head = vec!["Loss".to_string()];
    head.extend((1..=N_GROUPS).map(|g| format!("G{g}")));
    header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let base = base_cfg(scale);
    let mut runs = Vec::new();
    for (label, loss) in classic_losses() {
        runs.push((label.to_string(), run(&ds, TrainConfig { loss, ..base })));
    }
    let (_, sl_out) = tune_sl(&ds, base, scale);
    runs.push(("SL".to_string(), sl_out));
    for (label, out) in &runs {
        let per_group = group_ndcg_restricted(
            &ds,
            &out.user_emb,
            &out.item_emb,
            EvalScore::Cosine,
            &groups,
            N_GROUPS,
            20,
        );
        let mut cells = vec![label.clone()];
        cells.extend(per_group.iter().map(|v| format!("{v:.4}")));
        row(&cells);
    }
    println!("\nShape check: SL's row should dominate on the low-id (unpopular) groups.");

    // --- Fig 4b ---
    println!("\n## Figure 4b — DRO worst-case weight vs prediction score\n");
    let (_, out) = &runs[runs.len() - 1];
    // Sanity: keep using the SL run's embeddings.
    let _ = out.evaluate_on(&ds, &[20]);
    // One "batch" of negative scores for a random user sample.
    let mut rng = StdRng::seed_from_u64(3);
    let d = out.user_emb.cols();
    let mut uhat = vec![0.0f32; d];
    let mut ihat = vec![0.0f32; d];
    let mut scores: Vec<f32> = Vec::with_capacity(512);
    while scores.len() < 512 {
        let u = rng.gen_range(0..ds.n_users);
        let i = rng.gen_range(0..ds.n_items as u32);
        if ds.train.contains(u, i) {
            continue;
        }
        normalize_into(out.user_emb.row(u), &mut uhat);
        normalize_into(out.item_emb.row(i as usize), &mut ihat);
        scores.push(dot(&uhat, &ihat));
    }
    // Report binned mean weights per τ.
    header(&["score bin", "w(τ=0.09)", "w(τ=0.11)", "w(τ=0.13)"]);
    let weights: Vec<Vec<f64>> =
        [0.09, 0.11, 0.13].iter().map(|&t| worst_case_weights(&scores, t)).collect();
    let lo = scores.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let n_bins = 8;
    for b in 0..n_bins {
        let b_lo = lo + (hi - lo) * b as f32 / n_bins as f32;
        let b_hi = lo + (hi - lo) * (b + 1) as f32 / n_bins as f32;
        let idx: Vec<usize> = scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s >= b_lo && (s < b_hi || b == n_bins - 1))
            .map(|(k, _)| k)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let mut cells = vec![format!("[{b_lo:.2},{b_hi:.2})")];
        for w in &weights {
            let mean: f64 = idx.iter().map(|&k| w[k]).sum::<f64>() / idx.len() as f64;
            cells.push(format!("{mean:.5}"));
        }
        row(&cells);
    }
    println!(
        "\nShape check: weights increase with score; smaller τ ⇒ steeper (more extreme) curve."
    );
}
