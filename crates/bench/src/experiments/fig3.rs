//! Figure 3 — robustness analysis on the Yelp-like dataset.
//!
//! (a) NDCG@20 of MF+SL across temperatures τ for several negative-noise
//!     rates `r_noise` — the optimum should be interior and the best τ
//!     should *grow* with the noise rate.
//! (b) The implied robustness radius η = V\[f\]/(2τ*²) (Corollary III.1) at
//!     the best τ per noise rate — η should grow with the noise rate.

use super::common::{base_cfg, dataset, header, row, run, Scale};
use bsl_core::{SamplingConfig, TrainConfig, TrainOutcome};
use bsl_linalg::kernels::{dot, normalize_into};
use bsl_linalg::stats::mean_var;
use bsl_losses::LossConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn taus(scale: Scale) -> Vec<f32> {
    match scale {
        Scale::Quick => vec![0.15, 0.25, 0.4, 0.6, 0.9],
        Scale::Full => vec![0.1, 0.15, 0.22, 0.33, 0.5, 0.75, 1.1],
    }
}

fn noise_rates(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.0, 1.0, 3.0],
        Scale::Full => vec![0.0, 0.5, 1.0, 1.5, 2.0, 3.0],
    }
}

/// Variance of cosine scores on uniformly-sampled negative pairs under the
/// trained embeddings — the `V[f(u,j)]` of Corollary III.1.
pub fn negative_score_variance(out: &TrainOutcome, n_pairs: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = out.user_emb.cols();
    let mut uhat = vec![0.0f32; d];
    let mut ihat = vec![0.0f32; d];
    let scores: Vec<f32> = (0..n_pairs)
        .map(|_| {
            let u = rng.gen_range(0..out.user_emb.rows());
            let i = rng.gen_range(0..out.item_emb.rows());
            normalize_into(out.user_emb.row(u), &mut uhat);
            normalize_into(out.item_emb.row(i), &mut ihat);
            dot(&uhat, &ihat)
        })
        .collect();
    mean_var(&scores).1
}

/// Prints Fig 3a (NDCG grid) and Fig 3b (implied η).
pub fn run_exp(scale: Scale) {
    let ds = dataset(scale, "yelp");
    println!("\n## Figure 3a — NDCG@20 of MF+SL vs temperature τ, per noise rate\n");
    let tau_list = taus(scale);
    let mut head = vec!["r_noise".to_string()];
    head.extend(tau_list.iter().map(|t| format!("τ={t}")));
    header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let mut best_per_noise: Vec<(f64, f32, TrainOutcome)> = Vec::new();
    for &r in &noise_rates(scale) {
        let mut cells = vec![format!("{r:.1}")];
        let mut best: Option<(f32, TrainOutcome)> = None;
        for &tau in &tau_list {
            let cfg = TrainConfig {
                loss: LossConfig::Sl { tau },
                sampling: if r > 0.0 {
                    SamplingConfig::Noisy { r_noise: r }
                } else {
                    SamplingConfig::Uniform
                },
                ..base_cfg(scale)
            };
            let out = run(&ds, cfg);
            cells.push(format!("{:.4}", out.best.ndcg(20)));
            if best.as_ref().map(|(_, b)| out.best.ndcg(20) > b.best.ndcg(20)).unwrap_or(true) {
                best = Some((tau, out));
            }
        }
        row(&cells);
        let (tau, out) = best.expect("non-empty tau grid");
        best_per_noise.push((r, tau, out));
    }

    println!("\n## Figure 3b — implied robustness radius η at the best τ\n");
    header(&["r_noise", "best τ", "V[f(u,j)]", "η = V/(2τ²)"]);
    for (r, tau, out) in &best_per_noise {
        let var = negative_score_variance(out, 20_000, 11);
        let eta = var / (2.0 * (*tau as f64) * (*tau as f64));
        row(&[format!("{r:.1}"), format!("{tau}"), format!("{var:.4}"), format!("{eta:.4}")]);
    }
    println!("\nShape check: interior optimum in each Fig-3a row; best τ and η grow with r_noise.");
}
