//! Full-ranking evaluation benchmark (the per-eval cost every experiment
//! pays).

use bsl_data::synth::{generate, SynthConfig};
use bsl_eval::{evaluate, evaluate_artifact, EvalScore, ModelArtifact};
use bsl_linalg::Matrix;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_eval(c: &mut Criterion) {
    let ds = generate(&SynthConfig::yelp_like(1));
    let mut rng = StdRng::seed_from_u64(0);
    let u = Matrix::gaussian(ds.n_users, 64, 0.1, &mut rng);
    let i = Matrix::gaussian(ds.n_items, 64, 0.1, &mut rng);

    c.bench_function("evaluate_yelp_d64_k20_dot", |b| {
        b.iter(|| evaluate(black_box(&ds), &u, &i, EvalScore::Dot, &[20]))
    });
    c.bench_function("evaluate_yelp_d64_multik_cosine", |b| {
        b.iter(|| evaluate(black_box(&ds), &u, &i, EvalScore::Cosine, &[5, 10, 15, 20]))
    });
    // The artifact path: preparation (normalization) paid once outside the
    // timed loop — what repeated `TrainOutcome::evaluate_on` calls and
    // serving-side evaluation actually cost.
    let art = ModelArtifact::from_embeddings("MF", &u, &i, EvalScore::Cosine);
    c.bench_function("evaluate_artifact_yelp_d64_multik", |b| {
        b.iter(|| evaluate_artifact(black_box(&ds), &art, &[5, 10, 15, 20]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_eval
}
criterion_main!(benches);
