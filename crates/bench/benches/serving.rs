//! Serving-path benchmarks: batched top-k retrieval over a frozen
//! artifact at Yelp catalogue scale — the per-request cost a deployed
//! `Recommender` pays.

use bsl_data::synth::{generate, SynthConfig};
use bsl_linalg::Matrix;
use bsl_models::{EvalScore, IvfIndex, ModelArtifact};
use bsl_serve::Recommender;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_serving(c: &mut Criterion) {
    let ds = generate(&SynthConfig::yelp_like(1));
    let mut rng = StdRng::seed_from_u64(0);
    let u = Matrix::gaussian(ds.n_users, 64, 0.1, &mut rng);
    let i = Matrix::gaussian(ds.n_items, 64, 0.1, &mut rng);
    let art = ModelArtifact::from_embeddings("MF", &u, &i, EvalScore::Cosine);

    // The format-v2 production configuration: int8 tables + IVF index at
    // the default parameters. Announce them so bench_baseline.sh can pin
    // the configuration into the BENCHMARKS.md header.
    let mut v2 = art.quantize();
    v2.build_default_ivf();
    let (nlist, nprobe) = {
        let ix = v2.index().expect("index");
        (ix.nlist(), ix.default_nprobe())
    };
    println!(
        "serving config: format v{}, nlist={nlist}, nprobe={nprobe}",
        bsl_models::artifact::FORMAT_VERSION
    );

    // Artifact codec round-trip through memory (no disk noise).
    c.bench_function("artifact_codec_roundtrip_yelp_d64", |b| {
        b.iter(|| ModelArtifact::from_bytes(&black_box(&art).to_bytes()).expect("decode"))
    });

    // IVF index construction over the prepared item table (the one-time
    // cost paid at artifact export or load).
    c.bench_function("index_build_yelp_d64", |b| {
        b.iter(|| IvfIndex::build(black_box(art.items()), nlist))
    });

    let mut rec = Recommender::with_seen(art, &ds);
    // A fixed 64-user request batch spread across the user space.
    let stride = (ds.n_users / 64).max(1) as u32;
    let batch: Vec<u32> = (0..64u32).map(|j| j * stride).collect();

    // Warm the scratch so the measurement is the steady state.
    let _ = rec.recommend_batch(&batch, 10);

    // Since PR 7 the batch call streams each item-table tile past every
    // query in the batch (one catalogue pass per batch)...
    c.bench_function("recommend_b64_k10_yelp_d64", |b| {
        b.iter(|| rec.recommend_batch(black_box(&batch), 10))
    });
    // ...while this serial loop answers the same 64 requests one at a
    // time (one catalogue pass per request). The gap between the two
    // lines is the micro-batching amortization the ServeEngine banks on.
    let mut out = Vec::with_capacity(10);
    c.bench_function("recommend_b64_serial_k10_yelp_d64", |b| {
        b.iter(|| {
            for &u in black_box(&batch) {
                rec.recommend_into(u, 10, &mut out);
                black_box(&out);
            }
        })
    });
    c.bench_function("recommend_single_k10_yelp_d64", |b| {
        b.iter(|| {
            rec.recommend_into(black_box(batch[0]), 10, &mut out);
            black_box(&out);
        })
    });

    // The sub-linear path: same batch, same k, served through int8 tables
    // and the IVF shortlist at the default nprobe. Compare directly to
    // recommend_b64_k10_yelp_d64 — the gap is the ANN speedup.
    let mut ivf_rec = Recommender::with_seen(v2, &ds);
    let _ = ivf_rec.recommend_batch(&batch, 10);
    c.bench_function("ivf_recommend_b64_k10_yelp_d64", |b| {
        b.iter(|| ivf_rec.recommend_batch(black_box(&batch), 10))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_serving
}
criterion_main!(benches);
