//! Negative-sampler benchmarks.

use bsl_data::synth::{generate, SynthConfig};
use bsl_sampling::{NegativeSampler, NoisySampler, PopularitySampler, UniformSampler};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_sampling(c: &mut Criterion) {
    let ds = Arc::new(generate(&SynthConfig::yelp_like(1)));
    let mut rng = StdRng::seed_from_u64(0);
    let mut out = Vec::with_capacity(256);

    let uniform = UniformSampler::new(ds.clone());
    c.bench_function("uniform_sample_256", |b| {
        b.iter(|| {
            out.clear();
            uniform.sample_into(black_box(5), 256, &mut rng, &mut out)
        })
    });
    let pop = PopularitySampler::new(ds.clone(), 1.0);
    c.bench_function("popularity_sample_256", |b| {
        b.iter(|| {
            out.clear();
            pop.sample_into(black_box(5), 256, &mut rng, &mut out)
        })
    });
    let noisy = NoisySampler::new(ds.clone(), 5.0);
    c.bench_function("noisy_sample_256", |b| {
        b.iter(|| {
            out.clear();
            noisy.sample_into(black_box(5), 256, &mut rng, &mut out)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_sampling
}
criterion_main!(benches);
