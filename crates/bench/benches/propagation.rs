//! Graph-propagation benchmarks: SpMM and the LightGCN layer-mean
//! forward/backward on a Yelp-like training graph.

use bsl_data::synth::{generate, SynthConfig};
use bsl_linalg::Matrix;
use bsl_models::propagation::Propagator;
use bsl_sparse::NormAdj;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_propagation(c: &mut Criterion) {
    let ds = generate(&SynthConfig::yelp_like(1));
    let adj = NormAdj::from_interactions(ds.n_users, ds.n_items, &ds.train_pairs());
    let mut rng = StdRng::seed_from_u64(0);
    let u = Matrix::gaussian(ds.n_users, 64, 0.1, &mut rng);
    let i = Matrix::gaussian(ds.n_items, 64, 0.1, &mut rng);

    c.bench_function("spmm_yelp_d64", |bench| bench.iter(|| adj.user_item.spmm(black_box(&i))));
    let prop = Propagator::new(adj.clone(), 3);
    c.bench_function("lightgcn_forward_3layer_d64", |bench| {
        bench.iter(|| prop.forward(black_box(&u), black_box(&i)))
    });
    c.bench_function("edge_dropout_renormalize", |bench| {
        bench.iter(|| adj.edge_dropout(0.2, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_propagation
}
criterion_main!(benches);
