//! Exact-sharded vs Hogwild epochs on the persistent-pool engine: the
//! same MF+BSL epoch at 2/4 workers under both sync modes, plus the
//! serial baseline. On a multi-core machine the hogwild lines should
//! undercut their exact counterparts (no shard merge, no Adam state, no
//! write-barrier between pass 2 and the optimizer); the accuracy side of
//! the trade-off is measured by `examples/hogwild_tradeoff.rs`, not here.

use bsl_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn epoch_cfg(threads: usize, sync: SyncMode) -> TrainConfig {
    TrainConfig {
        backbone: BackboneConfig::Mf,
        loss: LossConfig::Bsl { tau1: 0.3, tau2: 0.15 },
        epochs: 1,
        eval_every: 1,
        dim: 32,
        negatives: 64,
        batch_size: 512,
        patience: 0,
        threads,
        sync,
        ..TrainConfig::smoke()
    }
}

fn bench_training_hogwild(c: &mut Criterion) {
    let ds = Arc::new(generate(&SynthConfig::yelp_like(1)));

    // One Trainer per bench target, reused across iterations: the
    // persistent engine spawns its workers on the first fit only, so the
    // steady-state epochs measured here are completely spawn-free.
    c.bench_function("epoch_mf_bsl_yelp_serial", |b| {
        let trainer = Trainer::new(epoch_cfg(1, SyncMode::Exact));
        b.iter(|| trainer.fit(&ds))
    });
    for threads in [2usize, 4] {
        c.bench_function(&format!("epoch_mf_bsl_yelp_exact_threads{threads}"), |b| {
            let trainer = Trainer::new(epoch_cfg(threads, SyncMode::Exact));
            b.iter(|| trainer.fit(&ds))
        });
        c.bench_function(&format!("epoch_mf_bsl_yelp_hogwild_threads{threads}"), |b| {
            let trainer = Trainer::new(epoch_cfg(threads, SyncMode::Hogwild));
            b.iter(|| trainer.fit(&ds))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_training_hogwild
}
criterion_main!(benches);
