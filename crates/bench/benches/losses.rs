//! Loss forward+gradient benchmarks — one per loss in the zoo, on a
//! Table-II-shaped batch (B=512, m=64).

use bsl_losses::{build, LossConfig, ScoreBatch};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_losses(c: &mut Criterion) {
    let b = 512usize;
    let m = 64usize;
    let pos: Vec<f32> = (0..b).map(|i| ((i as f32 * 0.11).sin()) * 0.8).collect();
    let neg: Vec<f32> = (0..b * m).map(|i| ((i as f32 * 0.07).cos()) * 0.8).collect();

    for (name, cfg) in [
        ("bpr", LossConfig::Bpr),
        ("bce", LossConfig::Bce { neg_weight: 1.0 }),
        ("mse", LossConfig::Mse { neg_weight: 1.0 }),
        ("sl", LossConfig::Sl { tau: 0.1 }),
        ("bsl", LossConfig::Bsl { tau1: 0.15, tau2: 0.1 }),
        ("ccl", LossConfig::Ccl { margin: 0.4, neg_weight: 1.5 }),
        ("taylor_sl", LossConfig::TaylorSl { tau: 0.1, with_variance: true }),
    ] {
        let loss = build(cfg);
        c.bench_function(&format!("loss_{name}_b512_m64"), |bench| {
            bench.iter(|| loss.compute(black_box(&ScoreBatch::new(&pos, &neg, m))))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_losses
}
criterion_main!(benches);
