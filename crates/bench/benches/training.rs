//! End-to-end training-epoch benchmarks: MF+SL, MF+BSL and LightGCN+SL —
//! the wall-clock units every table/figure run is built from.

use bsl_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn epoch_cfg(backbone: BackboneConfig, loss: LossConfig) -> TrainConfig {
    TrainConfig {
        backbone,
        loss,
        epochs: 1,
        eval_every: 1,
        dim: 32,
        negatives: 32,
        batch_size: 512,
        patience: 0,
        ..TrainConfig::smoke()
    }
}

fn bench_training(c: &mut Criterion) {
    let ds = Arc::new(generate(&SynthConfig::tiny(1)));

    c.bench_function("epoch_mf_sl", |b| {
        let cfg = epoch_cfg(BackboneConfig::Mf, LossConfig::Sl { tau: 0.15 });
        b.iter(|| Trainer::new(cfg).fit(&ds))
    });
    c.bench_function("epoch_mf_bsl", |b| {
        let cfg = epoch_cfg(BackboneConfig::Mf, LossConfig::Bsl { tau1: 0.3, tau2: 0.15 });
        b.iter(|| Trainer::new(cfg).fit(&ds))
    });
    c.bench_function("epoch_lightgcn_sl", |b| {
        let cfg = epoch_cfg(BackboneConfig::LightGcn { layers: 2 }, LossConfig::Sl { tau: 0.15 });
        b.iter(|| Trainer::new(cfg).fit(&ds))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_training
}
criterion_main!(benches);
