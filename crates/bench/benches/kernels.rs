//! Vector-kernel microbenchmarks (the inner loops of scoring/backprop).

use bsl_linalg::kernels::{cosine_backward_into, dot, normalize_into};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_kernels(c: &mut Criterion) {
    let d = 64usize;
    let a: Vec<f32> = (0..d).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..d).map(|i| (i as f32 * 0.53).cos()).collect();
    let mut out = vec![0.0f32; d];

    c.bench_function("dot_d64", |bench| bench.iter(|| dot(black_box(&a), black_box(&b))));
    c.bench_function("normalize_d64", |bench| {
        bench.iter(|| normalize_into(black_box(&a), black_box(&mut out)))
    });
    c.bench_function("cosine_backward_d64", |bench| {
        let mut ahat = vec![0.0f32; d];
        let mut bhat = vec![0.0f32; d];
        let an = normalize_into(&a, &mut ahat);
        normalize_into(&b, &mut bhat);
        let s = dot(&ahat, &bhat);
        let mut grad = vec![0.0f32; d];
        bench.iter(|| {
            cosine_backward_into(
                black_box(0.1),
                black_box(s),
                black_box(&ahat),
                black_box(&bhat),
                black_box(an),
                black_box(&mut grad),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_kernels
}
criterion_main!(benches);
