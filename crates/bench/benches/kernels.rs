//! Vector-kernel microbenchmarks (the inner loops of scoring/backprop).
//!
//! The `*_scalar` variants pin [`SimdLevel::Scalar`] explicitly, so one
//! bench run records the dispatched-vs-reference speedup in place; the
//! blocked benches (`scores_block_*`, `normalize_rows_*`,
//! `cosine_backward_block_*`) cover the batch kernels the trainer and
//! evaluator hot paths run on. SpMM before/after lives in the
//! `propagation` bench (`spmm_yelp_d64`) — compare the committed
//! BENCHMARKS.md across PRs for that one.

use bsl_linalg::kernels::{axpy, cosine_backward_into, dot, normalize_into};
use bsl_linalg::simd::{
    self, cosine_backward_block, normalize_gather_into, normalize_rows_into, scores_block,
    SimdLevel,
};
use bsl_linalg::Matrix;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_kernels(c: &mut Criterion) {
    let d = 64usize;
    let m = 64usize;
    let a: Vec<f32> = (0..d).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..d).map(|i| (i as f32 * 0.53).cos()).collect();
    let mut out = vec![0.0f32; d];

    println!("simd dispatch: {}", simd::active());

    c.bench_function("dot_d64", |bench| bench.iter(|| dot(black_box(&a), black_box(&b))));
    c.bench_function("dot_d64_scalar", |bench| {
        bench.iter(|| simd::dot_with(SimdLevel::Scalar, black_box(&a), black_box(&b)))
    });
    c.bench_function("axpy_d64", |bench| {
        bench.iter(|| axpy(black_box(0.1), black_box(&a), black_box(&mut out)))
    });
    c.bench_function("normalize_d64", |bench| {
        bench.iter(|| normalize_into(black_box(&a), black_box(&mut out)))
    });
    c.bench_function("cosine_backward_d64", |bench| {
        let mut ahat = vec![0.0f32; d];
        let mut bhat = vec![0.0f32; d];
        let an = normalize_into(&a, &mut ahat);
        normalize_into(&b, &mut bhat);
        let s = dot(&ahat, &bhat);
        let mut grad = vec![0.0f32; d];
        bench.iter(|| {
            cosine_backward_into(
                black_box(0.1),
                black_box(s),
                black_box(&ahat),
                black_box(&bhat),
                black_box(an),
                black_box(&mut grad),
            )
        })
    });
    c.bench_function("cosine_backward_d64_scalar", |bench| {
        let mut ahat = vec![0.0f32; d];
        let mut bhat = vec![0.0f32; d];
        let an = normalize_into(&a, &mut ahat);
        normalize_into(&b, &mut bhat);
        let s = dot(&ahat, &bhat);
        let mut grad = vec![0.0f32; d];
        bench.iter(|| {
            simd::cosine_backward_into_with(
                SimdLevel::Scalar,
                black_box(0.1),
                black_box(s),
                black_box(&ahat),
                black_box(&bhat),
                black_box(an),
                black_box(&mut grad),
            )
        })
    });

    // Blocked kernels: one user row against an m-row item block (the
    // sampled-softmax inner loop) and whole-matrix row normalization (the
    // evaluator's pre-pass).
    let block: Vec<f32> = (0..m * d).map(|i| (i as f32 * 0.211).sin()).collect();
    let mut scores = vec![0.0f32; m];
    c.bench_function("scores_block_d64_m64", |bench| {
        bench.iter(|| scores_block(black_box(&a), black_box(&block), black_box(&mut scores)))
    });
    c.bench_function("cosine_backward_block_d64_m64", |bench| {
        let gs: Vec<f32> = (0..m).map(|j| 0.01 * j as f32 - 0.3).collect();
        let ss: Vec<f32> = (0..m).map(|j| 0.013 * j as f32 - 0.4).collect();
        let mut grad = vec![0.0f32; d];
        bench.iter(|| {
            cosine_backward_block(
                black_box(&gs),
                black_box(&ss),
                black_box(&a),
                black_box(1.1),
                black_box(&block),
                black_box(&mut grad),
            )
        })
    });
    let rows = Matrix::from_fn(512, d, |r, cix| ((r * 31 + cix * 7) % 13) as f32 * 0.2 - 1.0);
    let mut unit = Matrix::zeros(512, d);
    let mut norms = vec![0.0f32; 512];
    c.bench_function("normalize_rows_512_d64", |bench| {
        bench.iter(|| {
            normalize_rows_into(black_box(&rows), black_box(&mut unit), black_box(&mut norms))
        })
    });

    // Catalogue-scale gather: 64 pseudo-random rows out of a 200k × 64
    // item table (~51 MB — far beyond LLC), the access pattern of the
    // sampled trainer's negative blocks on a real catalogue. This is the
    // case the software prefetch in `normalize_gather_into` targets; the
    // dense-table `normalize_rows_512_d64` bench above is the
    // cache-resident contrast.
    let catalog = Matrix::from_fn(200_000, d, |r, cix| ((r * 131 + cix * 17) % 23) as f32 * 0.1);
    let gather_ids: Vec<u32> =
        (0..m as u32).map(|j| j.wrapping_mul(48_271).wrapping_mul(4099) % 200_000).collect();
    let mut gblock = vec![0.0f32; m * d];
    let mut gnorms = vec![0.0f32; m];
    c.bench_function("normalize_gather_200k_d64_m64", |bench| {
        bench.iter(|| {
            normalize_gather_into(
                black_box(&catalog),
                black_box(&gather_ids),
                black_box(&mut gblock),
                black_box(&mut gnorms),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_kernels
}
criterion_main!(benches);
