//! Parallel-epoch benchmarks: the same MF+BSL epoch on a Yelp-like
//! synthetic dataset at 1/2/4 worker threads, plus the sharded in-batch
//! step. Compare `threads1` vs `threads4` to read the epoch speedup
//! (`threads = 1` is the bit-exact serial baseline; the acceptance target
//! is ≥ 2× at 4 threads on a ≥ 4-core machine).

use bsl_core::prelude::*;
use bsl_core::SamplingConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn epoch_cfg(threads: usize) -> TrainConfig {
    TrainConfig {
        backbone: BackboneConfig::Mf,
        loss: LossConfig::Bsl { tau1: 0.3, tau2: 0.15 },
        epochs: 1,
        eval_every: 1,
        dim: 32,
        negatives: 64,
        batch_size: 512,
        patience: 0,
        threads,
        ..TrainConfig::smoke()
    }
}

fn bench_training_parallel(c: &mut Criterion) {
    let ds = Arc::new(generate(&SynthConfig::yelp_like(1)));

    // One Trainer per target, reused across iterations: the persistent
    // engine's workers spawn on the first fit and every measured epoch
    // after that is spawn-free (pre-pool, each batch paid 2–3 scoped
    // spawn rounds and each epoch re-spawned its sampling threads).
    for threads in [1usize, 2, 4] {
        c.bench_function(&format!("epoch_mf_bsl_yelp_threads{threads}"), |b| {
            let trainer = Trainer::new(epoch_cfg(threads));
            b.iter(|| trainer.fit(&ds))
        });
    }

    // The sharded B × B in-batch similarity path.
    for threads in [1usize, 4] {
        let cfg = TrainConfig {
            sampling: SamplingConfig::InBatch,
            batch_size: 256,
            ..epoch_cfg(threads)
        };
        c.bench_function(&format!("epoch_mf_bsl_inbatch_threads{threads}"), |b| {
            let trainer = Trainer::new(cfg);
            b.iter(|| trainer.fit(&ds))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_training_parallel
}
criterion_main!(benches);
