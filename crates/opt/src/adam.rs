//! Adam (Kingma & Ba) with dense and lazy-row update paths.
//!
//! Both paths route through the fused [`bsl_linalg::simd::adam_update`]
//! kernel (runtime-dispatched scalar / unrolled / AVX2+FMA): the moment
//! EMAs and the bias-corrected parameter step run as one kernel call per
//! row (lazy path) or per matrix (dense path). Scalar dispatch is
//! bit-identical to the historical three-loop implementation.

use bsl_linalg::simd;
use bsl_linalg::Matrix;

/// Adam state for one parameter matrix.
#[derive(Clone, Debug)]
pub struct Adam {
    m: Matrix,
    v: Matrix,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    /// Reusable dedup scratch for [`Adam::step_rows`], lazily sized to the
    /// row count once and reset per call in O(touched rows).
    seen: Vec<bool>,
}

impl Adam {
    /// Fresh state for a `rows × cols` parameter with the standard
    /// hyperparameters (β1 = 0.9, β2 = 0.999, ε = 1e-8) the paper's
    /// baselines all use.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_betas(rows, cols, 0.9, 0.999, 1e-8)
    }

    /// Fresh state with explicit moment decays.
    ///
    /// # Panics
    /// Panics unless `0 <= beta < 1` for both betas and `eps > 0`.
    pub fn with_betas(rows: usize, cols: usize, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1), got {beta1}");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1), got {beta2}");
        assert!(eps > 0.0, "eps must be positive");
        Self {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            beta1,
            beta2,
            eps,
            t: 0,
            seen: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Advances the global step counter; call exactly once per optimizer
    /// step before [`Self::update_row`] / the dense path handles this
    /// itself in [`Self::step_dense`].
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    #[inline]
    fn bias_corrections(&self) -> (f32, f32) {
        let t = self.t.max(1) as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        (bc1, bc2)
    }

    /// Lazy per-row update: applies one Adam update to `param` row
    /// `row` with gradient `grad`. Must be preceded by [`Self::begin_step`]
    /// once per batch. Rows not visited keep stale moments (lazy Adam).
    ///
    /// # Panics
    /// Panics if dimensions disagree (debug builds check per element).
    pub fn update_row(&mut self, param: &mut [f32], row: usize, grad: &[f32], lr: f32) {
        debug_assert_eq!(param.len(), grad.len());
        let (bc1, bc2) = self.bias_corrections();
        simd::adam_update(
            param,
            self.m.row_mut(row),
            self.v.row_mut(row),
            grad,
            lr,
            self.beta1,
            self.beta2,
            bc1,
            bc2,
            self.eps,
        );
    }

    /// Dense update of a whole parameter matrix. Advances the step counter
    /// itself.
    ///
    /// # Panics
    /// Panics if shapes disagree.
    pub fn step_dense(&mut self, param: &mut Matrix, grad: &Matrix, lr: f32) {
        assert_eq!(param.shape(), grad.shape(), "adam gradient shape mismatch");
        assert_eq!(param.shape(), self.m.shape(), "adam state shape mismatch");
        self.begin_step();
        let (bc1, bc2) = self.bias_corrections();
        simd::adam_update(
            param.as_mut_slice(),
            self.m.as_mut_slice(),
            self.v.as_mut_slice(),
            grad.as_slice(),
            lr,
            self.beta1,
            self.beta2,
            bc1,
            bc2,
            self.eps,
        );
    }

    /// Lazy update over an explicit list of touched rows: one
    /// [`Self::begin_step`] followed by [`Self::update_row`] per distinct
    /// row. Duplicate rows in `rows` are skipped after their first visit
    /// (the gradient buffer already accumulates duplicates).
    pub fn step_rows(&mut self, param: &mut Matrix, grad: &Matrix, rows: &[u32], lr: f32) {
        assert_eq!(param.shape(), grad.shape(), "adam gradient shape mismatch");
        self.begin_step();
        // Dedup via the persistent `seen` scratch: one lazy allocation per
        // optimizer, reset below in O(touched) — per-call cost scales with
        // the batch footprint, not the parameter row count.
        if self.seen.len() < param.rows() {
            self.seen.resize(param.rows(), false);
        }
        // Split borrow via one reused row copy (rows are short: d ≤ 512).
        let mut g = vec![0.0f32; param.cols()];
        for &r in rows {
            let r = r as usize;
            if self.seen[r] {
                continue;
            }
            self.seen[r] = true;
            g.copy_from_slice(grad.row(r));
            self.update_row(param.row_mut(r), r, &g, lr);
        }
        for &r in rows {
            self.seen[r as usize] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// One dense Adam step from zero state has magnitude ≈ lr in every
    /// coordinate with a non-zero gradient (the classic Adam property).
    #[test]
    fn first_step_has_lr_magnitude() {
        let mut p = Matrix::from_vec(1, 3, vec![0.0, 0.0, 0.0]);
        let g = Matrix::from_vec(1, 3, vec![10.0, -0.3, 1e-4]);
        let mut adam = Adam::new(1, 3);
        adam.step_dense(&mut p, &g, 0.01);
        for (i, &x) in p.as_slice().iter().enumerate() {
            let sign = if g.as_slice()[i] > 0.0 { -1.0 } else { 1.0 };
            assert!((x - sign * 0.01).abs() < 1e-3, "coord {i}: {x}");
        }
    }

    #[test]
    fn zero_gradient_leaves_param_unchanged() {
        let mut p = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        let g = Matrix::zeros(1, 2);
        let mut adam = Adam::new(1, 2);
        adam.step_dense(&mut p, &g, 0.1);
        assert_eq!(p.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn converges_on_quadratic() {
        // minimize f(x) = ||x - target||^2 with Adam.
        let target = [3.0f32, -1.5, 0.25];
        let mut p = Matrix::zeros(1, 3);
        let mut adam = Adam::new(1, 3);
        for _ in 0..2000 {
            let g = Matrix::from_vec(
                1,
                3,
                p.as_slice().iter().zip(target.iter()).map(|(&x, &t)| 2.0 * (x - t)).collect(),
            );
            adam.step_dense(&mut p, &g, 0.05);
        }
        for (x, t) in p.as_slice().iter().zip(target.iter()) {
            assert!((x - t).abs() < 1e-2, "{x} vs {t}");
        }
    }

    #[test]
    fn lazy_rows_only_touch_listed_rows() {
        let mut p = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let before = p.clone();
        let mut grad = Matrix::zeros(4, 2);
        grad.row_mut(1).copy_from_slice(&[1.0, 1.0]);
        grad.row_mut(3).copy_from_slice(&[-1.0, 2.0]);
        let mut adam = Adam::new(4, 2);
        adam.step_rows(&mut p, &grad, &[1, 3, 1], 0.1);
        assert_eq!(p.row(0), before.row(0));
        assert_eq!(p.row(2), before.row(2));
        assert_ne!(p.row(1), before.row(1));
        assert_ne!(p.row(3), before.row(3));
    }

    #[test]
    fn duplicate_rows_update_once() {
        let mut p1 = Matrix::zeros(2, 2);
        let mut p2 = Matrix::zeros(2, 2);
        let mut grad = Matrix::zeros(2, 2);
        grad.row_mut(0).copy_from_slice(&[1.0, -1.0]);
        let mut a1 = Adam::new(2, 2);
        let mut a2 = Adam::new(2, 2);
        a1.step_rows(&mut p1, &grad, &[0, 0, 0], 0.1);
        a2.step_rows(&mut p2, &grad, &[0], 0.1);
        assert_eq!(p1.as_slice(), p2.as_slice());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn dense_step_rejects_shape_mismatch() {
        let mut p = Matrix::zeros(2, 2);
        let g = Matrix::zeros(2, 3);
        Adam::new(2, 2).step_dense(&mut p, &g, 0.1);
    }

    proptest! {
        /// Adam step magnitude is bounded by ~lr regardless of gradient
        /// scale (scale invariance of the update).
        #[test]
        fn prop_step_bounded_by_lr(g0 in -1e4f32..1e4, g1 in -1e4f32..1e4) {
            let mut p = Matrix::zeros(1, 2);
            let g = Matrix::from_vec(1, 2, vec![g0, g1]);
            let mut adam = Adam::new(1, 2);
            adam.step_dense(&mut p, &g, 0.01);
            for &x in p.as_slice() {
                prop_assert!(x.abs() <= 0.0101);
            }
        }

        #[test]
        fn prop_descends_opposite_gradient_sign(g in 0.01f32..100.0) {
            let mut p = Matrix::zeros(1, 1);
            let grad = Matrix::from_vec(1, 1, vec![g]);
            let mut adam = Adam::new(1, 1);
            adam.step_dense(&mut p, &grad, 0.05);
            prop_assert!(p.get(0, 0) < 0.0);
        }
    }
}
