//! First-order optimizers for the embedding models.
//!
//! The trainer hands each parameter tensor its own [`Adam`] state. MF-style
//! backbones touch only a few embedding rows per batch, so [`Adam`] exposes
//! both a dense step ([`Adam::step_dense`]) and a *lazy* per-row step
//! ([`Adam::step_rows`]) that only updates the moments of touched rows (the
//! standard "lazy Adam" used by embedding systems; moments of untouched
//! rows are frozen rather than decayed, which is the usual, documented
//! approximation).

// Enforced by bsl-audit (audit/policy.toml): this crate is not on the
// unsafe allowlist.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adam;
pub mod schedule;
pub mod sgd;

pub use adam::Adam;
pub use schedule::LrSchedule;
pub use sgd::{sgd_step_row, Sgd};
