//! Plain (optionally momentum) SGD — used by the ENMF baseline and as a
//! reference optimizer in tests. The plain step is one dispatched `axpy`;
//! the momentum step runs the fused single-pass
//! [`bsl_linalg::simd::sgd_momentum_update`] kernel.

use bsl_linalg::kernels::axpy;
use bsl_linalg::simd::{scale, sgd_momentum_update};
use bsl_linalg::Matrix;

/// One plain-SGD update of a single row with coupled L2:
/// `p ← (1 − lr·l2)·p − lr·g`, as two dispatched SIMD kernel calls
/// (`scale` + `axpy`).
///
/// This is the sparse-row apply the Hogwild trainer runs on each touched
/// embedding row (on a local copy of the row, between the lock-free load
/// and store); it is also usable as a momentum-free alternative to
/// [`Adam::step_rows`](crate::Adam::step_rows) over any explicit row set.
pub fn sgd_step_row(param: &mut [f32], grad: &[f32], lr: f32, l2: f32) {
    debug_assert_eq!(param.len(), grad.len());
    if l2 != 0.0 {
        scale(1.0 - lr * l2, param);
    }
    axpy(-lr, grad, param);
}

/// SGD with optional classical momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    velocity: Option<Matrix>,
    momentum: f32,
}

impl Sgd {
    /// Momentum-free SGD.
    pub fn new() -> Self {
        Self { velocity: None, momentum: 0.0 }
    }

    /// SGD with classical momentum `mu` for a `rows × cols` parameter.
    ///
    /// # Panics
    /// Panics unless `0 <= mu < 1`.
    pub fn with_momentum(rows: usize, cols: usize, mu: f32) -> Self {
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0,1), got {mu}");
        Self { velocity: Some(Matrix::zeros(rows, cols)), momentum: mu }
    }

    /// One dense step: `p ← p − lr·(v ← μ·v + g)`.
    ///
    /// # Panics
    /// Panics if shapes disagree.
    pub fn step_dense(&mut self, param: &mut Matrix, grad: &Matrix, lr: f32) {
        assert_eq!(param.shape(), grad.shape(), "sgd gradient shape mismatch");
        match &mut self.velocity {
            Some(v) => {
                assert_eq!(v.shape(), param.shape(), "sgd state shape mismatch");
                sgd_momentum_update(
                    param.as_mut_slice(),
                    v.as_mut_slice(),
                    grad.as_slice(),
                    lr,
                    self.momentum,
                );
            }
            None => {
                axpy(-lr, grad.as_slice(), param.as_mut_slice());
            }
        }
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_step_is_axpy() {
        let mut p = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let g = Matrix::from_vec(1, 2, vec![10.0, -10.0]);
        Sgd::new().step_dense(&mut p, &g, 0.1);
        // FMA dispatch keeps the exact product −0.1·10, so 1 − 1 lands a
        // rounding away from zero — compare within float tolerance.
        for (got, want) in p.as_slice().iter().zip([0.0f32, 3.0]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn momentum_accumulates() {
        let mut p = Matrix::zeros(1, 1);
        let g = Matrix::from_vec(1, 1, vec![1.0]);
        let mut opt = Sgd::with_momentum(1, 1, 0.9);
        opt.step_dense(&mut p, &g, 1.0); // v=1, p=-1
        opt.step_dense(&mut p, &g, 1.0); // v=1.9, p=-2.9
        assert!((p.get(0, 0) + 2.9).abs() < 1e-6);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut p = Matrix::zeros(1, 1);
        let mut opt = Sgd::with_momentum(1, 1, 0.5);
        for _ in 0..500 {
            let g = Matrix::from_vec(1, 1, vec![2.0 * (p.get(0, 0) - 4.0)]);
            opt.step_dense(&mut p, &g, 0.05);
        }
        assert!((p.get(0, 0) - 4.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn rejects_bad_momentum() {
        let _ = Sgd::with_momentum(1, 1, 1.0);
    }

    #[test]
    fn step_row_descends_and_applies_coupled_l2() {
        let mut p = vec![1.0f32, -2.0];
        sgd_step_row(&mut p, &[0.5, -0.5], 0.1, 0.0);
        for (got, want) in p.iter().zip([0.95f32, -1.95]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        // With l2: p ← (1 − lr·l2)·p − lr·g.
        let mut p = vec![1.0f32];
        sgd_step_row(&mut p, &[0.0], 0.1, 0.5);
        assert!((p[0] - 0.95).abs() < 1e-6, "{}", p[0]);
    }
}
