//! Learning-rate schedules.

/// A learning-rate schedule evaluated per epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate (the paper's protocol).
    Constant(f32),
    /// `lr = base · decay^epoch`.
    Exponential {
        /// Initial learning rate.
        base: f32,
        /// Per-epoch multiplicative decay in `(0, 1]`.
        decay: f32,
    },
    /// Linear warmup over `warmup` epochs followed by a constant rate.
    Warmup {
        /// Target learning rate after warmup.
        base: f32,
        /// Number of warmup epochs.
        warmup: usize,
    },
}

impl LrSchedule {
    /// Learning rate for `epoch` (0-based).
    pub fn at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::Exponential { base, decay } => base * decay.powi(epoch as i32),
            LrSchedule::Warmup { base, warmup } => {
                if warmup == 0 || epoch >= warmup {
                    base
                } else {
                    base * (epoch + 1) as f32 / warmup as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.01);
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(1000), 0.01);
    }

    #[test]
    fn exponential_decays() {
        let s = LrSchedule::Exponential { base: 1.0, decay: 0.5 };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(2), 0.25);
    }

    #[test]
    fn warmup_ramps_then_flat() {
        let s = LrSchedule::Warmup { base: 0.1, warmup: 4 };
        assert!((s.at(0) - 0.025).abs() < 1e-7);
        assert!((s.at(3) - 0.1).abs() < 1e-7);
        assert_eq!(s.at(10), 0.1);
    }

    #[test]
    fn zero_warmup_is_constant() {
        let s = LrSchedule::Warmup { base: 0.2, warmup: 0 };
        assert_eq!(s.at(0), 0.2);
    }
}
