//! Finite-difference gradient checking shared by the loss and model tests.

use crate::{RankingLoss, ScoreBatch};

/// Verifies the analytic gradients of `loss` against central finite
/// differences on the given batch.
///
/// `tol` is a relative tolerance: the check passes when
/// `|analytic − numeric| ≤ tol · (1 + |numeric|)` for every coordinate.
///
/// # Panics
/// Panics (with the offending coordinate) on the first mismatch — intended
/// for use inside `#[test]` functions.
pub fn assert_grads_match(loss: &dyn RankingLoss, pos: &[f32], neg: &[f32], m: usize, tol: f64) {
    let h = 1e-3f32;
    let base = loss.compute(&ScoreBatch::new(pos, neg, m));

    let mut pos_buf = pos.to_vec();
    for k in 0..pos.len() {
        let orig = pos_buf[k];
        pos_buf[k] = orig + h;
        let up = loss.compute(&ScoreBatch::new(&pos_buf, neg, m)).loss;
        pos_buf[k] = orig - h;
        let down = loss.compute(&ScoreBatch::new(&pos_buf, neg, m)).loss;
        pos_buf[k] = orig;
        let numeric = (up - down) / (2.0 * h as f64);
        let analytic = base.grad_pos[k] as f64;
        assert!(
            (analytic - numeric).abs() <= tol * (1.0 + numeric.abs()),
            "{}: grad_pos[{k}] analytic {analytic} vs numeric {numeric}",
            loss.name()
        );
    }

    let mut neg_buf = neg.to_vec();
    for k in 0..neg.len() {
        let orig = neg_buf[k];
        neg_buf[k] = orig + h;
        let up = loss.compute(&ScoreBatch::new(pos, &neg_buf, m)).loss;
        neg_buf[k] = orig - h;
        let down = loss.compute(&ScoreBatch::new(pos, &neg_buf, m)).loss;
        neg_buf[k] = orig;
        let numeric = (up - down) / (2.0 * h as f64);
        let analytic = base.grad_neg[k] as f64;
        assert!(
            (analytic - numeric).abs() <= tol * (1.0 + numeric.abs()),
            "{}: grad_neg[{k}] analytic {analytic} vs numeric {numeric}",
            loss.name()
        );
    }
}

/// Deterministic pseudo-random score batch for gradient checks: scores in
/// roughly `[-0.9, 0.9]` (the cosine-similarity range the models produce).
pub fn synthetic_scores(b: usize, m: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    // Tiny xorshift so test inputs do not depend on the rand crate here.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 1.8 - 0.9
    };
    let pos: Vec<f32> = (0..b).map(|_| next()).collect();
    let neg: Vec<f32> = (0..b * m).map(|_| next()).collect();
    (pos, neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_scores_in_range_and_deterministic() {
        let (p1, n1) = synthetic_scores(4, 3, 7);
        let (p2, n2) = synthetic_scores(4, 3, 7);
        assert_eq!(p1, p2);
        assert_eq!(n1, n2);
        assert!(p1.iter().chain(n1.iter()).all(|&x| (-0.95..=0.95).contains(&x)));
        let (p3, _) = synthetic_scores(4, 3, 8);
        assert_ne!(p1, p3);
    }
}
