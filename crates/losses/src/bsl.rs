//! Bilateral Softmax Loss (BSL) — the paper's contribution (Eq. 18).
//!
//! BSL applies the Log-Expectation-Exp structure to **both** sides:
//!
//! ```text
//! L_BSL(u) = −τ1·log E_{i∼P+}[exp(f(u,i)/τ1)] + τ2·log E_{j∼P−}[exp(f(u,j)/τ2)]
//! ```
//!
//! With one sampled positive per batch row (the paper's Algorithm 1), the
//! expectation over positives is realized across the batch: each row `b`
//! carries the DRO-corrected margin
//!
//! ```text
//! z_b = p_b − τ2·logmeanexp_j(n_bj / τ2)
//! ```
//!
//! and the loss pools rows through the positive-side Log-E-Exp:
//!
//! ```text
//! L = −τ1 · logmeanexp_b(z_b / τ1)
//! ```
//!
//! This is exactly "one line changed vs. SL": the uniform row weight `1/B`
//! becomes the softmax weight `w_b = softmax_b(z_b/τ1)`. Rows whose
//! positive already scores well above their negatives (`z_b` large — clean
//! positives) get *more* weight; rows with low `z_b` (likely false
//! positives) are attenuated, which is the positive-side robustness
//! mechanism of §IV-B. As `τ1 → ∞` the weights flatten to `1/B` and BSL
//! degenerates to [`crate::SoftmaxLoss`] exactly.

use crate::{LossOutput, RankingLoss, ScoreBatch};
use bsl_linalg::stats::{logsumexp, softmax_into};

/// The Bilateral Softmax Loss with positive temperature `τ1` and negative
/// temperature `τ2`.
#[derive(Clone, Copy, Debug)]
pub struct Bsl {
    tau1: f32,
    tau2: f32,
}

impl Bsl {
    /// Creates BSL.
    ///
    /// # Panics
    /// Panics unless both temperatures are positive.
    pub fn new(tau1: f32, tau2: f32) -> Self {
        assert!(tau1 > 0.0, "tau1 must be positive, got {tau1}");
        assert!(tau2 > 0.0, "tau2 must be positive, got {tau2}");
        Self { tau1, tau2 }
    }

    /// Positive-side temperature τ1.
    #[inline]
    pub fn tau1(&self) -> f32 {
        self.tau1
    }

    /// Negative-side temperature τ2.
    #[inline]
    pub fn tau2(&self) -> f32 {
        self.tau2
    }

    /// The DRO-corrected margins `z_b` and positive-side row weights `w_b`
    /// for a batch. Exposed for the positive-denoising diagnostics.
    pub fn row_weights(&self, batch: &ScoreBatch<'_>) -> (Vec<f32>, Vec<f32>) {
        let m_ln = (batch.m as f64).ln();
        let z: Vec<f32> = (0..batch.len())
            .map(|row| {
                let negs = batch.negs_of(row);
                let scaled: Vec<f32> = negs.iter().map(|&n| n / self.tau2).collect();
                let lme = logsumexp(&scaled) - m_ln;
                (batch.pos[row] as f64 - self.tau2 as f64 * lme) as f32
            })
            .collect();
        let mut w = vec![0.0f32; z.len()];
        softmax_into(&z, self.tau1, &mut w);
        (z, w)
    }
}

impl RankingLoss for Bsl {
    fn name(&self) -> &'static str {
        "BSL"
    }

    fn compute(&self, batch: &ScoreBatch<'_>) -> LossOutput {
        let (z, w) = self.row_weights(batch);
        // L = −τ1·logmeanexp_b(z_b/τ1)
        let scaled: Vec<f32> = z.iter().map(|&zb| zb / self.tau1).collect();
        let lme = logsumexp(&scaled) - (batch.len() as f64).ln();
        let loss = -(self.tau1 as f64) * lme;

        let mut grad_pos = Vec::with_capacity(batch.len());
        let mut grad_neg = vec![0.0f32; batch.neg.len()];
        for (row, &wb) in w.iter().enumerate() {
            // ∂L/∂z_b = −w_b; ∂z_b/∂p_b = 1; ∂z_b/∂n_bj = −q_bj.
            grad_pos.push(-wb);
            let out = &mut grad_neg[row * batch.m..(row + 1) * batch.m];
            softmax_into(batch.negs_of(row), self.tau2, out);
            for g in out.iter_mut() {
                *g *= wb;
            }
        }
        LossOutput { loss, grad_pos, grad_neg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{assert_grads_match, synthetic_scores};
    use crate::SoftmaxLoss;
    use proptest::prelude::*;

    #[test]
    fn gradcheck_matched_and_split_temperatures() {
        let (pos, neg) = synthetic_scores(5, 4, 17);
        assert_grads_match(&Bsl::new(0.1, 0.1), &pos, &neg, 4, 2e-3);
        assert_grads_match(&Bsl::new(0.15, 0.1), &pos, &neg, 4, 2e-3);
        assert_grads_match(&Bsl::new(0.08, 0.12), &pos, &neg, 4, 2e-3);
    }

    #[test]
    fn large_tau1_recovers_sl_gradients() {
        let (pos, neg) = synthetic_scores(6, 5, 4);
        let tau2 = 0.11f32;
        let bsl = Bsl::new(1e6, tau2).compute(&ScoreBatch::new(&pos, &neg, 5));
        let sl = SoftmaxLoss::new(tau2).compute(&ScoreBatch::new(&pos, &neg, 5));
        for (a, b) in bsl.grad_pos.iter().zip(sl.grad_pos.iter()) {
            assert!((a - b).abs() < 1e-4, "pos grad {a} vs {b}");
        }
        for (a, b) in bsl.grad_neg.iter().zip(sl.grad_neg.iter()) {
            assert!((a - b).abs() < 1e-4, "neg grad {a} vs {b}");
        }
    }

    #[test]
    fn low_margin_rows_are_downweighted() {
        // Row 0: clean positive (scores far above negatives).
        // Row 1: suspicious positive (scores below its negatives).
        let pos = [0.9f32, -0.5];
        let neg = [0.0f32, 0.1, 0.3, 0.4];
        let bsl = Bsl::new(0.2, 0.1);
        let (_, w) = bsl.row_weights(&ScoreBatch::new(&pos, &neg, 2));
        assert!(w[0] > w[1], "clean row should outweigh noisy row: {w:?}");
        let out = bsl.compute(&ScoreBatch::new(&pos, &neg, 2));
        assert!(out.grad_pos[0].abs() > out.grad_pos[1].abs());
    }

    #[test]
    fn weights_sharpen_as_tau1_drops() {
        let pos = [0.9f32, -0.5];
        let neg = [0.0f32, 0.1, 0.3, 0.4];
        let (_, sharp) = Bsl::new(0.05, 0.1).row_weights(&ScoreBatch::new(&pos, &neg, 2));
        let (_, soft) = Bsl::new(1.0, 0.1).row_weights(&ScoreBatch::new(&pos, &neg, 2));
        assert!(sharp[0] > soft[0]);
    }

    proptest! {
        #[test]
        fn prop_row_weights_are_distribution(
            b in 1usize..8,
            m in 1usize..6,
            seed in 0u64..300,
            tau1 in 0.05f32..2.0,
            tau2 in 0.05f32..2.0,
        ) {
            let (pos, neg) = synthetic_scores(b, m, seed);
            let (_, w) = Bsl::new(tau1, tau2).row_weights(&ScoreBatch::new(&pos, &neg, m));
            let s: f64 = w.iter().map(|&x| x as f64).sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        /// Total gradient mass on positives equals −1 (the pooled softmax
        /// weights), and each row's negative mass equals its positive mass.
        #[test]
        fn prop_gradient_mass_balance(
            b in 1usize..6,
            m in 1usize..6,
            seed in 0u64..300,
        ) {
            let (pos, neg) = synthetic_scores(b, m, seed);
            let out = Bsl::new(0.2, 0.1).compute(&ScoreBatch::new(&pos, &neg, m));
            let pos_mass: f64 = out.grad_pos.iter().map(|&g| g as f64).sum();
            prop_assert!((pos_mass + 1.0).abs() < 1e-4);
            for row in 0..b {
                let neg_mass: f64 = out.grad_neg[row * m..(row + 1) * m]
                    .iter().map(|&g| g as f64).sum();
                prop_assert!((neg_mass + out.grad_pos[row] as f64).abs() < 1e-4);
            }
        }

        /// BSL's loss never exceeds SL's on the same batch when τ1 is
        /// finite: log-mean-exp ≥ mean ⇒ −τ1·lme(z/τ1) ≤ −mean(z) = L_SL.
        #[test]
        fn prop_bsl_lower_bounds_sl(
            b in 1usize..6,
            m in 1usize..6,
            seed in 0u64..300,
            tau1 in 0.05f32..1.0,
        ) {
            let (pos, neg) = synthetic_scores(b, m, seed);
            let tau2 = 0.1f32;
            let bsl = Bsl::new(tau1, tau2).compute(&ScoreBatch::new(&pos, &neg, m)).loss;
            let sl = SoftmaxLoss::new(tau2).compute(&ScoreBatch::new(&pos, &neg, m)).loss;
            prop_assert!(bsl <= sl + 1e-5, "BSL {bsl} > SL {sl}");
        }
    }
}
