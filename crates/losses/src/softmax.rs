//! Softmax loss (SL) — paper Eq. 4/5.
//!
//! Implemented in the decomposed Eq.-5 form
//!
//! ```text
//! L = mean_b [ −p_b  +  τ · logmeanexp_j(n_bj / τ) ]
//! ```
//!
//! i.e. the positive part is the plain expectation and the negative part is
//! the Log-Expectation-Exp structure whose DRO interpretation Section III
//! of the paper establishes. We keep the *unscaled* Eq.-5 normalization
//! (no global `1/τ` factor) so that [`crate::Bsl`] with `τ1 → ∞`
//! reproduces SL *exactly*, gradients included; the common InfoNCE-style
//! `1/τ` rescaling only changes the effective learning rate.

use crate::{LossOutput, RankingLoss, ScoreBatch};
use bsl_linalg::stats::{logsumexp, softmax_into};

/// The Softmax loss with temperature `τ` (paper Eq. 5).
///
/// Gradients: `∂L/∂p_b = −1/B` and `∂L/∂n_bj = q_bj / B` where
/// `q_bj = softmax_j(n_bj/τ)` — the worst-case DRO weights of Lemma 1.
#[derive(Clone, Copy, Debug)]
pub struct SoftmaxLoss {
    tau: f32,
}

impl SoftmaxLoss {
    /// Creates SL with temperature `tau`.
    ///
    /// # Panics
    /// Panics if `tau <= 0`.
    pub fn new(tau: f32) -> Self {
        assert!(tau > 0.0, "temperature must be positive, got {tau}");
        Self { tau }
    }

    /// The temperature τ.
    #[inline]
    pub fn tau(&self) -> f32 {
        self.tau
    }

    /// The DRO worst-case weights `q_bj = softmax_j(n_bj/τ)` for row `b` of
    /// `batch`, written into `out` (length `m`). Exposed for the Fig-4b
    /// analysis.
    pub fn worst_case_row(&self, batch: &ScoreBatch<'_>, b: usize, out: &mut [f32]) {
        softmax_into(batch.negs_of(b), self.tau, out);
    }
}

impl RankingLoss for SoftmaxLoss {
    fn name(&self) -> &'static str {
        "SL"
    }

    fn compute(&self, batch: &ScoreBatch<'_>) -> LossOutput {
        let b_count = batch.len() as f64;
        let inv_b = 1.0 / b_count;
        let tau = self.tau as f64;
        let m = batch.m as f64;

        let mut loss = 0.0f64;
        let mut grad_pos = Vec::with_capacity(batch.len());
        let mut grad_neg = vec![0.0f32; batch.neg.len()];
        for (row, &p) in batch.pos.iter().enumerate() {
            let negs = batch.negs_of(row);
            // τ · logmeanexp(n/τ) computed stably via scaled inputs.
            let scaled: Vec<f32> = negs.iter().map(|&n| n / self.tau).collect();
            let lme = logsumexp(&scaled) - m.ln();
            loss += inv_b * (-(p as f64) + tau * lme);
            grad_pos.push(-(inv_b as f32));
            let out = &mut grad_neg[row * batch.m..(row + 1) * batch.m];
            softmax_into(negs, self.tau, out);
            for g in out.iter_mut() {
                *g *= inv_b as f32;
            }
        }
        LossOutput { loss, grad_pos, grad_neg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{assert_grads_match, synthetic_scores};
    use proptest::prelude::*;

    #[test]
    fn gradcheck_various_taus() {
        let (pos, neg) = synthetic_scores(6, 5, 3);
        for tau in [0.07f32, 0.1, 0.2, 1.0] {
            assert_grads_match(&SoftmaxLoss::new(tau), &pos, &neg, 5, 2e-3);
        }
    }

    #[test]
    fn negative_gradients_are_softmax_weights() {
        let pos = [0.5f32];
        let neg = [0.1f32, 0.4, -0.2];
        let out = SoftmaxLoss::new(0.1).compute(&ScoreBatch::new(&pos, &neg, 3));
        let sum: f32 = out.grad_neg.iter().sum();
        // Row weights sum to 1/B = 1.
        assert!((sum - 1.0).abs() < 1e-5);
        // The hardest (highest-scoring) negative carries the most weight.
        let max_idx =
            out.grad_neg.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
        assert_eq!(max_idx, Some(1));
    }

    #[test]
    fn lower_tau_sharpens_weights() {
        let pos = [0.0f32];
        let neg = [0.1f32, 0.4, -0.2];
        let sharp = SoftmaxLoss::new(0.05).compute(&ScoreBatch::new(&pos, &neg, 3));
        let soft = SoftmaxLoss::new(0.5).compute(&ScoreBatch::new(&pos, &neg, 3));
        assert!(sharp.grad_neg[1] > soft.grad_neg[1]);
    }

    #[test]
    fn loss_decreases_when_positive_rises() {
        let neg = [0.1f32, 0.2];
        let low = SoftmaxLoss::new(0.1).compute(&ScoreBatch::new(&[0.0], &neg, 2)).loss;
        let high = SoftmaxLoss::new(0.1).compute(&ScoreBatch::new(&[0.8], &neg, 2)).loss;
        assert!(high < low);
    }

    #[test]
    fn worst_case_row_matches_grad_direction() {
        let (pos, neg) = synthetic_scores(3, 4, 9);
        let sl = SoftmaxLoss::new(0.1);
        let batch = ScoreBatch::new(&pos, &neg, 4);
        let out = sl.compute(&batch);
        let mut w = [0.0f32; 4];
        sl.worst_case_row(&batch, 1, &mut w);
        for (j, &wj) in w.iter().enumerate() {
            // grad_neg = w / B with B = 3.
            assert!((out.grad_neg[4 + j] - wj / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn rejects_nonpositive_tau() {
        let _ = SoftmaxLoss::new(0.0);
    }

    proptest! {
        /// SL is invariant to shifting *all* scores of a row by a constant
        /// in its gradient structure: the negative-side weights stay a
        /// probability distribution.
        #[test]
        fn prop_neg_weights_sum_to_inv_b(
            b in 1usize..6,
            m in 1usize..8,
            seed in 0u64..500,
            tau in 0.05f32..1.0,
        ) {
            let (pos, neg) = synthetic_scores(b, m, seed);
            let out = SoftmaxLoss::new(tau).compute(&ScoreBatch::new(&pos, &neg, m));
            for row in 0..b {
                let s: f64 = out.grad_neg[row * m..(row + 1) * m]
                    .iter()
                    .map(|&g| g as f64)
                    .sum();
                prop_assert!((s - 1.0 / b as f64).abs() < 1e-5);
            }
        }

        /// Eq. 5's negative part upper-bounds the mean (Jensen) so SL ≥ the
        /// "no-variance" pointwise surrogate on identical scores.
        #[test]
        fn prop_sl_dominates_mean_surrogate(
            b in 1usize..5,
            m in 2usize..8,
            seed in 0u64..200,
        ) {
            let (pos, neg) = synthetic_scores(b, m, seed);
            let sl = SoftmaxLoss::new(0.2).compute(&ScoreBatch::new(&pos, &neg, m)).loss;
            let mut surrogate = 0.0f64;
            for row in 0..b {
                let negs = &neg[row * m..(row + 1) * m];
                let mean: f64 = negs.iter().map(|&x| x as f64).sum::<f64>() / m as f64;
                surrogate += (-(pos[row] as f64) + mean) / b as f64;
            }
            prop_assert!(sl >= surrogate - 1e-6);
        }
    }
}
