//! Second-order Taylor expansion of SL (paper Eq. 13) used by the Fig-5
//! fairness ablation:
//!
//! ```text
//! with variance:    L = mean_b [ −p_b + mean_j(n_bj) + Var_j(n_bj)/(2τ) ]
//! without variance: L = mean_b [ −p_b + mean_j(n_bj) ]
//! ```
//!
//! Lemma 2 shows SL ≈ the "with variance" form up to `o(1/τ)`; removing the
//! variance penalty removes exactly the term the paper credits for
//! popularity fairness, which is what Fig 5 measures.

use crate::{LossOutput, RankingLoss, ScoreBatch};
use bsl_linalg::stats::mean_var;

/// Taylor-expanded SL, with or without the variance penalty.
#[derive(Clone, Copy, Debug)]
pub struct TaylorSl {
    tau: f32,
    with_variance: bool,
}

impl TaylorSl {
    /// Creates the ablation loss.
    ///
    /// # Panics
    /// Panics if `tau <= 0`.
    pub fn new(tau: f32, with_variance: bool) -> Self {
        assert!(tau > 0.0, "temperature must be positive, got {tau}");
        Self { tau, with_variance }
    }

    /// Whether the variance penalty is active.
    #[inline]
    pub fn with_variance(&self) -> bool {
        self.with_variance
    }
}

impl RankingLoss for TaylorSl {
    fn name(&self) -> &'static str {
        if self.with_variance {
            "TaylorSL+V"
        } else {
            "TaylorSL-V"
        }
    }

    fn compute(&self, batch: &ScoreBatch<'_>) -> LossOutput {
        let b = batch.len() as f64;
        let m = batch.m as f64;
        let tau = self.tau as f64;
        let mut loss = 0.0f64;
        let mut grad_pos = Vec::with_capacity(batch.len());
        let mut grad_neg = Vec::with_capacity(batch.neg.len());
        for (row, &p) in batch.pos.iter().enumerate() {
            let negs = batch.negs_of(row);
            let (mean, var) = mean_var(negs);
            loss += (-(p as f64) + mean) / b;
            grad_pos.push((-1.0 / b) as f32);
            if self.with_variance {
                loss += var / (2.0 * tau) / b;
            }
            for &n in negs {
                // ∂mean/∂n = 1/m; ∂Var/∂n = 2(n − mean)/m.
                let mut g = 1.0 / (b * m);
                if self.with_variance {
                    g += (n as f64 - mean) / (b * m * tau);
                }
                grad_neg.push(g as f32);
            }
        }
        LossOutput { loss, grad_pos, grad_neg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{assert_grads_match, synthetic_scores};
    use crate::SoftmaxLoss;
    use proptest::prelude::*;

    #[test]
    fn gradcheck_both_variants() {
        let (pos, neg) = synthetic_scores(5, 6, 21);
        assert_grads_match(&TaylorSl::new(0.2, true), &pos, &neg, 6, 1e-3);
        assert_grads_match(&TaylorSl::new(0.2, false), &pos, &neg, 6, 1e-3);
        assert_grads_match(&TaylorSl::new(1.0, true), &pos, &neg, 6, 1e-3);
    }

    #[test]
    fn variance_term_separates_variants() {
        let pos = [0.0f32];
        let neg = [0.5f32, -0.5]; // mean 0, var 0.25
        let tau = 0.5f32;
        let with = TaylorSl::new(tau, true).compute(&ScoreBatch::new(&pos, &neg, 2)).loss;
        let without = TaylorSl::new(tau, false).compute(&ScoreBatch::new(&pos, &neg, 2)).loss;
        assert!((with - without - 0.25 / (2.0 * tau as f64)).abs() < 1e-6);
    }

    #[test]
    fn constant_negatives_make_variants_agree() {
        let pos = [0.3f32, -0.1];
        let neg = [0.2f32; 8];
        let a = TaylorSl::new(0.1, true).compute(&ScoreBatch::new(&pos, &neg, 4));
        let b = TaylorSl::new(0.1, false).compute(&ScoreBatch::new(&pos, &neg, 4));
        assert!((a.loss - b.loss).abs() < 1e-9);
        for (x, y) in a.grad_neg.iter().zip(b.grad_neg.iter()) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    /// Lemma 2 as a machine check: the Taylor form approaches SL as τ grows
    /// and the remainder decays like O(1/τ²) in the expansion variable.
    #[test]
    fn approaches_sl_for_large_tau() {
        let (pos, neg) = synthetic_scores(4, 6, 5);
        let gap = |tau: f32| -> f64 {
            let sl = SoftmaxLoss::new(tau).compute(&ScoreBatch::new(&pos, &neg, 6)).loss;
            let ty = TaylorSl::new(tau, true).compute(&ScoreBatch::new(&pos, &neg, 6)).loss;
            (sl - ty).abs()
        };
        // Stay at moderate τ: beyond τ≈4 the remainder sinks below the f32
        // noise floor of the score buffers and the comparison is vacuous.
        let g_half = gap(0.5);
        let g1 = gap(1.0);
        let g2 = gap(2.0);
        assert!(g1 < g_half && g2 < g1, "remainder not decaying: {g_half} {g1} {g2}");
        // Roughly quadratic decay in 1/τ (third-order term dominates): each
        // doubling of τ should shrink the remainder by clearly more than 2×.
        assert!(g2 < g_half / 4.0, "decay slower than O(1/τ²): {g_half} vs {g2}");
    }

    proptest! {
        /// The variance penalty's gradient sums to zero within each row —
        /// it reshapes relative pressure across negatives without changing
        /// the total downward push.
        #[test]
        fn prop_variance_gradient_mass_is_invariant(
            b in 1usize..5,
            m in 2usize..8,
            seed in 0u64..200,
        ) {
            let (pos, neg) = synthetic_scores(b, m, seed);
            let with = TaylorSl::new(0.2, true).compute(&ScoreBatch::new(&pos, &neg, m));
            let without = TaylorSl::new(0.2, false).compute(&ScoreBatch::new(&pos, &neg, m));
            for row in 0..b {
                let sw: f64 = with.grad_neg[row * m..(row + 1) * m].iter().map(|&g| g as f64).sum();
                let so: f64 = without.grad_neg[row * m..(row + 1) * m].iter().map(|&g| g as f64).sum();
                prop_assert!((sw - so).abs() < 1e-5);
            }
        }

        /// With the variance term, higher-than-mean negatives get pushed
        /// down harder — the fairness mechanism.
        #[test]
        fn prop_variance_pressures_above_mean_negatives(
            m in 3usize..8,
            seed in 0u64..200,
        ) {
            let (pos, neg) = synthetic_scores(1, m, seed);
            let out = TaylorSl::new(0.1, true).compute(&ScoreBatch::new(&pos, &neg, m));
            let (mean, _) = bsl_linalg::stats::mean_var(&neg);
            for (j, &n) in neg.iter().enumerate() {
                let base = 1.0 / m as f32;
                if (n as f64) > mean + 1e-3 {
                    prop_assert!(out.grad_neg[j] > base * 0.99);
                } else if (n as f64) < mean - 1e-3 {
                    prop_assert!(out.grad_neg[j] < base * 1.01);
                }
            }
        }
    }
}
