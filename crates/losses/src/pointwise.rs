//! Pointwise losses (paper Eq. 1–2): classification/regression against the
//! binary labels, no interaction between rows.

use crate::{LossOutput, RankingLoss, ScoreBatch};
use bsl_linalg::stats::{log_sigmoid, sigmoid};

/// Binary cross entropy:
/// `L = mean_b [ −log σ(p_b) − c · mean_j log(1 − σ(n_bj)) ]`.
///
/// Gradients: `∂L/∂p_b = (σ(p_b) − 1)/B`, `∂L/∂n_bj = c·σ(n_bj)/(B·m)`.
#[derive(Clone, Copy, Debug)]
pub struct Bce {
    neg_weight: f32,
}

impl Bce {
    /// `neg_weight` is the paper's balance coefficient `c`.
    ///
    /// # Panics
    /// Panics if `neg_weight` is not positive.
    pub fn new(neg_weight: f32) -> Self {
        assert!(neg_weight > 0.0, "neg_weight must be positive");
        Self { neg_weight }
    }
}

impl RankingLoss for Bce {
    fn name(&self) -> &'static str {
        "BCE"
    }

    fn compute(&self, batch: &ScoreBatch<'_>) -> LossOutput {
        let b = batch.len() as f64;
        let m = batch.m as f64;
        let c = self.neg_weight as f64;
        let mut loss = 0.0f64;
        let mut grad_pos = Vec::with_capacity(batch.len());
        let mut grad_neg = Vec::with_capacity(batch.neg.len());
        for (row, &p) in batch.pos.iter().enumerate() {
            loss += -log_sigmoid(p) / b;
            grad_pos.push(((sigmoid(p) - 1.0) as f64 / b) as f32);
            for &n in batch.negs_of(row) {
                // log(1 − σ(n)) = log σ(−n)
                loss += -c * log_sigmoid(-n) / (b * m);
                grad_neg.push((c * sigmoid(n) as f64 / (b * m)) as f32);
            }
        }
        LossOutput { loss, grad_pos, grad_neg }
    }
}

/// Mean squared error against the binary labels:
/// `L = mean_b [ (p_b − 1)² + c · mean_j n_bj² ]`.
#[derive(Clone, Copy, Debug)]
pub struct Mse {
    neg_weight: f32,
}

impl Mse {
    /// `neg_weight` is the balance coefficient `c`.
    ///
    /// # Panics
    /// Panics if `neg_weight` is not positive.
    pub fn new(neg_weight: f32) -> Self {
        assert!(neg_weight > 0.0, "neg_weight must be positive");
        Self { neg_weight }
    }
}

impl RankingLoss for Mse {
    fn name(&self) -> &'static str {
        "MSE"
    }

    fn compute(&self, batch: &ScoreBatch<'_>) -> LossOutput {
        let b = batch.len() as f64;
        let m = batch.m as f64;
        let c = self.neg_weight as f64;
        let mut loss = 0.0f64;
        let mut grad_pos = Vec::with_capacity(batch.len());
        let mut grad_neg = Vec::with_capacity(batch.neg.len());
        for (row, &p) in batch.pos.iter().enumerate() {
            let d = p as f64 - 1.0;
            loss += d * d / b;
            grad_pos.push((2.0 * d / b) as f32);
            for &n in batch.negs_of(row) {
                loss += c * (n as f64) * (n as f64) / (b * m);
                grad_neg.push((2.0 * c * n as f64 / (b * m)) as f32);
            }
        }
        LossOutput { loss, grad_pos, grad_neg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{assert_grads_match, synthetic_scores};

    #[test]
    fn bce_gradcheck() {
        let (pos, neg) = synthetic_scores(6, 4, 1);
        assert_grads_match(&Bce::new(1.0), &pos, &neg, 4, 1e-3);
        assert_grads_match(&Bce::new(0.3), &pos, &neg, 4, 1e-3);
    }

    #[test]
    fn mse_gradcheck() {
        let (pos, neg) = synthetic_scores(5, 3, 2);
        assert_grads_match(&Mse::new(1.0), &pos, &neg, 3, 1e-3);
        assert_grads_match(&Mse::new(2.0), &pos, &neg, 3, 1e-3);
    }

    #[test]
    fn mse_perfect_predictions_zero_loss() {
        let pos = [1.0f32; 3];
        let neg = [0.0f32; 6];
        let out = Mse::new(1.0).compute(&ScoreBatch::new(&pos, &neg, 2));
        assert!(out.loss.abs() < 1e-12);
        assert!(out.grad_pos.iter().all(|&g| g.abs() < 1e-7));
        assert!(out.grad_neg.iter().all(|&g| g.abs() < 1e-7));
    }

    #[test]
    fn bce_loss_decreases_with_better_scores() {
        let neg = [0.0f32; 2];
        let bad = Bce::new(1.0).compute(&ScoreBatch::new(&[-1.0], &neg, 2)).loss;
        let good = Bce::new(1.0).compute(&ScoreBatch::new(&[1.0], &neg, 2)).loss;
        assert!(good < bad);
    }

    #[test]
    fn bce_gradient_signs() {
        let out = Bce::new(1.0).compute(&ScoreBatch::new(&[0.2], &[0.1, -0.3], 2));
        // Positive score should be pushed up (negative gradient), negatives
        // pushed down (positive gradient).
        assert!(out.grad_pos[0] < 0.0);
        assert!(out.grad_neg.iter().all(|&g| g > 0.0));
    }

    #[test]
    fn neg_weight_scales_negative_gradients() {
        let (pos, neg) = synthetic_scores(3, 2, 5);
        let g1 = Bce::new(1.0).compute(&ScoreBatch::new(&pos, &neg, 2));
        let g2 = Bce::new(2.0).compute(&ScoreBatch::new(&pos, &neg, 2));
        for (a, b) in g1.grad_neg.iter().zip(g2.grad_neg.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
        assert_eq!(g1.grad_pos, g2.grad_pos);
    }
}
