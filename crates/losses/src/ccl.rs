//! Cosine Contrastive Loss (CCL) from SimpleX (Mao et al., CIKM'21),
//! one of the Table-II baselines:
//!
//! ```text
//! L = mean_b [ (1 − p_b) + (c/m)·Σ_j max(0, n_bj − margin) ]
//! ```
//!
//! Negatives only contribute once they score above the margin; `c` is the
//! negative weight SimpleX tunes per dataset.

use crate::{LossOutput, RankingLoss, ScoreBatch};

/// Cosine contrastive loss with negative margin and weight.
#[derive(Clone, Copy, Debug)]
pub struct Ccl {
    margin: f32,
    neg_weight: f32,
}

impl Ccl {
    /// Creates CCL.
    ///
    /// # Panics
    /// Panics if `margin` is outside `[-1, 1]` (scores are cosines) or
    /// `neg_weight` is not positive.
    pub fn new(margin: f32, neg_weight: f32) -> Self {
        assert!((-1.0..=1.0).contains(&margin), "cosine margin must be in [-1,1], got {margin}");
        assert!(neg_weight > 0.0, "neg_weight must be positive");
        Self { margin, neg_weight }
    }
}

impl RankingLoss for Ccl {
    fn name(&self) -> &'static str {
        "CCL"
    }

    fn compute(&self, batch: &ScoreBatch<'_>) -> LossOutput {
        let b = batch.len() as f64;
        let m = batch.m as f64;
        let c = self.neg_weight as f64;
        let mut loss = 0.0f64;
        let mut grad_pos = Vec::with_capacity(batch.len());
        let mut grad_neg = Vec::with_capacity(batch.neg.len());
        for (row, &p) in batch.pos.iter().enumerate() {
            loss += (1.0 - p as f64) / b;
            grad_pos.push((-1.0 / b) as f32);
            for &n in batch.negs_of(row) {
                let slack = n - self.margin;
                if slack > 0.0 {
                    loss += c * slack as f64 / (b * m);
                    grad_neg.push((c / (b * m)) as f32);
                } else {
                    grad_neg.push(0.0);
                }
            }
        }
        LossOutput { loss, grad_pos, grad_neg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{assert_grads_match, synthetic_scores};
    use proptest::prelude::*;

    #[test]
    fn gradcheck_away_from_kink() {
        // Keep scores away from the margin so finite differences do not
        // straddle the hinge kink.
        let pos = [0.5f32, -0.2, 0.8];
        let neg = [0.6f32, -0.4, 0.2, 0.9, -0.7, 0.45];
        assert_grads_match(&Ccl::new(0.0, 1.0), &pos, &neg, 2, 1e-3);
        assert_grads_match(&Ccl::new(0.3, 2.0), &pos, &neg, 2, 1e-3);
    }

    #[test]
    fn negatives_below_margin_are_free() {
        let out = Ccl::new(0.5, 1.0).compute(&ScoreBatch::new(&[0.9], &[0.2, 0.4], 2));
        assert_eq!(out.grad_neg, vec![0.0, 0.0]);
        assert!((out.loss - (1.0 - 0.9)).abs() < 1e-6);
    }

    #[test]
    fn negatives_above_margin_are_penalized_linearly() {
        let a = Ccl::new(0.0, 1.0).compute(&ScoreBatch::new(&[0.0], &[0.2], 1)).loss;
        let b = Ccl::new(0.0, 1.0).compute(&ScoreBatch::new(&[0.0], &[0.4], 1)).loss;
        assert!((b - a - 0.2).abs() < 1e-6);
    }

    #[test]
    fn perfect_prediction_zero_loss() {
        let out = Ccl::new(0.0, 1.0).compute(&ScoreBatch::new(&[1.0], &[-0.5, -0.9], 2));
        assert!(out.loss.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "cosine margin")]
    fn rejects_out_of_range_margin() {
        let _ = Ccl::new(1.5, 1.0);
    }

    proptest! {
        #[test]
        fn prop_loss_nonnegative_for_cosine_scores(
            b in 1usize..5,
            m in 1usize..6,
            seed in 0u64..200,
        ) {
            // synthetic_scores yields values in [-0.9, 0.9] ⊂ [-1, 1], so
            // (1 − p) ≥ 0 and the hinge is ≥ 0.
            let (pos, neg) = synthetic_scores(b, m, seed);
            let out = Ccl::new(0.2, 1.5).compute(&ScoreBatch::new(&pos, &neg, m));
            prop_assert!(out.loss >= -1e-9);
        }

        #[test]
        fn prop_raising_margin_never_raises_loss(
            b in 1usize..5,
            m in 1usize..6,
            seed in 0u64..200,
        ) {
            let (pos, neg) = synthetic_scores(b, m, seed);
            let lo = Ccl::new(0.0, 1.0).compute(&ScoreBatch::new(&pos, &neg, m)).loss;
            let hi = Ccl::new(0.4, 1.0).compute(&ScoreBatch::new(&pos, &neg, m)).loss;
            prop_assert!(hi <= lo + 1e-9);
        }
    }
}
