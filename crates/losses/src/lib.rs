//! Ranking losses for collaborative filtering with implicit feedback.
//!
//! Every loss implements [`RankingLoss`]: given a batch of positive scores
//! `p_b` and negative scores `n_{bj}` it returns the scalar loss **and**
//! the exact analytic gradients w.r.t. every score. Backbones then chain
//! these through their own score→parameter backward pass, so the whole
//! training stack is autodiff-free and every gradient is unit-tested
//! against central finite differences.
//!
//! The zoo covers the paper's taxonomy (§II-A):
//! * pointwise — [`Bce`], [`Mse`];
//! * pairwise — [`Bpr`], [`Hinge`] (CML);
//! * softmax family — [`SoftmaxLoss`] (SL, Eq. 4), the paper's
//!   contribution [`Bsl`] (Eq. 18), [`Ccl`] (SimpleX's cosine contrastive
//!   loss), and the Taylor-expansion ablations [`TaylorSl`] used by the
//!   Fig-5 fairness study.

// Enforced by bsl-audit (audit/policy.toml): this crate is not on the
// unsafe allowlist.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bsl;
pub mod ccl;
pub mod fd;
pub mod pairwise;
pub mod pointwise;
pub mod softmax;
pub mod taylor;

pub use bsl::Bsl;
pub use ccl::Ccl;
pub use pairwise::{Bpr, Hinge};
pub use pointwise::{Bce, Mse};
pub use softmax::SoftmaxLoss;
pub use taylor::TaylorSl;

use serde::{Deserialize, Serialize};

/// A batch of model scores: `pos[b]` is the score of row `b`'s positive
/// item; row `b`'s `m` negatives are `neg[b*m..(b+1)*m]`.
#[derive(Clone, Copy, Debug)]
pub struct ScoreBatch<'a> {
    /// Positive scores, length `B`.
    pub pos: &'a [f32],
    /// Flattened negative scores, length `B·m`.
    pub neg: &'a [f32],
    /// Negatives per row.
    pub m: usize,
}

impl<'a> ScoreBatch<'a> {
    /// Wraps score slices, validating the layout.
    ///
    /// # Panics
    /// Panics if `neg.len() != pos.len() * m` or `m == 0` or `pos` is empty.
    pub fn new(pos: &'a [f32], neg: &'a [f32], m: usize) -> Self {
        assert!(m > 0, "need at least one negative per row");
        assert!(!pos.is_empty(), "empty batch");
        assert_eq!(neg.len(), pos.len() * m, "negative buffer has wrong length");
        Self { pos, neg, m }
    }

    /// Number of rows `B`.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Always false (construction rejects empty batches); kept for clippy
    /// symmetry with [`Self::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Negative scores of row `b`.
    #[inline]
    pub fn negs_of(&self, b: usize) -> &'a [f32] {
        &self.neg[b * self.m..(b + 1) * self.m]
    }
}

/// Loss value and exact gradients w.r.t. each score in the batch.
#[derive(Clone, Debug)]
pub struct LossOutput {
    /// Scalar loss (f64 accumulation).
    pub loss: f64,
    /// `∂L/∂pos[b]`, length `B`.
    pub grad_pos: Vec<f32>,
    /// `∂L/∂neg[b*m+j]`, length `B·m`.
    pub grad_neg: Vec<f32>,
}

/// A batch ranking loss with analytic gradients.
pub trait RankingLoss: Send + Sync {
    /// Short identifier used in experiment tables (`"SL"`, `"BSL"`, …).
    fn name(&self) -> &'static str;

    /// Computes loss and gradients for one score batch.
    fn compute(&self, batch: &ScoreBatch<'_>) -> LossOutput;
}

/// Serializable loss selector used by experiment configs; [`build`] turns
/// it into a live loss object.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LossConfig {
    /// Bayesian personalized ranking.
    Bpr,
    /// Binary cross entropy with negative weight `c`.
    Bce {
        /// Weight on the negative term.
        neg_weight: f32,
    },
    /// Mean squared error with negative weight `c`.
    Mse {
        /// Weight on the negative term.
        neg_weight: f32,
    },
    /// Softmax loss with temperature `tau`.
    Sl {
        /// Temperature τ.
        tau: f32,
    },
    /// Bilateral softmax loss with positive/negative temperatures.
    Bsl {
        /// Positive-side temperature τ1.
        tau1: f32,
        /// Negative-side temperature τ2.
        tau2: f32,
    },
    /// Cosine contrastive loss (SimpleX).
    Ccl {
        /// Negative margin.
        margin: f32,
        /// Weight on the negative term.
        neg_weight: f32,
    },
    /// Hinge loss (CML).
    Hinge {
        /// Margin.
        margin: f32,
    },
    /// Second-order Taylor expansion of SL (Fig-5 ablation).
    TaylorSl {
        /// Temperature τ.
        tau: f32,
        /// Keep the variance penalty term?
        with_variance: bool,
    },
}

/// Instantiates the loss described by `cfg`.
pub fn build(cfg: LossConfig) -> Box<dyn RankingLoss> {
    match cfg {
        LossConfig::Bpr => Box::new(Bpr),
        LossConfig::Bce { neg_weight } => Box::new(Bce::new(neg_weight)),
        LossConfig::Mse { neg_weight } => Box::new(Mse::new(neg_weight)),
        LossConfig::Sl { tau } => Box::new(SoftmaxLoss::new(tau)),
        LossConfig::Bsl { tau1, tau2 } => Box::new(Bsl::new(tau1, tau2)),
        LossConfig::Ccl { margin, neg_weight } => Box::new(Ccl::new(margin, neg_weight)),
        LossConfig::Hinge { margin } => Box::new(Hinge::new(margin)),
        LossConfig::TaylorSl { tau, with_variance } => Box::new(TaylorSl::new(tau, with_variance)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_batch_layout() {
        let pos = [1.0f32, 2.0];
        let neg = [0.1f32, 0.2, 0.3, 0.4, 0.5, 0.6];
        let b = ScoreBatch::new(&pos, &neg, 3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.negs_of(1), &[0.4, 0.5, 0.6]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn score_batch_rejects_mismatch() {
        let _ = ScoreBatch::new(&[1.0], &[0.0; 3], 2);
    }

    #[test]
    fn build_constructs_every_variant() {
        let cfgs = [
            LossConfig::Bpr,
            LossConfig::Bce { neg_weight: 1.0 },
            LossConfig::Mse { neg_weight: 1.0 },
            LossConfig::Sl { tau: 0.1 },
            LossConfig::Bsl { tau1: 0.1, tau2: 0.1 },
            LossConfig::Ccl { margin: 0.5, neg_weight: 1.0 },
            LossConfig::Hinge { margin: 0.5 },
            LossConfig::TaylorSl { tau: 0.2, with_variance: true },
        ];
        let names: Vec<&str> = cfgs.iter().map(|&c| build(c).name()).collect();
        assert_eq!(names, vec!["BPR", "BCE", "MSE", "SL", "BSL", "CCL", "Hinge", "TaylorSL+V"]);
    }
}
