//! Pairwise losses (paper Eq. 3): positives must outscore their negative
//! counterparts.

use crate::{LossOutput, RankingLoss, ScoreBatch};
use bsl_linalg::stats::{log_sigmoid, sigmoid};

/// Bayesian Personalized Ranking (Rendle et al., UAI'09):
/// `L = mean_{b,j} [ −log σ(p_b − n_bj) ]`.
///
/// Gradients: with `g_bj = σ(p_b − n_bj) − 1`,
/// `∂L/∂p_b = mean_j g_bj / B`, `∂L/∂n_bj = −g_bj/(B·m)`.
#[derive(Clone, Copy, Debug)]
pub struct Bpr;

impl RankingLoss for Bpr {
    fn name(&self) -> &'static str {
        "BPR"
    }

    fn compute(&self, batch: &ScoreBatch<'_>) -> LossOutput {
        let b = batch.len() as f64;
        let m = batch.m as f64;
        let mut loss = 0.0f64;
        let mut grad_pos = Vec::with_capacity(batch.len());
        let mut grad_neg = Vec::with_capacity(batch.neg.len());
        for (row, &p) in batch.pos.iter().enumerate() {
            let mut gp = 0.0f64;
            for &n in batch.negs_of(row) {
                let d = p - n;
                loss += -log_sigmoid(d) / (b * m);
                let g = (sigmoid(d) - 1.0) as f64 / (b * m);
                gp += g;
                grad_neg.push((-g) as f32);
            }
            grad_pos.push(gp as f32);
        }
        LossOutput { loss, grad_pos, grad_neg }
    }
}

/// Hinge / margin loss on scores, the ranking objective of Collaborative
/// Metric Learning (CML): `L = mean_{b,j} max(0, margin − p_b + n_bj)`.
/// (CML scores are negated squared distances; the backbone handles that.)
#[derive(Clone, Copy, Debug)]
pub struct Hinge {
    margin: f32,
}

impl Hinge {
    /// Creates the loss with the given margin.
    ///
    /// # Panics
    /// Panics if `margin` is negative.
    pub fn new(margin: f32) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative");
        Self { margin }
    }
}

impl RankingLoss for Hinge {
    fn name(&self) -> &'static str {
        "Hinge"
    }

    fn compute(&self, batch: &ScoreBatch<'_>) -> LossOutput {
        let b = batch.len() as f64;
        let m = batch.m as f64;
        let scale = 1.0 / (b * m);
        let mut loss = 0.0f64;
        let mut grad_pos = Vec::with_capacity(batch.len());
        let mut grad_neg = Vec::with_capacity(batch.neg.len());
        for (row, &p) in batch.pos.iter().enumerate() {
            let mut gp = 0.0f64;
            for &n in batch.negs_of(row) {
                let v = self.margin - p + n;
                if v > 0.0 {
                    loss += v as f64 * scale;
                    gp -= scale;
                    grad_neg.push(scale as f32);
                } else {
                    grad_neg.push(0.0);
                }
            }
            grad_pos.push(gp as f32);
        }
        LossOutput { loss, grad_pos, grad_neg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{assert_grads_match, synthetic_scores};

    #[test]
    fn bpr_gradcheck() {
        let (pos, neg) = synthetic_scores(6, 5, 3);
        assert_grads_match(&Bpr, &pos, &neg, 5, 1e-3);
    }

    #[test]
    fn hinge_gradcheck_away_from_kink() {
        // Keep scores away from the non-differentiable point.
        let pos = [0.8f32, -0.5, 0.2];
        let neg = [0.1f32, -0.6, 0.9, 0.0, -0.2, 0.5];
        assert_grads_match(&Hinge::new(0.5), &pos, &neg, 2, 1e-3);
    }

    #[test]
    fn bpr_zero_margin_is_log2() {
        // p == n ⇒ per-pair loss is −log σ(0) = ln 2.
        let out = Bpr.compute(&ScoreBatch::new(&[0.3], &[0.3, 0.3], 2));
        assert!((out.loss - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn bpr_prefers_larger_margin() {
        let tight = Bpr.compute(&ScoreBatch::new(&[0.4], &[0.3], 1)).loss;
        let wide = Bpr.compute(&ScoreBatch::new(&[0.9], &[-0.5], 1)).loss;
        assert!(wide < tight);
    }

    #[test]
    fn bpr_gradient_signs() {
        let out = Bpr.compute(&ScoreBatch::new(&[0.1], &[0.4], 1));
        assert!(out.grad_pos[0] < 0.0);
        assert!(out.grad_neg[0] > 0.0);
    }

    #[test]
    fn hinge_inactive_when_margin_satisfied() {
        let out = Hinge::new(0.2).compute(&ScoreBatch::new(&[1.0], &[0.0, -0.5], 2));
        assert_eq!(out.loss, 0.0);
        assert!(out.grad_pos.iter().all(|&g| g == 0.0));
        assert!(out.grad_neg.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn hinge_active_pairs_counted() {
        // margin 0.5: pair 1 violates (0.2−0.0 < 0.5), pair 2 satisfied.
        let out = Hinge::new(0.5).compute(&ScoreBatch::new(&[0.2], &[0.0, -0.9], 2));
        assert!(out.loss > 0.0);
        assert!(out.grad_neg[0] > 0.0);
        assert_eq!(out.grad_neg[1], 0.0);
    }
}
