//! Implicit-feedback datasets for the BSL reproduction.
//!
//! The paper evaluates on Yelp2018, Amazon-Book, Gowalla and MovieLens-1M.
//! Those logs are not redistributable here, so this crate provides
//! *synthetic* generators with a latent-factor ground truth and matched
//! shape statistics (power-law popularity, per-dataset density ordering,
//! per-dataset intrinsic positive-noise levels — see DESIGN.md §2 for the
//! substitution rationale). Having a known ground truth is what makes the
//! paper's controlled noise-injection experiments (Figs 3/6/8/9, Table IV)
//! exactly reproducible.

// Enforced by bsl-audit (audit/policy.toml): this crate is not on the
// unsafe allowlist.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dataset;
pub mod loader;
pub mod noise;
pub mod synth;

pub use dataset::{Dataset, DatasetStats};
pub use loader::{load_lightgcn_format, LoadError};
pub use synth::{generate, SynthConfig};
