//! Controlled noise injection for the robustness experiments.
//!
//! The paper's positive-noise protocol (§V-D, Table IV, Fig 6): "contaminate
//! the positive instances by introducing a certain proportion of randomly
//! sampled negative items … in accordance with the interaction frequency per
//! user, while keeping the test set unchanged."

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of injecting false positives.
pub struct NoisyDataset {
    /// The contaminated dataset (train enlarged, test untouched).
    pub dataset: Dataset,
    /// The injected `(user, item)` pairs — ground-truth noise labels,
    /// available because we control the generator.
    pub injected: Vec<(u32, u32)>,
}

/// Adds `ratio · |train|` false-positive interactions, distributed across
/// users proportionally to their interaction frequency. Injected items are
/// uniform over the user's non-interacted (train ∪ test) items.
///
/// # Panics
/// Panics if `ratio < 0`.
pub fn inject_false_positives(ds: &Dataset, ratio: f64, seed: u64) -> NoisyDataset {
    assert!(ratio >= 0.0, "noise ratio must be non-negative, got {ratio}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train_pairs = ds.train_pairs();
    let mut injected = Vec::new();
    for u in 0..ds.n_users {
        let have = ds.train_items(u).len();
        let n_add = ((have as f64) * ratio).round() as usize;
        let free = ds.n_items - have - ds.test_items(u).len();
        let n_add = n_add.min(free);
        let mut added = 0usize;
        let mut chosen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut guard = 0usize;
        while added < n_add && guard < 100 * n_add.max(1) {
            let cand = rng.gen_range(0..ds.n_items as u32);
            if !ds.train.contains(u, cand) && !ds.test.contains(u, cand) && chosen.insert(cand) {
                train_pairs.push((u as u32, cand));
                injected.push((u as u32, cand));
                added += 1;
            }
            guard += 1;
        }
    }
    let test_pairs: Vec<(u32, u32)> = ds.test.iter().map(|(u, i, _)| (u, i)).collect();
    let mut noisy = Dataset::from_pairs(
        format!("{}+pos-noise{:.0}%", ds.name, ratio * 100.0),
        ds.n_users,
        ds.n_items,
        &train_pairs,
        &test_pairs,
    );
    noisy.item_cluster = ds.item_cluster.clone();
    noisy.item_factors = ds.item_factors.clone();
    NoisyDataset { dataset: noisy, injected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn zero_ratio_is_identity() {
        let d = generate(&SynthConfig::tiny(1));
        let n = inject_false_positives(&d, 0.0, 9);
        assert_eq!(n.dataset.train.nnz(), d.train.nnz());
        assert!(n.injected.is_empty());
    }

    #[test]
    fn injected_count_close_to_ratio() {
        let d = generate(&SynthConfig::tiny(2));
        let n = inject_false_positives(&d, 0.3, 9);
        let got = n.injected.len() as f64 / d.train.nnz() as f64;
        assert!((got - 0.3).abs() < 0.05, "injected fraction {got}");
        assert_eq!(n.dataset.train.nnz(), d.train.nnz() + n.injected.len());
    }

    #[test]
    fn injection_proportional_to_user_activity() {
        let d = generate(&SynthConfig::tiny(3));
        let n = inject_false_positives(&d, 0.4, 5);
        for u in 0..d.n_users {
            let have = d.train_items(u).len() as f64;
            let added = n.injected.iter().filter(|&&(uu, _)| uu as usize == u).count() as f64;
            // round(0.4 * have) within ±1 (capping by free slots aside).
            assert!(
                (added - (0.4 * have).round()).abs() <= 1.0,
                "user {u}: have {have}, added {added}"
            );
        }
    }

    #[test]
    fn test_split_untouched_and_no_overlap() {
        let d = generate(&SynthConfig::tiny(4));
        let n = inject_false_positives(&d, 0.2, 5);
        assert_eq!(n.dataset.test.to_dense(), d.test.to_dense());
        for &(u, i) in &n.injected {
            assert!(!d.train.contains(u as usize, i), "injected an existing positive");
            assert!(!d.test.contains(u as usize, i), "injected a test item");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let d = generate(&SynthConfig::tiny(5));
        let a = inject_false_positives(&d, 0.25, 11);
        let b = inject_false_positives(&d, 0.25, 11);
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn metadata_preserved() {
        let d = generate(&SynthConfig::tiny(6));
        let n = inject_false_positives(&d, 0.1, 2);
        assert_eq!(n.dataset.item_cluster, d.item_cluster);
    }
}
