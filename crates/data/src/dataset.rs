//! The [`Dataset`] type: train/test interaction matrices plus the
//! popularity metadata the fairness experiments group by.

use bsl_linalg::Matrix;
use bsl_sparse::Csr;

/// An implicit-feedback dataset with a train/test split.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name (e.g. `"yelp-like"`).
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Binary training interactions (`n_users × n_items`).
    pub train: Csr,
    /// Binary held-out test interactions (`n_users × n_items`).
    pub test: Csr,
    /// Ground-truth item cluster labels from the generator, when available;
    /// used by the embedding-separation experiments (Figs 10–11).
    pub item_cluster: Option<Vec<u16>>,
    /// Ground-truth latent item factors from the generator, when available.
    pub item_factors: Option<Matrix>,
}

/// Table-I style summary statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of training interactions.
    pub n_train: usize,
    /// Number of test interactions.
    pub n_test: usize,
    /// `(train + test) / (users · items)`, as a fraction.
    pub density: f64,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>8} users {:>8} items {:>9} interactions (train {} / test {})  density {:.3}%",
            self.n_users,
            self.n_items,
            self.n_train + self.n_test,
            self.n_train,
            self.n_test,
            self.density * 100.0
        )
    }
}

impl Dataset {
    /// Builds a dataset from explicit train/test pairs.
    ///
    /// # Panics
    /// Panics if any pair is out of bounds.
    pub fn from_pairs(
        name: impl Into<String>,
        n_users: usize,
        n_items: usize,
        train_pairs: &[(u32, u32)],
        test_pairs: &[(u32, u32)],
    ) -> Self {
        let to_csr = |pairs: &[(u32, u32)]| {
            let trips: Vec<(u32, u32, f32)> = pairs.iter().map(|&(u, i)| (u, i, 1.0)).collect();
            let mut m = Csr::from_coo(n_users, n_items, &trips);
            for r in 0..n_users {
                for v in m.row_values_mut(r) {
                    *v = 1.0;
                }
            }
            m
        };
        Self {
            name: name.into(),
            n_users,
            n_items,
            train: to_csr(train_pairs),
            test: to_csr(test_pairs),
            item_cluster: None,
            item_factors: None,
        }
    }

    /// Items user `u` interacted with in the training split (sorted).
    #[inline]
    pub fn train_items(&self, u: usize) -> &[u32] {
        self.train.row_indices(u)
    }

    /// Items user `u` holds out in the test split (sorted).
    #[inline]
    pub fn test_items(&self, u: usize) -> &[u32] {
        self.test.row_indices(u)
    }

    /// All `(user, item)` training pairs in row order.
    pub fn train_pairs(&self) -> Vec<(u32, u32)> {
        self.train.iter().map(|(u, i, _)| (u, i)).collect()
    }

    /// Per-item training interaction counts (the popularity signal the
    /// paper groups by).
    pub fn popularity(&self) -> Vec<u32> {
        self.train.col_degrees().into_iter().map(|d| d as u32).collect()
    }

    /// Assigns every item to one of `n_groups` popularity groups with
    /// (nearly) equal item counts. Group ids run `0..n_groups` with larger
    /// id = more popular, matching "the larger GroupID denotes the group
    /// where items are more popular" (paper §III-B4).
    ///
    /// # Panics
    /// Panics if `n_groups == 0`.
    pub fn popularity_groups(&self, n_groups: usize) -> Vec<u8> {
        assert!(n_groups > 0, "need at least one group");
        assert!(n_groups <= u8::MAX as usize + 1, "too many groups for u8 labels");
        let pop = self.popularity();
        let mut order: Vec<usize> = (0..self.n_items).collect();
        // Ascending popularity; ties broken by index for determinism.
        order.sort_by_key(|&i| (pop[i], i));
        let mut groups = vec![0u8; self.n_items];
        for (rank, &item) in order.iter().enumerate() {
            groups[item] = ((rank * n_groups) / self.n_items.max(1)) as u8;
        }
        groups
    }

    /// Summary statistics (Table I).
    pub fn stats(&self) -> DatasetStats {
        let n_train = self.train.nnz();
        let n_test = self.test.nnz();
        DatasetStats {
            n_users: self.n_users,
            n_items: self.n_items,
            n_train,
            n_test,
            density: (n_train + n_test) as f64 / (self.n_users * self.n_items) as f64,
        }
    }

    /// Users that have at least one test interaction (the evaluation set).
    pub fn evaluable_users(&self) -> Vec<u32> {
        (0..self.n_users as u32).filter(|&u| self.test.row_nnz(u as usize) > 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_pairs("toy", 3, 4, &[(0, 0), (0, 1), (1, 1), (2, 3)], &[(0, 2), (1, 0)])
    }

    #[test]
    fn stats_counts() {
        let d = toy();
        let s = d.stats();
        assert_eq!(s.n_train, 4);
        assert_eq!(s.n_test, 2);
        assert!((s.density - 6.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn train_test_access() {
        let d = toy();
        assert_eq!(d.train_items(0), &[0, 1]);
        assert_eq!(d.test_items(1), &[0]);
        assert!(d.test_items(2).is_empty());
    }

    #[test]
    fn duplicates_are_binarized() {
        let d = Dataset::from_pairs("dup", 1, 2, &[(0, 0), (0, 0)], &[]);
        assert_eq!(d.train.nnz(), 1);
        assert_eq!(d.train.get(0, 0), 1.0);
    }

    #[test]
    fn popularity_counts_train_only() {
        let d = toy();
        assert_eq!(d.popularity(), vec![1, 2, 0, 1]);
    }

    #[test]
    fn popularity_groups_equal_sizes_and_order() {
        let d = toy();
        let g = d.popularity_groups(2);
        assert_eq!(g.len(), 4);
        // Item 1 (pop 2) must be in the top group; item 2 (pop 0) in the
        // bottom group.
        assert_eq!(g[1], 1);
        assert_eq!(g[2], 0);
        // Two items per group.
        assert_eq!(g.iter().filter(|&&x| x == 0).count(), 2);
    }

    #[test]
    fn popularity_group_means_monotone() {
        // 10 items with popularity = index.
        let pairs: Vec<(u32, u32)> = (0..10u32).flat_map(|i| (0..i).map(move |u| (u, i))).collect();
        let d = Dataset::from_pairs("mono", 10, 10, &pairs, &[]);
        let g = d.popularity_groups(5);
        let pop = d.popularity();
        let mut means = [(0.0f64, 0usize); 5];
        for i in 0..10 {
            means[g[i] as usize].0 += pop[i] as f64;
            means[g[i] as usize].1 += 1;
        }
        let means: Vec<f64> = means.iter().map(|&(s, n)| s / n as f64).collect();
        for w in means.windows(2) {
            assert!(w[0] <= w[1], "group means not monotone: {means:?}");
        }
    }

    #[test]
    fn evaluable_users_filters_empty_test_rows() {
        let d = toy();
        assert_eq!(d.evaluable_users(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn popularity_groups_rejects_zero() {
        toy().popularity_groups(0);
    }
}
