//! Loader for the standard LightGCN-repo dataset format, so the harness
//! can run on the *real* Yelp2018/Amazon-Book/Gowalla/MovieLens logs when
//! they are available (the paper's exact split files are published in that
//! format at `github.com/kuandeng/LightGCN/tree/master/Data` and reused by
//! the BSL authors' repository).
//!
//! Format: one line per user in `train.txt` / `test.txt`:
//!
//! ```text
//! <user_id> <item_id> <item_id> …
//! ```
//!
//! Ids are dense non-negative integers; a user line may be empty (user
//! with no test items).

use crate::dataset::Dataset;
use std::io::BufRead;
use std::path::Path;

/// Errors from dataset loading.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A token that should have been an id failed to parse.
    Parse {
        /// Which file the token came from.
        file: String,
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Train and test disagree so badly the dataset is unusable (e.g. a
    /// pair present in both splits).
    Inconsistent(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { file, line, token } => {
                write!(f, "{file}:{line}: cannot parse id {token:?}")
            }
            LoadError::Inconsistent(msg) => write!(f, "inconsistent dataset: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn parse_file(path: &Path) -> Result<Vec<(u32, u32)>, LoadError> {
    let file_label = path.display().to_string();
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut pairs = Vec::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let mut tokens = line.split_ascii_whitespace();
        let Some(user_tok) = tokens.next() else { continue };
        let user: u32 = user_tok.parse().map_err(|_| LoadError::Parse {
            file: file_label.clone(),
            line: line_no + 1,
            token: user_tok.to_string(),
        })?;
        for tok in tokens {
            let item: u32 = tok.parse().map_err(|_| LoadError::Parse {
                file: file_label.clone(),
                line: line_no + 1,
                token: tok.to_string(),
            })?;
            pairs.push((user, item));
        }
    }
    Ok(pairs)
}

/// Loads a dataset from LightGCN-format `train.txt` / `test.txt` files.
///
/// User and item counts are inferred as `max id + 1` across both splits.
/// Duplicate pairs are binarized; a pair appearing in both splits is an
/// error (it would leak test items into training).
pub fn load_lightgcn_format(
    name: impl Into<String>,
    train_path: impl AsRef<Path>,
    test_path: impl AsRef<Path>,
) -> Result<Dataset, LoadError> {
    let train = parse_file(train_path.as_ref())?;
    let test = parse_file(test_path.as_ref())?;
    if train.is_empty() {
        return Err(LoadError::Inconsistent("empty training split".into()));
    }
    let n_users = train.iter().chain(test.iter()).map(|&(u, _)| u as usize + 1).max().unwrap_or(0);
    let n_items = train.iter().chain(test.iter()).map(|&(_, i)| i as usize + 1).max().unwrap_or(0);
    let ds = Dataset::from_pairs(name, n_users, n_items, &train, &test);
    for u in 0..n_users {
        for &i in ds.test_items(u) {
            if ds.train.contains(u, i) {
                return Err(LoadError::Inconsistent(format!(
                    "pair (user {u}, item {i}) is in both train and test"
                )));
            }
        }
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_tmp(name: &str, contents: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("bsl-loader-test-{}-{name}", std::process::id()));
        let mut f = std::fs::File::create(&path).expect("create temp file");
        f.write_all(contents.as_bytes()).expect("write temp file");
        path
    }

    #[test]
    fn loads_wellformed_files() {
        let train = write_tmp("train-a.txt", "0 1 2 3\n1 0 2\n2 4\n");
        let test = write_tmp("test-a.txt", "0 4\n1 3\n\n");
        let ds = load_lightgcn_format("toy", &train, &test).expect("load");
        assert_eq!(ds.n_users, 3);
        assert_eq!(ds.n_items, 5);
        assert_eq!(ds.train_items(0), &[1, 2, 3]);
        assert_eq!(ds.test_items(1), &[3]);
        assert_eq!(ds.stats().n_train, 6);
        assert_eq!(ds.stats().n_test, 2);
        let _ = std::fs::remove_file(train);
        let _ = std::fs::remove_file(test);
    }

    #[test]
    fn rejects_bad_tokens_with_location() {
        let train = write_tmp("train-b.txt", "0 1\n1 x\n");
        let test = write_tmp("test-b.txt", "0 0\n");
        let err = load_lightgcn_format("bad", &train, &test).unwrap_err();
        match err {
            LoadError::Parse { line, token, .. } => {
                assert_eq!(line, 2);
                assert_eq!(token, "x");
            }
            other => panic!("wrong error: {other}"),
        }
        let _ = std::fs::remove_file(train);
        let _ = std::fs::remove_file(test);
    }

    #[test]
    fn rejects_train_test_leakage() {
        let train = write_tmp("train-c.txt", "0 1 2\n");
        let test = write_tmp("test-c.txt", "0 2\n");
        let err = load_lightgcn_format("leak", &train, &test).unwrap_err();
        assert!(matches!(err, LoadError::Inconsistent(_)), "got {err}");
        let _ = std::fs::remove_file(train);
        let _ = std::fs::remove_file(test);
    }

    #[test]
    fn rejects_empty_train() {
        let train = write_tmp("train-d.txt", "\n\n");
        let test = write_tmp("test-d.txt", "0 0\n");
        let err = load_lightgcn_format("empty", &train, &test).unwrap_err();
        assert!(matches!(err, LoadError::Inconsistent(_)));
        let _ = std::fs::remove_file(train);
        let _ = std::fs::remove_file(test);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_lightgcn_format("nope", "/definitely/not/here.txt", "/also/missing.txt")
            .unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }

    #[test]
    fn loaded_dataset_trains() {
        // A loaded dataset flows through the same pipeline as synthetic
        // ones (popularity, groups, adjacency construction).
        let train = write_tmp("train-e.txt", "0 0 1\n1 1 2\n2 0 2 3\n");
        let test = write_tmp("test-e.txt", "0 2\n1 0\n2 1\n");
        let ds = load_lightgcn_format("flow", &train, &test).expect("load");
        assert_eq!(ds.popularity().len(), ds.n_items);
        let groups = ds.popularity_groups(2);
        assert_eq!(groups.len(), ds.n_items);
        assert_eq!(ds.evaluable_users().len(), 3);
        let _ = std::fs::remove_file(train);
        let _ = std::fs::remove_file(test);
    }
}
