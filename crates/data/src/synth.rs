//! Synthetic implicit-feedback generator with a latent-factor ground truth.
//!
//! The generative model (per DESIGN.md §2):
//!
//! 1. Items belong to `n_clusters` latent clusters; item factors are
//!    cluster centre + isotropic noise. Users mix cluster affinities.
//! 2. Item popularity is Zipf-distributed over a random permutation of the
//!    items (power-law long tail, as in all four paper datasets).
//! 3. A user with activity `n_u` (log-normal across users) interacts with
//!    `n_u` distinct items drawn by weighted sampling without replacement
//!    with weight `exp(<u, v_i>/T) · pop_i^γ` — preference *and* popularity
//!    bias, which is what creates the popularity-unfairness that Figs 4a/5
//!    measure.
//! 4. A fraction `intrinsic_pos_noise` of each user's interactions is drawn
//!    uniformly at random instead — organic false positives (clickbait /
//!    conformity in the paper's telling). Gowalla-like sets this high,
//!    reproducing the paper's observation that BSL's positive-side
//!    robustness matters most there.
//! 5. A per-user fraction `test_fraction` of interactions is held out.

use crate::dataset::Dataset;
use bsl_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Mean interactions per user (before the test split).
    pub mean_activity: f64,
    /// Log-normal sigma of per-user activity.
    pub activity_sigma: f64,
    /// Latent dimensionality of the ground-truth factors.
    pub latent_dim: usize,
    /// Number of ground-truth item clusters.
    pub n_clusters: usize,
    /// Zipf exponent of item popularity (larger = heavier head).
    pub zipf_exponent: f64,
    /// Popularity-bias strength γ in the interaction weights.
    pub popularity_bias: f64,
    /// Preference temperature `T` (smaller = users more selective).
    pub preference_temp: f64,
    /// Fraction of interactions that are organic false positives.
    pub intrinsic_pos_noise: f64,
    /// Per-user fraction of interactions held out for testing.
    pub test_fraction: f64,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl SynthConfig {
    /// Yelp2018-like: mid-size, mid density, moderate popularity skew.
    pub fn yelp_like(seed: u64) -> Self {
        Self {
            name: "yelp-like".into(),
            n_users: 700,
            n_items: 800,
            mean_activity: 36.0,
            activity_sigma: 0.6,
            latent_dim: 16,
            n_clusters: 8,
            zipf_exponent: 0.9,
            popularity_bias: 0.8,
            preference_temp: 0.35,
            intrinsic_pos_noise: 0.05,
            test_fraction: 0.2,
            seed,
        }
    }

    /// Amazon-book-like: the sparsest of the four, strong long tail.
    pub fn amazon_like(seed: u64) -> Self {
        Self {
            name: "amazon-like".into(),
            n_users: 900,
            n_items: 1100,
            mean_activity: 22.0,
            activity_sigma: 0.7,
            latent_dim: 16,
            n_clusters: 10,
            zipf_exponent: 1.1,
            popularity_bias: 1.0,
            preference_temp: 0.35,
            intrinsic_pos_noise: 0.06,
            test_fraction: 0.2,
            seed,
        }
    }

    /// Gowalla-like: check-in data with the most organic positive noise —
    /// the dataset where the paper finds BSL's positive denoising matters
    /// most (Table II discussion).
    pub fn gowalla_like(seed: u64) -> Self {
        Self {
            name: "gowalla-like".into(),
            n_users: 750,
            n_items: 850,
            mean_activity: 30.0,
            activity_sigma: 0.7,
            latent_dim: 16,
            n_clusters: 8,
            zipf_exponent: 0.8,
            popularity_bias: 0.7,
            preference_temp: 0.4,
            intrinsic_pos_noise: 0.18,
            test_fraction: 0.2,
            seed,
        }
    }

    /// MovieLens-1M-like: small, dense (5.4% in the paper), light noise.
    pub fn ml1m_like(seed: u64) -> Self {
        Self {
            name: "ml1m-like".into(),
            n_users: 420,
            n_items: 300,
            mean_activity: 75.0,
            activity_sigma: 0.5,
            latent_dim: 16,
            n_clusters: 6,
            zipf_exponent: 0.7,
            popularity_bias: 0.6,
            preference_temp: 0.35,
            intrinsic_pos_noise: 0.03,
            test_fraction: 0.2,
            seed,
        }
    }

    /// A tiny config for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            name: "tiny".into(),
            n_users: 60,
            n_items: 50,
            mean_activity: 10.0,
            activity_sigma: 0.4,
            latent_dim: 8,
            n_clusters: 4,
            zipf_exponent: 0.8,
            popularity_bias: 0.6,
            preference_temp: 0.4,
            intrinsic_pos_noise: 0.05,
            test_fraction: 0.25,
            seed,
        }
    }

    /// The four paper-shaped datasets in paper order
    /// (Amazon, Yelp2018, Gowalla, MovieLens-1M).
    pub fn paper_suite(seed: u64) -> Vec<Self> {
        vec![
            Self::amazon_like(seed),
            Self::yelp_like(seed.wrapping_add(1)),
            Self::gowalla_like(seed.wrapping_add(2)),
            Self::ml1m_like(seed.wrapping_add(3)),
        ]
    }
}

/// Weighted sampling of `k` distinct indices without replacement
/// (Efraimidis–Spirakis exponential-key trick).
fn sample_without_replacement(weights: &[f64], k: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut keys: Vec<(f64, u32)> = weights
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w > 0.0)
        .map(|(i, &w)| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            // key = ln(u)/w; larger is better.
            (u.ln() / w, i as u32)
        })
        .collect();
    let k = k.min(keys.len());
    keys.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    keys.truncate(k);
    keys.into_iter().map(|(_, i)| i).collect()
}

/// Generates a dataset from `cfg`. Deterministic in `cfg.seed`.
pub fn generate(cfg: &SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = cfg.latent_dim;

    // Ground-truth factors: cluster centres + noise.
    let centres = Matrix::gaussian(cfg.n_clusters, d, 1.0, &mut rng);
    let mut item_cluster = vec![0u16; cfg.n_items];
    let mut item_f = Matrix::zeros(cfg.n_items, d);
    for (i, cluster) in item_cluster.iter_mut().enumerate() {
        let c = rng.gen_range(0..cfg.n_clusters);
        *cluster = c as u16;
        let noise = Matrix::gaussian(1, d, 0.35, &mut rng);
        for j in 0..d {
            item_f.set(i, j, centres.get(c, j) + noise.get(0, j));
        }
    }
    // Users: sparse affinity over 1-3 clusters plus noise.
    let mut user_f = Matrix::zeros(cfg.n_users, d);
    for u in 0..cfg.n_users {
        let n_aff = rng.gen_range(1..=3usize);
        let noise = Matrix::gaussian(1, d, 0.25, &mut rng);
        for j in 0..d {
            user_f.set(u, j, noise.get(0, j));
        }
        for _ in 0..n_aff {
            let c = rng.gen_range(0..cfg.n_clusters);
            let w = rng.gen_range(0.4..1.0f32);
            for j in 0..d {
                user_f.set(u, j, user_f.get(u, j) + w * centres.get(c, j) / n_aff as f32);
            }
        }
    }

    // Zipf popularity over a random permutation of items.
    let mut perm: Vec<usize> = (0..cfg.n_items).collect();
    for i in (1..perm.len()).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let mut pop = vec![0.0f64; cfg.n_items];
    for (rank, &item) in perm.iter().enumerate() {
        pop[item] = 1.0 / ((rank + 1) as f64).powf(cfg.zipf_exponent);
    }

    // Interactions.
    let mut train_pairs: Vec<(u32, u32)> = Vec::new();
    let mut test_pairs: Vec<(u32, u32)> = Vec::new();
    let mut weights = vec![0.0f64; cfg.n_items];
    for u in 0..cfg.n_users {
        // Log-normal activity.
        let z: f64 = {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let n_u = (cfg.mean_activity * (cfg.activity_sigma * z).exp())
            .round()
            .clamp(4.0, (cfg.n_items / 2) as f64) as usize;

        // Interaction weights for this user.
        let urow = user_f.row(u);
        let mut max_s = f64::NEG_INFINITY;
        let mut scores = vec![0.0f64; cfg.n_items];
        for (i, score) in scores.iter_mut().enumerate() {
            let s = bsl_linalg::kernels::dot(urow, item_f.row(i)) as f64 / cfg.preference_temp;
            *score = s;
            if s > max_s {
                max_s = s;
            }
        }
        for i in 0..cfg.n_items {
            weights[i] = (scores[i] - max_s).exp() * pop[i].powf(cfg.popularity_bias);
        }

        let n_noise = ((n_u as f64) * cfg.intrinsic_pos_noise).round() as usize;
        let n_pref = n_u - n_noise.min(n_u);
        let mut items = sample_without_replacement(&weights, n_pref, &mut rng);
        // Organic false positives: uniform over items not already chosen.
        let chosen: std::collections::HashSet<u32> = items.iter().copied().collect();
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < n_noise && guard < 50 * n_noise.max(1) {
            let cand = rng.gen_range(0..cfg.n_items as u32);
            if !chosen.contains(&cand) && !items.contains(&cand) {
                items.push(cand);
                added += 1;
            }
            guard += 1;
        }

        // Per-user split; keep at least one train item.
        let n_test = (((items.len() as f64) * cfg.test_fraction).round() as usize)
            .min(items.len().saturating_sub(1));
        // Shuffle for an unbiased split.
        for i in (1..items.len()).rev() {
            items.swap(i, rng.gen_range(0..=i));
        }
        for (k, &i) in items.iter().enumerate() {
            if k < n_test {
                test_pairs.push((u as u32, i));
            } else {
                train_pairs.push((u as u32, i));
            }
        }
    }

    let mut ds =
        Dataset::from_pairs(cfg.name.clone(), cfg.n_users, cfg.n_items, &train_pairs, &test_pairs);
    ds.item_cluster = Some(item_cluster);
    ds.item_factors = Some(item_f);
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&SynthConfig::tiny(42));
        let b = generate(&SynthConfig::tiny(42));
        assert_eq!(a.train.to_dense(), b.train.to_dense());
        assert_eq!(a.test.to_dense(), b.test.to_dense());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::tiny(1));
        let b = generate(&SynthConfig::tiny(2));
        assert_ne!(a.train.to_dense(), b.train.to_dense());
    }

    #[test]
    fn split_is_disjoint() {
        let d = generate(&SynthConfig::tiny(7));
        for u in 0..d.n_users {
            for &i in d.test_items(u) {
                assert!(!d.train.contains(u, i), "({u},{i}) in both splits");
            }
        }
    }

    #[test]
    fn every_user_has_train_items() {
        let d = generate(&SynthConfig::tiny(3));
        for u in 0..d.n_users {
            assert!(!d.train_items(u).is_empty(), "user {u} has no train items");
        }
    }

    #[test]
    fn activity_roughly_matches_mean() {
        let cfg = SynthConfig::tiny(11);
        let d = generate(&cfg);
        let total = (d.train.nnz() + d.test.nnz()) as f64;
        let per_user = total / cfg.n_users as f64;
        // Log-normal mean is exp(sigma^2/2) times the base.
        let expected = cfg.mean_activity * (cfg.activity_sigma.powi(2) / 2.0).exp();
        assert!(
            per_user > expected * 0.55 && per_user < expected * 1.6,
            "per-user activity {per_user} vs expected ~{expected}"
        );
    }

    #[test]
    fn popularity_is_long_tailed() {
        let d = generate(&SynthConfig::yelp_like(5));
        let mut pop = d.popularity();
        pop.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = pop.iter().map(|&p| p as u64).sum();
        let top10: u64 = pop.iter().take(d.n_items / 10).map(|&p| p as u64).sum();
        let share = top10 as f64 / total as f64;
        assert!(share > 0.25, "top-10% items only cover {share:.2} of interactions");
    }

    #[test]
    fn ground_truth_metadata_present() {
        let d = generate(&SynthConfig::tiny(9));
        assert_eq!(d.item_cluster.as_ref().map(Vec::len), Some(d.n_items));
        assert_eq!(d.item_factors.as_ref().map(|m| m.rows()), Some(d.n_items));
    }

    #[test]
    fn interactions_prefer_matching_clusters() {
        // A user's interacted items should share clusters more than chance.
        let d = generate(&SynthConfig::tiny(13));
        let clusters = d.item_cluster.as_ref().expect("clusters set");
        let n_clusters = 4.0;
        let mut agree = 0usize;
        let mut total = 0usize;
        for u in 0..d.n_users {
            let items = d.train_items(u);
            if items.len() < 2 {
                continue;
            }
            // Majority cluster share within the user's basket.
            let mut counts = [0usize; 16];
            for &i in items {
                counts[clusters[i as usize] as usize] += 1;
            }
            agree += counts.iter().max().copied().unwrap_or(0);
            total += items.len();
        }
        let share = agree as f64 / total as f64;
        assert!(
            share > 1.0 / n_clusters + 0.08,
            "cluster coherence {share:.3} not above chance {:.3}",
            1.0 / n_clusters
        );
    }

    #[test]
    fn paper_suite_density_ordering() {
        // ML-1M-like must be the densest; Amazon-like the sparsest.
        let suite = SynthConfig::paper_suite(1);
        let dens: Vec<(String, f64)> = suite
            .iter()
            .map(|c| {
                let d = generate(c);
                (c.name.clone(), d.stats().density)
            })
            .collect();
        let get = |n: &str| dens.iter().find(|(name, _)| name.contains(n)).expect("present").1;
        assert!(get("ml1m") > get("yelp"));
        assert!(get("yelp") > get("amazon"));
        assert!(get("gowalla") > get("amazon"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_sample_without_replacement_distinct(k in 1usize..20, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let weights: Vec<f64> = (0..30).map(|i| (i + 1) as f64).collect();
            let s = sample_without_replacement(&weights, k, &mut rng);
            let set: std::collections::HashSet<u32> = s.iter().copied().collect();
            prop_assert_eq!(set.len(), s.len());
            prop_assert_eq!(s.len(), k.min(30));
        }

        #[test]
        #[ignore] // statistical; run with --ignored
        fn prop_sampling_respects_weights(seed in 0u64..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            // Item 0 has weight 100, item 1 weight 1: item 0 should nearly
            // always be drawn first when k = 1.
            let mut hits = 0;
            for _ in 0..200 {
                let s = sample_without_replacement(&[100.0, 1.0], 1, &mut rng);
                if s[0] == 0 {
                    hits += 1;
                }
            }
            prop_assert!(hits > 170, "item 0 drawn {hits}/200");
        }
    }
}
