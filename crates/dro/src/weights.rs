//! Worst-case distributions, KL radii and the Lemma-2 Taylor expansion.

use bsl_linalg::stats::{logsumexp, mean_var};

/// The worst-case (adversarial) distribution of Lemma 1 under a *uniform*
/// base distribution: `P*(j) ∝ exp(f_j / τ)`.
///
/// This is the tilted distribution SL implicitly reweights negatives by;
/// Fig 4b plots these weights against the prediction scores.
///
/// # Panics
/// Panics if `tau <= 0` or `scores` is empty.
pub fn worst_case_weights(scores: &[f32], tau: f64) -> Vec<f64> {
    let n = scores.len();
    let base = vec![1.0 / n as f64; n];
    worst_case_weights_base(scores, &base, tau)
}

/// The worst-case distribution under an arbitrary base `P0`:
/// `P*(j) ∝ P0(j) · exp(f_j / τ)`.
///
/// # Panics
/// Panics if `tau <= 0`, the slices disagree in length, `scores` is empty,
/// or `base` is not a probability vector (up to 1e-6).
pub fn worst_case_weights_base(scores: &[f32], base: &[f64], tau: f64) -> Vec<f64> {
    assert!(tau > 0.0, "temperature must be positive, got {tau}");
    assert!(!scores.is_empty(), "empty score vector");
    assert_eq!(scores.len(), base.len(), "scores/base length mismatch");
    let total: f64 = base.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "base distribution sums to {total}");
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
    let mut w: Vec<f64> = scores
        .iter()
        .zip(base.iter())
        .map(|(&f, &p0)| p0 * ((f as f64 - max) / tau).exp())
        .collect();
    let z: f64 = w.iter().sum();
    for wi in &mut w {
        *wi /= z;
    }
    w
}

/// KL divergence `D_KL(P ‖ P0)` between two distributions on the same
/// support, with the convention `0·ln(0/q) = 0`.
///
/// # Panics
/// Panics on length mismatch or when `P` puts mass where `P0` has none.
pub fn kl_divergence(p: &[f64], p0: &[f64]) -> f64 {
    assert_eq!(p.len(), p0.len(), "distribution length mismatch");
    let mut kl = 0.0f64;
    for (&pi, &qi) in p.iter().zip(p0.iter()) {
        if pi <= 0.0 {
            continue;
        }
        assert!(qi > 0.0, "P is not absolutely continuous w.r.t. P0");
        kl += pi * (pi / qi).ln();
    }
    kl.max(0.0)
}

/// The robustness radius η a temperature `tau` *realizes* on a given score
/// vector: `η = D_KL(P*_τ ‖ P0)` with uniform `P0`. This is the quantity
/// Fig 3b plots at the grid-searched best τ per noise level.
///
/// # Panics
/// Panics if `tau <= 0` or `scores` is empty.
pub fn implied_radius(scores: &[f32], tau: f64) -> f64 {
    let n = scores.len();
    let p = worst_case_weights(scores, tau);
    let p0 = vec![1.0 / n as f64; n];
    kl_divergence(&p, &p0)
}

/// Corollary III.1: the optimal temperature for variance `var` and radius
/// `eta` is `τ* ≈ sqrt(var / (2η))`.
///
/// # Panics
/// Panics unless `var >= 0` and `eta > 0`.
pub fn optimal_tau(var: f64, eta: f64) -> f64 {
    assert!(var >= 0.0, "variance must be non-negative, got {var}");
    assert!(eta > 0.0, "radius must be positive, got {eta}");
    (var / (2.0 * eta)).sqrt()
}

/// Lemma 2's second-order expansion of the negative part:
/// `τ·logmeanexp(f/τ) ≈ mean(f) + Var(f)/(2τ)`.
pub fn taylor_value(scores: &[f32], tau: f64) -> f64 {
    let (mean, var) = mean_var(scores);
    mean + var / (2.0 * tau)
}

/// The absolute remainder `|τ·logmeanexp(f/τ) − (mean + Var/2τ)|` — Lemma 2
/// predicts it decays as `o(1/τ)`.
///
/// # Panics
/// Panics if `tau <= 0` or `scores` is empty.
pub fn taylor_remainder(scores: &[f32], tau: f64) -> f64 {
    assert!(tau > 0.0, "temperature must be positive, got {tau}");
    assert!(!scores.is_empty(), "empty score vector");
    let scaled: Vec<f32> = scores.iter().map(|&f| (f as f64 / tau) as f32).collect();
    let exact = tau * (logsumexp(&scaled) - (scores.len() as f64).ln());
    (exact - taylor_value(scores, tau)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scores() -> Vec<f32> {
        vec![0.3, -0.2, 0.7, 0.1, -0.6, 0.45]
    }

    #[test]
    fn weights_form_distribution_and_order_by_score() {
        let w = worst_case_weights(&scores(), 0.1);
        let s: f64 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        // Highest score (index 2) gets the largest weight.
        let max_idx = w.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
        assert_eq!(max_idx, Some(2));
    }

    #[test]
    fn lower_tau_is_more_extreme() {
        let sharp = worst_case_weights(&scores(), 0.05);
        let soft = worst_case_weights(&scores(), 0.5);
        assert!(sharp[2] > soft[2], "sharp {:.4} soft {:.4}", sharp[2], soft[2]);
        // And in the τ→∞ limit the weights flatten to uniform.
        let flat = worst_case_weights(&scores(), 1e6);
        for &w in &flat {
            assert!((w - 1.0 / 6.0).abs() < 1e-4);
        }
    }

    #[test]
    fn nonuniform_base_biases_weights() {
        let s = [0.0f32, 0.0];
        let w = worst_case_weights_base(&s, &[0.9, 0.1], 0.1);
        assert!((w[0] - 0.9).abs() < 1e-12, "equal scores keep the base ratio");
    }

    #[test]
    fn kl_zero_iff_equal() {
        let p = [0.25f64; 4];
        assert!(kl_divergence(&p, &p) < 1e-15);
        let q = [0.4, 0.3, 0.2, 0.1];
        assert!(kl_divergence(&q, &p) > 0.0);
    }

    #[test]
    fn kl_hand_example() {
        // KL([1,0] || [0.5,0.5]) = ln 2.
        let kl = kl_divergence(&[1.0, 0.0], &[0.5, 0.5]);
        assert!((kl - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn implied_radius_shrinks_with_tau() {
        let s = scores();
        let lo = implied_radius(&s, 0.05);
        let mid = implied_radius(&s, 0.1);
        let hi = implied_radius(&s, 1.0);
        assert!(lo > mid && mid > hi, "η not monotone: {lo} {mid} {hi}");
        assert!(implied_radius(&s, 1e6) < 1e-6, "η must vanish as τ→∞");
    }

    #[test]
    fn optimal_tau_corollary_roundtrip() {
        // If τ* = sqrt(V/2η), then η = V/(2τ*²).
        let var = 0.04f64;
        let eta = 0.5f64;
        let tau = optimal_tau(var, eta);
        assert!((var / (2.0 * tau * tau) - eta).abs() < 1e-12);
    }

    #[test]
    fn optimal_tau_grows_with_variance() {
        assert!(optimal_tau(0.09, 0.5) > optimal_tau(0.01, 0.5));
        assert!(optimal_tau(0.04, 0.25) > optimal_tau(0.04, 1.0));
    }

    #[test]
    fn taylor_remainder_decays() {
        let s = scores();
        let r1 = taylor_remainder(&s, 1.0);
        let r2 = taylor_remainder(&s, 2.0);
        let r4 = taylor_remainder(&s, 4.0);
        assert!(r2 < r1 && r4 < r2, "remainder not decaying: {r1} {r2} {r4}");
        // o(1/τ): τ·remainder → 0.
        assert!(4.0 * r4 < 1.0 * r1);
    }

    #[test]
    #[should_panic(expected = "absolutely continuous")]
    fn kl_rejects_unsupported_mass() {
        let _ = kl_divergence(&[0.5, 0.5], &[1.0, 0.0]);
    }

    proptest! {
        #[test]
        fn prop_weights_distribution(
            s in proptest::collection::vec(-2.0f32..2.0, 1..40),
            tau in 0.05f64..5.0,
        ) {
            let w = worst_case_weights(&s, tau);
            let total: f64 = w.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(w.iter().all(|&x| x >= 0.0));
        }

        #[test]
        fn prop_kl_nonnegative(
            raw_p in proptest::collection::vec(0.01f64..1.0, 2..20),
        ) {
            let zp: f64 = raw_p.iter().sum();
            let p: Vec<f64> = raw_p.iter().map(|x| x / zp).collect();
            let n = p.len();
            let u = vec![1.0 / n as f64; n];
            prop_assert!(kl_divergence(&p, &u) >= 0.0);
        }

        /// The adversarial expectation E_{P*}[f] never falls below the base
        /// mean — the worst case is at least as bad as the average case.
        #[test]
        fn prop_worst_case_expectation_dominates_mean(
            s in proptest::collection::vec(-2.0f32..2.0, 2..30),
            tau in 0.05f64..5.0,
        ) {
            let w = worst_case_weights(&s, tau);
            let adv: f64 = w.iter().zip(s.iter()).map(|(&wi, &fi)| wi * fi as f64).sum();
            let mean: f64 = s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64;
            prop_assert!(adv >= mean - 1e-6);
        }
    }
}
