//! Distributionally Robust Optimization analysis of the Softmax loss.
//!
//! Section III of the paper proves that SL's negative part is the dual of a
//! KL-constrained DRO problem (Lemma 1), that the dual value admits a
//! mean-plus-variance Taylor expansion (Lemma 2), and that the optimal
//! temperature relates to the robustness radius via
//! `τ* ≈ sqrt(V/2η)` (Corollary III.1). This crate implements each of those
//! objects *numerically* so the theory can be machine-checked and the
//! Fig-3/Fig-4b analyses regenerated:
//!
//! * [`worst_case_weights`] — the inner maximizer `P*(j) ∝ P0(j)·e^{f_j/τ}`;
//! * [`kl_divergence`] / [`implied_radius`] — the η a given τ realizes;
//! * [`optimal_tau`] — Corollary III.1;
//! * [`primal_value`] / [`dual_value`] — both sides of Lemma 1's duality,
//!   with [`duality_gap`] measuring their difference;
//! * [`taylor_value`] / [`taylor_remainder`] — Lemma 2's expansion.

// Enforced by bsl-audit (audit/policy.toml): this crate is not on the
// unsafe allowlist.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod duality;
pub mod weights;

pub use duality::{dual_value, duality_gap, primal_value, solve_primal};
pub use weights::{
    implied_radius, kl_divergence, optimal_tau, taylor_remainder, taylor_value, worst_case_weights,
    worst_case_weights_base,
};
