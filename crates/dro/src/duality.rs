//! Numerical verification of Lemma 1: the KL-constrained primal problem
//! and its Log-Expectation-Exp dual attain the same value.
//!
//! Primal (Eq. 7's inner maximization, uniform base):
//!
//! ```text
//! primal(η) = max { E_P[f] : D_KL(P ‖ P0) ≤ η }
//! ```
//!
//! Dual (the form SL optimizes, Eq. 11–12):
//!
//! ```text
//! dual(η) = min_{τ>0}  τ·log E_{P0}[e^{f/τ}] + τ·η
//! ```
//!
//! Strong duality holds (the primal is a linear objective over a convex
//! set), so `primal(η) = dual(η)`; [`duality_gap`] measures the numerical
//! difference and the tests assert it vanishes — a machine-checked instance
//! of Lemma 1.

use crate::weights::{kl_divergence, worst_case_weights};
use bsl_linalg::stats::logsumexp;

/// Result of solving the primal problem.
#[derive(Clone, Debug)]
pub struct PrimalSolution {
    /// The optimal adversarial distribution `P*`.
    pub weights: Vec<f64>,
    /// The achieved objective `E_{P*}[f]`.
    pub value: f64,
    /// The temperature realizing `P*` (`None` when the constraint is slack
    /// and `P*` collapses onto the maximizers — the τ→0 limit).
    pub tau: Option<f64>,
}

fn expectation(weights: &[f64], scores: &[f32]) -> f64 {
    weights.iter().zip(scores.iter()).map(|(&w, &f)| w * f as f64).sum()
}

/// Solves the primal KL-constrained maximization by bisection on the tilt
/// temperature (KL(P*_τ ‖ P0) is monotone decreasing in τ).
///
/// # Panics
/// Panics if `eta <= 0` or `scores` is empty.
pub fn solve_primal(scores: &[f32], eta: f64) -> PrimalSolution {
    assert!(eta > 0.0, "radius must be positive, got {eta}");
    assert!(!scores.is_empty(), "empty score vector");
    let n = scores.len();
    let p0 = vec![1.0 / n as f64; n];
    let kl_at = |tau: f64| kl_divergence(&worst_case_weights(scores, tau), &p0);

    // The sharpest reachable tilt: as τ→0, P* → uniform over argmax f.
    let (mut lo, mut hi) = (1e-6f64, 1e6f64);
    if kl_at(lo) <= eta {
        // Constraint slack even at the sharpest tilt: the optimum is the
        // point-mass limit on the maximizers.
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let maximizers: Vec<usize> = scores
            .iter()
            .enumerate()
            .filter(|&(_, &f)| (f - max).abs() < 1e-12)
            .map(|(i, _)| i)
            .collect();
        let mut weights = vec![0.0f64; n];
        for &i in &maximizers {
            weights[i] = 1.0 / maximizers.len() as f64;
        }
        let value = expectation(&weights, scores);
        return PrimalSolution { weights, value, tau: None };
    }
    // Invariant: kl_at(lo) > eta >= kl_at(hi)  (kl_at(hi) ≈ 0 at τ=1e6).
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric bisection over decades
        if kl_at(mid) > eta {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi / lo < 1.0 + 1e-12 {
            break;
        }
    }
    let tau = (lo * hi).sqrt();
    let weights = worst_case_weights(scores, tau);
    let value = expectation(&weights, scores);
    PrimalSolution { weights, value, tau: Some(tau) }
}

/// The primal optimum `max { E_P[f] : KL ≤ η }`.
pub fn primal_value(scores: &[f32], eta: f64) -> f64 {
    solve_primal(scores, eta).value
}

fn dual_objective(scores: &[f32], eta: f64, tau: f64) -> f64 {
    let scaled: Vec<f32> = scores.iter().map(|&f| (f as f64 / tau) as f32).collect();
    let lme = logsumexp(&scaled) - (scores.len() as f64).ln();
    tau * lme + tau * eta
}

/// The dual optimum `min_τ τ·logmeanexp(f/τ) + τη`, found by golden-section
/// search on `log τ` (the objective is convex in τ).
///
/// # Panics
/// Panics if `eta <= 0` or `scores` is empty.
pub fn dual_value(scores: &[f32], eta: f64) -> f64 {
    assert!(eta > 0.0, "radius must be positive, got {eta}");
    assert!(!scores.is_empty(), "empty score vector");
    let f = |log_tau: f64| dual_objective(scores, eta, log_tau.exp());
    let (mut a, mut b) = ((1e-6f64).ln(), (1e6f64).ln());
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..300 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
        if b - a < 1e-12 {
            break;
        }
    }
    f((a + b) / 2.0)
}

/// `|primal(η) − dual(η)|` — Lemma 1 says this is zero.
pub fn duality_gap(scores: &[f32], eta: f64) -> f64 {
    (primal_value(scores, eta) - dual_value(scores, eta)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scores() -> Vec<f32> {
        vec![0.3, -0.2, 0.7, 0.1, -0.6, 0.45, 0.0, 0.25]
    }

    #[test]
    fn lemma1_duality_gap_vanishes() {
        for eta in [0.01, 0.1, 0.5, 1.0] {
            let gap = duality_gap(&scores(), eta);
            assert!(gap < 1e-5, "duality gap {gap} at eta {eta}");
        }
    }

    #[test]
    fn primal_kl_constraint_is_tight_when_active() {
        let s = scores();
        let sol = solve_primal(&s, 0.2);
        let n = s.len();
        let p0 = vec![1.0 / n as f64; n];
        let kl = kl_divergence(&sol.weights, &p0);
        assert!((kl - 0.2).abs() < 1e-6, "constraint not tight: KL = {kl}");
        assert!(sol.tau.is_some());
    }

    #[test]
    fn primal_value_monotone_in_radius() {
        let s = scores();
        let v1 = primal_value(&s, 0.05);
        let v2 = primal_value(&s, 0.2);
        let v3 = primal_value(&s, 1.0);
        assert!(v1 < v2 && v2 < v3, "{v1} {v2} {v3}");
    }

    #[test]
    fn tiny_radius_approaches_mean() {
        let s = scores();
        let mean: f64 = s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64;
        let v = primal_value(&s, 1e-6);
        assert!((v - mean).abs() < 0.05, "value {v} vs mean {mean}");
    }

    #[test]
    fn huge_radius_approaches_max() {
        let s = scores();
        let sol = solve_primal(&s, 100.0);
        assert!((sol.value - 0.7).abs() < 1e-6, "value {} vs max 0.7", sol.value);
        assert!(sol.tau.is_none(), "constraint should be slack");
        let dual = dual_value(&s, 100.0);
        // Dual stays an upper bound but cannot be tight when the point-mass
        // limit is the primal optimum and τ is forced positive; it must
        // still be ≥ the max.
        assert!(dual >= 0.7 - 1e-9);
    }

    #[test]
    fn constant_scores_give_constant_value() {
        let s = vec![0.42f32; 10];
        assert!((primal_value(&s, 0.3) - 0.42).abs() < 1e-6);
        assert!((dual_value(&s, 1e-9) - 0.42).abs() < 1e-6);
    }

    #[test]
    fn dual_temperature_matches_sl_form() {
        // At the dual optimum, the dual objective equals
        // τ*·logmeanexp(f/τ*) + τ*η — exactly the negative part of SL plus
        // the constant C = τη of Eq. 12.
        let s = scores();
        let eta = 0.15;
        let sol = solve_primal(&s, eta);
        let tau = sol.tau.expect("active constraint");
        let direct = dual_objective(&s, eta, tau);
        assert!((direct - dual_value(&s, eta)).abs() < 1e-6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Lemma 1 on random instances: strong duality holds to 1e-4.
        #[test]
        fn prop_strong_duality(
            s in proptest::collection::vec(-1.0f32..1.0, 2..24),
            eta in 0.01f64..1.5,
        ) {
            let gap = duality_gap(&s, eta);
            prop_assert!(gap < 1e-4, "gap {gap}");
        }

        /// Weak duality (dual ≥ primal) holds even where the bisection is
        /// at its tolerance limits.
        #[test]
        fn prop_weak_duality(
            s in proptest::collection::vec(-1.0f32..1.0, 2..24),
            eta in 0.005f64..3.0,
        ) {
            let p = primal_value(&s, eta);
            let d = dual_value(&s, eta);
            prop_assert!(d >= p - 1e-6, "dual {d} < primal {p}");
        }

        /// The primal value is sandwiched between mean and max.
        #[test]
        fn prop_value_bounds(
            s in proptest::collection::vec(-1.0f32..1.0, 2..24),
            eta in 0.01f64..2.0,
        ) {
            let v = primal_value(&s, eta);
            let mean: f64 = s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64;
            let max = s.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
            prop_assert!(v >= mean - 1e-6 && v <= max + 1e-6);
        }
    }
}
