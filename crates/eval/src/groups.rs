//! Popularity-group decomposition of NDCG — the fairness lens of Figs 4a
//! and 5.
//!
//! Following §III-B4, items are split into popularity groups (larger group
//! id = more popular) and each user's DCG is *decomposed by the group of
//! the hit item*: a hit at 0-based rank `r` on an item of group `g`
//! contributes `discount(r)/IDCG_u` to group `g`. Summing a user's
//! contributions over groups recovers the user's NDCG@K exactly, so the
//! per-group curves of Fig 4a are an exact partition of overall NDCG.
//!
//! Like [`crate::ranking`], the full catalogue is scored through a frozen
//! [`ModelArtifact`] — the group decomposition therefore partitions
//! *exactly* the ranking [`crate::evaluate`] reports, with no second
//! scoring implementation to drift.

use crate::metrics::{dcg_discount, idcg};
use bsl_data::Dataset;
use bsl_linalg::topk::TopK;
use bsl_linalg::Matrix;
use bsl_models::{EvalScore, ModelArtifact};

fn check_inputs(
    ds: &Dataset,
    user_emb: &Matrix,
    item_emb: &Matrix,
    groups: &[u8],
    n_groups: usize,
    k: usize,
) {
    assert!(k > 0, "cutoff must be positive");
    assert_eq!(groups.len(), ds.n_items, "one group label per item");
    assert!(groups.iter().all(|&g| (g as usize) < n_groups), "group id out of range");
    assert_eq!(user_emb.rows(), ds.n_users, "user embedding rows != n_users");
    assert_eq!(item_emb.rows(), ds.n_items, "item embedding rows != n_items");
}

/// Mean per-group NDCG@K contributions across evaluable users.
///
/// `groups[i]` is the popularity group of item `i` with ids in
/// `0..n_groups`; the returned vector has length `n_groups` and sums to the
/// overall NDCG@K.
///
/// # Panics
/// Panics if `k == 0`, shapes disagree, or any group id is out of range.
pub fn group_ndcg(
    ds: &Dataset,
    user_emb: &Matrix,
    item_emb: &Matrix,
    score: EvalScore,
    groups: &[u8],
    n_groups: usize,
    k: usize,
) -> Vec<f64> {
    check_inputs(ds, user_emb, item_emb, groups, n_groups, k);
    let artifact = ModelArtifact::from_embeddings("group-eval", user_emb, item_emb, score);

    let mut acc = vec![0.0f64; n_groups];
    let users = ds.evaluable_users();
    let mut scores: Vec<f32> = Vec::new();
    let mut topk = TopK::new();
    let mut ranked: Vec<u32> = Vec::new();
    for &u in &users {
        artifact.score_catalogue_into(u, &mut scores);
        let train = ds.train_items(u as usize);
        topk.select_masked_into(
            &scores,
            k,
            |i| train.binary_search(&(i as u32)).is_ok(),
            &mut ranked,
        );
        let relevant = ds.test_items(u as usize);
        let denom = idcg(relevant.len(), k);
        if denom <= 0.0 {
            continue;
        }
        for (rank, &item) in ranked.iter().enumerate() {
            if relevant.binary_search(&item).is_ok() {
                acc[groups[item as usize] as usize] += dcg_discount(rank) / denom;
            }
        }
    }
    let n = users.len().max(1) as f64;
    for a in &mut acc {
        *a /= n;
    }
    acc
}

/// Per-group NDCG@K with *restricted relevance*: group `g` is scored as if
/// only that group's test items were relevant (full ranking, train items
/// masked), averaged over users that hold at least one test item in `g`.
///
/// Unlike [`group_ndcg`], the group values do **not** sum to the overall
/// NDCG — each group is its own retrieval task. This matches how the
/// paper's Figs 4a/5 report "performance over item groups": a model that
/// surfaces tail items scores visibly on tail groups even while popular
/// items still occupy most top-K slots.
///
/// # Panics
/// Panics under the same conditions as [`group_ndcg`].
pub fn group_ndcg_restricted(
    ds: &Dataset,
    user_emb: &Matrix,
    item_emb: &Matrix,
    score: EvalScore,
    groups: &[u8],
    n_groups: usize,
    k: usize,
) -> Vec<f64> {
    check_inputs(ds, user_emb, item_emb, groups, n_groups, k);
    let artifact = ModelArtifact::from_embeddings("group-eval", user_emb, item_emb, score);

    let mut acc = vec![0.0f64; n_groups];
    let mut counts = vec![0usize; n_groups];
    let mut scores: Vec<f32> = Vec::new();
    let mut topk = TopK::new();
    let mut ranked: Vec<u32> = Vec::new();
    for &u in &ds.evaluable_users() {
        artifact.score_catalogue_into(u, &mut scores);
        let train = ds.train_items(u as usize);
        topk.select_masked_into(
            &scores,
            k,
            |i| train.binary_search(&(i as u32)).is_ok(),
            &mut ranked,
        );
        let relevant = ds.test_items(u as usize);
        for g in 0..n_groups {
            let rel_g: Vec<u32> =
                relevant.iter().copied().filter(|&i| groups[i as usize] as usize == g).collect();
            if rel_g.is_empty() {
                continue;
            }
            counts[g] += 1;
            acc[g] += crate::metrics::user_metrics(&ranked, &rel_g, k).ndcg;
        }
    }
    for (a, &c) in acc.iter_mut().zip(counts.iter()) {
        if c > 0 {
            *a /= c as f64;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::evaluate;
    use bsl_data::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn group_decomposition_sums_to_overall_ndcg() {
        let ds = generate(&SynthConfig::tiny(11));
        let mut rng = StdRng::seed_from_u64(2);
        let users = Matrix::gaussian(ds.n_users, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(ds.n_items, 8, 1.0, &mut rng);
        let groups = ds.popularity_groups(10);
        let per_group = group_ndcg(&ds, &users, &items, EvalScore::Dot, &groups, 10, 20);
        let total: f64 = per_group.iter().sum();
        let overall = evaluate(&ds, &users, &items, EvalScore::Dot, &[20]).ndcg(20);
        assert!((total - overall).abs() < 1e-9, "decomposed {total} vs overall {overall}");
    }

    #[test]
    fn single_group_captures_everything() {
        let ds = generate(&SynthConfig::tiny(13));
        let mut rng = StdRng::seed_from_u64(3);
        let users = Matrix::gaussian(ds.n_users, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(ds.n_items, 8, 1.0, &mut rng);
        let groups = vec![0u8; ds.n_items];
        let per_group = group_ndcg(&ds, &users, &items, EvalScore::Cosine, &groups, 1, 10);
        let overall = evaluate(&ds, &users, &items, EvalScore::Cosine, &[10]).ndcg(10);
        assert_eq!(per_group.len(), 1);
        assert!((per_group[0] - overall).abs() < 1e-9);
    }

    #[test]
    fn hits_land_in_the_right_group() {
        // 1 user, 2 items: test item 1 is in group 1.
        let ds = Dataset::from_pairs("g", 1, 2, &[], &[(0, 1)]);
        let users = Matrix::from_vec(1, 1, vec![1.0]);
        let items = Matrix::from_vec(2, 1, vec![0.1, 5.0]);
        let per_group = group_ndcg(&ds, &users, &items, EvalScore::Dot, &[0, 1], 2, 1);
        assert_eq!(per_group[0], 0.0);
        assert!((per_group[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "group id out of range")]
    fn rejects_bad_group_labels() {
        let ds = Dataset::from_pairs("g", 1, 2, &[], &[(0, 1)]);
        let users = Matrix::zeros(1, 1);
        let items = Matrix::zeros(2, 1);
        let _ = group_ndcg(&ds, &users, &items, EvalScore::Dot, &[0, 5], 2, 1);
    }
}
