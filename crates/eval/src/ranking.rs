//! Full-catalogue ranking evaluation from embedding matrices.

use crate::metrics::{user_metrics, MetricSet};
use bsl_data::Dataset;
use bsl_linalg::simd::{normalize_rows_into, scores_block};
use bsl_linalg::topk::top_k_masked;
use bsl_linalg::Matrix;

/// How test-time scores are computed from final embeddings.
///
/// Per the paper's Table V: MF tests with cosine similarity, the GCN
/// backbones with the inner product; training always uses cosine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreKind {
    /// Inner product `<u, i>`.
    Dot,
    /// Cosine similarity `<u, i>/(||u||·||i||)`.
    Cosine,
}

/// Evaluation report: one [`MetricSet`] per requested cutoff.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// The cutoffs, in the order requested.
    pub ks: Vec<usize>,
    /// Mean metrics at each cutoff.
    pub at: Vec<MetricSet>,
}

impl EvalReport {
    /// The metrics at cutoff `k`.
    ///
    /// # Panics
    /// Panics if `k` was not evaluated.
    pub fn at_k(&self, k: usize) -> &MetricSet {
        let idx = self
            .ks
            .iter()
            .position(|&x| x == k)
            .unwrap_or_else(|| panic!("cutoff {k} was not evaluated (have {:?})", self.ks));
        &self.at[idx]
    }

    /// Shorthand for `Recall@k`.
    pub fn recall(&self, k: usize) -> f64 {
        self.at_k(k).recall
    }

    /// Shorthand for `NDCG@k`.
    pub fn ndcg(&self, k: usize) -> f64 {
        self.at_k(k).ndcg
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, m) in self.ks.iter().zip(self.at.iter()) {
            writeln!(
                f,
                "@{k:<3} recall {:.4}  ndcg {:.4}  precision {:.4}  hit {:.4}  map {:.4}",
                m.recall, m.ndcg, m.precision, m.hit_rate, m.map
            )?;
        }
        Ok(())
    }
}

/// Scores every item for one user vector into `out` — one blocked
/// tall-skinny matvec over the whole catalogue. Cosine and dot coincide
/// here because [`evaluate`] pre-normalizes both sides for cosine.
fn score_into(user: &[f32], items: &Matrix, out: &mut Vec<f32>) {
    out.resize(items.rows(), 0.0);
    scores_block(user, items.as_slice(), out);
}

/// L2-normalizes every row of `m` into a fresh matrix.
fn normalize_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    let mut norms = vec![0.0f32; m.rows()];
    normalize_rows_into(m, &mut out, &mut norms);
    out
}

/// Ranks the full catalogue for one user, excluding that user's training
/// items, returning the top `k` item ids best-first.
///
/// `user` must already be unit-norm when `kind` is [`ScoreKind::Cosine`]
/// (as [`evaluate`] arranges); for one-off use pass raw vectors with
/// [`ScoreKind::Dot`].
pub fn rank_for_user(
    user: &[f32],
    items: &Matrix,
    kind: ScoreKind,
    train_items: &[u32],
    k: usize,
) -> Vec<u32> {
    let _ = kind; // both kinds score as a dot once vectors are prepared
    let mut scores = Vec::new();
    score_into(user, items, &mut scores);
    top_k_masked(&scores, k, |i| train_items.binary_search(&(i as u32)).is_ok())
}

/// Evaluates `user_emb` × `item_emb` on `ds`'s test split at each cutoff in
/// `ks`, averaging over users with at least one test interaction. Training
/// items are masked out of the ranking (the standard CF protocol).
///
/// Work is distributed over scoped threads (one chunk of users each).
///
/// # Panics
/// Panics if `ks` is empty or embedding shapes disagree with the dataset.
pub fn evaluate(
    ds: &Dataset,
    user_emb: &Matrix,
    item_emb: &Matrix,
    kind: ScoreKind,
    ks: &[usize],
) -> EvalReport {
    assert!(!ks.is_empty(), "need at least one cutoff");
    assert_eq!(user_emb.rows(), ds.n_users, "user embedding rows != n_users");
    assert_eq!(item_emb.rows(), ds.n_items, "item embedding rows != n_items");
    let max_k = *ks.iter().max().expect("non-empty ks");

    // Pre-normalize once for cosine scoring.
    let (users_view, items_view);
    let (users_ref, items_ref): (&Matrix, &Matrix) = match kind {
        ScoreKind::Dot => (user_emb, item_emb),
        ScoreKind::Cosine => {
            users_view = normalize_rows(user_emb);
            items_view = normalize_rows(item_emb);
            (&users_view, &items_view)
        }
    };

    let users = ds.evaluable_users();
    let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
    let chunk = users.len().div_ceil(n_threads.max(1)).max(1);

    let mut partials: Vec<Vec<MetricSet>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for block in users.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut acc = vec![MetricSet::default(); ks.len()];
                let mut scores: Vec<f32> = Vec::new();
                for &u in block {
                    let uvec = users_ref.row(u as usize);
                    score_into(uvec, items_ref, &mut scores);
                    let train = ds.train_items(u as usize);
                    let ranked =
                        top_k_masked(&scores, max_k, |i| train.binary_search(&(i as u32)).is_ok());
                    let relevant = ds.test_items(u as usize);
                    for (slot, &k) in acc.iter_mut().zip(ks.iter()) {
                        slot.accumulate(&user_metrics(&ranked, relevant, k));
                    }
                }
                acc
            }));
        }
        for h in handles {
            partials.push(h.join().expect("evaluation worker panicked"));
        }
    });

    let mut at = vec![MetricSet::default(); ks.len()];
    for part in &partials {
        for (slot, p) in at.iter_mut().zip(part.iter()) {
            slot.merge(p);
        }
    }
    for slot in &mut at {
        slot.finalize();
    }
    EvalReport { ks: ks.to_vec(), at }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A dataset where item embeddings are one-hot indicators of the test
    /// items: the oracle ranking must achieve perfect recall.
    #[test]
    fn oracle_embeddings_score_perfectly() {
        let ds = Dataset::from_pairs("oracle", 2, 4, &[(0, 0), (1, 1)], &[(0, 2), (1, 3)]);
        // dim = n_items; user u's vector = indicator of its test item.
        let mut users = Matrix::zeros(2, 4);
        users.set(0, 2, 1.0);
        users.set(1, 3, 1.0);
        let items = Matrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        let rep = evaluate(&ds, &users, &items, ScoreKind::Dot, &[1, 2]);
        assert!((rep.recall(1) - 1.0).abs() < 1e-12);
        assert!((rep.ndcg(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn train_items_are_masked() {
        // User 0 trains on item 0 whose score would dominate.
        let ds = Dataset::from_pairs("mask", 1, 3, &[(0, 0)], &[(0, 1)]);
        let users = Matrix::from_vec(1, 1, vec![1.0]);
        // Item scores: item0 = 10, item1 = 2, item2 = 1.
        let items = Matrix::from_vec(3, 1, vec![10.0, 2.0, 1.0]);
        let rep = evaluate(&ds, &users, &items, ScoreKind::Dot, &[1]);
        assert!((rep.recall(1) - 1.0).abs() < 1e-12, "train item must be excluded");
    }

    #[test]
    fn cosine_ignores_magnitude() {
        let ds = Dataset::from_pairs("cos", 1, 2, &[], &[(0, 0)]);
        let users = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        // Item 0 aligned but tiny; item 1 misaligned but huge.
        let items = Matrix::from_vec(2, 2, vec![0.01, 0.0, 5.0, 8.0]);
        let rep = evaluate(&ds, &users, &items, ScoreKind::Cosine, &[1]);
        assert!((rep.recall(1) - 1.0).abs() < 1e-12);
        let rep_dot = evaluate(&ds, &users, &items, ScoreKind::Dot, &[1]);
        assert_eq!(rep_dot.recall(1), 0.0);
    }

    #[test]
    fn random_embeddings_score_near_chance() {
        let ds = generate(&SynthConfig::tiny(3));
        let mut rng = StdRng::seed_from_u64(0);
        let users = Matrix::gaussian(ds.n_users, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(ds.n_items, 8, 1.0, &mut rng);
        let rep = evaluate(&ds, &users, &items, ScoreKind::Dot, &[10]);
        // Chance recall@10 ≈ 10/n_items ≈ 0.2 for the tiny config; random
        // embeddings must stay in the same ballpark, far below 1.
        assert!(rep.recall(10) < 0.5, "recall {}", rep.recall(10));
        assert!(rep.at_k(10).n_users > 0);
    }

    #[test]
    fn parallel_eval_is_deterministic() {
        let ds = generate(&SynthConfig::tiny(5));
        let mut rng = StdRng::seed_from_u64(1);
        let users = Matrix::gaussian(ds.n_users, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(ds.n_items, 8, 1.0, &mut rng);
        let a = evaluate(&ds, &users, &items, ScoreKind::Cosine, &[5, 20]);
        let b = evaluate(&ds, &users, &items, ScoreKind::Cosine, &[5, 20]);
        assert_eq!(a.at_k(20), b.at_k(20));
        assert_eq!(a.at_k(5), b.at_k(5));
    }

    #[test]
    fn rank_for_user_masks_and_orders() {
        let items = Matrix::from_vec(4, 1, vec![4.0, 3.0, 2.0, 1.0]);
        let ranked = rank_for_user(&[1.0], &items, ScoreKind::Dot, &[0], 3);
        assert_eq!(ranked, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "was not evaluated")]
    fn report_rejects_unknown_cutoff() {
        let rep = EvalReport { ks: vec![10], at: vec![MetricSet::default()] };
        let _ = rep.at_k(20);
    }
}
