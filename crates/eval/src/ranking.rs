//! Full-catalogue ranking evaluation through the frozen artifact path.
//!
//! Evaluation is "serving plus ground truth": every user's catalogue is
//! scored by [`ModelArtifact::score_catalogue_into`] — the same blocked
//! kernel `bsl-serve` answers requests with — and the resulting top-k is
//! compared against the test split. Raw embedding matrices are accepted
//! via [`evaluate`], which freezes them into an ad-hoc artifact first, so
//! there is exactly one scoring implementation in the workspace.

use crate::metrics::{user_metrics, MetricSet};
use bsl_data::Dataset;
use bsl_linalg::topk::TopK;
use bsl_models::{EvalScore, ModelArtifact};

/// Evaluation report: one [`MetricSet`] per requested cutoff.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// The cutoffs, in the order requested.
    pub ks: Vec<usize>,
    /// Mean metrics at each cutoff.
    pub at: Vec<MetricSet>,
}

impl EvalReport {
    /// The metrics at cutoff `k`.
    ///
    /// # Panics
    /// Panics if `k` was not evaluated.
    pub fn at_k(&self, k: usize) -> &MetricSet {
        let idx = self
            .ks
            .iter()
            .position(|&x| x == k)
            .unwrap_or_else(|| panic!("cutoff {k} was not evaluated (have {:?})", self.ks));
        &self.at[idx]
    }

    /// Shorthand for `Recall@k`.
    pub fn recall(&self, k: usize) -> f64 {
        self.at_k(k).recall
    }

    /// Shorthand for `NDCG@k`.
    pub fn ndcg(&self, k: usize) -> f64 {
        self.at_k(k).ndcg
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, m) in self.ks.iter().zip(self.at.iter()) {
            writeln!(
                f,
                "@{k:<3} recall {:.4}  ndcg {:.4}  precision {:.4}  hit {:.4}  map {:.4}",
                m.recall, m.ndcg, m.precision, m.hit_rate, m.map
            )?;
        }
        Ok(())
    }
}

/// Evaluates a frozen [`ModelArtifact`] on `ds`'s test split at each cutoff
/// in `ks`, averaging over users with at least one test interaction.
/// Training items are masked out of the ranking (the standard CF
/// protocol). The artifact's tables are served as-is — no per-call
/// normalization or augmentation is repaid here.
///
/// Work is distributed over scoped threads (one chunk of users each), with
/// per-thread score and top-k scratch.
///
/// # Panics
/// Panics if `ks` is empty or the artifact's shape disagrees with `ds`.
pub fn evaluate_artifact(ds: &Dataset, artifact: &ModelArtifact, ks: &[usize]) -> EvalReport {
    assert!(!ks.is_empty(), "need at least one cutoff");
    assert_eq!(artifact.n_users(), ds.n_users, "artifact user rows != n_users");
    assert_eq!(artifact.n_items(), ds.n_items, "artifact item rows != n_items");
    let max_k = *ks.iter().max().expect("non-empty ks");

    let users = ds.evaluable_users();
    let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
    let chunk = users.len().div_ceil(n_threads.max(1)).max(1);

    let mut partials: Vec<Vec<MetricSet>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for block in users.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut acc = vec![MetricSet::default(); ks.len()];
                let mut scores: Vec<f32> = Vec::new();
                let mut topk = TopK::new();
                let mut ranked: Vec<u32> = Vec::new();
                for &u in block {
                    artifact.score_catalogue_into(u, &mut scores);
                    let train = ds.train_items(u as usize);
                    topk.select_masked_into(
                        &scores,
                        max_k,
                        |i| train.binary_search(&(i as u32)).is_ok(),
                        &mut ranked,
                    );
                    let relevant = ds.test_items(u as usize);
                    for (slot, &k) in acc.iter_mut().zip(ks.iter()) {
                        slot.accumulate(&user_metrics(&ranked, relevant, k));
                    }
                }
                acc
            }));
        }
        for h in handles {
            partials.push(h.join().expect("evaluation worker panicked"));
        }
    });

    let mut at = vec![MetricSet::default(); ks.len()];
    for part in &partials {
        for (slot, p) in at.iter_mut().zip(part.iter()) {
            slot.merge(p);
        }
    }
    for slot in &mut at {
        slot.finalize();
    }
    EvalReport { ks: ks.to_vec(), at }
}

/// Evaluates raw embedding matrices under `score` by freezing them into an
/// ad-hoc artifact (normalizing / augmenting once) and ranking through
/// [`evaluate_artifact`]. Use this for embeddings that never pass through
/// a [`Backbone`](bsl_models::Backbone), e.g. the ENMF/UltraGCN baselines;
/// trained models should export an artifact instead and evaluate that.
///
/// # Panics
/// Panics if `ks` is empty or embedding shapes disagree with the dataset.
pub fn evaluate(
    ds: &Dataset,
    user_emb: &bsl_linalg::Matrix,
    item_emb: &bsl_linalg::Matrix,
    score: EvalScore,
    ks: &[usize],
) -> EvalReport {
    assert_eq!(user_emb.rows(), ds.n_users, "user embedding rows != n_users");
    assert_eq!(item_emb.rows(), ds.n_items, "item embedding rows != n_items");
    let artifact = ModelArtifact::from_embeddings("adhoc", user_emb, item_emb, score);
    evaluate_artifact(ds, &artifact, ks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};
    use bsl_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A dataset where item embeddings are one-hot indicators of the test
    /// items: the oracle ranking must achieve perfect recall.
    #[test]
    fn oracle_embeddings_score_perfectly() {
        let ds = Dataset::from_pairs("oracle", 2, 4, &[(0, 0), (1, 1)], &[(0, 2), (1, 3)]);
        // dim = n_items; user u's vector = indicator of its test item.
        let mut users = Matrix::zeros(2, 4);
        users.set(0, 2, 1.0);
        users.set(1, 3, 1.0);
        let items = Matrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        let rep = evaluate(&ds, &users, &items, EvalScore::Dot, &[1, 2]);
        assert!((rep.recall(1) - 1.0).abs() < 1e-12);
        assert!((rep.ndcg(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn train_items_are_masked() {
        // User 0 trains on item 0 whose score would dominate.
        let ds = Dataset::from_pairs("mask", 1, 3, &[(0, 0)], &[(0, 1)]);
        let users = Matrix::from_vec(1, 1, vec![1.0]);
        // Item scores: item0 = 10, item1 = 2, item2 = 1.
        let items = Matrix::from_vec(3, 1, vec![10.0, 2.0, 1.0]);
        let rep = evaluate(&ds, &users, &items, EvalScore::Dot, &[1]);
        assert!((rep.recall(1) - 1.0).abs() < 1e-12, "train item must be excluded");
    }

    #[test]
    fn cosine_ignores_magnitude() {
        let ds = Dataset::from_pairs("cos", 1, 2, &[], &[(0, 0)]);
        let users = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        // Item 0 aligned but tiny; item 1 misaligned but huge.
        let items = Matrix::from_vec(2, 2, vec![0.01, 0.0, 5.0, 8.0]);
        let rep = evaluate(&ds, &users, &items, EvalScore::Cosine, &[1]);
        assert!((rep.recall(1) - 1.0).abs() < 1e-12);
        let rep_dot = evaluate(&ds, &users, &items, EvalScore::Dot, &[1]);
        assert_eq!(rep_dot.recall(1), 0.0);
    }

    #[test]
    fn negsqdist_ranks_by_proximity() {
        // Item 1 is closest to the user; item 0 has the larger dot product.
        let ds = Dataset::from_pairs("dist", 1, 2, &[], &[(0, 1)]);
        let users = Matrix::from_vec(1, 1, vec![1.0]);
        let items = Matrix::from_vec(2, 1, vec![5.0, 1.2]);
        let rep = evaluate(&ds, &users, &items, EvalScore::NegSqDist, &[1]);
        assert!((rep.recall(1) - 1.0).abs() < 1e-12);
        let rep_dot = evaluate(&ds, &users, &items, EvalScore::Dot, &[1]);
        assert_eq!(rep_dot.recall(1), 0.0);
    }

    #[test]
    fn random_embeddings_score_near_chance() {
        let ds = generate(&SynthConfig::tiny(3));
        let mut rng = StdRng::seed_from_u64(0);
        let users = Matrix::gaussian(ds.n_users, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(ds.n_items, 8, 1.0, &mut rng);
        let rep = evaluate(&ds, &users, &items, EvalScore::Dot, &[10]);
        // Chance recall@10 ≈ 10/n_items ≈ 0.2 for the tiny config; random
        // embeddings must stay in the same ballpark, far below 1.
        assert!(rep.recall(10) < 0.5, "recall {}", rep.recall(10));
        assert!(rep.at_k(10).n_users > 0);
    }

    #[test]
    fn parallel_eval_is_deterministic() {
        let ds = generate(&SynthConfig::tiny(5));
        let mut rng = StdRng::seed_from_u64(1);
        let users = Matrix::gaussian(ds.n_users, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(ds.n_items, 8, 1.0, &mut rng);
        let a = evaluate(&ds, &users, &items, EvalScore::Cosine, &[5, 20]);
        let b = evaluate(&ds, &users, &items, EvalScore::Cosine, &[5, 20]);
        assert_eq!(a.at_k(20), b.at_k(20));
        assert_eq!(a.at_k(5), b.at_k(5));
    }

    #[test]
    fn artifact_eval_equals_raw_embedding_eval() {
        let ds = generate(&SynthConfig::tiny(7));
        let mut rng = StdRng::seed_from_u64(4);
        let users = Matrix::gaussian(ds.n_users, 8, 1.0, &mut rng);
        let items = Matrix::gaussian(ds.n_items, 8, 1.0, &mut rng);
        for score in [EvalScore::Dot, EvalScore::Cosine, EvalScore::NegSqDist] {
            let art = ModelArtifact::from_embeddings("MF", &users, &items, score);
            let via_art = evaluate_artifact(&ds, &art, &[10, 20]);
            let via_raw = evaluate(&ds, &users, &items, score, &[10, 20]);
            assert_eq!(via_art.at_k(20), via_raw.at_k(20), "{score:?}");
            assert_eq!(via_art.at_k(10), via_raw.at_k(10), "{score:?}");
        }
    }

    #[test]
    #[should_panic(expected = "was not evaluated")]
    fn report_rejects_unknown_cutoff() {
        let rep = EvalReport { ks: vec![10], at: vec![MetricSet::default()] };
        let _ = rep.at_k(20);
    }
}
