//! Per-user ranking metrics.
//!
//! Definitions follow the LightGCN / NGCF evaluation protocol the paper
//! adheres to: for a user with relevance set `R` and ranked list
//! `L = (l_1, …, l_K)`,
//!
//! * `Recall@K = |L ∩ R| / |R|`
//! * `NDCG@K = DCG@K / IDCG@K`, `DCG = Σ_k 1[l_k ∈ R]/log2(k+1)` (1-based
//!   ranks), `IDCG` the DCG of the ideal ranking of `min(|R|, K)` hits
//! * `Precision@K = |L ∩ R| / K`
//! * `HitRate@K = 1[|L ∩ R| > 0]`
//! * `MAP@K` — mean average precision truncated at `K`, normalized by
//!   `min(|R|, K)`.

/// Metrics of one user at one cutoff.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UserMetrics {
    /// Recall@K.
    pub recall: f64,
    /// NDCG@K.
    pub ndcg: f64,
    /// Precision@K.
    pub precision: f64,
    /// HitRate@K.
    pub hit_rate: f64,
    /// MAP@K.
    pub map: f64,
}

/// Accumulated means over many users.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricSet {
    /// Mean Recall@K.
    pub recall: f64,
    /// Mean NDCG@K.
    pub ndcg: f64,
    /// Mean Precision@K.
    pub precision: f64,
    /// Mean HitRate@K.
    pub hit_rate: f64,
    /// Mean MAP@K.
    pub map: f64,
    /// Number of users averaged.
    pub n_users: usize,
}

impl MetricSet {
    /// Adds one user's metrics to the running sums.
    pub fn accumulate(&mut self, m: &UserMetrics) {
        self.recall += m.recall;
        self.ndcg += m.ndcg;
        self.precision += m.precision;
        self.hit_rate += m.hit_rate;
        self.map += m.map;
        self.n_users += 1;
    }

    /// Merges another partial accumulator (for parallel reduction).
    pub fn merge(&mut self, other: &MetricSet) {
        self.recall += other.recall;
        self.ndcg += other.ndcg;
        self.precision += other.precision;
        self.hit_rate += other.hit_rate;
        self.map += other.map;
        self.n_users += other.n_users;
    }

    /// Converts sums to means. No-op on an empty accumulator.
    pub fn finalize(&mut self) {
        if self.n_users == 0 {
            return;
        }
        let n = self.n_users as f64;
        self.recall /= n;
        self.ndcg /= n;
        self.precision /= n;
        self.hit_rate /= n;
        self.map /= n;
    }
}

/// `1/log2(rank + 2)` — the DCG discount of 0-based `rank`.
#[inline]
pub fn dcg_discount(rank: usize) -> f64 {
    1.0 / ((rank + 2) as f64).log2()
}

/// Ideal DCG for `n_rel` relevant items at cutoff `k`.
pub fn idcg(n_rel: usize, k: usize) -> f64 {
    (0..n_rel.min(k)).map(dcg_discount).sum()
}

/// Computes all metrics at cutoff `k` for `ranked` (the model's top-K or
/// longer, best first, duplicate-free — top-K selection guarantees this)
/// against the sorted relevance set `relevant`.
///
/// Returns all-zero metrics when `relevant` is empty (such users are
/// normally excluded upstream).
///
/// # Panics
/// Panics if `k == 0`.
pub fn user_metrics(ranked: &[u32], relevant: &[u32], k: usize) -> UserMetrics {
    assert!(k > 0, "cutoff must be positive");
    debug_assert!(relevant.windows(2).all(|w| w[0] < w[1]), "relevance set must be sorted");
    if relevant.is_empty() {
        return UserMetrics::default();
    }
    let mut hits = 0usize;
    let mut dcg = 0.0f64;
    let mut ap = 0.0f64;
    for (rank, &item) in ranked.iter().take(k).enumerate() {
        if relevant.binary_search(&item).is_ok() {
            hits += 1;
            dcg += dcg_discount(rank);
            ap += hits as f64 / (rank + 1) as f64;
        }
    }
    let n_rel = relevant.len();
    UserMetrics {
        recall: hits as f64 / n_rel as f64,
        ndcg: if hits > 0 { dcg / idcg(n_rel, k) } else { 0.0 },
        precision: hits as f64 / k as f64,
        hit_rate: if hits > 0 { 1.0 } else { 0.0 },
        map: ap / n_rel.min(k) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_ranking_maxes_everything() {
        let m = user_metrics(&[1, 2, 3], &[1, 2, 3], 3);
        assert!((m.recall - 1.0).abs() < 1e-12);
        assert!((m.ndcg - 1.0).abs() < 1e-12);
        assert!((m.precision - 1.0).abs() < 1e-12);
        assert_eq!(m.hit_rate, 1.0);
        assert!((m.map - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_intersection_zeroes_everything() {
        let m = user_metrics(&[4, 5, 6], &[1, 2, 3], 3);
        assert_eq!(m, UserMetrics::default());
    }

    #[test]
    fn hand_worked_example() {
        // K = 4, relevant = {10, 20}, ranked = [10, 7, 20, 9].
        // hits at ranks 0 and 2; DCG = 1/log2(2) + 1/log2(4) = 1 + 0.5.
        // IDCG = 1/log2(2) + 1/log2(3).
        let m = user_metrics(&[10, 7, 20, 9], &[10, 20], 4);
        let want_ndcg = 1.5 / (1.0 + 1.0 / 3.0f64.log2());
        assert!((m.ndcg - want_ndcg).abs() < 1e-12, "{} vs {want_ndcg}", m.ndcg);
        assert!((m.recall - 1.0).abs() < 1e-12);
        assert!((m.precision - 0.5).abs() < 1e-12);
        // AP = (1/1 + 2/3) / 2.
        assert!((m.map - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn rank_position_matters_for_ndcg() {
        let early = user_metrics(&[1, 8, 9], &[1], 3);
        let late = user_metrics(&[8, 9, 1], &[1], 3);
        assert!(early.ndcg > late.ndcg);
        assert_eq!(early.recall, late.recall);
    }

    #[test]
    fn k_truncates_list() {
        let m = user_metrics(&[9, 9, 9, 1], &[1], 3);
        assert_eq!(m.recall, 0.0, "hit at rank 4 must not count at K=3");
    }

    #[test]
    fn idcg_saturates_at_k() {
        assert_eq!(idcg(10, 3), idcg(3, 3));
        assert!(idcg(2, 3) < idcg(3, 3));
    }

    #[test]
    fn empty_relevance_is_zero() {
        assert_eq!(user_metrics(&[1, 2], &[], 2), UserMetrics::default());
    }

    #[test]
    fn metric_set_accumulate_finalize() {
        let mut acc = MetricSet::default();
        acc.accumulate(&UserMetrics {
            recall: 1.0,
            ndcg: 0.5,
            precision: 0.2,
            hit_rate: 1.0,
            map: 0.4,
        });
        acc.accumulate(&UserMetrics::default());
        acc.finalize();
        assert_eq!(acc.n_users, 2);
        assert!((acc.recall - 0.5).abs() < 1e-12);
        assert!((acc.ndcg - 0.25).abs() < 1e-12);
    }

    #[test]
    fn metric_set_merge_matches_sequential() {
        let users = [
            UserMetrics { recall: 0.3, ndcg: 0.2, precision: 0.1, hit_rate: 1.0, map: 0.15 },
            UserMetrics { recall: 0.6, ndcg: 0.5, precision: 0.3, hit_rate: 1.0, map: 0.4 },
            UserMetrics { recall: 0.0, ndcg: 0.0, precision: 0.0, hit_rate: 0.0, map: 0.0 },
        ];
        let mut seq = MetricSet::default();
        for u in &users {
            seq.accumulate(u);
        }
        let mut a = MetricSet::default();
        a.accumulate(&users[0]);
        let mut b = MetricSet::default();
        b.accumulate(&users[1]);
        b.accumulate(&users[2]);
        a.merge(&b);
        assert_eq!(a, seq);
    }

    proptest! {
        #[test]
        fn prop_metrics_in_unit_interval(
            ranked_set in proptest::collection::hash_set(0u32..50, 1..30),
            rel_raw in proptest::collection::btree_set(0u32..50, 1..10),
            k in 1usize..25,
        ) {
            // Ranked lists are duplicate-free by construction upstream.
            let ranked: Vec<u32> = ranked_set.into_iter().collect();
            let relevant: Vec<u32> = rel_raw.into_iter().collect();
            let m = user_metrics(&ranked, &relevant, k);
            for v in [m.recall, m.ndcg, m.precision, m.hit_rate, m.map] {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "metric {v} out of range");
            }
        }

        /// Recall and NDCG are monotone non-decreasing in K.
        #[test]
        fn prop_monotone_in_k(
            ranked_set in proptest::collection::hash_set(0u32..50, 5..30),
            rel_raw in proptest::collection::btree_set(0u32..50, 1..10),
        ) {
            let ranked: Vec<u32> = ranked_set.into_iter().collect();
            let relevant: Vec<u32> = rel_raw.into_iter().collect();
            let mut prev_recall = 0.0;
            for k in 1..ranked.len() {
                let m = user_metrics(&ranked, &relevant, k);
                prop_assert!(m.recall >= prev_recall - 1e-12);
                prev_recall = m.recall;
            }
        }
    }
}
