//! Top-K ranking evaluation for the BSL reproduction.
//!
//! * [`metrics`] — per-user metric definitions (Recall@K, NDCG@K,
//!   Precision@K, HitRate@K, MAP@K) on a ranked list vs. a relevance set;
//! * [`ranking`] — full ranking of the item catalogue through a frozen
//!   [`ModelArtifact`] (the same blocked scorer `bsl-serve` uses), with
//!   train-item masking, parallelized across users with scoped threads;
//! * [`groups`] — the popularity-group decomposition of NDCG@K used by the
//!   fairness analyses (Figs 4a and 5).
//!
//! Scoring conventions ([`EvalScore`]: dot / cosine / negated squared
//! distance, per the paper's Table V) are baked into the artifact's
//! prepared tables once, not repaid per evaluation call.

// Enforced by bsl-audit (audit/policy.toml): this crate is not on the
// unsafe allowlist.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod groups;
pub mod metrics;
pub mod ranking;

pub use bsl_models::{EvalScore, ModelArtifact};
pub use groups::{group_ndcg, group_ndcg_restricted};
pub use metrics::{MetricSet, UserMetrics};
pub use ranking::{evaluate, evaluate_artifact, EvalReport};
