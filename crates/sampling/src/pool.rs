//! Persistent sampling workers: the long-lived counterpart of
//! [`ParBatchIter`](crate::ParBatchIter).
//!
//! [`SamplerPool`] spawns its shard workers **once**; every epoch is then
//! one [`SamplerPool::start_epoch`] call that shuffles the pair list on
//! the caller's thread (identically to [`BatchIter`](crate::BatchIter))
//! and mails each worker an epoch-job descriptor for its shard. Workers
//! park on their job channel between epochs, so per-epoch thread-spawn
//! overhead disappears while the batch stream stays **bit-identical** to
//! `ParBatchIter` — shard 0 continues the shuffle RNG stream, shards
//! `s > 0` run SplitMix64-split streams, and batches arrive in serial
//! epoch order through bounded channels (see the determinism contract in
//! [`crate::par_batch`]).

use crate::batch::TrainBatch;
use crate::negative::NegativeSampler;
use bsl_data::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Batches buffered per shard before its worker blocks; small enough to
/// bound memory at `n_shards · DEPTH · batch_size · (m + 2)` ids, large
/// enough to keep samplers ahead of the training step.
pub(crate) const CHANNEL_DEPTH: usize = 2;

/// Derives shard `s`'s RNG seed from the epoch seed with one SplitMix64
/// finalizer round, so nearby `(seed, shard)` pairs land on unrelated
/// streams.
pub(crate) fn shard_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything one shard worker needs to produce its share of an epoch.
struct EpochJob {
    pairs: Arc<Vec<(u32, u32)>>,
    sampler: Arc<dyn NegativeSampler>,
    batch_size: usize,
    m: usize,
    shard: usize,
    n_shards: usize,
    rng: StdRng,
    tx: SyncSender<TrainBatch>,
}

/// A pool of persistent sampling shard workers, created once and fed one
/// epoch-job descriptor per worker per epoch.
pub struct SamplerPool {
    txs: Vec<Sender<EpochJob>>,
    handles: Vec<JoinHandle<()>>,
}

impl SamplerPool {
    /// Spawns `n_shards` parked shard workers.
    ///
    /// # Panics
    /// Panics if `n_shards == 0`.
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let mut txs = Vec::with_capacity(n_shards);
        let mut handles = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let (tx, rx): (Sender<EpochJob>, Receiver<EpochJob>) = std::sync::mpsc::channel();
            txs.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("bsl-sampler-{s}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        run_shard(job);
                    }
                })
                .expect("spawning sampler worker");
            handles.push(handle);
        }
        Self { txs, handles }
    }

    /// Number of shard workers (the epoch's shard count).
    pub fn n_shards(&self) -> usize {
        self.txs.len()
    }

    /// Starts one sharded epoch over `ds`'s training pairs and returns the
    /// batch iterator. The shuffle, batch boundaries and per-shard RNG
    /// streams are exactly those of
    /// [`ParBatchIter::new`](crate::ParBatchIter::new) with
    /// `n_shards = self.n_shards()`.
    ///
    /// Epochs are sequential per pool: start the next epoch after the
    /// previous iterator is exhausted or dropped (each worker processes
    /// its queued jobs in order, abandoning an epoch whose consumer went
    /// away the next time it tries to send a batch).
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or `m == 0`.
    pub fn start_epoch(
        &self,
        ds: &Arc<Dataset>,
        sampler: &Arc<dyn NegativeSampler>,
        batch_size: usize,
        m: usize,
        seed: u64,
    ) -> PooledEpochIter {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(m > 0, "need at least one negative per row");
        let n_shards = self.n_shards();

        // Identical shuffle to BatchIter: same RNG, same Fisher–Yates.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = ds.train_pairs();
        for i in (1..pairs.len()).rev() {
            pairs.swap(i, rng.gen_range(0..=i));
        }
        let pairs = Arc::new(pairs);
        let n_batches = pairs.len().div_ceil(batch_size);

        let mut rxs = Vec::with_capacity(n_shards);
        for (s, job_tx) in self.txs.iter().enumerate() {
            let (tx, rx): (SyncSender<TrainBatch>, Receiver<TrainBatch>) =
                sync_channel(CHANNEL_DEPTH);
            rxs.push(rx);
            // Shard 0 continues the post-shuffle stream so a single shard
            // reproduces the serial iterator bit-for-bit; the rest split
            // fresh streams off the epoch seed.
            let shard_rng = if s == 0 {
                rng.clone()
            } else {
                StdRng::seed_from_u64(shard_seed(seed, s as u64))
            };
            job_tx
                .send(EpochJob {
                    pairs: Arc::clone(&pairs),
                    sampler: Arc::clone(sampler),
                    batch_size,
                    m,
                    shard: s,
                    n_shards,
                    rng: shard_rng,
                    tx,
                })
                .expect("sampler worker died");
        }
        PooledEpochIter { rxs, n_shards, n_batches, yielded: 0 }
    }
}

impl Drop for SamplerPool {
    fn drop(&mut self) {
        // Closing the job channels wakes parked workers; any worker still
        // blocked sending a batch exits when its epoch receiver drops
        // (which `PooledEpochIter`'s owner has done by the time the pool
        // goes away, since the iterator borrows nothing from the pool).
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Builds every `n_shards`-th batch starting at `shard`, in order, until
/// the epoch ends or the consumer goes away.
fn run_shard(job: EpochJob) {
    let EpochJob { pairs, sampler, batch_size, m, shard, n_shards, mut rng, tx } = job;
    let n_batches = pairs.len().div_ceil(batch_size);
    for bi in (shard..n_batches).step_by(n_shards) {
        let start = bi * batch_size;
        let end = (start + batch_size).min(pairs.len());
        let rows = &pairs[start..end];
        let mut users = Vec::with_capacity(rows.len());
        let mut pos = Vec::with_capacity(rows.len());
        let mut negs = Vec::with_capacity(rows.len() * m);
        for &(u, i) in rows {
            users.push(u);
            pos.push(i);
            sampler.sample_into(u, m, &mut rng, &mut negs);
        }
        if tx.send(TrainBatch { users, pos, negs, m }).is_err() {
            return; // consumer dropped the epoch iterator mid-epoch
        }
    }
}

/// One epoch's batch stream off a [`SamplerPool`], yielding batches in
/// exactly the serial epoch order (round-robin over the shard channels).
pub struct PooledEpochIter {
    rxs: Vec<Receiver<TrainBatch>>,
    n_shards: usize,
    n_batches: usize,
    yielded: usize,
}

impl PooledEpochIter {
    /// Total number of batches this epoch will yield.
    pub fn n_batches(&self) -> usize {
        self.n_batches
    }
}

impl Iterator for PooledEpochIter {
    type Item = TrainBatch;

    fn next(&mut self) -> Option<TrainBatch> {
        if self.yielded >= self.n_batches {
            return None;
        }
        let shard = self.yielded % self.n_shards;
        let batch = self.rxs[shard].recv().expect("batch shard worker died mid-epoch");
        self.yielded += 1;
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n_batches - self.yielded;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchIter;
    use crate::negative::UniformSampler;
    use bsl_data::synth::{generate, SynthConfig};

    fn ds() -> Arc<Dataset> {
        Arc::new(generate(&SynthConfig::tiny(1)))
    }

    fn uniform(ds: &Arc<Dataset>) -> Arc<dyn NegativeSampler> {
        Arc::new(UniformSampler::new(ds.clone()))
    }

    #[test]
    fn pooled_epochs_match_serial_iterator_with_one_shard() {
        let ds = ds();
        let sampler = uniform(&ds);
        let pool = SamplerPool::new(1);
        for seed in [3u64, 9] {
            let serial: Vec<TrainBatch> =
                BatchIter::new(&ds, sampler.as_ref(), 37, 4, seed).collect();
            let pooled: Vec<TrainBatch> = pool.start_epoch(&ds, &sampler, 37, 4, seed).collect();
            assert_eq!(serial.len(), pooled.len());
            for (a, b) in serial.iter().zip(pooled.iter()) {
                assert_eq!(a.users, b.users);
                assert_eq!(a.pos, b.pos);
                assert_eq!(a.negs, b.negs, "one shard must replay the serial stream");
            }
        }
    }

    #[test]
    fn pool_reuse_across_epochs_replays_each_seed_exactly() {
        let ds = ds();
        let sampler = uniform(&ds);
        let pool = SamplerPool::new(3);
        let run =
            |seed: u64| pool.start_epoch(&ds, &sampler, 32, 2, seed).collect::<Vec<TrainBatch>>();
        // Same pool, many epochs: per-seed streams are stable no matter
        // what ran before (workers carry no state across jobs).
        let a5 = run(5);
        let _ = run(6);
        let b5 = run(5);
        assert_eq!(a5.len(), b5.len());
        for (x, y) in a5.iter().zip(b5.iter()) {
            assert_eq!(x.users, y.users);
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.negs, y.negs);
        }
    }

    #[test]
    fn early_drop_mid_epoch_leaves_pool_usable() {
        let ds = ds();
        let sampler = uniform(&ds);
        let pool = SamplerPool::new(4);
        {
            let mut iter = pool.start_epoch(&ds, &sampler, 8, 2, 1);
            let _ = iter.next();
            // Dropped mid-epoch: workers blocked on full channels abandon.
        }
        // The next epoch must still produce the full batch count.
        let n = pool.start_epoch(&ds, &sampler, 8, 2, 2).count();
        let expected = ds.train_pairs().len().div_ceil(8);
        assert_eq!(n, expected);
    }

    #[test]
    fn size_hint_tracks_remaining_batches() {
        let ds = ds();
        let sampler = uniform(&ds);
        let pool = SamplerPool::new(2);
        let mut iter = pool.start_epoch(&ds, &sampler, 50, 1, 3);
        let n = iter.n_batches();
        assert_eq!(iter.size_hint(), (n, Some(n)));
        let _ = iter.next();
        assert_eq!(iter.size_hint(), (n - 1, Some(n - 1)));
    }
}
