//! Negative samplers.
//!
//! All samplers draw *item indices* for a given user. "True" negatives are
//! items the user has no training interaction with; the [`NoisySampler`]
//! deliberately violates this at a controlled rate to create the
//! false-negative distribution shift studied in §III-B and Fig 8.

use crate::alias::AliasTable;
use bsl_data::Dataset;
use rand::rngs::StdRng;
use rand::Rng;

/// Maximum rejected candidates per draw before the rejection loop bails
/// out (see [`draw_rejecting`]).
pub const MAX_REJECTIONS: usize = 32;

/// Shared rejection loop used by every sampler: draws candidates from
/// `draw` until one is not a training positive of `user`.
///
/// Two documented escape hatches keep the loop from stalling:
///
/// * **Dense users** (≥ half the catalogue interacted) skip rejection
///   entirely — the very first draw is returned unchecked.
/// * **Bailout**: after [`MAX_REJECTIONS`] rejected candidates, one final
///   draw is taken and returned *unconditionally*. That draw may be a
///   training positive — a deliberate, bounded false-negative leak for
///   pathological users, which the paper's losses tolerate by design
///   (robustness to false negatives is BSL's whole point).
///
/// Exactly one of these paths runs per returned item, so every call
/// consumes at most `MAX_REJECTIONS + 1` draws from `draw`.
pub fn draw_rejecting(
    ds: &Dataset,
    user: usize,
    rng: &mut StdRng,
    mut draw: impl FnMut(&mut StdRng) -> u32,
) -> u32 {
    let dense_user = ds.train.row_nnz(user) * 2 >= ds.n_items;
    if dense_user {
        return draw(rng);
    }
    for _ in 0..MAX_REJECTIONS {
        let cand = draw(rng);
        if !ds.train.contains(user, cand) {
            return cand;
        }
    }
    // Explicit bailout draw: accepted whatever it is.
    draw(rng)
}

/// A source of negative items for `(user, positive)` training rows.
pub trait NegativeSampler: Send + Sync {
    /// Appends `n` sampled item ids for `user` to `out`.
    fn sample_into(&self, user: u32, n: usize, rng: &mut StdRng, out: &mut Vec<u32>);

    /// Convenience wrapper returning a fresh vector.
    fn sample(&self, user: u32, n: usize, rng: &mut StdRng) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        self.sample_into(user, n, rng, &mut out);
        out
    }
}

/// Uniform sampling over the user's non-interacted items (rejection
/// sampling against the training positives — the standard CF protocol).
pub struct UniformSampler {
    ds: std::sync::Arc<Dataset>,
}

impl UniformSampler {
    /// Creates a sampler bound to `ds`.
    pub fn new(ds: std::sync::Arc<Dataset>) -> Self {
        Self { ds }
    }
}

impl NegativeSampler for UniformSampler {
    fn sample_into(&self, user: u32, n: usize, rng: &mut StdRng, out: &mut Vec<u32>) {
        let u = user as usize;
        let n_items = self.ds.n_items as u32;
        for _ in 0..n {
            out.push(draw_rejecting(&self.ds, u, rng, |rng| rng.gen_range(0..n_items)));
        }
    }
}

/// Popularity-weighted sampling (`p(i) ∝ pop_i^alpha`), rejecting the
/// user's training positives. `alpha = 1` reproduces the popularity-based
/// strategy prior work attributed SL's fairness to; the paper shows
/// fairness survives uniform sampling too.
pub struct PopularitySampler {
    ds: std::sync::Arc<Dataset>,
    table: AliasTable,
}

impl PopularitySampler {
    /// Builds the alias table from train-split popularity.
    pub fn new(ds: std::sync::Arc<Dataset>, alpha: f64) -> Self {
        let weights: Vec<f64> = ds.popularity().iter().map(|&p| (p as f64).powf(alpha)).collect();
        let table = AliasTable::new(&weights);
        Self { ds, table }
    }
}

impl NegativeSampler for PopularitySampler {
    fn sample_into(&self, user: u32, n: usize, rng: &mut StdRng, out: &mut Vec<u32>) {
        let u = user as usize;
        for _ in 0..n {
            out.push(draw_rejecting(&self.ds, u, rng, |rng| self.table.sample(rng)));
        }
    }
}

/// Noisy negative sampling implementing the paper's `r_noise` knob:
/// "`r_noise` represents the ratio of the sampling probability of positive
/// samples to that of negative samples" (§III-B footnote 2).
///
/// For a user with `P` training positives out of `N` items, each draw is a
/// (known, deliberate) false negative with probability
/// `r·P / (r·P + (N−P))`, and a uniform true negative otherwise.
pub struct NoisySampler {
    ds: std::sync::Arc<Dataset>,
    r_noise: f64,
}

impl NoisySampler {
    /// Creates the sampler; `r_noise = 0` reduces to [`UniformSampler`]
    /// behaviour.
    ///
    /// # Panics
    /// Panics if `r_noise < 0`.
    pub fn new(ds: std::sync::Arc<Dataset>, r_noise: f64) -> Self {
        assert!(r_noise >= 0.0, "r_noise must be non-negative, got {r_noise}");
        Self { ds, r_noise }
    }

    /// Probability that one draw for `user` is a false negative.
    pub fn false_negative_prob(&self, user: u32) -> f64 {
        let p = self.ds.train.row_nnz(user as usize) as f64;
        let n = self.ds.n_items as f64;
        let neg = (n - p).max(0.0);
        let w_pos = self.r_noise * p;
        if w_pos + neg == 0.0 {
            0.0
        } else {
            w_pos / (w_pos + neg)
        }
    }
}

impl NegativeSampler for NoisySampler {
    fn sample_into(&self, user: u32, n: usize, rng: &mut StdRng, out: &mut Vec<u32>) {
        let u = user as usize;
        let positives = self.ds.train.row_indices(u);
        let p_false = self.false_negative_prob(user);
        let n_items = self.ds.n_items as u32;
        for _ in 0..n {
            if !positives.is_empty() && rng.gen::<f64>() < p_false {
                // Deliberate false negative: one of the user's positives.
                out.push(positives[rng.gen_range(0..positives.len())]);
            } else {
                out.push(draw_rejecting(&self.ds, u, rng, |rng| rng.gen_range(0..n_items)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsl_data::synth::{generate, SynthConfig};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn ds() -> Arc<Dataset> {
        Arc::new(generate(&SynthConfig::tiny(1)))
    }

    #[test]
    fn uniform_avoids_positives() {
        let ds = ds();
        let s = UniformSampler::new(ds.clone());
        let mut rng = StdRng::seed_from_u64(1);
        for u in 0..ds.n_users as u32 {
            let negs = s.sample(u, 50, &mut rng);
            assert_eq!(negs.len(), 50);
            for &i in &negs {
                assert!(!ds.train.contains(u as usize, i), "user {u} got positive {i}");
            }
        }
    }

    #[test]
    fn uniform_covers_item_space() {
        let ds = ds();
        let s = UniformSampler::new(ds.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let negs = s.sample(0, 3000, &mut rng);
        let distinct: std::collections::HashSet<u32> = negs.into_iter().collect();
        assert!(distinct.len() > ds.n_items / 2, "only {} distinct items", distinct.len());
    }

    #[test]
    fn popularity_prefers_popular_items() {
        let ds = ds();
        let s = PopularitySampler::new(ds.clone(), 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let pop = ds.popularity();
        // Candidate items for user 0 = everything except their training
        // positives (the sampler rejects those). Under `p(i) ∝ pop_i` the
        // expected popularity of a draw is Σ pop_i² / Σ pop_i over the
        // candidates, strictly above the uniform candidate mean whenever
        // popularity varies.
        let candidates: Vec<usize> =
            (0..ds.n_items).filter(|&i| !ds.train.contains(0, i as u32)).collect();
        let sum_pop: f64 = candidates.iter().map(|&i| pop[i] as f64).sum();
        let uniform_mean = sum_pop / candidates.len() as f64;
        let weighted_mean: f64 =
            candidates.iter().map(|&i| (pop[i] as f64).powi(2)).sum::<f64>() / sum_pop;
        let negs = s.sample(0, 4000, &mut rng);
        let mean_pop_sampled: f64 =
            negs.iter().map(|&i| pop[i as usize] as f64).sum::<f64>() / negs.len() as f64;
        assert!(
            weighted_mean > uniform_mean,
            "degenerate dataset: weighted {weighted_mean} vs uniform {uniform_mean}"
        );
        assert!(
            (mean_pop_sampled - weighted_mean).abs() < 0.1 * weighted_mean,
            "sampled mean pop {mean_pop_sampled} vs expected {weighted_mean}"
        );
        assert!(
            mean_pop_sampled > uniform_mean,
            "sampled mean pop {mean_pop_sampled} not above uniform mean {uniform_mean}"
        );
    }

    #[test]
    fn noisy_zero_has_no_false_negatives() {
        let ds = ds();
        let s = NoisySampler::new(ds.clone(), 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let negs = s.sample(3, 200, &mut rng);
        for &i in &negs {
            assert!(!ds.train.contains(3, i));
        }
    }

    #[test]
    fn noisy_rate_matches_formula() {
        let ds = ds();
        let r = 5.0;
        let s = NoisySampler::new(ds.clone(), r);
        let mut rng = StdRng::seed_from_u64(5);
        let user = 0u32;
        let expect = s.false_negative_prob(user);
        let negs = s.sample(user, 20_000, &mut rng);
        let false_negs =
            negs.iter().filter(|&&i| ds.train.contains(user as usize, i)).count() as f64;
        let got = false_negs / negs.len() as f64;
        assert!((got - expect).abs() < 0.02, "false-negative rate {got} vs expected {expect}");
    }

    #[test]
    fn noisy_rate_increases_with_r() {
        let ds = ds();
        let a = NoisySampler::new(ds.clone(), 1.0).false_negative_prob(0);
        let b = NoisySampler::new(ds.clone(), 10.0).false_negative_prob(0);
        assert!(b > a);
    }

    #[test]
    fn samplers_deterministic_in_seed() {
        let ds = ds();
        let s = UniformSampler::new(ds);
        let a = s.sample(1, 20, &mut StdRng::seed_from_u64(7));
        let b = s.sample(1, 20, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn noisy_rejects_negative_rate() {
        let _ = NoisySampler::new(ds(), -1.0);
    }

    /// A sparse user (1 positive of 10 items) whose draws *always* land on
    /// the positive: the loop must take exactly `MAX_REJECTIONS` rejected
    /// draws plus one explicit bailout draw, and return the positive.
    #[test]
    fn bailout_draw_is_explicit_and_bounded() {
        let ds = Dataset::from_pairs("bail", 1, 10, &[(0, 3)], &[]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut draws = 0usize;
        let got = draw_rejecting(&ds, 0, &mut rng, |_| {
            draws += 1;
            3 // always the user's positive
        });
        assert_eq!(got, 3, "bailout must return the final draw unconditionally");
        assert_eq!(draws, MAX_REJECTIONS + 1, "exactly one bailout draw after the cap");
    }

    /// Dense users (≥ half the catalogue) skip rejection entirely: one
    /// draw, returned unchecked.
    #[test]
    fn dense_user_short_circuits_to_one_draw() {
        let train: Vec<(u32, u32)> = (0..5).map(|i| (0, i)).collect();
        let ds = Dataset::from_pairs("dense", 1, 8, &train, &[]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut draws = 0usize;
        let got = draw_rejecting(&ds, 0, &mut rng, |_| {
            draws += 1;
            0 // a positive — accepted anyway for dense users
        });
        assert_eq!(got, 0);
        assert_eq!(draws, 1);
    }

    /// The common path: the first non-positive candidate is returned and
    /// positives before it are rejected.
    #[test]
    fn rejection_returns_first_true_negative() {
        let ds = Dataset::from_pairs("rej", 1, 10, &[(0, 1), (0, 2)], &[]);
        let mut rng = StdRng::seed_from_u64(0);
        let seq = [1u32, 2, 2, 7, 9];
        let mut k = 0usize;
        let got = draw_rejecting(&ds, 0, &mut rng, |_| {
            let c = seq[k];
            k += 1;
            c
        });
        assert_eq!(got, 7, "first candidate outside the positives wins");
        assert_eq!(k, 4);
    }
}
