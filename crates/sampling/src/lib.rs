//! Negative sampling and batch iteration for implicit-feedback training.
//!
//! The paper's loss functions consume `(user, positive, m negatives)` rows.
//! Negatives can be drawn uniformly (the default protocol), by popularity,
//! or *noisily* — deliberately letting positives leak into the negative set
//! at a controlled rate `r_noise`, which is how §III-B and Fig 8 create the
//! negative-side distribution shift that SL's DRO structure defends against.

// Enforced by bsl-audit (audit/policy.toml): this crate is not on the
// unsafe allowlist.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod alias;
pub mod batch;
pub mod negative;
pub mod par_batch;
pub mod pool;

pub use alias::AliasTable;
pub use batch::{BatchIter, TrainBatch};
pub use negative::{
    draw_rejecting, NegativeSampler, NoisySampler, PopularitySampler, UniformSampler,
    MAX_REJECTIONS,
};
pub use par_batch::{epoch_batches, ParBatchIter};
pub use pool::{PooledEpochIter, SamplerPool};
