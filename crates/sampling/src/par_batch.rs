//! Sharded, multi-threaded batch production.
//!
//! [`ParBatchIter`] is the parallel counterpart of [`BatchIter`]: the
//! shuffled epoch pair list is partitioned round-robin across `n_shards`
//! worker threads, each sampling negatives with its own deterministic RNG
//! stream and pushing finished batches through a bounded channel. The
//! consumer (the trainer) therefore overlaps negative sampling with
//! gradient computation while seeing batches in exactly the serial order.
//!
//! Since the persistent-pool engine landed, `ParBatchIter` is a
//! convenience wrapper that owns a single-epoch [`SamplerPool`]: it
//! spawns its shard workers at construction and joins them on drop.
//! Long-running consumers (the multi-threaded `Trainer`) hold one
//! `SamplerPool` for their whole lifetime and call
//! [`SamplerPool::start_epoch`] per epoch instead, which produces the
//! *same* batch stream without any per-epoch thread spawning.
//!
//! # Determinism contract
//!
//! * The pair shuffle and batch boundaries depend only on `seed` — the
//!   `(user, positive)` stream is identical for **every** shard count.
//! * Negative draws depend on `(seed, n_shards)`: shard 0 continues the
//!   shuffle RNG stream (so `n_shards = 1` reproduces [`BatchIter`]
//!   bit-for-bit), shards `s > 0` run a SplitMix64-split stream derived
//!   from `seed ^ s`. Changing the shard count re-draws negatives, like
//!   changing the seed would; re-running with the same `(seed, n_shards)`
//!   replays the epoch exactly.

use crate::batch::{BatchIter, TrainBatch};
use crate::negative::NegativeSampler;
use crate::pool::{PooledEpochIter, SamplerPool};
use bsl_data::Dataset;
use std::sync::Arc;

/// Multi-threaded epoch iterator yielding the same `(user, positive)`
/// stream as [`BatchIter`] with negatives sampled on `n_shards` worker
/// threads. See the [module docs](self) for the determinism contract.
pub struct ParBatchIter {
    // Field order matters: the epoch iterator must drop before the pool
    // (dropping the batch receivers is what unblocks workers still
    // sending, letting the pool's drop join them).
    inner: PooledEpochIter,
    _pool: SamplerPool,
}

impl ParBatchIter {
    /// Starts a sharded epoch over `ds`'s training pairs.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`, `m == 0` or `n_shards == 0`.
    pub fn new(
        ds: &Arc<Dataset>,
        sampler: Arc<dyn NegativeSampler>,
        batch_size: usize,
        m: usize,
        seed: u64,
        n_shards: usize,
    ) -> Self {
        let pool = SamplerPool::new(n_shards);
        let inner = pool.start_epoch(ds, &sampler, batch_size, m, seed);
        Self { inner, _pool: pool }
    }

    /// Total number of batches this epoch will yield.
    pub fn n_batches(&self) -> usize {
        self.inner.n_batches()
    }
}

impl Iterator for ParBatchIter {
    type Item = TrainBatch;

    fn next(&mut self) -> Option<TrainBatch> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Convenience: a boxed epoch iterator — serial for `n_shards == 1`
/// (zero thread overhead, bit-identical to [`BatchIter`]), sharded
/// otherwise.
pub fn epoch_batches<'a>(
    ds: &Arc<Dataset>,
    sampler: &'a Arc<dyn NegativeSampler>,
    batch_size: usize,
    m: usize,
    seed: u64,
    n_shards: usize,
) -> Box<dyn Iterator<Item = TrainBatch> + 'a> {
    if n_shards <= 1 {
        Box::new(BatchIter::new(ds, sampler.as_ref(), batch_size, m, seed))
    } else {
        Box::new(ParBatchIter::new(ds, Arc::clone(sampler), batch_size, m, seed, n_shards))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::negative::UniformSampler;
    use bsl_data::synth::{generate, SynthConfig};

    fn ds() -> Arc<Dataset> {
        Arc::new(generate(&SynthConfig::tiny(1)))
    }

    fn collect_par(ds: &Arc<Dataset>, bs: usize, m: usize, seed: u64, k: usize) -> Vec<TrainBatch> {
        let sampler: Arc<dyn NegativeSampler> = Arc::new(UniformSampler::new(ds.clone()));
        ParBatchIter::new(ds, sampler, bs, m, seed, k).collect()
    }

    #[test]
    fn one_shard_matches_serial_iterator_exactly() {
        let ds = ds();
        let sampler = UniformSampler::new(ds.clone());
        let serial: Vec<TrainBatch> = BatchIter::new(&ds, &sampler, 37, 4, 99).collect();
        let par = collect_par(&ds, 37, 4, 99, 1);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(par.iter()) {
            assert_eq!(a.users, b.users);
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.negs, b.negs, "n_shards = 1 must replay the serial negative stream");
        }
    }

    #[test]
    fn sharded_epoch_covers_all_pairs_exactly_once() {
        let ds = ds();
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for batch in collect_par(&ds, 32, 3, 5, 3) {
            assert_eq!(batch.negs.len(), batch.len() * batch.m);
            for b in 0..batch.len() {
                seen.push((batch.users[b], batch.pos[b]));
            }
        }
        let mut want = ds.train_pairs();
        want.sort_unstable();
        seen.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn pair_stream_is_invariant_to_shard_count() {
        let ds = ds();
        let serial = collect_par(&ds, 32, 2, 7, 1);
        for k in [2usize, 3, 5] {
            let par = collect_par(&ds, 32, 2, 7, k);
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(par.iter()) {
                assert_eq!(a.users, b.users, "user order must not depend on n_shards");
                assert_eq!(a.pos, b.pos, "positive order must not depend on n_shards");
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_shard_count() {
        let ds = ds();
        let a = collect_par(&ds, 32, 2, 5, 4);
        let b = collect_par(&ds, 32, 2, 5, 4);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.users, y.users);
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.negs, y.negs);
        }
    }

    #[test]
    fn shard_count_changes_negative_streams() {
        let ds = ds();
        let a = collect_par(&ds, 32, 4, 5, 1);
        let b = collect_par(&ds, 32, 4, 5, 4);
        let negs = |v: &[TrainBatch]| v.iter().flat_map(|x| x.negs.clone()).collect::<Vec<u32>>();
        assert_ne!(negs(&a), negs(&b), "shards > 0 run split RNG streams");
    }

    #[test]
    fn n_batches_matches_iteration_and_size_hint() {
        let ds = ds();
        let sampler: Arc<dyn NegativeSampler> = Arc::new(UniformSampler::new(ds.clone()));
        let iter = ParBatchIter::new(&ds, sampler, 50, 1, 3, 2);
        let n = iter.n_batches();
        assert_eq!(iter.size_hint(), (n, Some(n)));
        assert_eq!(n, iter.count());
    }

    #[test]
    fn early_drop_joins_workers_without_hanging() {
        let ds = ds();
        let sampler: Arc<dyn NegativeSampler> = Arc::new(UniformSampler::new(ds.clone()));
        let mut iter = ParBatchIter::new(&ds, sampler, 8, 2, 1, 4);
        let _ = iter.next();
        drop(iter); // workers blocked on full channels must exit cleanly
    }

    #[test]
    fn epoch_batches_dispatches_on_shard_count() {
        let ds = ds();
        let sampler: Arc<dyn NegativeSampler> = Arc::new(UniformSampler::new(ds.clone()));
        let serial: Vec<TrainBatch> = epoch_batches(&ds, &sampler, 16, 2, 11, 1).collect();
        let par: Vec<TrainBatch> = epoch_batches(&ds, &sampler, 16, 2, 11, 3).collect();
        assert_eq!(serial.len(), par.len());
        let direct: Vec<TrainBatch> = BatchIter::new(&ds, &*sampler, 16, 2, 11).collect();
        for (a, b) in serial.iter().zip(direct.iter()) {
            assert_eq!(a.negs, b.negs);
        }
    }
}
