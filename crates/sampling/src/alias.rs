//! Walker alias method: O(n) construction, O(1) weighted sampling.

use rand::Rng;

/// Alias table over `n` outcomes with arbitrary non-negative weights.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table. Zero-weight outcomes are never drawn (unless all
    /// weights are zero, in which case sampling is uniform).
    ///
    /// # Panics
    /// Panics on an empty weight slice or any negative/non-finite weight.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one outcome");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be finite and non-negative"
        );
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        let scaled: Vec<f64> = if total > 0.0 {
            weights.iter().map(|&w| w * n as f64 / total).collect()
        } else {
            vec![1.0; n]
        };
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s as usize] = work[s as usize];
            alias[s as usize] = l;
            work[l as usize] = (work[l as usize] + work[s as usize]) - 1.0;
            if work[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &l in large.iter().chain(small.iter()) {
            prob[l as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freq = empirical(&w, 100_000, 1);
        let total: f64 = w.iter().sum();
        for (f, &wi) in freq.iter().zip(w.iter()) {
            let p = wi / total;
            assert!((f - p).abs() < 0.01, "freq {f} vs p {p}");
        }
    }

    #[test]
    fn zero_weight_never_drawn() {
        let freq = empirical(&[0.0, 1.0, 1.0], 20_000, 2);
        assert_eq!(freq[0], 0.0);
    }

    #[test]
    fn all_zero_falls_back_to_uniform() {
        let freq = empirical(&[0.0, 0.0, 0.0], 30_000, 3);
        for f in freq {
            assert!((f - 1.0 / 3.0).abs() < 0.02);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_samples_in_range(
            w in proptest::collection::vec(0.0f64..10.0, 1..20),
            seed in 0u64..100,
        ) {
            let t = AliasTable::new(&w);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                let s = t.sample(&mut rng) as usize;
                prop_assert!(s < w.len());
                // A zero-weight outcome must never be drawn unless all are 0.
                if w.iter().any(|&x| x > 0.0) {
                    prop_assert!(w[s] > 0.0);
                }
            }
        }
    }
}
