//! Mini-batch iteration over training interactions.

use crate::negative::NegativeSampler;
use bsl_data::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One training batch: `users[b]` interacted with `pos[b]`; its `m`
/// negatives are `negs[b*m .. (b+1)*m]`.
#[derive(Clone, Debug)]
pub struct TrainBatch {
    /// User ids, length `B`.
    pub users: Vec<u32>,
    /// Positive item ids, length `B`.
    pub pos: Vec<u32>,
    /// Flattened negatives, length `B·m`.
    pub negs: Vec<u32>,
    /// Negatives per row.
    pub m: usize,
}

impl TrainBatch {
    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The negatives of row `b`.
    #[inline]
    pub fn negs_of(&self, b: usize) -> &[u32] {
        &self.negs[b * self.m..(b + 1) * self.m]
    }
}

/// Iterates one epoch of shuffled `(user, positive)` pairs, attaching `m`
/// freshly-sampled negatives per row.
pub struct BatchIter<'a> {
    pairs: Vec<(u32, u32)>,
    cursor: usize,
    batch_size: usize,
    m: usize,
    sampler: &'a dyn NegativeSampler,
    rng: StdRng,
}

impl<'a> BatchIter<'a> {
    /// Starts an epoch. The pair order and all negative draws are
    /// deterministic in `seed`.
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or `m == 0`.
    pub fn new(
        ds: &Arc<Dataset>,
        sampler: &'a dyn NegativeSampler,
        batch_size: usize,
        m: usize,
        seed: u64,
    ) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(m > 0, "need at least one negative per row");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = ds.train_pairs();
        for i in (1..pairs.len()).rev() {
            pairs.swap(i, rng.gen_range(0..=i));
        }
        Self { pairs, cursor: 0, batch_size, m, sampler, rng }
    }

    /// Total number of batches this epoch will yield.
    pub fn n_batches(&self) -> usize {
        self.pairs.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter<'_> {
    type Item = TrainBatch;

    fn next(&mut self) -> Option<TrainBatch> {
        if self.cursor >= self.pairs.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.pairs.len());
        let rows = &self.pairs[self.cursor..end];
        self.cursor = end;
        let mut users = Vec::with_capacity(rows.len());
        let mut pos = Vec::with_capacity(rows.len());
        let mut negs = Vec::with_capacity(rows.len() * self.m);
        for &(u, i) in rows {
            users.push(u);
            pos.push(i);
            self.sampler.sample_into(u, self.m, &mut self.rng, &mut negs);
        }
        Some(TrainBatch { users, pos, negs, m: self.m })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::negative::UniformSampler;
    use bsl_data::synth::{generate, SynthConfig};

    fn ds() -> Arc<Dataset> {
        Arc::new(generate(&SynthConfig::tiny(1)))
    }

    #[test]
    fn epoch_covers_all_pairs_exactly_once() {
        let ds = ds();
        let sampler = UniformSampler::new(ds.clone());
        let iter = BatchIter::new(&ds, &sampler, 37, 4, 99);
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for batch in iter {
            assert_eq!(batch.negs.len(), batch.len() * batch.m);
            for b in 0..batch.len() {
                seen.push((batch.users[b], batch.pos[b]));
            }
        }
        let mut want = ds.train_pairs();
        want.sort_unstable();
        seen.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn batch_sizes_respected() {
        let ds = ds();
        let sampler = UniformSampler::new(ds.clone());
        let iter = BatchIter::new(&ds, &sampler, 64, 3, 1);
        let total = ds.train.nnz();
        let sizes: Vec<usize> = iter.map(|b| b.len()).collect();
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 64));
        assert_eq!(sizes.iter().sum::<usize>(), total);
    }

    #[test]
    fn deterministic_in_seed() {
        let ds = ds();
        let sampler = UniformSampler::new(ds.clone());
        let a: Vec<TrainBatch> = BatchIter::new(&ds, &sampler, 32, 2, 5).collect();
        let b: Vec<TrainBatch> = BatchIter::new(&ds, &sampler, 32, 2, 5).collect();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.users, y.users);
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.negs, y.negs);
        }
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let ds = ds();
        let sampler = UniformSampler::new(ds.clone());
        let a = BatchIter::new(&ds, &sampler, 32, 2, 5).next().expect("non-empty");
        let b = BatchIter::new(&ds, &sampler, 32, 2, 6).next().expect("non-empty");
        assert_ne!(a.users, b.users);
    }

    #[test]
    fn negs_of_slices_correctly() {
        let ds = ds();
        let sampler = UniformSampler::new(ds.clone());
        let batch = BatchIter::new(&ds, &sampler, 8, 5, 2).next().expect("non-empty");
        assert_eq!(batch.negs_of(0).len(), 5);
        assert_eq!(batch.negs_of(3), &batch.negs[15..20]);
    }

    #[test]
    fn n_batches_matches_iteration() {
        let ds = ds();
        let sampler = UniformSampler::new(ds.clone());
        let iter = BatchIter::new(&ds, &sampler, 50, 1, 3);
        let n = iter.n_batches();
        assert_eq!(n, iter.count());
    }
}
