//! Sparse matrix support for the BSL reproduction.
//!
//! Recommendation data is a sparse user–item interaction matrix `R`; the
//! graph backbones (NGCF, LightGCN, SGL, …) propagate embeddings over the
//! symmetrically-normalized bipartite adjacency built from `R`. This crate
//! provides the [`Csr`] storage, the [`adjacency::NormAdj`] propagation
//! operator, and edge dropout for the self-supervised augmented views.

// Enforced by bsl-audit (audit/policy.toml): this crate is not on the
// unsafe allowlist.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adjacency;
pub mod csr;

pub use adjacency::NormAdj;
pub use csr::Csr;
