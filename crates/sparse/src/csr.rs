//! Compressed sparse row matrix.

use bsl_linalg::{LinOp, Matrix};

/// A CSR (compressed sparse row) matrix of `f32` values.
///
/// `indptr` has `rows + 1` entries; row `r`'s column indices live in
/// `indices[indptr[r]..indptr[r+1]]` (sorted ascending, unique) with the
/// matching `values`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from COO triplets. Duplicate coordinates are
    /// summed; column indices end up sorted within each row.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_coo(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "entry ({r},{c}) out of bounds for {rows}x{cols}"
            );
        }
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|t| (t.0, t.1));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, v) in &sorted {
            if last == Some((r, c)) {
                *values.last_mut().expect("values non-empty alongside indices") += v;
                continue;
            }
            indices.push(c);
            values.push(v);
            indptr[r as usize + 1] += 1;
            last = Some((r, c));
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        Self { rows, cols, indptr, indices, values }
    }

    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, indptr: vec![0; rows + 1], indices: Vec::new(), values: Vec::new() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices of row `r` (sorted ascending).
    #[inline]
    pub fn row_indices(&self, r: usize) -> &[u32] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Values of row `r`, parallel to [`Self::row_indices`].
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f32] {
        &self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Mutable values of row `r`.
    #[inline]
    pub fn row_values_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Whether entry `(r, c)` is structurally present (binary search).
    pub fn contains(&self, r: usize, c: u32) -> bool {
        self.row_indices(r).binary_search(&c).is_ok()
    }

    /// Value at `(r, c)`, or `0.0` when absent.
    pub fn get(&self, r: usize, c: u32) -> f32 {
        match self.row_indices(r).binary_search(&c) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates `(row, col, value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_indices(r)
                .iter()
                .zip(self.row_values(r).iter())
                .map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// Transpose as a new CSR matrix (counting sort over columns, O(nnz)).
    pub fn transpose(&self) -> Csr {
        let mut indptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            indptr[c + 1] += indptr[c];
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut next = indptr.clone();
        for r in 0..self.rows {
            for (&c, &v) in self.row_indices(r).iter().zip(self.row_values(r)) {
                let pos = next[c as usize];
                indices[pos] = r as u32;
                values[pos] = v;
                next[c as usize] += 1;
            }
        }
        Csr { rows: self.cols, cols: self.rows, indptr, indices, values }
    }

    /// Sparse × dense product `self · x` into a fresh `rows × x.cols()`
    /// dense matrix.
    ///
    /// # Panics
    /// Panics if `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.cols, "spmm dimension mismatch");
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_into(x, &mut out);
        out
    }

    /// Sparse × dense product written into an existing buffer
    /// (overwritten, not accumulated).
    ///
    /// Each output row is an `axpy` chain over the row's stored entries —
    /// the dense-row accumulation rides the dispatched SIMD kernels in
    /// `bsl_linalg::kernels` (this is the inner loop of every LightGCN
    /// propagation hop).
    pub fn spmm_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.rows(), self.cols, "spmm dimension mismatch");
        assert_eq!(out.shape(), (self.rows, x.cols()), "spmm output shape mismatch");
        out.fill(0.0);
        for r in 0..self.rows {
            let start = self.indptr[r];
            let end = self.indptr[r + 1];
            let o = out.row_mut(r);
            for k in start..end {
                bsl_linalg::kernels::axpy(self.values[k], x.row(self.indices[k] as usize), o);
            }
        }
    }

    /// Row sums (the weighted out-degree of each row node).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row_values(r).iter().map(|&v| v as f64).sum()).collect()
    }

    /// Per-row structural degree (entry counts).
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// Per-column structural degree.
    pub fn col_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.cols];
        for &c in &self.indices {
            d[c as usize] += 1;
        }
        d
    }

    /// Scales row `r`'s values by `alpha_r` and (conceptually) column `c`'s
    /// values by `beta_c`: `values[r][c] *= alpha[r] * beta[c]`.
    /// Used by degree normalization.
    pub fn scale_rows_cols(&mut self, alpha: &[f32], beta: &[f32]) {
        assert_eq!(alpha.len(), self.rows);
        assert_eq!(beta.len(), self.cols);
        for (r, &a) in alpha.iter().enumerate() {
            let start = self.indptr[r];
            let end = self.indptr[r + 1];
            for k in start..end {
                self.values[k] *= a * beta[self.indices[k] as usize];
            }
        }
    }

    /// Converts to a dense matrix (test/diagnostic use).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r as usize, c as usize, v);
        }
        out
    }
}

impl LinOp for Csr {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn apply(&self, x: &Matrix) -> Matrix {
        self.spmm(x)
    }
    fn apply_t(&self, x: &Matrix) -> Matrix {
        // Aᵀx without materializing the transpose: scatter rows of x.
        assert_eq!(x.rows(), self.rows, "apply_t dimension mismatch");
        let mut out = Matrix::zeros(self.cols, x.cols());
        for r in 0..self.rows {
            let start = self.indptr[r];
            let end = self.indptr[r + 1];
            for k in start..end {
                let c = self.indices[k] as usize;
                // out[c] += v * x[r]
                bsl_linalg::kernels::axpy(self.values[k], x.row(r), out.row_mut(c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small() -> Csr {
        // [[1, 0, 2],
        //  [0, 3, 0]]
        Csr::from_coo(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn from_coo_layout() {
        let m = small();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_indices(0), &[0, 2]);
        assert_eq!(m.row_values(0), &[1.0, 2.0]);
        assert_eq!(m.row_indices(1), &[1]);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert!(m.contains(1, 1));
        assert!(!m.contains(1, 2));
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let m = Csr::from_coo(1, 2, &[(0, 1, 1.0), (0, 1, 2.5), (0, 0, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    fn from_coo_unsorted_input() {
        let m = Csr::from_coo(3, 3, &[(2, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (0, 0, 4.0)]);
        assert_eq!(m.row_indices(0), &[0, 2]);
        assert_eq!(m.get(2, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_coo_bounds_check() {
        let _ = Csr::from_coo(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn transpose_dense_agreement() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        let got = m.spmm(&x);
        let want = m.to_dense().matmul(&x);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn linop_apply_t_matches_transpose_spmm() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trips = Vec::new();
        for _ in 0..40 {
            trips.push((
                rng.gen_range(0..8u32),
                rng.gen_range(0..6u32),
                rng.gen_range(-1.0..1.0f32),
            ));
        }
        let m = Csr::from_coo(8, 6, &trips);
        let x = Matrix::gaussian(8, 3, 1.0, &mut rng);
        let got = m.apply_t(&x);
        let want = m.transpose().spmm(&x);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn degrees_and_sums() {
        let m = small();
        assert_eq!(m.row_degrees(), vec![2, 1]);
        assert_eq!(m.col_degrees(), vec![1, 1, 1]);
        assert_eq!(m.row_sums(), vec![3.0, 3.0]);
    }

    #[test]
    fn scale_rows_cols_applies_product() {
        let mut m = small();
        m.scale_rows_cols(&[2.0, 10.0], &[1.0, 0.5, 3.0]);
        assert_eq!(m.get(0, 0), 2.0); // 1 * 2 * 1
        assert_eq!(m.get(0, 2), 12.0); // 2 * 2 * 3
        assert_eq!(m.get(1, 1), 15.0); // 3 * 10 * 0.5
    }

    #[test]
    fn zeros_has_no_entries() {
        let m = Csr::zeros(4, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.spmm(&Matrix::zeros(5, 2)).as_slice(), Matrix::zeros(4, 2).as_slice());
    }

    fn arb_csr() -> impl Strategy<Value = Csr> {
        (1usize..8, 1usize..8, proptest::collection::vec((0u32..8, 0u32..8, -2.0f32..2.0), 0..30))
            .prop_map(|(rows, cols, trips)| {
                let trips: Vec<_> = trips
                    .into_iter()
                    .map(|(r, c, v)| (r % rows as u32, c % cols as u32, v))
                    .collect();
                Csr::from_coo(rows, cols, &trips)
            })
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(m in arb_csr()) {
            prop_assert_eq!(m.transpose().transpose().to_dense(), m.to_dense());
        }

        #[test]
        fn prop_spmm_linearity(m in arb_csr(), seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Matrix::gaussian(m.cols(), 2, 1.0, &mut rng);
            let y = Matrix::gaussian(m.cols(), 2, 1.0, &mut rng);
            let mut xy = x.clone();
            xy.add_assign(&y);
            let lhs = m.spmm(&xy);
            let mut rhs = m.spmm(&x);
            rhs.add_assign(&m.spmm(&y));
            for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_indices_sorted_unique(m in arb_csr()) {
            for r in 0..m.rows() {
                let idx = m.row_indices(r);
                for w in idx.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }
    }
}
