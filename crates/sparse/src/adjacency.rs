//! Symmetrically-normalized bipartite adjacency for graph CF backbones.
//!
//! LightGCN-style propagation works on the `(U+I) × (U+I)` block graph
//! `A = [[0, R], [Rᵀ, 0]]` normalized as `Â = D^{-1/2} A D^{-1/2}`. We keep
//! the two non-zero blocks separately — `R̂: U × I` and its transpose — so
//! one propagation step is two block SpMMs:
//!
//! ```text
//! e_u' = Σ_{i ∈ N(u)} e_i / sqrt(d_u · d_i)
//! e_i' = Σ_{u ∈ N(i)} e_u / sqrt(d_u · d_i)
//! ```
//!
//! Because `Â` is symmetric, the backward pass of a propagation step is the
//! same operator — which is what makes exact hand-written backprop through
//! LightGCN trivial.

use crate::csr::Csr;
use bsl_linalg::Matrix;
use rand::Rng;

/// Normalized bipartite adjacency (both block orientations).
#[derive(Clone, Debug)]
pub struct NormAdj {
    /// Normalized user→item block `R̂` (`U × I`).
    pub user_item: Csr,
    /// Normalized item→user block `R̂ᵀ` (`I × U`).
    pub item_user: Csr,
}

impl NormAdj {
    /// Builds `Â` from raw binary interactions.
    ///
    /// `interactions` are `(user, item)` pairs; duplicates collapse to a
    /// single edge of weight 1 before normalization. Isolated nodes get
    /// degree 1 in the normalizer so their rows stay zero without dividing
    /// by zero.
    pub fn from_interactions(n_users: usize, n_items: usize, interactions: &[(u32, u32)]) -> Self {
        let trips: Vec<(u32, u32, f32)> = interactions.iter().map(|&(u, i)| (u, i, 1.0)).collect();
        let mut r = Csr::from_coo(n_users, n_items, &trips);
        // Re-binarize in case of duplicate interactions.
        for row in 0..n_users {
            for v in r.row_values_mut(row) {
                *v = 1.0;
            }
        }
        Self::from_csr(r)
    }

    /// Builds `Â` from an existing (binary or weighted) CSR block `R`.
    pub fn from_csr(mut r: Csr) -> Self {
        let du: Vec<f32> = r.row_sums().iter().map(|&d| 1.0 / (d.max(1.0)).sqrt() as f32).collect();
        let di: Vec<f32> = {
            let t = r.transpose();
            t.row_sums().iter().map(|&d| 1.0 / (d.max(1.0)).sqrt() as f32).collect()
        };
        r.scale_rows_cols(&du, &di);
        let item_user = r.transpose();
        Self { user_item: r, item_user }
    }

    /// Number of users (rows of the user→item block).
    pub fn n_users(&self) -> usize {
        self.user_item.rows()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.user_item.cols()
    }

    /// One propagation step: returns `(Â·e)` restricted to the user and
    /// item blocks.
    pub fn propagate(&self, user_emb: &Matrix, item_emb: &Matrix) -> (Matrix, Matrix) {
        let new_users = self.user_item.spmm(item_emb);
        let new_items = self.item_user.spmm(user_emb);
        (new_users, new_items)
    }

    /// Edge-dropout view for SGL-style augmentation: each edge of the
    /// *original* graph is kept independently with probability `1 - p`,
    /// and the surviving graph is re-normalized (as in the SGL paper,
    /// normalization is recomputed on the dropped graph).
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn edge_dropout(&self, p: f32, rng: &mut impl Rng) -> NormAdj {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1), got {p}");
        let keep: Vec<(u32, u32, f32)> = self
            .user_item
            .iter()
            .filter(|_| rng.gen::<f32>() >= p)
            .map(|(u, i, _)| (u, i, 1.0))
            .collect();
        let r = Csr::from_coo(self.n_users(), self.n_items(), &keep);
        NormAdj::from_csr(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> NormAdj {
        // 3 users, 2 items: u0-{i0,i1}, u1-{i0}, u2-{i1}
        NormAdj::from_interactions(3, 2, &[(0, 0), (0, 1), (1, 0), (2, 1)])
    }

    #[test]
    fn normalization_values() {
        let adj = toy();
        // d(u0)=2, d(i0)=2 => weight = 1/sqrt(4) = 0.5
        assert!((adj.user_item.get(0, 0) - 0.5).abs() < 1e-6);
        // d(u1)=1, d(i0)=2 => 1/sqrt(2)
        assert!((adj.user_item.get(1, 0) - 1.0 / 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn blocks_are_transposes() {
        let adj = toy();
        assert_eq!(adj.item_user.to_dense(), adj.user_item.to_dense().transpose());
    }

    #[test]
    fn duplicate_interactions_collapse() {
        let a = NormAdj::from_interactions(2, 2, &[(0, 0), (0, 0), (1, 1)]);
        let b = NormAdj::from_interactions(2, 2, &[(0, 0), (1, 1)]);
        assert_eq!(a.user_item.to_dense(), b.user_item.to_dense());
    }

    #[test]
    fn propagate_shapes_and_symmetry() {
        let adj = toy();
        let ue = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.1);
        let ie = Matrix::from_fn(2, 4, |r, c| (r * c) as f32 * 0.1 + 0.2);
        let (nu, ni) = adj.propagate(&ue, &ie);
        assert_eq!(nu.shape(), (3, 4));
        assert_eq!(ni.shape(), (2, 4));
        // Propagation is the adjoint of itself on the bipartite blocks:
        // <nu, ue'> uses R̂ ie; check one entry by hand:
        // nu[1] = R̂[1,0] * ie[0] = (1/sqrt2) * ie[0]
        for c in 0..4 {
            assert!((nu.get(1, c) - ie.get(0, c) / 2.0f32.sqrt()).abs() < 1e-6);
        }
    }

    #[test]
    fn isolated_nodes_zero_rows_no_nan() {
        // User 1 and item 1 are isolated.
        let adj = NormAdj::from_interactions(2, 2, &[(0, 0)]);
        let ue = Matrix::from_fn(2, 2, |_, _| 1.0);
        let ie = Matrix::from_fn(2, 2, |_, _| 1.0);
        let (nu, ni) = adj.propagate(&ue, &ie);
        assert!(nu.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(nu.row(1), &[0.0, 0.0]);
        assert_eq!(ni.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn edge_dropout_zero_keeps_graph() {
        let adj = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let view = adj.edge_dropout(0.0, &mut rng);
        assert_eq!(view.user_item.to_dense(), adj.user_item.to_dense());
    }

    #[test]
    fn edge_dropout_removes_roughly_p_edges() {
        let n = 50usize;
        let edges: Vec<(u32, u32)> =
            (0..n as u32).flat_map(|u| (0..n as u32).map(move |i| (u, i))).collect();
        let adj = NormAdj::from_interactions(n, n, &edges);
        let mut rng = StdRng::seed_from_u64(7);
        let view = adj.edge_dropout(0.3, &mut rng);
        let kept = view.user_item.nnz() as f64 / (n * n) as f64;
        assert!((kept - 0.7).abs() < 0.05, "kept fraction {kept}");
    }

    #[test]
    fn edge_dropout_is_renormalized() {
        let adj = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let view = adj.edge_dropout(0.5, &mut rng);
        // Every surviving edge weight must equal 1/sqrt(d_u d_i) of the
        // *dropped* graph.
        let du = view.user_item.row_degrees();
        let di = view.user_item.col_degrees();
        for (u, i, v) in view.user_item.iter() {
            let want = 1.0 / ((du[u as usize] as f32) * (di[i as usize] as f32)).sqrt();
            assert!((v - want).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn edge_dropout_rejects_p_one() {
        let adj = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = adj.edge_dropout(1.0, &mut rng);
    }
}
