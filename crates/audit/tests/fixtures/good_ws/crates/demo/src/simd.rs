//! Fixture dispatch module: one registered kernel with a scalar twin.

pub mod scalar {
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

// SAFETY: to call, the dispatcher must have verified AVX2 support.
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[target_feature(enable = "avx2")]
pub unsafe fn dot_impl(a: &[f32], b: &[f32]) -> f32 {
    scalar::dot(a, b)
}

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    scalar::dot(a, b)
}
