//! Fixture crate: the same shapes as `bad_ws`, each properly justified.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod simd;

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

pub fn hot_sum(xs: &[u32]) -> u32 {
    // bsl-audit: allow(hot-path-alloc) -- fixture waiver exercising the plumbing
    let doubled: Vec<u32> = xs.to_vec();
    doubled.iter().fold(0, |a, b| a + b)
}

// ORDERING: Relaxed — monotone counter, nothing published through it.
pub fn read_counter(c: &AtomicU64) -> u64 {
    c.load(Relaxed)
}

// SAFETY: to call, `p` must point to a live byte.
pub unsafe fn peek(p: *const u8) -> u8 {
    // SAFETY: caller contract — `p` points to a live byte.
    unsafe { *p }
}
