//! Fixture crate: every lint family fires at a known line.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

pub fn hot_sum(xs: &[u32]) -> u32 {
    let doubled: Vec<u32> = xs.to_vec();
    doubled.iter().sum()
}

pub fn read_counter(c: &AtomicU64) -> u64 {
    c.load(Relaxed)
}

pub unsafe fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}

#[target_feature(enable = "avx2")]
unsafe fn rogue_kernel() {}
