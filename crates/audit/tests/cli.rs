//! Exit-code and output contract of the `bsl-audit` binary, plus the
//! self-check: the real workspace must pass its own audit with the
//! checked-in configuration and inventory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bsl-audit"))
        .args(args)
        .output()
        .expect("bsl-audit binary runs")
}

fn fixture_root(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// The real workspace root (two levels above this crate's manifest).
fn repo_root() -> String {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf();
    root.to_string_lossy().into_owned()
}

#[test]
fn check_on_bad_fixture_exits_1_with_line_anchored_diagnostics() {
    let out = run(&["check", "--root", &fixture_root("bad_ws")]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/demo/src/lib.rs:7: [hot-path-alloc]"), "stdout:\n{stdout}");
    assert!(stdout.contains("crates/demo/src/lib.rs:12: [ordering]"), "stdout:\n{stdout}");
    assert!(stdout.contains("crates/demo/src/lib.rs:15: [unsafe-audit]"), "stdout:\n{stdout}");
    assert!(stdout.contains("crates/demo/src/lib.rs:19: [simd-dispatch]"), "stdout:\n{stdout}");
    assert!(stdout.trim_end().ends_with("bsl-audit: 11 finding(s)"), "stdout:\n{stdout}");
}

#[test]
fn check_on_good_fixture_exits_0_and_prints_clean() {
    let out = run(&["check", "--root", &fixture_root("good_ws")]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim_end(), "bsl-audit: clean (2 files, 1 crates)");
}

#[test]
fn unknown_command_and_bad_root_exit_2() {
    let out = run(&["frobnicate", "--root", &fixture_root("good_ws")]);
    assert_eq!(out.status.code(), Some(2));

    let out = run(&["check", "--root", "/nonexistent-bsl-audit-root"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bsl-audit:"));
}

#[test]
fn real_workspace_passes_its_own_audit() {
    let out = run(&["check", "--root", &repo_root()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "audit findings:\n{stdout}");
    assert!(stdout.starts_with("bsl-audit: clean ("), "stdout:\n{stdout}");
}

#[test]
fn checked_in_inventory_is_current() {
    let out = run(&["inventory", "--root", &repo_root()]);
    assert_eq!(out.status.code(), Some(0));
    let rendered = String::from_utf8_lossy(&out.stdout);
    let checked_in =
        std::fs::read_to_string(PathBuf::from(repo_root()).join("audit/unsafe_inventory.toml"))
            .expect("audit/unsafe_inventory.toml exists");
    assert_eq!(
        rendered.trim_end(),
        checked_in.trim_end(),
        "inventory drifted — regenerate with \
         `cargo run -p bsl-audit -- inventory > audit/unsafe_inventory.toml`"
    );
}
