//! Lint runs over the checked-in fixture workspaces.
//!
//! `tests/fixtures/bad_ws` trips every lint family at a known line;
//! `tests/fixtures/good_ws` contains the same shapes properly justified
//! (SAFETY/ORDERING comments, a registered waiver, a dispatch-table
//! kernel with its scalar twin) and must come back clean. The fixture
//! trees are full mini-workspaces (`crates/demo` + `audit/*.toml`), and
//! the walker's `fixtures` skip-rule keeps them out of the real audit.

use bsl_audit::{load_config, load_workspace, run_check};
use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

#[test]
fn bad_workspace_reports_every_family_at_exact_lines() {
    let root = fixture_root("bad_ws");
    let ws = load_workspace(&root).expect("fixture loads");
    let cfg = load_config(&root).expect("fixture config loads");
    let findings = run_check(&ws, &cfg);

    let got: Vec<(&str, u32, &str)> =
        findings.iter().map(|f| (f.file.as_str(), f.line, f.lint)).collect();
    let lib = "crates/demo/src/lib.rs";
    let expected = vec![
        // Stale inventory entry (`gone`) that matches no real unsafe use.
        ("audit/unsafe_inventory.toml", 0, "inventory"),
        // `to_vec` inside the registered hot fn `hot_sum`.
        (lib, 7, "hot-path-alloc"),
        // `Relaxed` without an ORDERING justification.
        (lib, 12, "ordering"),
        // `unsafe fn peek` / its body block: missing SAFETY and missing
        // from the inventory.
        (lib, 15, "inventory"),
        (lib, 15, "unsafe-audit"),
        (lib, 16, "inventory"),
        (lib, 16, "unsafe-audit"),
        // `#[target_feature]` fn outside the dispatch module; its very
        // declaration also counts as a reference outside dispatch sites.
        (lib, 19, "simd-dispatch"),
        (lib, 20, "inventory"),
        (lib, 20, "simd-dispatch"),
        (lib, 20, "unsafe-audit"),
    ];
    assert_eq!(got, expected, "full findings: {findings:#?}");
}

#[test]
fn bad_workspace_messages_name_the_offending_token() {
    let root = fixture_root("bad_ws");
    let ws = load_workspace(&root).expect("fixture loads");
    let cfg = load_config(&root).expect("fixture config loads");
    let findings = run_check(&ws, &cfg);
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();

    let expect_line = |needle: &str| {
        assert!(
            rendered.iter().any(|l| l.contains(needle)),
            "no diagnostic contains {needle:?}; got:\n{}",
            rendered.join("\n")
        );
    };
    expect_line("crates/demo/src/lib.rs:7: [hot-path-alloc] `to_vec` in hot-path fn `hot_sum`");
    expect_line("crates/demo/src/lib.rs:12: [ordering] `Relaxed` without an `// ORDERING:`");
    expect_line("crates/demo/src/lib.rs:15: [unsafe-audit] unsafe fn without a `// SAFETY:`");
    expect_line("(context: peek)");
    expect_line(
        "crates/demo/src/lib.rs:19: [simd-dispatch] `#[target_feature]` fn \
                 `rogue_kernel` outside the dispatch module",
    );
    expect_line("stale inventory entry: `gone`");
}

#[test]
fn good_workspace_is_clean() {
    let root = fixture_root("good_ws");
    let ws = load_workspace(&root).expect("fixture loads");
    let cfg = load_config(&root).expect("fixture config loads");
    let findings = run_check(&ws, &cfg);
    assert!(findings.is_empty(), "expected a clean run, got:\n{findings:#?}");
}

#[test]
fn good_workspace_waiver_stops_protecting_if_unregistered() {
    // Same sources, but with the waiver registry emptied: the inline
    // waiver still suppresses its finding, and is itself reported as
    // unregistered — so a waiver can never silently bypass review.
    let root = fixture_root("good_ws");
    let ws = load_workspace(&root).expect("fixture loads");
    let mut cfg = load_config(&root).expect("fixture config loads");
    cfg.registered_waivers.clear();
    let findings = run_check(&ws, &cfg);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].lint, "waivers");
    assert_eq!(findings[0].file, "crates/demo/src/lib.rs");
    assert_eq!(findings[0].line, 9);
    assert!(findings[0].msg.contains("not registered"));
}
