//! A tiny TOML-subset reader for the checked-in audit policy files.
//!
//! Supports exactly what `audit/*.toml` uses: comments, `[table]`
//! headers, `[[array-of-tables]]` headers, and `key = value` where value
//! is a quoted string, an integer, a bool, or a flat array of quoted
//! strings. Nested tables/dotted keys are out of scope — the policy files
//! are written to this subset (and the parser errors loudly on anything
//! else, so a drive-by edit cannot be silently ignored).

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrList(Vec<String>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
    pub fn as_list(&self) -> Option<&[String]> {
        match self {
            Value::StrList(v) => Some(v),
            _ => None,
        }
    }
}

/// One `[table]` or `[[entry]]`: a flat key→value map.
pub type Table = BTreeMap<String, Value>;

/// A parsed document: singleton tables by name, plus array-of-tables
/// entries in file order.
#[derive(Default, Debug)]
pub struct Doc {
    pub tables: BTreeMap<String, Table>,
    pub arrays: BTreeMap<String, Vec<Table>>,
}

impl Doc {
    /// The singleton table `name` (empty if absent).
    pub fn table(&self, name: &str) -> Table {
        self.tables.get(name).cloned().unwrap_or_default()
    }

    /// The `[[name]]` entries (empty if absent).
    pub fn entries(&self, name: &str) -> &[Table] {
        self.arrays.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// String-list value `key` from singleton table `table` (empty if
    /// either is absent).
    pub fn list(&self, table: &str, key: &str) -> Vec<String> {
        self.tables
            .get(table)
            .and_then(|t| t.get(key))
            .and_then(|v| v.as_list().map(<[String]>::to_vec))
            .unwrap_or_default()
    }
}

fn parse_value(s: &str, path: &str, lineno: usize) -> Result<Value, String> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(other) => out.push(other),
                    None => return Err(format!("{path}:{lineno}: dangling escape")),
                },
                '"' => return Ok(Value::Str(out)),
                other => out.push(other),
            }
        }
        return Err(format!("{path}:{lineno}: unterminated string"));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner =
            inner.strip_suffix(']').ok_or(format!("{path}:{lineno}: unterminated array"))?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, path, lineno)? {
                Value::Str(st) => items.push(st),
                _ => return Err(format!("{path}:{lineno}: only string arrays supported")),
            }
        }
        return Ok(Value::StrList(items));
    }
    s.parse::<i64>().map(Value::Int).map_err(|_| {
        format!("{path}:{lineno}: unsupported value `{s}` (string/int/bool/[\"…\"] only)")
    })
}

/// Splits an array body on commas that are not inside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if escape {
            cur.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => {
                cur.push(c);
                escape = true;
            }
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

/// Parses `src` (using `path` only for error messages).
pub fn parse(src: &str, path: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    // (name, is_array_entry): where key = value lines currently land.
    let mut current: Option<(String, bool)> = None;
    let mut lines = src.lines().enumerate();
    while let Some((ln, raw)) = lines.next() {
        let lineno = ln + 1;
        let mut line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        // Multi-line arrays: keep consuming lines until the `[` opened in
        // the value position is balanced by an unquoted `]`.
        if line.contains('=') && open_array(&line) {
            loop {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("{path}:{lineno}: unterminated array"));
                };
                line.push(' ');
                line.push_str(strip_comment(next).trim());
                if !open_array(&line) {
                    break;
                }
            }
        }
        if let Some(h) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = h.trim().to_string();
            doc.arrays.entry(name.clone()).or_default().push(Table::new());
            current = Some((name, true));
            continue;
        }
        if let Some(h) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = h.trim().to_string();
            doc.tables.entry(name.clone()).or_default();
            current = Some((name, false));
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .ok_or(format!("{path}:{lineno}: expected `key = value`, got `{line}`"))?;
        let key = key.trim().to_string();
        let value = parse_value(val, path, lineno)?;
        match &current {
            Some((name, true)) => {
                doc.arrays.get_mut(name).unwrap().last_mut().unwrap().insert(key, value);
            }
            Some((name, false)) => {
                doc.tables.get_mut(name).unwrap().insert(key, value);
            }
            None => return Err(format!("{path}:{lineno}: `key = value` before any [table]")),
        }
    }
    Ok(doc)
}

/// True while a `[` opened outside quotes awaits its closing `]`.
fn open_array(line: &str) -> bool {
    let mut in_str = false;
    let mut escape = false;
    let mut depth = 0i32;
    for c in line.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

/// Drops a `#`-comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_values() {
        let src = r#"
# comment
[policy]
crates = ["bsl-core", "bsl-linalg"]  # trailing
strict = true
max = 42

[[entry]]
file = "a.rs"
count = 2

[[entry]]
file = "b # not a comment.rs"
"#;
        let doc = parse(src, "test.toml").unwrap();
        assert_eq!(doc.list("policy", "crates"), vec!["bsl-core", "bsl-linalg"]);
        assert_eq!(doc.table("policy").get("strict"), Some(&Value::Bool(true)));
        assert_eq!(doc.table("policy").get("max"), Some(&Value::Int(42)));
        let entries = doc.entries("entry");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("count"), Some(&Value::Int(2)));
        assert_eq!(entries[1].get("file").unwrap().as_str(), Some("b # not a comment.rs"));
    }

    #[test]
    fn parses_multi_line_arrays() {
        let src = "[t]\nxs = [\n  \"a\",  # per-item comment\n  \"b\",\n]\n";
        let doc = parse(src, "t").unwrap();
        assert_eq!(doc.list("t", "xs"), vec!["a", "b"]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("stray = 1\n", "t").is_err());
        assert!(parse("[t]\nkey 1\n", "t").is_err());
        assert!(parse("[t]\nkey = {nested = 1}\n", "t").is_err());
    }
}
