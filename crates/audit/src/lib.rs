//! bsl-audit: the workspace static-analysis gate.
//!
//! An offline, dependency-free pass over `crates/**/*.rs` enforcing the
//! memory-safety and hot-path conventions the README documents:
//!
//! * **unsafe-audit** — every `unsafe` block/fn/impl carries a
//!   `// SAFETY:` justification and is listed in the checked-in
//!   inventory (`audit/unsafe_inventory.toml`); per-crate unsafe policy
//!   (`#![forbid(unsafe_code)]` vs `#![deny(unsafe_op_in_unsafe_fn)]`).
//! * **ordering** — every `Relaxed`/`Acquire`/`Release`/`AcqRel`/`SeqCst`
//!   use carries an `// ORDERING:` justification.
//! * **hot-path-alloc** — functions registered in `audit/hot_paths.toml`
//!   contain no allocation/copy tokens.
//! * **simd-dispatch** — `#[target_feature]` fns live only in the
//!   dispatch module, each with a registered scalar twin, and are never
//!   called from anywhere else.
//!
//! Findings can be suppressed inline with
//! `// bsl-audit: allow(<lint>) -- <reason>`, but each waiver must also
//! be registered in `audit/waivers.toml` so the set is reviewable.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod minitoml;
pub mod scopes;

use lints::{
    DispatchPolicy, Finding, SrcFile, UnsafeUse, LINT_HOT_PATH, LINT_INVENTORY, LINT_POLICY,
    LINT_WAIVERS,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One workspace crate under `crates/`.
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (`bsl-core`).
    pub name: String,
    /// Workspace-relative directory (`crates/core`).
    pub dir: String,
}

/// The loaded workspace: every lexed source file plus crate metadata.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SrcFile>,
    /// Raw source text by workspace-relative path (for attribute checks).
    pub raw: BTreeMap<String, String>,
    pub crates: Vec<CrateInfo>,
}

/// Directories never descended into (build output, lint fixtures that are
/// intentionally bad, vendored shims).
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", "vendor"];

/// Loads every `.rs` file under `<root>/crates` and the crate metadata.
pub fn load_workspace(root: &Path) -> Result<Workspace, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("{}: no `crates/` directory here (pass --root)", root.display()));
    }
    let mut paths = Vec::new();
    walk(&crates_dir, &mut paths)?;
    paths.sort();

    let mut files = Vec::new();
    let mut raw = BTreeMap::new();
    for p in &paths {
        let src =
            std::fs::read_to_string(p).map_err(|e| format!("{}: read failed: {e}", p.display()))?;
        let rel = rel_path(root, p);
        files.push(SrcFile::new(rel.clone(), &src));
        raw.insert(rel, src);
    }

    let mut crates = Vec::new();
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    for d in dirs {
        let manifest = std::fs::read_to_string(d.join("Cargo.toml"))
            .map_err(|e| format!("{}: {e}", d.display()))?;
        if let Some(name) = package_name(&manifest) {
            crates.push(CrateInfo { name, dir: rel_path(root, &d) });
        }
    }
    Ok(Workspace { root: root.to_path_buf(), files, raw, crates })
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// `name = "..."` from the `[package]` section of a manifest.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
        } else if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// The parsed `audit/*.toml` configuration.
pub struct Config {
    /// Crates allowed to contain `unsafe` at all.
    pub unsafe_allowed: Vec<String>,
    /// Path substrings exempt from per-use ORDERING comments (tests,
    /// benches — not proof-bearing code).
    pub ordering_allow_paths: Vec<String>,
    pub dispatch: DispatchPolicy,
    /// file → hot fn names.
    pub hot_paths: Vec<(String, Vec<String>)>,
    /// Registered waivers: (file, lint, reason).
    pub registered_waivers: Vec<(String, String, String)>,
    /// Checked-in unsafe inventory: (file, context, kind) → count.
    pub inventory: BTreeMap<(String, String, String), i64>,
}

/// Loads `audit/policy.toml`, `audit/hot_paths.toml`,
/// `audit/waivers.toml`, and `audit/unsafe_inventory.toml` under `root`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let read = |name: &str| -> Result<minitoml::Doc, String> {
        let path = root.join("audit").join(name);
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        minitoml::parse(&src, &format!("audit/{name}"))
    };
    let policy = read("policy.toml")?;
    let hot = read("hot_paths.toml")?;
    let waivers = read("waivers.toml")?;
    let inventory_doc = read("unsafe_inventory.toml")?;

    let mut kernels = BTreeMap::new();
    for k in policy.entries("kernel") {
        let name = k.get("name").and_then(|v| v.as_str().map(str::to_string));
        let scalar = k.get("scalar").and_then(|v| v.as_str().map(str::to_string));
        match (name, scalar) {
            (Some(n), Some(s)) => {
                kernels.insert(n, s);
            }
            _ => return Err("audit/policy.toml: [[kernel]] needs `name` and `scalar`".into()),
        }
    }
    let dispatch = DispatchPolicy {
        dispatch_file: policy
            .table("simd")
            .get("dispatch_file")
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or("audit/policy.toml: [simd] dispatch_file missing")?,
        kernels,
        helpers: policy.list("simd", "helpers"),
        scalar_modules: policy.list("simd", "scalar_modules"),
    };

    let mut hot_paths = Vec::new();
    for h in hot.entries("hot") {
        let file = h
            .get("file")
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or("audit/hot_paths.toml: [[hot]] needs `file`")?;
        let fns = h
            .get("fns")
            .and_then(|v| v.as_list().map(<[String]>::to_vec))
            .ok_or("audit/hot_paths.toml: [[hot]] needs `fns`")?;
        hot_paths.push((file, fns));
    }

    let mut registered = Vec::new();
    for w in waivers.entries("waiver") {
        let get = |k: &str| w.get(k).and_then(|v| v.as_str().map(str::to_string));
        match (get("file"), get("lint"), get("reason")) {
            (Some(f), Some(l), Some(r)) => registered.push((f, l, r)),
            _ => return Err("audit/waivers.toml: [[waiver]] needs `file`, `lint`, `reason`".into()),
        }
    }

    let mut inventory = BTreeMap::new();
    for u in inventory_doc.entries("unsafe") {
        let get = |k: &str| u.get(k).and_then(|v| v.as_str().map(str::to_string));
        let count = u.get("count").and_then(|v| v.as_int()).unwrap_or(1);
        match (get("file"), get("context"), get("kind")) {
            (Some(f), Some(c), Some(k)) => {
                *inventory.entry((f, c, k)).or_insert(0) += count;
            }
            _ => {
                return Err("audit/unsafe_inventory.toml: [[unsafe]] needs \
                            `file`, `context`, `kind`"
                    .into())
            }
        }
    }

    Ok(Config {
        unsafe_allowed: policy.list("unsafe", "allowed"),
        ordering_allow_paths: policy.list("ordering", "allow_paths"),
        dispatch,
        hot_paths,
        registered_waivers: registered,
        inventory,
    })
}

/// Runs every lint family and returns the surviving (un-waived) findings,
/// sorted by file/line.
pub fn run_check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut uses: Vec<(UnsafeUse, u32)> = Vec::new();
    let mut waivers = Vec::new();

    for f in &ws.files {
        findings.extend(lints::check_unsafe(f, &mut uses));
        findings.extend(lints::check_ordering(f, &cfg.ordering_allow_paths));
        waivers.extend(lints::collect_waivers(f));
    }

    // Hot paths: a registry entry must resolve, or it is stale.
    for (file, fns) in &cfg.hot_paths {
        match ws.files.iter().find(|f| &f.rel == file) {
            None => findings.push(Finding {
                file: "audit/hot_paths.toml".into(),
                line: 0,
                lint: LINT_HOT_PATH,
                msg: format!("registered file `{file}` not found in workspace"),
            }),
            Some(src) => {
                let (fs, seen) = lints::check_hot_fns(src, fns);
                findings.extend(fs);
                for name in fns {
                    if !seen.contains(name) {
                        findings.push(Finding {
                            file: "audit/hot_paths.toml".into(),
                            line: 0,
                            lint: LINT_HOT_PATH,
                            msg: format!("registered fn `{name}` not found in `{file}`"),
                        });
                    }
                }
            }
        }
    }

    findings.extend(lints::check_dispatch(&ws.files, &cfg.dispatch));
    findings.extend(check_crate_policy(ws, cfg, &uses));
    findings.extend(check_inventory(cfg, &uses));

    // Waivers last: filter findings, then validate the waiver set itself.
    let mut used = vec![false; waivers.len()];
    let mut findings: Vec<Finding> =
        findings.into_iter().filter(|f| !lints::is_waived(f, &waivers, &mut used)).collect();
    for (i, w) in waivers.iter().enumerate() {
        let registered = cfg
            .registered_waivers
            .iter()
            .any(|(f, l, r)| f == &w.file && l == &w.lint && r == &w.reason);
        if !registered {
            findings.push(Finding {
                file: w.file.clone(),
                line: w.line,
                lint: LINT_WAIVERS,
                msg: format!(
                    "inline waiver `allow({})` not registered in audit/waivers.toml \
                     (reason: {})",
                    w.lint,
                    if w.reason.is_empty() { "<missing>" } else { &w.reason }
                ),
            });
        }
        if !used[i] {
            findings.push(Finding {
                file: w.file.clone(),
                line: w.line,
                lint: LINT_WAIVERS,
                msg: format!("waiver `allow({})` suppresses nothing — remove it", w.lint),
            });
        }
    }
    for (f, l, r) in &cfg.registered_waivers {
        let in_code = waivers.iter().any(|w| &w.file == f && &w.lint == l && &w.reason == r);
        if !in_code {
            findings.push(Finding {
                file: "audit/waivers.toml".into(),
                line: 0,
                lint: LINT_WAIVERS,
                msg: format!("registered waiver for `{f}` [{l}] has no inline counterpart"),
            });
        }
    }

    findings
        .sort_by(|a, b| (&a.file, a.line, a.lint, &a.msg).cmp(&(&b.file, b.line, b.lint, &b.msg)));
    findings
}

/// Per-crate unsafe policy: allowed crates must deny
/// `unsafe_op_in_unsafe_fn`; every other crate must forbid unsafe
/// outright and contain none.
fn check_crate_policy(ws: &Workspace, cfg: &Config, uses: &[(UnsafeUse, u32)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for c in &ws.crates {
        let lib_rel = format!("{}/src/lib.rs", c.dir);
        let Some(lib_src) = ws.raw.get(&lib_rel) else { continue };
        let allowed = cfg.unsafe_allowed.contains(&c.name);
        if allowed {
            if !lib_src.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
                findings.push(Finding {
                    file: lib_rel.clone(),
                    line: 1,
                    lint: LINT_POLICY,
                    msg: format!(
                        "crate `{}` may use unsafe and must carry \
                         `#![deny(unsafe_op_in_unsafe_fn)]`",
                        c.name
                    ),
                });
            }
        } else {
            if !lib_src.contains("#![forbid(unsafe_code)]") {
                findings.push(Finding {
                    file: lib_rel.clone(),
                    line: 1,
                    lint: LINT_POLICY,
                    msg: format!(
                        "crate `{}` is not on the unsafe allowlist and must carry \
                         `#![forbid(unsafe_code)]`",
                        c.name
                    ),
                });
            }
            let prefix = format!("{}/", c.dir);
            for (u, line) in uses {
                if u.file.starts_with(&prefix) {
                    findings.push(Finding {
                        file: u.file.clone(),
                        line: *line,
                        lint: LINT_POLICY,
                        msg: format!(
                            "unsafe {} in `{}`, which is not on the unsafe allowlist \
                             (audit/policy.toml [unsafe].allowed)",
                            u.kind, c.name
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Diffs the observed unsafe surface against the checked-in inventory.
fn check_inventory(cfg: &Config, uses: &[(UnsafeUse, u32)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let observed = count_uses(uses);
    for ((file, context, kind), n) in &observed {
        let recorded =
            cfg.inventory.get(&(file.clone(), context.clone(), kind.clone())).copied().unwrap_or(0);
        if *n as i64 != recorded {
            let line = uses
                .iter()
                .find(|(u, _)| &u.file == file && &u.context == context && u.kind == kind)
                .map(|(_, l)| *l)
                .unwrap_or(0);
            findings.push(Finding {
                file: file.clone(),
                line,
                lint: LINT_INVENTORY,
                msg: format!(
                    "unsafe surface changed: `{context}` ({kind}) has {n} use(s), \
                     inventory records {recorded} — regenerate with \
                     `cargo run -p bsl-audit -- inventory > audit/unsafe_inventory.toml` \
                     and review the diff"
                ),
            });
        }
    }
    for ((file, context, kind), recorded) in &cfg.inventory {
        if !observed.contains_key(&(file.clone(), context.clone(), kind.clone())) {
            findings.push(Finding {
                file: "audit/unsafe_inventory.toml".into(),
                line: 0,
                lint: LINT_INVENTORY,
                msg: format!(
                    "stale inventory entry: `{context}` ({kind}) in `{file}` \
                     (records {recorded}, found 0) — regenerate and review"
                ),
            });
        }
    }
    findings
}

fn count_uses(uses: &[(UnsafeUse, u32)]) -> BTreeMap<(String, String, String), u64> {
    let mut m = BTreeMap::new();
    for (u, _) in uses {
        *m.entry((u.file.clone(), u.context.clone(), u.kind.to_string())).or_insert(0) += 1;
    }
    m
}

/// Renders the current unsafe surface as `audit/unsafe_inventory.toml`
/// content.
pub fn render_inventory(ws: &Workspace) -> String {
    let mut uses = Vec::new();
    for f in &ws.files {
        let _ = lints::check_unsafe(f, &mut uses);
    }
    let counts = count_uses(&uses);
    let mut out = String::from(
        "# The workspace's complete unsafe surface, checked in so any change\n\
         # shows up in review. Regenerate with:\n\
         #   cargo run -p bsl-audit -- inventory > audit/unsafe_inventory.toml\n",
    );
    for ((file, context, kind), n) in &counts {
        out.push_str("\n[[unsafe]]\n");
        out.push_str(&format!("file = \"{file}\"\n"));
        out.push_str(&format!("context = \"{context}\"\n"));
        out.push_str(&format!("kind = \"{kind}\"\n"));
        out.push_str(&format!("count = {n}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_reads_package_section_only() {
        let m = "[package]\nname = \"bsl-core\"\n[dependencies]\nname-like = \"x\"\n";
        assert_eq!(package_name(m).as_deref(), Some("bsl-core"));
        assert_eq!(package_name("[dependencies]\nfoo = \"1\"\n"), None);
    }
}
