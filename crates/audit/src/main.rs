//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! cargo run -p bsl-audit -- check [--root PATH]       # exit 1 on findings
//! cargo run -p bsl-audit -- inventory [--root PATH]   # print unsafe surface
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bsl-audit <check|inventory> [--root PATH]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut cmd: Option<String> = None;
    let mut root = PathBuf::from(".");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("bsl-audit: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if cmd.is_none() => cmd = Some(other.to_string()),
            other => {
                eprintln!("bsl-audit: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let ws = match bsl_audit::load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("bsl-audit: {e}");
            return ExitCode::from(2);
        }
    };

    match cmd.as_deref() {
        Some("check") => {
            let cfg = match bsl_audit::load_config(&root) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("bsl-audit: {e}");
                    return ExitCode::from(2);
                }
            };
            let findings = bsl_audit::run_check(&ws, &cfg);
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("bsl-audit: clean ({} files, {} crates)", ws.files.len(), ws.crates.len());
                ExitCode::SUCCESS
            } else {
                println!("bsl-audit: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("inventory") => {
            print!("{}", bsl_audit::render_inventory(&ws));
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
