//! Brace-tracked item scopes over the token stream.
//!
//! For every token index the lints can ask "what named items enclose this
//! point" (`mod avx2` → `fn dot_impl` …). The tracker is deliberately
//! syntactic: any `{` opens a scope (named when an item keyword + name is
//! pending, anonymous otherwise — match arms, closures, struct literals),
//! any `}` closes one. That is exact for the item nesting the lints care
//! about and harmlessly noisy inside expressions.

use crate::lexer::{Tok, TokKind};

/// A named scope kind, as detected from the introducing keyword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeKind {
    Fn,
    Mod,
    Impl,
    Trait,
    Other,
    Anon,
}

/// One entry of the scope stack at a given token.
#[derive(Clone, Debug)]
pub struct Scope {
    pub kind: ScopeKind,
    /// Item name (empty for anonymous scopes).
    pub name: String,
    /// Line of the introducing keyword (or the `{` for anonymous scopes).
    pub decl_line: u32,
}

/// Per-token scope stacks: `stacks[i]` is the enclosing-scope chain of
/// token `i`, outermost first, **at the moment before the token is read**.
pub struct Scopes {
    stacks: Vec<Vec<Scope>>,
}

impl Scopes {
    /// The enclosing named-scope path of token `i`, e.g. `avx2::dot_impl`
    /// (anonymous scopes are skipped).
    pub fn path_of(&self, i: usize) -> String {
        let mut parts: Vec<&str> = Vec::new();
        for s in &self.stacks[i] {
            if !s.name.is_empty() {
                parts.push(&s.name);
            }
        }
        parts.join("::")
    }

    /// The innermost enclosing `fn` scope of token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&Scope> {
        self.stacks[i].iter().rev().find(|s| s.kind == ScopeKind::Fn)
    }

    /// The innermost enclosing scope whose name is `name`, if any.
    pub fn is_inside(&self, i: usize, name: &str) -> bool {
        self.stacks[i].iter().any(|s| s.name == name)
    }
}

/// Builds the per-token scope stacks for `toks`.
pub fn build(toks: &[Tok]) -> Scopes {
    let mut stacks: Vec<Vec<Scope>> = Vec::with_capacity(toks.len());
    let mut stack: Vec<Scope> = Vec::new();
    // A pending item header: set when we see `fn`/`mod`/… , consumed by
    // the next `{` (or dropped at `;` — declarations without bodies).
    let mut pending: Option<Scope> = None;
    // Angle-bracket depth inside a pending header, so `impl<T> Name<T>`
    // picks up `Name`, not the generic params.
    let mut angle: i32 = 0;

    for (idx, t) in toks.iter().enumerate() {
        stacks.push(stack.clone());
        match t.kind {
            TokKind::Ident => {
                let kw_kind = match t.text.as_str() {
                    "fn" => Some(ScopeKind::Fn),
                    "mod" => Some(ScopeKind::Mod),
                    "impl" => Some(ScopeKind::Impl),
                    "trait" => Some(ScopeKind::Trait),
                    "struct" | "enum" | "union" => Some(ScopeKind::Other),
                    _ => None,
                };
                if let Some(kind) = kw_kind {
                    // `impl Fn(usize)` / `Box<fn()>` in *type* position must
                    // not open a pending item header: an item keyword is
                    // only taken after punctuation that can end an item or
                    // after nothing/idents like `pub`/`unsafe`.
                    let type_position = idx > 0
                        && matches!(
                            toks[idx - 1].kind,
                            TokKind::Punct(':')
                                | TokKind::Punct(',')
                                | TokKind::Punct('(')
                                | TokKind::Punct('<')
                                | TokKind::Punct('&')
                                | TokKind::Punct('=')
                                | TokKind::Punct('>')
                                | TokKind::Punct('|')
                                | TokKind::Punct('+')
                        );
                    if !type_position {
                        pending = Some(Scope { kind, name: String::new(), decl_line: t.line });
                        angle = 0;
                    }
                } else if let Some(p) = pending.as_mut() {
                    // First identifier at angle-depth 0 names the item; for
                    // `impl Trait for Type` the *last* one wins (the type).
                    if angle == 0
                        && t.text != "for"
                        && t.text != "where"
                        && t.text != "dyn"
                        && (p.kind == ScopeKind::Impl || p.name.is_empty())
                    {
                        p.name = t.text.clone();
                    }
                }
            }
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                // `->` must not close an angle region: check the previous
                // token for an adjacent `-`.
                let arrow = idx > 0
                    && toks[idx - 1].kind == TokKind::Punct('-')
                    && toks[idx - 1].line == t.line
                    && toks[idx - 1].col + 1 == t.col;
                if !arrow && angle > 0 {
                    angle -= 1;
                }
            }
            TokKind::Punct('{') => {
                let scope = pending.take().unwrap_or(Scope {
                    kind: ScopeKind::Anon,
                    name: String::new(),
                    decl_line: t.line,
                });
                stack.push(scope);
            }
            TokKind::Punct('}') => {
                stack.pop();
            }
            TokKind::Punct(';') => {
                pending = None;
            }
            _ => {}
        }
    }
    Scopes { stacks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn nested_items_resolve_to_paths() {
        let src = "mod avx2 {\n  unsafe fn dot_impl() { let x = 1; }\n  impl<T> Slot<T> { fn load(&self) { x; } }\n}\n";
        let lx = lex(src);
        let sc = build(&lx.toks);
        let x1 = lx.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(sc.path_of(x1), "avx2::dot_impl");
        let x2 = lx.toks.iter().rposition(|t| t.is_ident("x")).unwrap();
        assert_eq!(sc.path_of(x2), "avx2::Slot::load");
        assert_eq!(sc.enclosing_fn(x2).unwrap().name, "load");
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let src = "impl Display for SimdLevel { fn fmt(&self) { y; } }\n";
        let lx = lex(src);
        let sc = build(&lx.toks);
        let y = lx.toks.iter().position(|t| t.is_ident("y")).unwrap();
        assert_eq!(sc.path_of(y), "SimdLevel::fmt");
    }

    #[test]
    fn anon_scopes_are_transparent_and_balanced() {
        let src = "fn f() { match x { A => { z; } } }\n";
        let lx = lex(src);
        let sc = build(&lx.toks);
        let z = lx.toks.iter().position(|t| t.is_ident("z")).unwrap();
        assert_eq!(sc.path_of(z), "f");
        assert!(sc.is_inside(z, "f"));
    }
}
