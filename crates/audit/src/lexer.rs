//! A comment/string/char-literal-aware Rust tokenizer.
//!
//! This is *not* a parser: it produces a flat token stream plus enough
//! side information (comment spans, per-line classification, brace-tracked
//! item scopes) for the lint passes to reason about justification comments
//! and enclosing items without pulling in `syn` (the workspace is
//! dependency-free by policy — see `vendor/README.md`).
//!
//! Handled forms: line comments (`//`, `///`, `//!`), nested block
//! comments (`/* /* */ */`), string literals with escapes, raw strings
//! (`r"…"`, `r#"…"#`, any hash depth, and their `b`/`br` byte forms),
//! char literals vs lifetimes (`'a'` vs `'a`), and numeric literals. That
//! is exactly the set that can hide a `{`, an `unsafe`, or a `//` from a
//! naive scanner.

/// What a token is, at the granularity the lints need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lints match on text).
    Ident,
    /// Numeric literal.
    Num,
    /// String / char / byte literal (contents opaque to the lints).
    Lit,
    /// Lifetime (`'a`) — distinct from a char literal.
    Lifetime,
    /// One punctuation character (`::` arrives as two adjacent `:`).
    Punct(char),
}

/// One token with its source position (1-based line, 0-based column).
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// Is this the identifier/keyword `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// How a source line reads once comments/strings are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineKind {
    /// Nothing but whitespace.
    Blank,
    /// Only comment text (line comment or the interior of a block comment).
    Comment,
    /// Starts an attribute (`#[…]` / `#![…]`); may still span lines.
    Attr,
    /// Anything else.
    Code,
}

/// A lexed file: tokens plus the comment/line side tables.
pub struct FileLex {
    pub toks: Vec<Tok>,
    /// Every comment, keyed by the line(s) it covers: `(line, text)` with
    /// one entry per source line the comment touches (so "is there a
    /// SAFETY: marker on/above line N" is a flat lookup).
    pub comments: Vec<(u32, String)>,
    /// Classification of every source line (index 0 = line 1).
    pub line_kinds: Vec<LineKind>,
}

impl FileLex {
    /// All comment text covering `line` (1-based), concatenated.
    pub fn comment_on(&self, line: u32) -> String {
        let mut out = String::new();
        for (l, t) in &self.comments {
            if *l == line {
                out.push_str(t);
                out.push('\n');
            }
        }
        out
    }

    /// The [`LineKind`] of 1-based `line` (out of range ⇒ `Blank`).
    pub fn line_kind(&self, line: u32) -> LineKind {
        self.line_kinds.get(line as usize - 1).copied().unwrap_or(LineKind::Blank)
    }

    /// True when `marker` appears in a comment on `line` itself or in the
    /// contiguous comment/attribute block immediately above it (blank
    /// lines and code lines break the search).
    pub fn has_marker_at_or_above(&self, line: u32, marker: &str) -> bool {
        if self.comment_on(line).contains(marker) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            match self.line_kind(l) {
                LineKind::Comment | LineKind::Attr => {
                    if self.comment_on(l).contains(marker) {
                        return true;
                    }
                }
                LineKind::Blank | LineKind::Code => return false,
            }
        }
        false
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Never fails: unterminated literals degrade to a token
/// that runs to end of file (the lints then see a short stream, which is
/// still safe — they only ever *miss* matches on malformed input, and
/// `rustc` rejects such files anyway).
pub fn lex(src: &str) -> FileLex {
    let bytes: Vec<char> = src.chars().collect();
    let n = bytes.len();
    let mut toks = Vec::new();
    let mut comments: Vec<(u32, String)> = Vec::new();
    // Per line: (saw any non-ws non-comment char, saw any comment char,
    // first non-ws char if code).
    let n_lines = src.lines().count().max(1);
    let mut has_code = vec![false; n_lines + 2];
    let mut has_comment = vec![false; n_lines + 2];
    let mut first_code: Vec<Option<char>> = vec![None; n_lines + 2];

    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 0;

    macro_rules! bump {
        () => {{
            if bytes[i] == '\n' {
                line += 1;
                col = 0;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    macro_rules! mark_code {
        ($c:expr) => {{
            let li = line as usize;
            if li <= n_lines + 1 {
                has_code[li] = true;
                if first_code[li].is_none() {
                    first_code[li] = Some($c);
                }
            }
        }};
    }

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            while i < n && bytes[i] != '\n' {
                text.push(bytes[i]);
                bump!();
            }
            has_comment[start_line as usize] = true;
            comments.push((start_line, text));
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut depth = 0usize;
            let mut text = String::new();
            let mut cur_line = line;
            while i < n {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    bump!();
                    bump!();
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    text.push_str("*/");
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    if bytes[i] == '\n' {
                        has_comment[cur_line as usize] = true;
                        comments.push((cur_line, std::mem::take(&mut text)));
                        cur_line = line + 1;
                    } else {
                        text.push(bytes[i]);
                    }
                    bump!();
                }
            }
            has_comment[cur_line as usize] = true;
            comments.push((cur_line, text));
            continue;
        }
        // Raw / byte strings: r"…", r#"…"#, br"…", b"…".
        if (c == 'r' || c == 'b') && i + 1 < n {
            let mut j = i;
            let mut raw = false;
            if bytes[j] == 'b' {
                j += 1;
            }
            if j < n && bytes[j] == 'r' {
                raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while raw && j < n && bytes[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && bytes[j] == '"' && (raw || bytes[i] == 'b') {
                // Consume up to and including the opening quote.
                mark_code!(c);
                let (tline, tcol) = (line, col);
                while i <= j {
                    bump!();
                }
                if raw {
                    // Scan for `"###…` with the right hash count.
                    'outer: while i < n {
                        if bytes[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'outer;
                            }
                        }
                        bump!();
                    }
                } else {
                    // b"…" with escapes.
                    while i < n {
                        if bytes[i] == '\\' && i + 1 < n {
                            bump!();
                            bump!();
                        } else if bytes[i] == '"' {
                            bump!();
                            break;
                        } else {
                            bump!();
                        }
                    }
                }
                toks.push(Tok { kind: TokKind::Lit, text: String::new(), line: tline, col: tcol });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // String literal.
        if c == '"' {
            mark_code!(c);
            let (tline, tcol) = (line, col);
            bump!();
            while i < n {
                if bytes[i] == '\\' && i + 1 < n {
                    bump!();
                    bump!();
                } else if bytes[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            toks.push(Tok { kind: TokKind::Lit, text: String::new(), line: tline, col: tcol });
            continue;
        }
        // Char literal vs lifetime. A lifetime is `'` + ident not followed
        // by a closing `'`; `'a'` / `'\n'` are char literals.
        if c == '\'' {
            mark_code!(c);
            let (tline, tcol) = (line, col);
            // Escaped char: always a literal.
            if i + 1 < n && bytes[i + 1] == '\\' {
                bump!(); // '
                bump!(); // backslash
                while i < n && bytes[i] != '\'' {
                    bump!();
                }
                if i < n {
                    bump!();
                }
                toks.push(Tok { kind: TokKind::Lit, text: String::new(), line: tline, col: tcol });
                continue;
            }
            if i + 2 < n && is_ident_start(bytes[i + 1]) && bytes[i + 2] != '\'' {
                // Lifetime: consume ident.
                bump!();
                let mut name = String::from("'");
                while i < n && is_ident_cont(bytes[i]) {
                    name.push(bytes[i]);
                    bump!();
                }
                toks.push(Tok { kind: TokKind::Lifetime, text: name, line: tline, col: tcol });
                continue;
            }
            // 'x' or '{' etc: char literal.
            bump!(); // '
            while i < n && bytes[i] != '\'' && bytes[i] != '\n' {
                bump!();
            }
            if i < n && bytes[i] == '\'' {
                bump!();
            }
            toks.push(Tok { kind: TokKind::Lit, text: String::new(), line: tline, col: tcol });
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            mark_code!(c);
            let (tline, tcol) = (line, col);
            let mut name = String::new();
            while i < n && is_ident_cont(bytes[i]) {
                name.push(bytes[i]);
                bump!();
            }
            toks.push(Tok { kind: TokKind::Ident, text: name, line: tline, col: tcol });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            mark_code!(c);
            let (tline, tcol) = (line, col);
            let mut text = String::new();
            while i < n && (is_ident_cont(bytes[i]) || bytes[i] == '.') {
                // `0..9` range syntax: stop the number at `..`.
                if bytes[i] == '.' && i + 1 < n && bytes[i + 1] == '.' {
                    break;
                }
                text.push(bytes[i]);
                bump!();
            }
            toks.push(Tok { kind: TokKind::Num, text, line: tline, col: tcol });
            continue;
        }
        // Punctuation: one char per token.
        mark_code!(c);
        toks.push(Tok { kind: TokKind::Punct(c), text: c.to_string(), line, col });
        bump!();
    }

    let mut line_kinds = Vec::with_capacity(n_lines);
    for l in 1..=n_lines {
        let kind = if has_code[l] {
            if first_code[l] == Some('#') {
                LineKind::Attr
            } else {
                LineKind::Code
            }
        } else if has_comment[l] {
            LineKind::Comment
        } else {
            LineKind::Blank
        };
        line_kinds.push(kind);
    }
    FileLex { toks, comments, line_kinds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_hide_tokens() {
        let lx = lex("let s = \"unsafe { }\"; // unsafe trailing\nunsafe { }\n");
        let unsafes: Vec<u32> =
            lx.toks.iter().filter(|t| t.is_ident("unsafe")).map(|t| t.line).collect();
        assert_eq!(unsafes, vec![2], "string/comment contents must not tokenize");
        assert!(lx.comment_on(1).contains("unsafe trailing"));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let lx = lex("/* a /* b */ still */ fn x() {}\nlet r = r#\"// not a comment\"#;\n");
        assert!(lx.toks.iter().any(|t| t.is_ident("fn")));
        assert!(!lx.comment_on(2).contains("not a comment"));
        assert_eq!(lx.line_kind(1), LineKind::Code);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        let lifetimes = lx.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let lits = lx.toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(lits, 1);
    }

    #[test]
    fn marker_search_walks_comment_blocks() {
        let src = "// SAFETY: fine\n#[inline]\nunsafe fn f() {}\n\nunsafe fn g() {}\n";
        let lx = lex(src);
        assert!(lx.has_marker_at_or_above(3, "SAFETY:"));
        assert!(!lx.has_marker_at_or_above(5, "SAFETY:"));
    }

    #[test]
    fn line_kinds_classify_attrs_and_blanks() {
        let lx = lex("#[derive(Debug)]\nstruct S;\n\n// c\n");
        assert_eq!(lx.line_kind(1), LineKind::Attr);
        assert_eq!(lx.line_kind(2), LineKind::Code);
        assert_eq!(lx.line_kind(3), LineKind::Blank);
        assert_eq!(lx.line_kind(4), LineKind::Comment);
    }
}
