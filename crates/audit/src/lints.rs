//! The four lint families plus the policy/inventory/waiver meta-checks.
//!
//! Every check is a pure function from lexed sources + policy to a list
//! of [`Finding`]s; the caller (CLI or tests) decides how to render them.

use crate::lexer::{FileLex, TokKind};
use crate::scopes::Scopes;
use std::collections::BTreeMap;

/// Lint identifiers, as used in diagnostics and `allow(...)` waivers.
pub const LINT_UNSAFE: &str = "unsafe-audit";
pub const LINT_ORDERING: &str = "ordering";
pub const LINT_HOT_PATH: &str = "hot-path-alloc";
pub const LINT_DISPATCH: &str = "simd-dispatch";
pub const LINT_POLICY: &str = "policy";
pub const LINT_INVENTORY: &str = "inventory";
pub const LINT_WAIVERS: &str = "waivers";

/// One diagnostic: `file:line: [lint] message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub lint: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.msg)
    }
}

/// A lexed source file with its workspace-relative path.
pub struct SrcFile {
    pub rel: String,
    pub lex: FileLex,
    pub scopes: Scopes,
}

impl SrcFile {
    pub fn new(rel: String, src: &str) -> Self {
        let lex = crate::lexer::lex(src);
        let scopes = crate::scopes::build(&lex.toks);
        Self { rel, lex, scopes }
    }
}

/// An inline waiver parsed out of a comment:
/// `// bsl-audit: allow(<lint>) -- <reason>`.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub file: String,
    pub line: u32,
    pub lint: String,
    pub reason: String,
}

/// Extracts every inline waiver in `file`.
pub fn collect_waivers(file: &SrcFile) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (line, text) in &file.lex.comments {
        let Some(pos) = text.find("bsl-audit: allow(") else { continue };
        let rest = &text[pos + "bsl-audit: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let lint = rest[..close].trim().to_string();
        // `allow(<lint>)` in prose documenting the syntax is not a waiver.
        if !lint.chars().all(|c| c.is_ascii_lowercase() || c == '-') || lint.is_empty() {
            continue;
        }
        let reason = rest[close + 1..]
            .trim_start()
            .strip_prefix("--")
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(Waiver { file: file.rel.clone(), line: *line, lint, reason });
    }
    out
}

/// True when `f` is waived: a matching-lint waiver sits on the finding's
/// line (trailing comment) or the line directly above (comment-above).
/// Used waivers are flagged in `used` (same indexing as `waivers`).
pub fn is_waived(f: &Finding, waivers: &[Waiver], used: &mut [bool]) -> bool {
    for (i, w) in waivers.iter().enumerate() {
        if w.file == f.file
            && (w.lint == f.lint || w.lint == "all")
            && (w.line == f.line || w.line + 1 == f.line)
        {
            used[i] = true;
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// unsafe-audit
// ---------------------------------------------------------------------------

/// One piece of unsafe surface, for the checked-in inventory.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeUse {
    pub file: String,
    /// Enclosing item path (`avx2::dot_impl`); for `unsafe fn`/`impl`
    /// declarations this includes the declared item itself.
    pub context: String,
    /// `block`, `fn`, `impl`, or `trait`.
    pub kind: &'static str,
}

/// Scans `file` for `unsafe` occurrences: emits a finding for every one
/// without a `// SAFETY:` (or `# Safety` doc) justification, and records
/// all of them in `inventory`.
pub fn check_unsafe(file: &SrcFile, inventory: &mut Vec<(UnsafeUse, u32)>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.lex.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        let (kind, context) = if next.is_punct('{') {
            ("block", file.scopes.path_of(i))
        } else if next.is_ident("fn") || next.is_ident("extern") {
            // `unsafe fn name` / `unsafe extern "C" fn name`.
            let name = toks[i + 1..]
                .iter()
                .skip_while(|t| !t.is_ident("fn"))
                .find(|t| t.kind == TokKind::Ident && t.text != "fn")
                .map(|t| t.text.clone())
                .unwrap_or_default();
            ("fn", join_path(&file.scopes.path_of(i), &name))
        } else if next.is_ident("impl") || next.is_ident("trait") {
            let kw = if next.is_ident("impl") { "impl" } else { "trait" };
            let name = toks[i + 2..]
                .iter()
                .take_while(|t| !t.is_punct('{'))
                .filter(|t| t.kind == TokKind::Ident && t.text != "for")
                .last()
                .map(|t| t.text.clone())
                .unwrap_or_default();
            (kw, join_path(&file.scopes.path_of(i), &name))
        } else {
            // `unsafe` in type position (`unsafe fn()` pointers) — not a
            // justification site, but still unsafe surface; skip.
            continue;
        };
        inventory
            .push((UnsafeUse { file: file.rel.clone(), context: context.clone(), kind }, t.line));
        let justified = file.lex.has_marker_at_or_above(t.line, "SAFETY:")
            || file.lex.has_marker_at_or_above(t.line, "# Safety");
        if !justified {
            findings.push(Finding {
                file: file.rel.clone(),
                line: t.line,
                lint: LINT_UNSAFE,
                msg: format!(
                    "unsafe {kind} without a `// SAFETY:` justification (context: {})",
                    if context.is_empty() { "<file scope>" } else { &context }
                ),
            });
        }
    }
    findings
}

fn join_path(base: &str, name: &str) -> String {
    match (base.is_empty(), name.is_empty()) {
        (true, _) => name.to_string(),
        (_, true) => base.to_string(),
        _ => format!("{base}::{name}"),
    }
}

// ---------------------------------------------------------------------------
// atomic-ordering
// ---------------------------------------------------------------------------

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Every atomic-ordering token must sit under an `// ORDERING:`
/// justification: a trailing comment, a comment block directly above the
/// use, or one above the enclosing `fn` (covering all its atomics).
pub fn check_ordering(file: &SrcFile, allow_paths: &[String]) -> Vec<Finding> {
    if allow_paths.iter().any(|p| file.rel.contains(p.as_str())) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let toks = &file.lex.toks;
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Ident if t.text == "use" => in_use = true,
            TokKind::Punct(';') => in_use = false,
            TokKind::Ident if ORDERINGS.contains(&t.text.as_str()) => {
                if in_use {
                    continue; // import lists aren't uses
                }
                if file.scopes.is_inside(i, "tests") {
                    continue; // inline test modules aren't proof-bearing
                }
                let site_ok = file.lex.has_marker_at_or_above(t.line, "ORDERING:");
                let fn_ok = file
                    .scopes
                    .enclosing_fn(i)
                    .map(|f| file.lex.has_marker_at_or_above(f.decl_line, "ORDERING:"))
                    .unwrap_or(false);
                if !site_ok && !fn_ok {
                    findings.push(Finding {
                        file: file.rel.clone(),
                        line: t.line,
                        lint: LINT_ORDERING,
                        msg: format!(
                            "`{}` without an `// ORDERING:` justification (on the use, \
                             or above the enclosing fn)",
                            t.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// hot-path-allocation
// ---------------------------------------------------------------------------

/// Tokens that may not appear in a registered hot-path function.
const HOT_BANNED_CALLS: [&str; 6] =
    ["to_vec", "collect", "clone", "to_owned", "to_string", "with_capacity"];

/// Checks the functions named in the hot-path registry for allocation /
/// copy tokens. `fns` maps fn name → list of findings appended.
pub fn check_hot_fns(file: &SrcFile, fn_names: &[String]) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut seen = Vec::new();
    let toks = &file.lex.toks;
    for name in fn_names {
        for (start, end) in fn_body_ranges(file, name) {
            seen.push(name.clone());
            for j in start..end {
                let t = &toks[j];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let bad: Option<String> = if HOT_BANNED_CALLS.contains(&t.text.as_str()) {
                    Some(t.text.clone())
                } else if (t.text == "vec" || t.text == "format")
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('!'))
                {
                    Some(format!("{}!", t.text))
                } else if t.text == "new"
                    && j >= 3
                    && toks[j - 1].is_punct(':')
                    && toks[j - 2].is_punct(':')
                    && (toks[j - 3].is_ident("Vec")
                        || toks[j - 3].is_ident("Box")
                        || toks[j - 3].is_ident("String")
                        || toks[j - 3].is_ident("VecDeque")
                        || toks[j - 3].is_ident("HashMap")
                        || toks[j - 3].is_ident("BTreeMap"))
                {
                    Some(format!("{}::new", toks[j - 3].text))
                } else if t.text == "from" && j >= 3 && toks[j - 3].is_ident("String") {
                    Some("String::from".to_string())
                } else {
                    None
                };
                if let Some(what) = bad {
                    findings.push(Finding {
                        file: file.rel.clone(),
                        line: t.line,
                        lint: LINT_HOT_PATH,
                        msg: format!(
                            "`{what}` in hot-path fn `{name}` (steady state must not allocate)"
                        ),
                    });
                }
            }
        }
    }
    (findings, seen)
}

/// Token ranges `(body_start, body_end)` of every `fn <name>` in `file`,
/// excluding occurrences inside a `tests` module.
fn fn_body_ranges(file: &SrcFile, name: &str) -> Vec<(usize, usize)> {
    let toks = &file.lex.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") || !toks.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            continue;
        }
        if file.scopes.is_inside(i, "tests") {
            continue;
        }
        // Find the opening brace of the body, then match braces.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if j >= toks.len() || toks[j].is_punct(';') {
            continue; // trait method without body
        }
        let start = j + 1;
        let mut depth = 1usize;
        j += 1;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
            }
            j += 1;
        }
        out.push((start, j.saturating_sub(1)));
    }
    out
}

// ---------------------------------------------------------------------------
// simd-dispatch
// ---------------------------------------------------------------------------

/// A `#[target_feature]` function found in the workspace.
#[derive(Clone, Debug)]
pub struct TargetFeatureFn {
    pub file: String,
    pub line: u32,
    pub name: String,
}

/// Finds every `#[target_feature]`-annotated fn in `file`.
pub fn find_target_feature_fns(file: &SrcFile) -> Vec<TargetFeatureFn> {
    let toks = &file.lex.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("target_feature") {
            continue;
        }
        // Must actually be the attribute `#[target_feature(...)]`.
        if !(i >= 2 && toks[i - 1].is_punct('[') && toks[i - 2].is_punct('#')) {
            continue;
        }
        // Scan forward to the `fn` keyword this attribute decorates.
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_ident("fn") {
            j += 1;
        }
        if let Some(name_tok) = toks.get(j + 1) {
            if name_tok.kind == TokKind::Ident {
                out.push(TargetFeatureFn {
                    file: file.rel.clone(),
                    line: toks[i].line,
                    name: name_tok.text.clone(),
                });
            }
        }
    }
    out
}

/// The dispatch-table policy: where `#[target_feature]` fns may live, the
/// registered kernels (name → scalar twin) and pure-register helpers.
pub struct DispatchPolicy {
    pub dispatch_file: String,
    pub kernels: BTreeMap<String, String>,
    pub helpers: Vec<String>,
    /// Module names where scalar twins may live (`scalar`, `portable`).
    pub scalar_modules: Vec<String>,
}

/// Enforces the simd-dispatch family over the whole workspace.
pub fn check_dispatch(files: &[SrcFile], policy: &DispatchPolicy) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut tf_fns: Vec<TargetFeatureFn> = Vec::new();
    for f in files {
        tf_fns.extend(find_target_feature_fns(f));
    }
    let dispatch = files.iter().find(|f| f.rel == policy.dispatch_file);
    for tf in &tf_fns {
        if tf.file != policy.dispatch_file {
            findings.push(Finding {
                file: tf.file.clone(),
                line: tf.line,
                lint: LINT_DISPATCH,
                msg: format!(
                    "`#[target_feature]` fn `{}` outside the dispatch module `{}`",
                    tf.name, policy.dispatch_file
                ),
            });
            continue;
        }
        if policy.helpers.contains(&tf.name) {
            continue;
        }
        match policy.kernels.get(&tf.name) {
            None => findings.push(Finding {
                file: tf.file.clone(),
                line: tf.line,
                lint: LINT_DISPATCH,
                msg: format!(
                    "`#[target_feature]` fn `{}` not registered in the dispatch table \
                     (audit/policy.toml [[kernel]] / helpers)",
                    tf.name
                ),
            }),
            Some(twin) => {
                let has_twin = dispatch.is_some_and(|df| {
                    df.lex.toks.iter().enumerate().any(|(i, t)| {
                        t.is_ident("fn")
                            && df.lex.toks.get(i + 1).is_some_and(|n| n.is_ident(twin))
                            && policy.scalar_modules.iter().any(|m| df.scopes.is_inside(i, m))
                    })
                });
                if !has_twin {
                    findings.push(Finding {
                        file: tf.file.clone(),
                        line: tf.line,
                        lint: LINT_DISPATCH,
                        msg: format!(
                            "kernel `{}` declares scalar twin `{twin}` but no \
                             `fn {twin}` exists in a scalar module ({})",
                            tf.name,
                            policy.scalar_modules.join(", ")
                        ),
                    });
                }
            }
        }
    }
    // No `#[target_feature]` fn may be referenced outside the dispatch
    // module: the safe wrappers there are the only sanctioned call sites.
    for f in files {
        if f.rel == policy.dispatch_file {
            continue;
        }
        for t in &f.lex.toks {
            if t.kind == TokKind::Ident && tf_fns.iter().any(|tf| tf.name == t.text) {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: t.line,
                    lint: LINT_DISPATCH,
                    msg: format!(
                        "`{}` is a `#[target_feature]` fn and may only be called from \
                         dispatch sites in `{}`",
                        t.text, policy.dispatch_file
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SrcFile {
        SrcFile::new("test.rs".into(), src)
    }

    #[test]
    fn unjustified_unsafe_block_is_flagged_and_inventoried() {
        let f = file("fn f() {\n    unsafe { g() }\n}\n");
        let mut inv = Vec::new();
        let fs = check_unsafe(&f, &mut inv);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 2);
        assert_eq!(inv[0].0.context, "f");
        assert_eq!(inv[0].0.kind, "block");
    }

    #[test]
    fn safety_comment_above_or_doc_section_passes() {
        let f = file(
            "fn f() {\n    // SAFETY: fine\n    unsafe { g() }\n}\n\
             /// # Safety\n/// caller checks\nunsafe fn h() {}\n",
        );
        let mut inv = Vec::new();
        assert!(check_unsafe(&f, &mut inv).is_empty());
        assert_eq!(inv.len(), 2);
        assert_eq!(inv[1].0.kind, "fn");
        assert_eq!(inv[1].0.context, "h");
    }

    #[test]
    fn ordering_needs_justification_but_imports_do_not() {
        let f = file(
            "use std::sync::atomic::{AtomicU64, Ordering::SeqCst};\n\
             fn f(a: &std::sync::atomic::AtomicU64) {\n    a.load(SeqCst);\n}\n",
        );
        let fs = check_ordering(&f, &[]);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn fn_level_ordering_comment_covers_all_uses() {
        let f = file(
            "// ORDERING: all relaxed, monotonic counters only.\n\
             fn f(a: &A) {\n    a.load(Relaxed);\n    a.store(1, Relaxed);\n}\n",
        );
        assert!(check_ordering(&f, &[]).is_empty());
    }

    #[test]
    fn hot_path_bans_alloc_tokens() {
        let f = file(
            "fn hot(xs: &[u32]) -> Vec<u32> {\n    let v = vec![0u8; 4];\n    \
             xs.iter().copied().collect()\n}\nfn cold() { let _ = Vec::<u8>::new(); }\n",
        );
        let (fs, seen) = check_hot_fns(&f, &["hot".into()]);
        assert_eq!(seen, vec!["hot"]);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs[0].msg.contains("vec!"));
        assert!(fs[1].msg.contains("collect"));
    }

    #[test]
    fn dispatch_flags_unregistered_and_out_of_module_fns() {
        let dispatch = SrcFile::new(
            "simd.rs".into(),
            "pub mod scalar { pub fn dot() {} }\n\
             #[target_feature(enable = \"avx2\")]\nunsafe fn dot_impl() {}\n\
             #[target_feature(enable = \"avx2\")]\nunsafe fn rogue_impl() {}\n",
        );
        let other = SrcFile::new(
            "other.rs".into(),
            "#[target_feature(enable = \"avx2\")]\nunsafe fn stray() {}\n\
             fn f() { dot_impl(); }\n",
        );
        let policy = DispatchPolicy {
            dispatch_file: "simd.rs".into(),
            kernels: [("dot_impl".to_string(), "dot".to_string())].into_iter().collect(),
            helpers: vec![],
            scalar_modules: vec!["scalar".into()],
        };
        let fs = check_dispatch(&[dispatch, other], &policy);
        let msgs: Vec<&str> = fs.iter().map(|f| f.msg.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("rogue_impl") && m.contains("not registered")));
        assert!(msgs.iter().any(|m| m.contains("stray") && m.contains("outside")));
        assert!(msgs.iter().any(|m| m.contains("dot_impl") && m.contains("only be called")));
    }

    #[test]
    fn waivers_suppress_exactly_their_line_and_lint() {
        let f = file(
            "fn hot() {\n    // bsl-audit: allow(hot-path-alloc) -- warm-up only\n    \
             let v = vec![1];\n    let w = vec![2];\n}\n",
        );
        let (fs, _) = check_hot_fns(&f, &["hot".into()]);
        let waivers = collect_waivers(&f);
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].reason, "warm-up only");
        let mut used = vec![false; waivers.len()];
        let kept: Vec<&Finding> =
            fs.iter().filter(|f| !is_waived(f, &waivers, &mut used)).collect();
        assert_eq!(kept.len(), 1, "only the line under the waiver is suppressed");
        assert_eq!(kept[0].line, 4);
        assert!(used[0]);
    }
}
