//! Row-major dense `f32` matrix.

use rand::Rng;

/// A dense, row-major matrix of `f32` values.
///
/// This is the storage type for embedding tables, propagation buffers and
/// the small dense factors of the randomized SVD. It deliberately exposes
/// rows as plain slices so hot loops can run on `&[f32]` without bounds
/// checks per element.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length {} != {rows}x{cols}", data.len());
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization: entries are drawn from
    /// `U(-a, a)` with `a = sqrt(6 / (rows + cols))`.
    ///
    /// This mirrors the initialization used by the paper ("the
    /// initialization is unified using Xavier").
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let a = (6.0f64 / (rows + cols) as f64).sqrt() as f32;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(rng.gen_range(-a..a));
        }
        Self { rows, cols, data }
    }

    /// Standard-normal initialization scaled by `std`.
    pub fn gaussian(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            // Box-Muller transform: keeps us off rand_distr which is not in
            // the sanctioned dependency set.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            data.push(z as f32 * std);
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Get entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Set entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The whole buffer in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the whole buffer in row-major order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// `self += other`, elementwise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        crate::kernels::axpy(1.0, &other.data, &mut self.data);
    }

    /// `self += alpha * other`, elementwise.
    pub fn add_scaled_assign(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_scaled_assign");
        crate::kernels::axpy(alpha, &other.data, &mut self.data);
    }

    /// Scales every entry by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        crate::kernels::scale(alpha, &mut self.data);
    }

    /// Dense matrix product `self * other` (i-k-j loop order; the inner
    /// row accumulation is a dispatched `axpy`, so the small dense factors
    /// this workspace multiplies still ride the SIMD kernels).
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                crate::kernels::axpy(aik, other.row(k), out.row_mut(i));
            }
        }
        out
    }

    /// Dense matrix product `selfᵀ * other`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                crate::kernels::axpy(a, b_row, out.row_mut(i));
            }
        }
        out
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Frobenius norm (accumulated in `f64`).
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
    }

    /// Extracts rows `idx` into a new `idx.len() × cols` matrix.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (dst, &src) in idx.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_indexing() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 11.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_wrong_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::gaussian(5, 3, 1.0, &mut rng);
        let b = Matrix::gaussian(5, 4, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = Matrix::xavier_uniform(100, 50, &mut rng);
        let a = (6.0f64 / 150.0).sqrt() as f32;
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a));
        // Not all zero / not all identical.
        let first = m.get(0, 0);
        assert!(m.as_slice().iter().any(|&x| x != first));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::gaussian(200, 200, 2.0, &mut rng);
        let n = m.as_slice().len() as f64;
        let mean: f64 = m.as_slice().iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = m.as_slice().iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn gather_rows_picks_expected() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let g = m.gather_rows(&[3, 1]);
        assert_eq!(g.row(0), &[6.0, 7.0]);
        assert_eq!(g.row(1), &[2.0, 3.0]);
    }

    #[test]
    fn add_scaled_assign_axpy() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 10.0, 10.0]);
        a.add_scaled_assign(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 7.0, 8.0]);
    }

    proptest! {
        #[test]
        fn prop_matmul_identity(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::gaussian(rows, cols, 1.0, &mut rng);
            let eye = Matrix::from_fn(cols, cols, |r, c| if r == c { 1.0 } else { 0.0 });
            let b = a.matmul(&eye);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_transpose_involution(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::gaussian(rows, cols, 1.0, &mut rng);
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        #[test]
        fn prop_frob_norm_scales(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a = Matrix::gaussian(4, 4, 1.0, &mut rng);
            let n0 = a.frob_norm();
            a.scale(3.0);
            prop_assert!((a.frob_norm() - 3.0 * n0).abs() < 1e-3 * (1.0 + n0));
        }
    }
}
