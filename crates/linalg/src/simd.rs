//! Runtime-dispatched SIMD kernels and their blocked (batch) forms.
//!
//! Three implementations of every hot kernel live here:
//!
//! * [`scalar`] — the original plain loops, kept verbatim as the bit-exact
//!   reference. Forcing this level (`BSL_SIMD=scalar`) reproduces the
//!   historical trainer output bit for bit.
//! * `portable` — 8-lane unrolled loops with independent accumulators on
//!   stable Rust (`chunks_exact(8)` + scalar tail). The compiler
//!   auto-vectorizes these on any target; this is the fallback when no
//!   intrinsic path applies.
//! * `avx2` — AVX2 + FMA intrinsics (`x86_64` only), selected at runtime
//!   via `is_x86_feature_detected!`.
//!
//! The level is resolved **once** (first kernel call) and cached; the
//! `BSL_SIMD` environment variable (`scalar` | `portable` | `avx2`)
//! overrides detection for debugging and determinism work, and
//! [`force`] pins it programmatically (tests use this — each integration
//! test binary is its own process, so a forced level cannot leak).
//!
//! On top of the element kernels sit *blocked* kernels
//! ([`normalize_rows_into`], [`normalize_gather_into`], [`scores_block`],
//! [`cosine_backward_block`], [`adam_update`], [`sgd_momentum_update`])
//! that amortize dispatch and normalization over whole batches; the
//! trainer, evaluator, SpMM and optimizers all route through them. At the [`SimdLevel::Scalar`] level every blocked kernel degrades
//! to the exact per-element loop order of the pre-SIMD implementations, so
//! forced-scalar runs stay bit-identical to the historical code; the SIMD
//! levels reassociate float reductions and use FMA, which agrees with
//! scalar within `1e-4` relative tolerance (property-tested below).

use crate::Matrix;
use std::sync::OnceLock;

/// Which kernel implementation the process dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Original plain loops — the bit-exact reference implementation.
    Scalar,
    /// 8-lane unrolled, multi-accumulator stable-Rust loops.
    Portable,
    /// AVX2 + FMA intrinsics (`x86_64` with runtime feature detection).
    Avx2Fma,
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Portable => "portable",
            SimdLevel::Avx2Fma => "avx2+fma",
        })
    }
}

static LEVEL: OnceLock<SimdLevel> = OnceLock::new();

fn parse_level(s: &str) -> Option<SimdLevel> {
    match s {
        "scalar" => Some(SimdLevel::Scalar),
        "portable" => Some(SimdLevel::Portable),
        "avx2" => Some(SimdLevel::Avx2Fma),
        _ => None,
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

fn detect() -> SimdLevel {
    if let Ok(v) = std::env::var("BSL_SIMD") {
        match parse_level(&v) {
            Some(SimdLevel::Avx2Fma) if !avx2_available() => {
                eprintln!("BSL_SIMD=avx2 requested but AVX2+FMA not detected; using portable");
                return SimdLevel::Portable;
            }
            Some(lv) => return lv,
            None => eprintln!("BSL_SIMD={v} not recognized (scalar|portable|avx2); auto-detecting"),
        }
    }
    if avx2_available() {
        SimdLevel::Avx2Fma
    } else {
        SimdLevel::Portable
    }
}

/// The dispatch level every kernel in this process uses (cached on first
/// call; see the module docs for the `BSL_SIMD` override).
#[inline]
pub fn active() -> SimdLevel {
    *LEVEL.get_or_init(detect)
}

/// Pins the dispatch level before first kernel use.
///
/// Returns `Err(current)` when a *different* level is already cached
/// (kernels have run, or another caller forced first). Forcing
/// [`SimdLevel::Avx2Fma`] on hardware without it is clamped to portable.
pub fn force(level: SimdLevel) -> Result<(), SimdLevel> {
    let level =
        if level == SimdLevel::Avx2Fma && !avx2_available() { SimdLevel::Portable } else { level };
    match LEVEL.set(level) {
        Ok(()) => Ok(()),
        Err(_) => {
            let cur = active();
            if cur == level {
                Ok(())
            } else {
                Err(cur)
            }
        }
    }
}

/// The bit-exact reference kernels (the pre-SIMD implementations,
/// verbatim). Blocked kernels at [`SimdLevel::Scalar`] reduce to loops
/// over these in the historical order.
pub mod scalar {
    /// Reference dot product (in-order accumulation).
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b.iter()) {
            acc += x * y;
        }
        acc
    }

    /// Reference `y += alpha * x`.
    #[inline]
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += alpha * xi;
        }
    }

    /// Reference `y *= alpha`.
    #[inline]
    pub fn scale(alpha: f32, y: &mut [f32]) {
        for yi in y.iter_mut() {
            *yi *= alpha;
        }
    }

    /// Reference squared Euclidean distance.
    #[inline]
    pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b.iter()) {
            let d = x - y;
            acc += d * d;
        }
        acc
    }

    /// Reference `out = x / max(||x||, eps)`, returning `||x||`.
    #[inline]
    pub fn normalize_into(x: &[f32], out: &mut [f32]) -> f32 {
        let n = dot(x, x).max(0.0).sqrt();
        let inv = 1.0 / n.max(1e-12);
        for (o, xi) in out.iter_mut().zip(x.iter()) {
            *o = xi * inv;
        }
        n
    }

    /// Reference cosine backward (see [`crate::kernels::cosine_backward_into`]).
    #[inline]
    pub fn cosine_backward_into(
        g: f32,
        s: f32,
        a_hat: &[f32],
        b_hat: &[f32],
        a_norm: f32,
        grad_a: &mut [f32],
    ) {
        let inv = 1.0 / a_norm.max(1e-12);
        for ((ga, &bh), &ah) in grad_a.iter_mut().zip(b_hat.iter()).zip(a_hat.iter()) {
            *ga += g * (bh - s * ah) * inv;
        }
    }

    /// Reference fused Adam row update: first-moment EMA, second-moment
    /// EMA, bias-corrected parameter step — three in-order passes exactly
    /// matching the pre-SIMD `Adam::update_row`/`step_dense` loops.
    #[allow(clippy::too_many_arguments)] // mirrors the Adam hyperparameter set
    #[inline]
    pub fn adam_update(
        param: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        g: &[f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        bc1: f32,
        bc2: f32,
        eps: f32,
    ) {
        for (mi, &gi) in m.iter_mut().zip(g.iter()) {
            *mi = beta1 * *mi + (1.0 - beta1) * gi;
        }
        for (vi, &gi) in v.iter_mut().zip(g.iter()) {
            *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
        }
        for ((p, &mi), &vi) in param.iter_mut().zip(m.iter()).zip(v.iter()) {
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    /// Reference fused momentum-SGD update: `v ← μ·v + g`, `p ← p − lr·v`
    /// in one pass — exactly the pre-SIMD `Sgd::step_dense` loop.
    #[inline]
    pub fn sgd_momentum_update(param: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, mu: f32) {
        for ((p, vi), &gi) in param.iter_mut().zip(v.iter_mut()).zip(g.iter()) {
            *vi = mu * *vi + gi;
            *p -= lr * *vi;
        }
    }

    /// Reference fused int8→f32 dequantize-dot: `scale · Σ q[j]·row[j]`,
    /// widening each quantized value in the accumulation loop (no
    /// materialized f32 row). The one scale multiply happens after the
    /// reduction, so the quantization grid never re-rounds per element.
    #[inline]
    pub fn dequant_dot(q: &[f32], row: &[i8], scale: f32) -> f32 {
        debug_assert_eq!(q.len(), row.len());
        let mut acc = 0.0f32;
        for (x, &b) in q.iter().zip(row.iter()) {
            acc += x * b as f32;
        }
        acc * scale
    }
}

/// 8-lane unrolled stable-Rust kernels: independent per-lane accumulators
/// over `chunks_exact(8)` with a scalar tail. Reduction order differs from
/// [`scalar`] (pairwise lane fold), so results agree within float
/// tolerance, not bitwise.
mod portable {
    #[inline]
    fn fold8(lanes: [f32; 8]) -> f32 {
        ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
            + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]))
    }

    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut lanes = [0.0f32; 8];
        let mut ac = a.chunks_exact(8);
        let mut bc = b.chunks_exact(8);
        for (ca, cb) in (&mut ac).zip(&mut bc) {
            for k in 0..8 {
                lanes[k] += ca[k] * cb[k];
            }
        }
        let mut acc = fold8(lanes);
        for (x, y) in ac.remainder().iter().zip(bc.remainder().iter()) {
            acc += x * y;
        }
        acc
    }

    #[inline]
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        let mut xc = x.chunks_exact(8);
        let mut yc = y.chunks_exact_mut(8);
        for (cx, cy) in (&mut xc).zip(&mut yc) {
            for k in 0..8 {
                cy[k] += alpha * cx[k];
            }
        }
        for (xi, yi) in xc.remainder().iter().zip(yc.into_remainder().iter_mut()) {
            *yi += alpha * xi;
        }
    }

    #[inline]
    pub fn scale(alpha: f32, y: &mut [f32]) {
        for yi in y.iter_mut() {
            *yi *= alpha;
        }
    }

    #[inline]
    pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut lanes = [0.0f32; 8];
        let mut ac = a.chunks_exact(8);
        let mut bc = b.chunks_exact(8);
        for (ca, cb) in (&mut ac).zip(&mut bc) {
            for k in 0..8 {
                let d = ca[k] - cb[k];
                lanes[k] += d * d;
            }
        }
        let mut acc = fold8(lanes);
        for (x, y) in ac.remainder().iter().zip(bc.remainder().iter()) {
            let d = x - y;
            acc += d * d;
        }
        acc
    }

    /// `out = x * inv` (the elementwise half of normalization).
    #[inline]
    pub fn scale_into(inv: f32, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), out.len());
        for (o, xi) in out.iter_mut().zip(x.iter()) {
            *o = xi * inv;
        }
    }

    #[inline]
    pub fn normalize_into(x: &[f32], out: &mut [f32]) -> f32 {
        let n = dot(x, x).max(0.0).sqrt();
        let inv = 1.0 / n.max(1e-12);
        scale_into(inv, x, out);
        n
    }

    /// `grad_a += c1·b_hat − c2·a_hat` with `c1 = g/||a||`,
    /// `c2 = g·s/||a||` hoisted out of the loop.
    #[inline]
    pub fn cosine_backward_into(
        g: f32,
        s: f32,
        a_hat: &[f32],
        b_hat: &[f32],
        a_norm: f32,
        grad_a: &mut [f32],
    ) {
        let inv = 1.0 / a_norm.max(1e-12);
        let c1 = g * inv;
        let c2 = g * s * inv;
        let mut bc = b_hat.chunks_exact(8);
        let mut ac = a_hat.chunks_exact(8);
        let mut gc = grad_a.chunks_exact_mut(8);
        for ((cb, ca), cg) in (&mut bc).zip(&mut ac).zip(&mut gc) {
            for k in 0..8 {
                cg[k] += c1 * cb[k] - c2 * ca[k];
            }
        }
        for ((bh, ah), ga) in
            bc.remainder().iter().zip(ac.remainder().iter()).zip(gc.into_remainder().iter_mut())
        {
            *ga += c1 * bh - c2 * ah;
        }
    }

    /// Single-pass fused Adam row update (same math as
    /// [`super::scalar::adam_update`], per-element fusion reassociates
    /// nothing — only the SIMD lanes do).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn adam_update(
        param: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        g: &[f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        bc1: f32,
        bc2: f32,
        eps: f32,
    ) {
        for ((p, mi), (vi, &gi)) in
            param.iter_mut().zip(m.iter_mut()).zip(v.iter_mut().zip(g.iter()))
        {
            *mi = beta1 * *mi + (1.0 - beta1) * gi;
            *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    /// Fused momentum-SGD update (identical per-element ops to
    /// [`super::scalar::sgd_momentum_update`]; the compiler vectorizes).
    #[inline]
    pub fn sgd_momentum_update(param: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, mu: f32) {
        super::scalar::sgd_momentum_update(param, v, g, lr, mu);
    }

    /// 8-lane unrolled int8→f32 dequantize-dot (per-lane widening, lane
    /// fold, one trailing scale multiply).
    #[inline]
    pub fn dequant_dot(q: &[f32], row: &[i8], scale: f32) -> f32 {
        debug_assert_eq!(q.len(), row.len());
        let mut lanes = [0.0f32; 8];
        let mut qc = q.chunks_exact(8);
        let mut rc = row.chunks_exact(8);
        for (cq, cr) in (&mut qc).zip(&mut rc) {
            for k in 0..8 {
                lanes[k] += cq[k] * cr[k] as f32;
            }
        }
        let mut acc = fold8(lanes);
        for (x, &b) in qc.remainder().iter().zip(rc.remainder().iter()) {
            acc += x * b as f32;
        }
        acc * scale
    }
}

/// AVX2 + FMA intrinsic kernels.
///
/// # Safety
/// Every `#[target_feature]` function here is only reachable through the
/// dispatch tables after `is_x86_feature_detected!("avx2")` and `("fma")`
/// both returned true (see [`detect`]/[`force`]), so the safe wrappers'
/// `unsafe` blocks uphold the ISA precondition by construction.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // the one sanctioned unsafe island: raw SIMD intrinsics
mod avx2 {
    use std::arch::x86_64::*;

    /// Lane-activation masks for tail loads: `TAIL_MASKS[r]` activates the
    /// first `r` lanes (sign bit set ⇒ lane loaded/stored by
    /// `maskload`/`maskstore`, cleared ⇒ lane reads as 0.0 / is skipped).
    const TAIL_MASKS: [[i32; 8]; 8] = [
        [0, 0, 0, 0, 0, 0, 0, 0],
        [-1, 0, 0, 0, 0, 0, 0, 0],
        [-1, -1, 0, 0, 0, 0, 0, 0],
        [-1, -1, -1, 0, 0, 0, 0, 0],
        [-1, -1, -1, -1, 0, 0, 0, 0],
        [-1, -1, -1, -1, -1, 0, 0, 0],
        [-1, -1, -1, -1, -1, -1, 0, 0],
        [-1, -1, -1, -1, -1, -1, -1, 0],
    ];

    /// The `__m256i` mask activating the first `rem < 8` lanes.
    #[inline]
    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        // SAFETY: 32-byte load entirely inside TAIL_MASKS[rem], which exists
        // for every rem < 8 (debug_asserted).
        unsafe {
            debug_assert!(rem < 8);
            _mm256_loadu_si256(TAIL_MASKS[rem].as_ptr().cast())
        }
    }

    /// Horizontal sum of an 8-lane register (pairwise).
    #[inline]
    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        // Register-only lane shuffles and adds (safe under target_feature);
        // no memory access.
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0b01));
        _mm_cvtss_f32(s)
    }

    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // a and b must be equal length (debug_asserted).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_impl(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with full 8-lane loads for i + 8 <= n and masked loads
        // (inactive lanes read as 0.0) for the tail — all inside a/b.
        unsafe {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 16 <= n {
                acc0 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
                acc1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(pa.add(i + 8)),
                    _mm256_loadu_ps(pb.add(i + 8)),
                    acc1,
                );
                i += 16;
            }
            if i + 8 <= n {
                acc0 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
                i += 8;
            }
            if i < n {
                // Masked tail: inactive lanes load as 0.0 and contribute
                // nothing — no per-element scalar loop at odd dims.
                let mask = tail_mask(n - i);
                acc1 = _mm256_fmadd_ps(
                    _mm256_maskload_ps(pa.add(i), mask),
                    _mm256_maskload_ps(pb.add(i), mask),
                    acc1,
                );
            }
            hsum(_mm256_add_ps(acc0, acc1))
        }
    }

    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); equal lengths are debug_asserted by the kernel.
        unsafe { dot_impl(a, b) }
    }

    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // x and y must be equal length (debug_asserted).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn axpy_impl(alpha: f32, x: &[f32], y: &mut [f32]) {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with full 8-lane access for i + 8 <= n and masked
        // load/store of only the live lanes for the tail.
        unsafe {
            debug_assert_eq!(x.len(), y.len());
            let n = x.len();
            let (px, py) = (x.as_ptr(), y.as_mut_ptr());
            let va = _mm256_set1_ps(alpha);
            let mut i = 0usize;
            while i + 8 <= n {
                let r = _mm256_fmadd_ps(va, _mm256_loadu_ps(px.add(i)), _mm256_loadu_ps(py.add(i)));
                _mm256_storeu_ps(py.add(i), r);
                i += 8;
            }
            if i < n {
                // Masked tail: load/compute/store only the live lanes.
                let mask = tail_mask(n - i);
                let r = _mm256_fmadd_ps(
                    va,
                    _mm256_maskload_ps(px.add(i), mask),
                    _mm256_maskload_ps(py.add(i), mask),
                );
                _mm256_maskstore_ps(py.add(i), mask, r);
            }
        }
    }

    #[inline]
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); equal lengths are debug_asserted by the kernel.
        unsafe { axpy_impl(alpha, x, y) }
    }

    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn scale_impl(alpha: f32, y: &mut [f32]) {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with i + 8 <= n, and the scalar tail dereferences single
        // in-bounds elements of y.
        unsafe {
            let n = y.len();
            let py = y.as_mut_ptr();
            let va = _mm256_set1_ps(alpha);
            let mut i = 0usize;
            while i + 8 <= n {
                _mm256_storeu_ps(py.add(i), _mm256_mul_ps(va, _mm256_loadu_ps(py.add(i))));
                i += 8;
            }
            while i < n {
                *py.add(i) *= alpha;
                i += 1;
            }
        }
    }

    #[inline]
    pub fn scale(alpha: f32, y: &mut [f32]) {
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); the kernel never reads past y.len().
        unsafe { scale_impl(alpha, y) }
    }

    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // a and b must be equal length (debug_asserted).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sq_dist_impl(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with i + 8 <= n, and the scalar tail dereferences single
        // in-bounds elements of a/b (equal lengths debug_asserted).
        unsafe {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 8 <= n {
                let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                acc = _mm256_fmadd_ps(d, d, acc);
                i += 8;
            }
            let mut out = hsum(acc);
            while i < n {
                let d = *pa.add(i) - *pb.add(i);
                out = f32::mul_add(d, d, out);
                i += 1;
            }
            out
        }
    }

    #[inline]
    pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); equal lengths are debug_asserted by the kernel.
        unsafe { sq_dist_impl(a, b) }
    }

    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // x and out must be equal length (debug_asserted).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn scale_into_impl(inv: f32, x: &[f32], out: &mut [f32]) {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with i + 8 <= n, and the scalar tail dereferences single
        // in-bounds elements of x/out (equal lengths debug_asserted).
        unsafe {
            debug_assert_eq!(x.len(), out.len());
            let n = x.len();
            let (px, po) = (x.as_ptr(), out.as_mut_ptr());
            let vi = _mm256_set1_ps(inv);
            let mut i = 0usize;
            while i + 8 <= n {
                _mm256_storeu_ps(po.add(i), _mm256_mul_ps(vi, _mm256_loadu_ps(px.add(i))));
                i += 8;
            }
            while i < n {
                *po.add(i) = *px.add(i) * inv;
                i += 1;
            }
        }
    }

    #[inline]
    pub fn normalize_into(x: &[f32], out: &mut [f32]) -> f32 {
        let n = dot(x, x).max(0.0).sqrt();
        let inv = 1.0 / n.max(1e-12);
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); x and out are equal length (debug_asserted by the kernel).
        unsafe { scale_into_impl(inv, x, out) };
        n
    }

    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // a_hat, b_hat and grad_a must be equal length.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn cosine_backward_impl(
        c1: f32,
        c2: f32,
        a_hat: &[f32],
        b_hat: &[f32],
        grad_a: &mut [f32],
    ) {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with i + 8 <= n, and the scalar tail dereferences single
        // in-bounds elements (equal lengths per caller contract).
        unsafe {
            let n = grad_a.len();
            let (pa, pb, pg) = (a_hat.as_ptr(), b_hat.as_ptr(), grad_a.as_mut_ptr());
            let vc1 = _mm256_set1_ps(c1);
            let vc2 = _mm256_set1_ps(c2);
            let mut i = 0usize;
            while i + 8 <= n {
                let mut r =
                    _mm256_fmadd_ps(vc1, _mm256_loadu_ps(pb.add(i)), _mm256_loadu_ps(pg.add(i)));
                r = _mm256_fnmadd_ps(vc2, _mm256_loadu_ps(pa.add(i)), r);
                _mm256_storeu_ps(pg.add(i), r);
                i += 8;
            }
            while i < n {
                *pg.add(i) += c1 * *pb.add(i) - c2 * *pa.add(i);
                i += 1;
            }
        }
    }

    #[inline]
    pub fn cosine_backward_into(
        g: f32,
        s: f32,
        a_hat: &[f32],
        b_hat: &[f32],
        a_norm: f32,
        grad_a: &mut [f32],
    ) {
        debug_assert_eq!(a_hat.len(), grad_a.len());
        debug_assert_eq!(b_hat.len(), grad_a.len());
        let inv = 1.0 / a_norm.max(1e-12);
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); equal lengths asserted above.
        unsafe { cosine_backward_impl(g * inv, g * s * inv, a_hat, b_hat, grad_a) }
    }

    /// Two simultaneous dots of one query against rows `r0`, `r1` —
    /// shares the query loads across both item rows.
    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // Callers must pass r0/r1 at least as long as q.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot2_impl(q: &[f32], r0: &[f32], r1: &[f32]) -> (f32, f32) {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with full 8-lane loads for i + 8 <= n and masked loads for
        // the tail, so every active lane reads inside q/r0/r1.
        unsafe {
            let n = q.len();
            let (pq, p0, p1) = (q.as_ptr(), r0.as_ptr(), r1.as_ptr());
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 8 <= n {
                let vq = _mm256_loadu_ps(pq.add(i));
                a0 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(p0.add(i)), a0);
                a1 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(p1.add(i)), a1);
                i += 8;
            }
            if i < n {
                // Masked tail shared across both rows (odd-dim fix).
                let mask = tail_mask(n - i);
                let vq = _mm256_maskload_ps(pq.add(i), mask);
                a0 = _mm256_fmadd_ps(vq, _mm256_maskload_ps(p0.add(i), mask), a0);
                a1 = _mm256_fmadd_ps(vq, _mm256_maskload_ps(p1.add(i), mask), a1);
            }
            (hsum(a0), hsum(a1))
        }
    }

    /// `out[j] = <q, block[j·d ..]>` for an `M × d` row block, two rows
    /// per pass.
    #[inline]
    pub fn scores_block(q: &[f32], block: &[f32], out: &mut [f32]) {
        let d = q.len();
        let mut j = 0usize;
        while j + 2 <= out.len() {
            // SAFETY: AVX2+FMA verified before this module is dispatched (mod
            // docs); both row slices are exactly d = q.len() elements.
            let (s0, s1) = unsafe {
                dot2_impl(q, &block[j * d..(j + 1) * d], &block[(j + 1) * d..(j + 2) * d])
            };
            out[j] = s0;
            out[j + 1] = s1;
            j += 2;
        }
        if j < out.len() {
            out[j] = dot(q, &block[j * d..(j + 1) * d]);
        }
    }

    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // param, m, v and g must be equal length.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn adam_update_impl(
        param: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        g: &[f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        bc1: f32,
        bc2: f32,
        eps: f32,
    ) {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with i + 8 <= n, and the scalar tail dereferences single
        // in-bounds elements of the four equal-length slices (caller contract).
        unsafe {
            let n = param.len();
            let (pp, pm, pv, pg) = (param.as_mut_ptr(), m.as_mut_ptr(), v.as_mut_ptr(), g.as_ptr());
            let vb1 = _mm256_set1_ps(beta1);
            let vb1c = _mm256_set1_ps(1.0 - beta1);
            let vb2 = _mm256_set1_ps(beta2);
            let vb2c = _mm256_set1_ps(1.0 - beta2);
            let vbc1 = _mm256_set1_ps(bc1);
            let vbc2 = _mm256_set1_ps(bc2);
            let veps = _mm256_set1_ps(eps);
            let vlr = _mm256_set1_ps(lr);
            let mut i = 0usize;
            while i + 8 <= n {
                let gv = _mm256_loadu_ps(pg.add(i));
                let mv = _mm256_fmadd_ps(vb1, _mm256_loadu_ps(pm.add(i)), _mm256_mul_ps(vb1c, gv));
                _mm256_storeu_ps(pm.add(i), mv);
                let g2 = _mm256_mul_ps(gv, gv);
                let vv = _mm256_fmadd_ps(vb2, _mm256_loadu_ps(pv.add(i)), _mm256_mul_ps(vb2c, g2));
                _mm256_storeu_ps(pv.add(i), vv);
                let m_hat = _mm256_div_ps(mv, vbc1);
                let v_hat = _mm256_div_ps(vv, vbc2);
                let denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), veps);
                let step = _mm256_div_ps(_mm256_mul_ps(vlr, m_hat), denom);
                _mm256_storeu_ps(pp.add(i), _mm256_sub_ps(_mm256_loadu_ps(pp.add(i)), step));
                i += 8;
            }
            while i < n {
                let gi = *pg.add(i);
                let mi = beta1 * *pm.add(i) + (1.0 - beta1) * gi;
                *pm.add(i) = mi;
                let vi = beta2 * *pv.add(i) + (1.0 - beta2) * gi * gi;
                *pv.add(i) = vi;
                *pp.add(i) -= lr * (mi / bc1) / ((vi / bc2).sqrt() + eps);
                i += 1;
            }
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn adam_update(
        param: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        g: &[f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        bc1: f32,
        bc2: f32,
        eps: f32,
    ) {
        debug_assert_eq!(param.len(), g.len());
        debug_assert_eq!(m.len(), g.len());
        debug_assert_eq!(v.len(), g.len());
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); equal lengths asserted above.
        unsafe { adam_update_impl(param, m, v, g, lr, beta1, beta2, bc1, bc2, eps) }
    }

    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // param, v and g must be equal length.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sgd_momentum_impl(param: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, mu: f32) {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with i + 8 <= n, and the scalar tail dereferences single
        // in-bounds elements of param/v/g (equal lengths per caller contract).
        unsafe {
            let n = param.len();
            let (pp, pv, pg) = (param.as_mut_ptr(), v.as_mut_ptr(), g.as_ptr());
            let vmu = _mm256_set1_ps(mu);
            let vlr = _mm256_set1_ps(lr);
            let mut i = 0usize;
            while i + 8 <= n {
                let vel =
                    _mm256_fmadd_ps(vmu, _mm256_loadu_ps(pv.add(i)), _mm256_loadu_ps(pg.add(i)));
                _mm256_storeu_ps(pv.add(i), vel);
                _mm256_storeu_ps(pp.add(i), _mm256_fnmadd_ps(vlr, vel, _mm256_loadu_ps(pp.add(i))));
                i += 8;
            }
            while i < n {
                let vel = f32::mul_add(mu, *pv.add(i), *pg.add(i));
                *pv.add(i) = vel;
                *pp.add(i) = f32::mul_add(-lr, vel, *pp.add(i));
                i += 1;
            }
        }
    }

    /// Fused momentum-SGD update: `v ← μ·v + g`, `p ← p − lr·v`.
    #[inline]
    pub fn sgd_momentum_update(param: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, mu: f32) {
        debug_assert_eq!(param.len(), g.len());
        debug_assert_eq!(v.len(), g.len());
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); equal lengths asserted above.
        unsafe { sgd_momentum_impl(param, v, g, lr, mu) }
    }

    /// Widens 8 packed `i8` values (the low 8 bytes of `b`) to one f32
    /// register: sign-extend to i32 lanes, then convert.
    #[inline]
    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn widen8(b: __m128i) -> __m256 {
        // Register-only widening (safe under target_feature); no memory
        // access.
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b))
    }

    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // q and row must be equal length (debug_asserted).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dequant_dot_impl(q: &[f32], row: &[i8]) -> f32 {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offsets bounded by the loop conditions (16- and 8-byte i8 loads at
        // i + 16 <= n / i + 8 <= n), with a scalar sub-8 tail.
        unsafe {
            debug_assert_eq!(q.len(), row.len());
            let n = q.len();
            let (pq, pr) = (q.as_ptr(), row.as_ptr());
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 16 <= n {
                // One 16-byte load covers two 8-lane dequant groups.
                let b = _mm_loadu_si128(pr.add(i).cast());
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), widen8(b), acc0);
                acc1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(pq.add(i + 8)),
                    widen8(_mm_srli_si128::<8>(b)),
                    acc1,
                );
                i += 16;
            }
            if i + 8 <= n {
                let b = _mm_loadl_epi64(pr.add(i).cast());
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), widen8(b), acc0);
                i += 8;
            }
            let mut out = hsum(_mm256_add_ps(acc0, acc1));
            while i < n {
                // Sub-8 tail: i8 lanes have no maskload, so finish scalar.
                out = f32::mul_add(*pq.add(i), *pr.add(i) as f32, out);
                i += 1;
            }
            out
        }
    }

    /// Fused int8→f32 dequantize-dot: `scale · Σ q[j]·row[j]` with the
    /// widening done in-register (no materialized f32 row).
    #[inline]
    pub fn dequant_dot(q: &[f32], row: &[i8], scale: f32) -> f32 {
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); equal lengths are debug_asserted by the kernel.
        unsafe { dequant_dot_impl(q, row) * scale }
    }

    /// Two simultaneous dequant-dots of one query against quantized rows
    /// `r0`, `r1` — shares the query loads across both rows, like
    /// [`dot2_impl`] does for f32.
    // SAFETY: to call, `target_feature` only — sound once AVX2+FMA are
    // verified, which the dispatch tables do before routing here.
    // Callers must pass r0/r1 at least as long as q.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dequant_dot2_impl(q: &[f32], r0: &[i8], r1: &[i8]) -> (f32, f32) {
        // SAFETY: every load/store goes through a slice-derived pointer at
        // offset i with i + 8 <= n (8-byte i8 loads widen the low 8 lanes),
        // and the scalar tail dereferences single in-bounds elements.
        unsafe {
            let n = q.len();
            let (pq, p0, p1) = (q.as_ptr(), r0.as_ptr(), r1.as_ptr());
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 8 <= n {
                let vq = _mm256_loadu_ps(pq.add(i));
                a0 = _mm256_fmadd_ps(vq, widen8(_mm_loadl_epi64(p0.add(i).cast())), a0);
                a1 = _mm256_fmadd_ps(vq, widen8(_mm_loadl_epi64(p1.add(i).cast())), a1);
                i += 8;
            }
            let (mut s0, mut s1) = (hsum(a0), hsum(a1));
            while i < n {
                let x = *pq.add(i);
                s0 = f32::mul_add(x, *p0.add(i) as f32, s0);
                s1 = f32::mul_add(x, *p1.add(i) as f32, s1);
                i += 1;
            }
            (s0, s1)
        }
    }

    /// `out[j] = scales[j] · <q, block_i8[j·d ..]>` for an `M × d`
    /// quantized row block, two rows per pass.
    #[inline]
    pub fn scores_block_i8(q: &[f32], block: &[i8], scales: &[f32], out: &mut [f32]) {
        let d = q.len();
        let mut j = 0usize;
        while j + 2 <= out.len() {
            // SAFETY: AVX2+FMA verified before this module is dispatched (mod
            // docs); both row slices are exactly d = q.len() elements.
            let (s0, s1) = unsafe {
                dequant_dot2_impl(q, &block[j * d..(j + 1) * d], &block[(j + 1) * d..(j + 2) * d])
            };
            out[j] = s0 * scales[j];
            out[j + 1] = s1 * scales[j + 1];
            j += 2;
        }
        if j < out.len() {
            out[j] = dequant_dot(q, &block[j * d..(j + 1) * d], scales[j]);
        }
    }

    /// `out[j] = scales[ids[j]] · <q, table[ids[j]·d ..]>` for gathered
    /// rows of an `n × d` quantized table — one target-feature region
    /// covers the whole candidate list, so the per-row dispatch + call
    /// overhead of looping [`dequant_dot`] from safe code disappears and
    /// each row pair shares the query loads.
    // SAFETY: to call, AVX2+FMA must be enabled; `out` must be at least
    // `ids` long and every id must index a full row of `table`/`scales`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn scores_gather_i8_impl(
        q: &[f32],
        table: &[i8],
        scales: &[f32],
        ids: &[u32],
        out: &mut [f32],
    ) {
        // SAFETY: the row slicing below is ordinary safe indexing (panics on
        // a bad id rather than reading out of bounds); the only unsafe ops are
        // the callee kernels, whose equal-length contracts hold because every
        // row slice is exactly d = q.len() elements.
        unsafe {
            let d = q.len();
            let mut j = 0usize;
            while j + 2 <= ids.len() {
                let (i0, i1) = (ids[j] as usize, ids[j + 1] as usize);
                let (s0, s1) = dequant_dot2_impl(
                    q,
                    &table[i0 * d..(i0 + 1) * d],
                    &table[i1 * d..(i1 + 1) * d],
                );
                out[j] = s0 * scales[i0];
                out[j + 1] = s1 * scales[i1];
                j += 2;
            }
            if j < ids.len() {
                let i = ids[j] as usize;
                out[j] = dequant_dot_impl(q, &table[i * d..(i + 1) * d]) * scales[i];
            }
        }
    }

    /// Safe wrapper for the gathered int8 scorer (AVX2+FMA verified by the
    /// dispatch tables before this is reachable).
    #[inline]
    pub fn scores_gather_i8(q: &[f32], table: &[i8], scales: &[f32], ids: &[u32], out: &mut [f32]) {
        // SAFETY: AVX2+FMA verified before this module is dispatched (mod
        // docs); each gathered row slice has length d = q.len() by construction.
        unsafe { scores_gather_i8_impl(q, table, scales, ids, out) }
    }
}

// Non-x86 targets fall back to the portable kernels when the enum says
// Avx2Fma (detect()/force() never hand that out off-x86, but the match
// arms still need a body).
#[cfg(target_arch = "x86_64")]
use avx2 as accel;
#[cfg(not(target_arch = "x86_64"))]
use portable as accel;

// ---------------------------------------------------------------------------
// Dispatched element kernels (`*_with` takes an explicit level; the short
// name reads the cached process level).
// ---------------------------------------------------------------------------

/// Dot product at an explicit dispatch level.
#[inline]
pub fn dot_with(lv: SimdLevel, a: &[f32], b: &[f32]) -> f32 {
    match lv {
        SimdLevel::Scalar => scalar::dot(a, b),
        SimdLevel::Portable => portable::dot(a, b),
        SimdLevel::Avx2Fma => accel::dot(a, b),
    }
}

/// Dot product at the process dispatch level.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(active(), a, b)
}

/// `y += alpha * x` at an explicit dispatch level.
#[inline]
pub fn axpy_with(lv: SimdLevel, alpha: f32, x: &[f32], y: &mut [f32]) {
    match lv {
        SimdLevel::Scalar => scalar::axpy(alpha, x, y),
        SimdLevel::Portable => portable::axpy(alpha, x, y),
        SimdLevel::Avx2Fma => accel::axpy(alpha, x, y),
    }
}

/// `y += alpha * x` at the process dispatch level.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_with(active(), alpha, x, y)
}

/// `y *= alpha` at an explicit dispatch level.
#[inline]
pub fn scale_with(lv: SimdLevel, alpha: f32, y: &mut [f32]) {
    match lv {
        SimdLevel::Scalar => scalar::scale(alpha, y),
        SimdLevel::Portable => portable::scale(alpha, y),
        SimdLevel::Avx2Fma => accel::scale(alpha, y),
    }
}

/// `y *= alpha` at the process dispatch level.
#[inline]
pub fn scale(alpha: f32, y: &mut [f32]) {
    scale_with(active(), alpha, y)
}

/// Squared Euclidean distance at an explicit dispatch level.
#[inline]
pub fn sq_dist_with(lv: SimdLevel, a: &[f32], b: &[f32]) -> f32 {
    match lv {
        SimdLevel::Scalar => scalar::sq_dist(a, b),
        SimdLevel::Portable => portable::sq_dist(a, b),
        SimdLevel::Avx2Fma => accel::sq_dist(a, b),
    }
}

/// Squared Euclidean distance at the process dispatch level.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    sq_dist_with(active(), a, b)
}

/// `out = x / max(||x||, eps)` at an explicit level, returning `||x||`.
#[inline]
pub fn normalize_into_with(lv: SimdLevel, x: &[f32], out: &mut [f32]) -> f32 {
    match lv {
        SimdLevel::Scalar => scalar::normalize_into(x, out),
        SimdLevel::Portable => portable::normalize_into(x, out),
        SimdLevel::Avx2Fma => accel::normalize_into(x, out),
    }
}

/// `out = x / max(||x||, eps)` at the process level, returning `||x||`.
#[inline]
pub fn normalize_into(x: &[f32], out: &mut [f32]) -> f32 {
    normalize_into_with(active(), x, out)
}

/// Cosine backward at an explicit dispatch level (see
/// [`crate::kernels::cosine_backward_into`] for the math).
#[inline]
pub fn cosine_backward_into_with(
    lv: SimdLevel,
    g: f32,
    s: f32,
    a_hat: &[f32],
    b_hat: &[f32],
    a_norm: f32,
    grad_a: &mut [f32],
) {
    match lv {
        SimdLevel::Scalar => scalar::cosine_backward_into(g, s, a_hat, b_hat, a_norm, grad_a),
        SimdLevel::Portable => portable::cosine_backward_into(g, s, a_hat, b_hat, a_norm, grad_a),
        SimdLevel::Avx2Fma => accel::cosine_backward_into(g, s, a_hat, b_hat, a_norm, grad_a),
    }
}

/// Cosine backward at the process dispatch level.
#[inline]
pub fn cosine_backward_into(
    g: f32,
    s: f32,
    a_hat: &[f32],
    b_hat: &[f32],
    a_norm: f32,
    grad_a: &mut [f32],
) {
    cosine_backward_into_with(active(), g, s, a_hat, b_hat, a_norm, grad_a)
}

/// Fused Adam row update at an explicit dispatch level: updates both
/// moment rows in place and applies the bias-corrected step to `param`.
/// At [`SimdLevel::Scalar`] this is bit-identical to the historical
/// three-loop `Adam::update_row`.
#[allow(clippy::too_many_arguments)] // mirrors the Adam hyperparameter set
#[inline]
pub fn adam_update_with(
    lv: SimdLevel,
    param: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    bc1: f32,
    bc2: f32,
    eps: f32,
) {
    match lv {
        SimdLevel::Scalar => scalar::adam_update(param, m, v, g, lr, beta1, beta2, bc1, bc2, eps),
        SimdLevel::Portable => {
            portable::adam_update(param, m, v, g, lr, beta1, beta2, bc1, bc2, eps)
        }
        SimdLevel::Avx2Fma => accel::adam_update(param, m, v, g, lr, beta1, beta2, bc1, bc2, eps),
    }
}

/// Fused Adam row update at the process dispatch level.
#[allow(clippy::too_many_arguments)] // mirrors the Adam hyperparameter set
#[inline]
pub fn adam_update(
    param: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    bc1: f32,
    bc2: f32,
    eps: f32,
) {
    adam_update_with(active(), param, m, v, g, lr, beta1, beta2, bc1, bc2, eps)
}

/// Fused momentum-SGD update at an explicit dispatch level:
/// `v ← μ·v + g`, `p ← p − lr·v` in one pass. At
/// [`SimdLevel::Scalar`] this is bit-identical to the historical fused
/// `Sgd::step_dense` loop.
#[inline]
pub fn sgd_momentum_update_with(
    lv: SimdLevel,
    param: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    mu: f32,
) {
    match lv {
        SimdLevel::Scalar => scalar::sgd_momentum_update(param, v, g, lr, mu),
        SimdLevel::Portable => portable::sgd_momentum_update(param, v, g, lr, mu),
        SimdLevel::Avx2Fma => accel::sgd_momentum_update(param, v, g, lr, mu),
    }
}

/// Fused momentum-SGD update at the process dispatch level.
#[inline]
pub fn sgd_momentum_update(param: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, mu: f32) {
    sgd_momentum_update_with(active(), param, v, g, lr, mu)
}

/// Fused int8→f32 dequantize-dot at an explicit dispatch level:
/// `scale · Σ q[j]·row[j]`, widening the quantized row in the accumulation
/// loop — quantized score tables are never materialized as f32.
#[inline]
pub fn dequant_dot_with(lv: SimdLevel, q: &[f32], row: &[i8], scale: f32) -> f32 {
    match lv {
        SimdLevel::Scalar => scalar::dequant_dot(q, row, scale),
        SimdLevel::Portable => portable::dequant_dot(q, row, scale),
        SimdLevel::Avx2Fma => accel::dequant_dot(q, row, scale),
    }
}

/// Fused int8→f32 dequantize-dot at the process dispatch level.
#[inline]
pub fn dequant_dot(q: &[f32], row: &[i8], scale: f32) -> f32 {
    dequant_dot_with(active(), q, row, scale)
}

// ---------------------------------------------------------------------------
// Blocked kernels: dispatch resolved once per call, loops run on the
// level-specific implementations.
// ---------------------------------------------------------------------------

/// L2-normalizes every row of `src` into `dst`, writing the raw row norms
/// into `norms`.
///
/// # Panics
/// Panics if shapes disagree or `norms.len() != src.rows()`.
pub fn normalize_rows_into(src: &Matrix, dst: &mut Matrix, norms: &mut [f32]) {
    assert_eq!(src.shape(), dst.shape(), "normalize_rows_into shape mismatch");
    assert_eq!(norms.len(), src.rows(), "normalize_rows_into norms length mismatch");
    let lv = active();
    for (r, n) in norms.iter_mut().enumerate() {
        *n = normalize_into_with(lv, src.row(r), dst.row_mut(r));
    }
}

/// How many gather rows ahead [`normalize_gather_into`] prefetches. Far
/// enough to cover DRAM latency at catalogue scale (a ~250 ns miss vs
/// ~30 ns of work per row at d = 64), near enough not to thrash L1.
#[cfg(target_arch = "x86_64")]
const GATHER_PREFETCH_AHEAD: usize = 8;

/// Issues T0 prefetches for every cache line of `src.row(id)`.
///
/// Gathered negative rows are random accesses into a catalogue-scale item
/// table; prefetching a few ids ahead overlaps their DRAM misses with the
/// current row's normalize work. A prefetch is a pure hint (no memory is
/// dereferenced, faulting addresses are ignored by the hardware), so this
/// is safe for any in-bounds row.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // _mm_prefetch is an intrinsic hint; see above
#[inline]
fn prefetch_row(src: &Matrix, id: u32) {
    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    let row = src.row(id as usize);
    let bytes = std::mem::size_of_val(row);
    let base = row.as_ptr().cast::<i8>();
    let mut off = 0usize;
    while off < bytes {
        // SAFETY: `base + off` stays within the row's allocation.
        unsafe { _mm_prefetch::<_MM_HINT_T0>(base.add(off)) };
        off += 64;
    }
}

/// Gathers rows `ids` of `src` and L2-normalizes each into the contiguous
/// `ids.len() × d` block `dst`, writing raw norms into `norms`.
///
/// This is the batch form the trainer uses for negative-item blocks: one
/// dispatch, no intermediate gather copy, and the upcoming rows are
/// software-prefetched so catalogue-scale item tables don't stall the
/// normalize loop on DRAM (see `normalize_gather_*` in the kernels bench).
///
/// # Panics
/// Panics if `dst`/`norms` lengths disagree with `ids.len()` and
/// `src.cols()`.
pub fn normalize_gather_into(src: &Matrix, ids: &[u32], dst: &mut [f32], norms: &mut [f32]) {
    let d = src.cols();
    assert_eq!(dst.len(), ids.len() * d, "normalize_gather_into block size mismatch");
    assert_eq!(norms.len(), ids.len(), "normalize_gather_into norms length mismatch");
    let lv = active();
    #[cfg(target_arch = "x86_64")]
    for &id in ids.iter().take(GATHER_PREFETCH_AHEAD) {
        prefetch_row(src, id);
    }
    for (j, ((&id, out), n)) in
        ids.iter().zip(dst.chunks_exact_mut(d)).zip(norms.iter_mut()).enumerate()
    {
        #[cfg(target_arch = "x86_64")]
        if let Some(&ahead) = ids.get(j + GATHER_PREFETCH_AHEAD) {
            prefetch_row(src, ahead);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = j;
        *n = normalize_into_with(lv, src.row(id as usize), out);
    }
}

/// Scores one query row against an `M × d` row block (a tall-skinny
/// matvec): `out[j] = <q, block[j]>`.
///
/// The AVX2 path processes two block rows per pass, sharing the query
/// loads; scalar dispatch reduces to the historical per-row dot loop.
///
/// # Panics
/// Panics if `block.len() != out.len() * q.len()`.
pub fn scores_block(q: &[f32], block: &[f32], out: &mut [f32]) {
    let d = q.len();
    assert_eq!(block.len(), out.len() * d, "scores_block shape mismatch");
    match active() {
        SimdLevel::Scalar => {
            for (o, row) in out.iter_mut().zip(block.chunks_exact(d)) {
                *o = scalar::dot(q, row);
            }
        }
        SimdLevel::Portable => {
            for (o, row) in out.iter_mut().zip(block.chunks_exact(d)) {
                *o = portable::dot(q, row);
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => avx2::scores_block(q, block, out),
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2Fma => {
            for (o, row) in out.iter_mut().zip(block.chunks_exact(d)) {
                *o = portable::dot(q, row);
            }
        }
    }
}

/// Scores one query row against an `M × d` *quantized* row block:
/// `out[j] = scales[j] · <q, block[j]>` — the int8 twin of
/// [`scores_block`], and the full-scan hot path for int8 artifacts.
///
/// The AVX2 path widens two quantized rows per pass in-register, sharing
/// the query loads; scalar dispatch reduces to a per-row
/// [`scalar::dequant_dot`] loop.
///
/// # Panics
/// Panics if `block.len() != out.len() * q.len()` or
/// `scales.len() != out.len()`.
pub fn scores_block_i8(q: &[f32], block: &[i8], scales: &[f32], out: &mut [f32]) {
    let d = q.len();
    assert_eq!(block.len(), out.len() * d, "scores_block_i8 shape mismatch");
    assert_eq!(scales.len(), out.len(), "scores_block_i8 scales length mismatch");
    match active() {
        SimdLevel::Scalar => {
            for ((o, row), &s) in out.iter_mut().zip(block.chunks_exact(d)).zip(scales.iter()) {
                *o = scalar::dequant_dot(q, row, s);
            }
        }
        SimdLevel::Portable => {
            for ((o, row), &s) in out.iter_mut().zip(block.chunks_exact(d)).zip(scales.iter()) {
                *o = portable::dequant_dot(q, row, s);
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => avx2::scores_block_i8(q, block, scales, out),
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2Fma => {
            for ((o, row), &s) in out.iter_mut().zip(block.chunks_exact(d)).zip(scales.iter()) {
                *o = portable::dequant_dot(q, row, s);
            }
        }
    }
}

/// Scores one query row against *gathered* rows of an `n × d` quantized
/// table: `out[j] = scales[ids[j]] · <q, table_row(ids[j])>` — the IVF
/// shortlist-rescoring hot path. Unlike looping [`dequant_dot`], the whole
/// candidate list is scored inside one dispatch (and, on AVX2, one
/// target-feature region with two rows per pass sharing the query loads).
///
/// # Panics
/// Panics if `table.len() != scales.len() * q.len()`,
/// `out.len() != ids.len()`, or any id indexes past the table.
pub fn scores_gather_i8(q: &[f32], table: &[i8], scales: &[f32], ids: &[u32], out: &mut [f32]) {
    let d = q.len();
    assert_eq!(table.len(), scales.len() * d, "scores_gather_i8 table shape mismatch");
    assert_eq!(out.len(), ids.len(), "scores_gather_i8 output length mismatch");
    match active() {
        SimdLevel::Scalar => {
            for (o, &i) in out.iter_mut().zip(ids.iter()) {
                let i = i as usize;
                *o = scalar::dequant_dot(q, &table[i * d..(i + 1) * d], scales[i]);
            }
        }
        SimdLevel::Portable => {
            for (o, &i) in out.iter_mut().zip(ids.iter()) {
                let i = i as usize;
                *o = portable::dequant_dot(q, &table[i * d..(i + 1) * d], scales[i]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => avx2::scores_gather_i8(q, table, scales, ids, out),
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2Fma => {
            for (o, &i) in out.iter_mut().zip(ids.iter()) {
                let i = i as usize;
                *o = portable::dequant_dot(q, &table[i * d..(i + 1) * d], scales[i]);
            }
        }
    }
}

/// Backward of a block of cosine scores with respect to the shared query
/// vector: accumulates `Σ_j g_j · ∂cos(q, b_j)/∂q` into `grad_q`.
///
/// `block_hat` holds the `M` unit item rows contiguously; `gs`/`ss` are
/// the per-row score gradients and scores. Scalar dispatch replays the
/// historical per-negative `cosine_backward_into` sequence (including the
/// `g == 0` skip) bit for bit; SIMD levels use the fused form
/// `grad_q += (Σ_j g_j·b̂_j − (Σ_j g_j·s_j)·q̂) / ||q||`.
///
/// # Panics
/// Panics if slice lengths disagree.
pub fn cosine_backward_block(
    gs: &[f32],
    ss: &[f32],
    q_hat: &[f32],
    q_norm: f32,
    block_hat: &[f32],
    grad_q: &mut [f32],
) {
    let d = q_hat.len();
    assert_eq!(gs.len(), ss.len(), "cosine_backward_block grad/score length mismatch");
    assert_eq!(block_hat.len(), gs.len() * d, "cosine_backward_block block size mismatch");
    assert_eq!(grad_q.len(), d, "cosine_backward_block output length mismatch");
    let lv = active();
    if lv == SimdLevel::Scalar {
        for ((&g, &s), row) in gs.iter().zip(ss.iter()).zip(block_hat.chunks_exact(d)) {
            if g == 0.0 {
                continue;
            }
            scalar::cosine_backward_into(g, s, q_hat, row, q_norm, grad_q);
        }
        return;
    }
    let inv = 1.0 / q_norm.max(1e-12);
    let mut coef = 0.0f32;
    for ((&g, &s), row) in gs.iter().zip(ss.iter()).zip(block_hat.chunks_exact(d)) {
        if g == 0.0 {
            continue;
        }
        coef += g * s;
        axpy_with(lv, g * inv, row, grad_q);
    }
    if coef != 0.0 {
        axpy_with(lv, -coef * inv, q_hat, grad_q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Levels to test on this machine (scalar is the reference).
    fn simd_levels() -> Vec<SimdLevel> {
        let mut lv = vec![SimdLevel::Portable];
        if avx2_available() {
            lv.push(SimdLevel::Avx2Fma);
        }
        lv
    }

    fn rel_close(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    fn vec_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec(-3.0f32..3.0, 0..max_len)
    }

    #[test]
    fn parse_level_accepts_known_names() {
        assert_eq!(parse_level("scalar"), Some(SimdLevel::Scalar));
        assert_eq!(parse_level("portable"), Some(SimdLevel::Portable));
        assert_eq!(parse_level("avx2"), Some(SimdLevel::Avx2Fma));
        assert_eq!(parse_level("bogus"), None);
    }

    #[test]
    fn active_returns_a_level_and_is_stable() {
        let a = active();
        assert_eq!(a, active());
        // force() of the already-cached level is a no-op Ok; a different
        // level reports the cached one.
        assert!(force(a).is_ok());
    }

    /// The `scalar` module must be bit-identical to the pre-SIMD kernel
    /// bodies (inlined here, frozen at their pre-refactor form).
    #[test]
    fn scalar_is_bit_identical_to_legacy_loops() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.7).sin() * 2.0).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 1.3).cos() * 1.5).collect();

        let legacy_dot = {
            let mut acc = 0.0f32;
            for (x, y) in a.iter().zip(b.iter()) {
                acc += x * y;
            }
            acc
        };
        assert_eq!(scalar::dot(&a, &b).to_bits(), legacy_dot.to_bits());

        let legacy_sq = {
            let mut acc = 0.0f32;
            for (x, y) in a.iter().zip(b.iter()) {
                let d = x - y;
                acc += d * d;
            }
            acc
        };
        assert_eq!(scalar::sq_dist(&a, &b).to_bits(), legacy_sq.to_bits());

        let mut y1 = b.clone();
        let mut y2 = b.clone();
        scalar::axpy(0.37, &a, &mut y1);
        for (yi, xi) in y2.iter_mut().zip(a.iter()) {
            *yi += 0.37 * xi;
        }
        assert_eq!(
            y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let mut o1 = vec![0.0f32; a.len()];
        let n1 = scalar::normalize_into(&a, &mut o1);
        let legacy_norm = legacy_dot_self(&a).max(0.0).sqrt();
        let mut o2 = vec![0.0f32; a.len()];
        let inv = 1.0 / legacy_norm.max(1e-12);
        for (o, xi) in o2.iter_mut().zip(a.iter()) {
            *o = xi * inv;
        }
        assert_eq!(n1.to_bits(), legacy_norm.to_bits());
        assert_eq!(
            o1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            o2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let mut g1 = vec![0.1f32; a.len()];
        let mut g2 = g1.clone();
        scalar::cosine_backward_into(0.3, 0.4, &o1, &o2, legacy_norm, &mut g1);
        let inv = 1.0 / legacy_norm.max(1e-12);
        for ((ga, &bh), &ah) in g2.iter_mut().zip(o2.iter()).zip(o1.iter()) {
            *ga += 0.3 * (bh - 0.4 * ah) * inv;
        }
        assert_eq!(
            g1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            g2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    fn legacy_dot_self(a: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for x in a {
            acc += x * x;
        }
        acc
    }

    proptest! {
        /// Every SIMD level matches the scalar reference within 1e-4
        /// relative tolerance across random lengths including
        /// non-multiple-of-8 tails.
        #[test]
        fn prop_dot_matches_scalar(a in vec_strategy(130), b in vec_strategy(130)) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let want = scalar::dot(a, b);
            for lv in simd_levels() {
                prop_assert!(rel_close(dot_with(lv, a, b), want, 1e-4), "{lv}");
            }
        }

        #[test]
        fn prop_sq_dist_matches_scalar(a in vec_strategy(130), b in vec_strategy(130)) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let want = scalar::sq_dist(a, b);
            for lv in simd_levels() {
                prop_assert!(rel_close(sq_dist_with(lv, a, b), want, 1e-4), "{lv}");
            }
        }

        #[test]
        fn prop_axpy_matches_scalar(alpha in -2.0f32..2.0, x in vec_strategy(130), y0 in vec_strategy(130)) {
            let n = x.len().min(y0.len());
            let (x, y0) = (&x[..n], &y0[..n]);
            let mut want = y0.to_vec();
            scalar::axpy(alpha, x, &mut want);
            for lv in simd_levels() {
                let mut got = y0.to_vec();
                axpy_with(lv, alpha, x, &mut got);
                for (g, w) in got.iter().zip(want.iter()) {
                    prop_assert!(rel_close(*g, *w, 1e-4), "{lv}: {g} vs {w}");
                }
            }
        }

        #[test]
        fn prop_scale_matches_scalar(alpha in -2.0f32..2.0, y0 in vec_strategy(130)) {
            let mut want = y0.clone();
            scalar::scale(alpha, &mut want);
            for lv in simd_levels() {
                let mut got = y0.clone();
                scale_with(lv, alpha, &mut got);
                for (g, w) in got.iter().zip(want.iter()) {
                    prop_assert!(rel_close(*g, *w, 1e-4), "{lv}");
                }
            }
        }

        #[test]
        fn prop_normalize_matches_scalar(x in vec_strategy(130)) {
            let mut want = vec![0.0f32; x.len()];
            let wn = scalar::normalize_into(&x, &mut want);
            for lv in simd_levels() {
                let mut got = vec![0.0f32; x.len()];
                let gn = normalize_into_with(lv, &x, &mut got);
                prop_assert!(rel_close(gn, wn, 1e-4), "{lv} norm");
                for (g, w) in got.iter().zip(want.iter()) {
                    prop_assert!(rel_close(*g, *w, 1e-4), "{lv}");
                }
            }
        }

        #[test]
        fn prop_cosine_backward_matches_scalar(
            g in -2.0f32..2.0,
            s in -1.0f32..1.0,
            a in vec_strategy(130),
            b in vec_strategy(130),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let norm = 0.8f32;
            let mut want = vec![0.05f32; n];
            scalar::cosine_backward_into(g, s, a, b, norm, &mut want);
            for lv in simd_levels() {
                let mut got = vec![0.05f32; n];
                cosine_backward_into_with(lv, g, s, a, b, norm, &mut got);
                for (x, w) in got.iter().zip(want.iter()) {
                    prop_assert!(rel_close(*x, *w, 1e-4), "{lv}");
                }
            }
        }

        #[test]
        fn prop_adam_update_matches_scalar(
            p0 in vec_strategy(70),
            seed in 0u64..1000,
        ) {
            let n = p0.len();
            let g: Vec<f32> = (0..n).map(|i| ((i as u64 * 31 + seed) % 17) as f32 * 0.1 - 0.8).collect();
            let m0: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).sin() * 0.3).collect();
            let v0: Vec<f32> = (0..n).map(|i| (i as f32 * 0.07).cos().abs() * 0.2).collect();
            let (mut pw, mut mw, mut vw) = (p0.clone(), m0.clone(), v0.clone());
            scalar::adam_update(&mut pw, &mut mw, &mut vw, &g, 0.01, 0.9, 0.999, 0.19, 0.002, 1e-8);
            for lv in simd_levels() {
                let (mut pg, mut mg, mut vg) = (p0.clone(), m0.clone(), v0.clone());
                adam_update_with(lv, &mut pg, &mut mg, &mut vg, &g, 0.01, 0.9, 0.999, 0.19, 0.002, 1e-8);
                for (x, w) in pg.iter().zip(pw.iter()) {
                    prop_assert!(rel_close(*x, *w, 1e-4), "{lv}");
                }
                for (x, w) in mg.iter().zip(mw.iter()) {
                    prop_assert!(rel_close(*x, *w, 1e-4), "{lv} m");
                }
                for (x, w) in vg.iter().zip(vw.iter()) {
                    prop_assert!(rel_close(*x, *w, 1e-4), "{lv} v");
                }
            }
        }

        /// Blocked kernels agree with per-element scalar loops across
        /// random block shapes (including d not a multiple of 8 and odd M).
        #[test]
        fn prop_scores_block_matches_scalar(d in 1usize..40, m in 0usize..9, seed in 0u64..100) {
            let q: Vec<f32> = (0..d).map(|i| ((i as u64 + seed) % 13) as f32 * 0.2 - 1.0).collect();
            let block: Vec<f32> = (0..m * d).map(|i| ((i as u64 * 7 + seed) % 11) as f32 * 0.3 - 1.4).collect();
            let mut want = vec![0.0f32; m];
            for (o, row) in want.iter_mut().zip(block.chunks_exact(d)) {
                *o = scalar::dot(&q, row);
            }
            let mut got = vec![0.0f32; m];
            scores_block(&q, &block, &mut got);
            for (x, w) in got.iter().zip(want.iter()) {
                prop_assert!(rel_close(*x, *w, 1e-4));
            }
        }

        #[test]
        fn prop_cosine_backward_block_matches_scalar(d in 1usize..40, m in 0usize..9, seed in 0u64..100) {
            let q: Vec<f32> = (0..d).map(|i| ((i as u64 + seed) % 13) as f32 * 0.2 - 1.0).collect();
            let block: Vec<f32> = (0..m * d).map(|i| ((i as u64 * 7 + seed) % 11) as f32 * 0.3 - 1.4).collect();
            // Include zero gradients to exercise the skip path.
            let gs: Vec<f32> = (0..m).map(|j| if j % 3 == 0 { 0.0 } else { 0.1 * j as f32 - 0.2 }).collect();
            let ss: Vec<f32> = (0..m).map(|j| 0.05 * j as f32 - 0.1).collect();
            let qn = 0.9f32;
            let mut want = vec![0.02f32; d];
            for ((&g, &s), row) in gs.iter().zip(ss.iter()).zip(block.chunks_exact(d)) {
                if g == 0.0 { continue; }
                scalar::cosine_backward_into(g, s, &q, row, qn, &mut want);
            }
            let mut got = vec![0.02f32; d];
            cosine_backward_block(&gs, &ss, &q, qn, &block, &mut got);
            for (x, w) in got.iter().zip(want.iter()) {
                prop_assert!(rel_close(*x, *w, 1e-4));
            }
        }

        /// Every dispatch level's fused dequant-dot matches the scalar
        /// reference within tolerance, and the whole int8 pipeline
        /// (quantized row × f32 query) matches the plain f32 dot of the
        /// dequantized row — across non-multiple-of-8 tails.
        #[test]
        fn prop_dequant_dot_matches_scalar_and_f32(
            q in vec_strategy(130),
            bytes in proptest::collection::vec(-127i8..=127, 0..130),
            scale in 0.0f32..0.1,
        ) {
            let n = q.len().min(bytes.len());
            let (q, row) = (&q[..n], &bytes[..n]);
            let want = scalar::dequant_dot(q, row, scale);
            for lv in simd_levels() {
                prop_assert!(rel_close(dequant_dot_with(lv, q, row, scale), want, 1e-4), "{lv}");
            }
            // The fused kernel is the dot of the dequantized row.
            let deq: Vec<f32> = row.iter().map(|&b| b as f32 * scale).collect();
            let via_f32 = scalar::dot(q, &deq);
            prop_assert!(rel_close(want, via_f32, 1e-4), "fused {want} vs dequantized {via_f32}");
        }

        /// Blocked int8 scoring agrees with per-row scalar dequant-dots
        /// across random block shapes (odd d, odd M — the two-row AVX2
        /// microkernel's single-row remainder path included).
        #[test]
        fn prop_scores_block_i8_matches_scalar(d in 1usize..40, m in 0usize..9, seed in 0u64..100) {
            let q: Vec<f32> = (0..d).map(|i| ((i as u64 + seed) % 13) as f32 * 0.2 - 1.0).collect();
            let block: Vec<i8> = (0..m * d)
                .map(|i| (((i as u64 * 7 + seed) % 255) as i64 - 127) as i8)
                .collect();
            let scales: Vec<f32> = (0..m).map(|j| 0.002 + 0.001 * j as f32).collect();
            let mut want = vec![0.0f32; m];
            for ((o, row), &s) in want.iter_mut().zip(block.chunks_exact(d)).zip(scales.iter()) {
                *o = scalar::dequant_dot(&q, row, s);
            }
            let mut got = vec![0.0f32; m];
            scores_block_i8(&q, &block, &scales, &mut got);
            for (x, w) in got.iter().zip(want.iter()) {
                prop_assert!(rel_close(*x, *w, 1e-4));
            }
        }

        /// Gathered int8 scoring agrees with per-row scalar dequant-dots
        /// for arbitrary (repeating, unsorted) id lists — odd candidate
        /// counts exercise the AVX2 single-row remainder.
        #[test]
        fn prop_scores_gather_i8_matches_scalar(
            d in 1usize..40,
            n in 1usize..9,
            picks in proptest::collection::vec(0usize..9, 0..20),
            seed in 0u64..100,
        ) {
            let q: Vec<f32> = (0..d).map(|i| ((i as u64 + seed) % 13) as f32 * 0.2 - 1.0).collect();
            let table: Vec<i8> = (0..n * d)
                .map(|i| (((i as u64 * 11 + seed) % 255) as i64 - 127) as i8)
                .collect();
            let scales: Vec<f32> = (0..n).map(|j| 0.002 + 0.001 * j as f32).collect();
            let ids: Vec<u32> = picks.iter().map(|&p| (p % n) as u32).collect();
            let mut want = vec![0.0f32; ids.len()];
            for (o, &i) in want.iter_mut().zip(ids.iter()) {
                let i = i as usize;
                *o = scalar::dequant_dot(&q, &table[i * d..(i + 1) * d], scales[i]);
            }
            let mut got = vec![0.0f32; ids.len()];
            scores_gather_i8(&q, &table, &scales, &ids, &mut got);
            for (x, w) in got.iter().zip(want.iter()) {
                prop_assert!(rel_close(*x, *w, 1e-4));
            }
        }

        #[test]
        fn prop_sgd_momentum_matches_scalar(
            p0 in vec_strategy(70),
            lr in 0.001f32..0.5,
            mu in 0.0f32..0.99,
        ) {
            let n = p0.len();
            let g: Vec<f32> = (0..n).map(|i| (i as f32 * 0.17).sin()).collect();
            let v0: Vec<f32> = (0..n).map(|i| (i as f32 * 0.23).cos() * 0.5).collect();
            let (mut pw, mut vw) = (p0.clone(), v0.clone());
            scalar::sgd_momentum_update(&mut pw, &mut vw, &g, lr, mu);
            for lv in simd_levels() {
                let (mut pg, mut vg) = (p0.clone(), v0.clone());
                sgd_momentum_update_with(lv, &mut pg, &mut vg, &g, lr, mu);
                for (x, w) in pg.iter().zip(pw.iter()) {
                    prop_assert!(rel_close(*x, *w, 1e-4), "{lv}");
                }
                for (x, w) in vg.iter().zip(vw.iter()) {
                    prop_assert!(rel_close(*x, *w, 1e-4), "{lv} v");
                }
            }
        }
    }

    proptest! {
        /// Odd dims straddling the 8-lane boundary (d = 13/15) exercise
        /// the AVX2 masked tail loads in `dot`, `axpy` and the two-row
        /// `scores_block` microkernel: every level must agree with scalar.
        #[test]
        fn prop_masked_tails_at_d13_d15(seed in 0u64..300) {
            for d in [13usize, 15] {
                let a: Vec<f32> = (0..d)
                    .map(|i| (((i as u64 * 31 + seed * 7) % 23) as f32) * 0.21 - 2.3)
                    .collect();
                let b: Vec<f32> = (0..d)
                    .map(|i| (((i as u64 * 17 + seed * 13) % 19) as f32) * 0.27 - 2.5)
                    .collect();
                let want_dot = scalar::dot(&a, &b);
                let mut want_axpy = b.clone();
                scalar::axpy(0.37, &a, &mut want_axpy);
                for lv in simd_levels() {
                    prop_assert!(rel_close(dot_with(lv, &a, &b), want_dot, 1e-4), "{lv} dot d={d}");
                    let mut got = b.clone();
                    axpy_with(lv, 0.37, &a, &mut got);
                    for (g, w) in got.iter().zip(want_axpy.iter()) {
                        prop_assert!(rel_close(*g, *w, 1e-4), "{lv} axpy d={d}: {g} vs {w}");
                    }
                }
                // scores_block runs the dispatched level (covers the AVX2
                // dot2 microkernel's masked tail when available): odd M so
                // both the paired and the single-row paths run.
                let m = 5usize;
                let block: Vec<f32> = (0..m * d)
                    .map(|i| (((i as u64 * 11 + seed) % 29) as f32) * 0.17 - 2.4)
                    .collect();
                let mut want = vec![0.0f32; m];
                for (o, row) in want.iter_mut().zip(block.chunks_exact(d)) {
                    *o = scalar::dot(&a, row);
                }
                let mut got = vec![0.0f32; m];
                scores_block(&a, &block, &mut got);
                for (x, w) in got.iter().zip(want.iter()) {
                    prop_assert!(rel_close(*x, *w, 1e-4), "scores_block d={d}");
                }
            }
        }
    }

    #[test]
    fn normalize_rows_and_gather_agree() {
        let src = Matrix::from_fn(5, 11, |r, c| ((r * 13 + c * 7) % 9) as f32 * 0.4 - 1.2);
        let mut dst = Matrix::zeros(5, 11);
        let mut norms = vec![0.0f32; 5];
        normalize_rows_into(&src, &mut dst, &mut norms);
        for (r, &got_n) in norms.iter().enumerate() {
            let mut want = vec![0.0f32; 11];
            let wn = scalar::normalize_into(src.row(r), &mut want);
            assert!(rel_close(got_n, wn, 1e-4));
            for (x, w) in dst.row(r).iter().zip(want.iter()) {
                assert!(rel_close(*x, *w, 1e-4));
            }
        }
        // Gather with a permutation.
        let ids = [4u32, 0, 2];
        let mut block = vec![0.0f32; 3 * 11];
        let mut bnorms = vec![0.0f32; 3];
        normalize_gather_into(&src, &ids, &mut block, &mut bnorms);
        for (j, &id) in ids.iter().enumerate() {
            assert!(rel_close(bnorms[j], norms[id as usize], 1e-4));
            for (x, w) in block[j * 11..(j + 1) * 11].iter().zip(dst.row(id as usize)) {
                assert!(rel_close(*x, *w, 1e-4));
            }
        }
    }

    #[test]
    fn empty_slices_are_fine_at_every_level() {
        for lv in simd_levels().into_iter().chain([SimdLevel::Scalar]) {
            assert_eq!(dot_with(lv, &[], &[]), 0.0);
            assert_eq!(sq_dist_with(lv, &[], &[]), 0.0);
            let mut y: [f32; 0] = [];
            axpy_with(lv, 1.0, &[], &mut y);
            scale_with(lv, 2.0, &mut y);
        }
        let mut out: [f32; 0] = [];
        scores_block(&[1.0, 2.0], &[], &mut out);
        cosine_backward_block(&[], &[], &[1.0], 1.0, &[], &mut [0.0]);
    }
}
